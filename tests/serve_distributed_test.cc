// Distributed serving tier tests: partition/merge byte-equality, router
// fan-out byte-identity against the monolith, generation consistency
// under concurrent republish across every shard, and the
// fault-injection acceptance — a shard killed mid-traffic recovers from
// its base snapshot plus delta replay, rejoins the router on a fresh
// port, and no client ever observes a mixed-generation response.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "data/generator.h"
#include "serve/canon_store.h"
#include "serve/http_client.h"
#include "serve/json.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/shard_store.h"
#include "serve/snapshot_io.h"

namespace jocl {
namespace {

// A generated ReVerb45K-like world, large enough that FNV sharding
// spreads surfaces across every shard, ingested in three batches to
// produce three published generations of the monolithic store.
class ShardFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(GenerateReVerb45K(0.05).MoveValueOrDie());
    signals_ = new SignalBundle(BuildSignals(*dataset_).MoveValueOrDie());
    generations_ = new std::vector<CanonStore>();
    JoclSession session(dataset_, signals_);
    session.SetPublishCallback([&](const JoclSession& s) {
      generations_->push_back(BuildCanonStore(
          s.problem(), s.result(), dataset_->ckb, s.generation()));
    });
    const std::vector<size_t>& stream = dataset_->test_triples;
    constexpr size_t kBatches = 3;
    for (size_t b = 0; b < kBatches; ++b) {
      const size_t begin = b * stream.size() / kBatches;
      const size_t end = (b + 1) * stream.size() / kBatches;
      ASSERT_TRUE(session
                      .AddTriples(std::vector<size_t>(stream.begin() + begin,
                                                      stream.begin() + end))
                      .ok());
    }
    ASSERT_EQ(generations_->size(), kBatches);
  }

  static void TearDownTestSuite() {
    delete generations_;
    delete signals_;
    delete dataset_;
    generations_ = nullptr;
    signals_ = nullptr;
    dataset_ = nullptr;
  }

  static const CanonStore& monolith() { return generations_->back(); }

  /// Renders \p store's exact response body for \p target — the bytes
  /// every shard (and the router in front of them) must reproduce.
  static std::string Expected(const CanonStore& store,
                              const std::string& target, int* status) {
    const ServeCounters no_counters;
    return HandleCanonRequest(&store, "GET", target, no_counters, status);
  }

  /// Finds a surface of \p store whose FNV hash routes to \p shard.
  static std::string SurfaceOwnedBy(const CanonStore& store, uint32_t shard,
                                    uint32_t num_shards) {
    for (size_t s = 0; s < store.np.surface_count(); ++s) {
      const std::string text(store.SurfaceText(CanonKind::kNp, s));
      if (ShardOfSurface(text, num_shards) == shard) return text;
    }
    return "";
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
  static std::vector<CanonStore>* generations_;
};

Dataset* ShardFixture::dataset_ = nullptr;
SignalBundle* ShardFixture::signals_ = nullptr;
std::vector<CanonStore>* ShardFixture::generations_ = nullptr;

// ---------- partitioning -----------------------------------------------------

TEST_F(ShardFixture, PartitionAndMergeRoundTripByteIdentically) {
  const CanonStore& m = monolith();
  const std::string monolith_bytes = SerializeSnapshot(m);
  for (uint32_t n : {1u, 2u, 3u, 4u}) {
    Result<std::vector<CanonStore>> split = BuildShardedCanonStores(m, n);
    ASSERT_TRUE(split.ok()) << split.status();
    const std::vector<CanonStore>& shards = split.ValueOrDie();
    ASSERT_EQ(shards.size(), n);
    for (uint32_t k = 0; k < n; ++k) {
      ASSERT_TRUE(ValidateCanonStore(shards[k]).ok())
          << "shard " << k << "/" << n;
      EXPECT_EQ(shards[k].shard_index, k);
      EXPECT_EQ(shards[k].shard_count, n);
      EXPECT_EQ(shards[k].generation, m.generation);
      EXPECT_EQ(shards[k].triple_count, m.triple_count);
    }
    // Every monolith surface lives on the shard its hash names, under
    // its monolith-global id, with its full cluster membership.
    for (CanonKind kind : {CanonKind::kNp, CanonKind::kRp}) {
      const CanonSection& section = kind == CanonKind::kNp ? m.np : m.rp;
      for (size_t s = 0; s < section.surface_count(); ++s) {
        const std::string text(m.SurfaceText(kind, s));
        const uint32_t owner = ShardOfSurface(text, n);
        const int64_t local = shards[owner].FindSurface(kind, text);
        ASSERT_GE(local, 0) << text << " missing from shard " << owner;
        EXPECT_EQ(shards[owner].GlobalSurfaceId(kind, local), s) << text;
        EXPECT_EQ(
            shards[owner].ClustersOf(kind, static_cast<size_t>(local)).size(),
            m.ClustersOf(kind, s).size())
            << text;
      }
    }
    // The union reconstructs the monolith snapshot byte for byte.
    Result<CanonStore> merged = MergeShardedCanonStores(shards);
    ASSERT_TRUE(merged.ok()) << merged.status();
    EXPECT_EQ(SerializeSnapshot(merged.ValueOrDie()), monolith_bytes)
        << n << " shards";
  }
}

TEST_F(ShardFixture, PartitionAndMergeRejectInvalidInputs) {
  const CanonStore& m = monolith();
  EXPECT_FALSE(BuildShardedCanonStores(m, 0).ok());
  std::vector<CanonStore> shards =
      BuildShardedCanonStores(m, 2).MoveValueOrDie();
  // A shard is not a monolith: re-sharding must refuse.
  EXPECT_FALSE(BuildShardedCanonStores(shards[0], 2).ok());
  // Incomplete and duplicated shard sets.
  EXPECT_FALSE(MergeShardedCanonStores({shards[0]}).ok());
  EXPECT_FALSE(MergeShardedCanonStores({shards[0], shards[0]}).ok());
  // Mixed generations.
  std::vector<CanonStore> mixed = shards;
  mixed[1].generation += 1;
  EXPECT_FALSE(MergeShardedCanonStores(mixed).ok());
}

// ---------- router fan-out ---------------------------------------------------

TEST_F(ShardFixture, RouterServesByteIdenticalResponsesToMonolith) {
  constexpr uint32_t kShards = 3;
  const CanonStore& m = monolith();
  std::vector<CanonStore> shards =
      BuildShardedCanonStores(m, kShards).MoveValueOrDie();
  ServeOptions options;
  options.num_workers = 1;
  std::vector<std::unique_ptr<CanonServer>> servers;
  std::vector<int> ports;
  for (uint32_t k = 0; k < kShards; ++k) {
    servers.push_back(std::make_unique<CanonServer>(options));
    ASSERT_TRUE(servers[k]->Start().ok());
    servers[k]->Publish(std::make_shared<const CanonStore>(shards[k]));
    ports.push_back(servers[k]->port());
  }
  CanonRouter router(ports, options);
  ASSERT_TRUE(router.Start().ok());

  Result<HttpConnection> connected = HttpConnection::Connect(router.port());
  ASSERT_TRUE(connected.ok()) << connected.status();
  HttpConnection conn = connected.MoveValueOrDie();

  // Sampled data targets over both sections, plus every error shape.
  std::vector<std::string> targets;
  for (CanonKind kind : {CanonKind::kNp, CanonKind::kRp}) {
    const char* suffix = kind == CanonKind::kNp ? "&kind=np" : "&kind=rp";
    const CanonSection& section = kind == CanonKind::kNp ? m.np : m.rp;
    for (size_t s = 0; s < section.surface_count(); s += 7) {
      const std::string encoded(UrlEncode(m.SurfaceText(kind, s)));
      targets.push_back("/lookup?surface=" + encoded + suffix);
      targets.push_back("/link?surface=" + encoded + suffix);
    }
    for (size_t c = 0; c < section.cluster_count(); c += 5) {
      targets.push_back("/cluster?id=" +
                        std::to_string(m.GlobalClusterId(kind, c)) + suffix);
    }
  }
  targets.push_back("/lookup?surface=no-such-surface-xyz");
  targets.push_back("/link?surface=no-such-surface-xyz");
  targets.push_back("/cluster?id=999999999");
  targets.push_back("/cluster?id=abc");
  targets.push_back("/lookup");
  targets.push_back("/nope");

  for (const std::string& target : targets) {
    Result<HttpResponse> via_router = conn.Get(target);
    ASSERT_TRUE(via_router.ok()) << target << ": " << via_router.status();
    int status = 0;
    const std::string expected = Expected(m, target, &status);
    EXPECT_EQ(via_router.ValueOrDie().status, status) << target;
    EXPECT_EQ(via_router.ValueOrDie().body, expected) << target;
  }
  // The fan-out reached every backend, and the router saw one uniform
  // generation across the fleet.
  for (uint32_t k = 0; k < kShards; ++k) {
    EXPECT_GT(servers[k]->counters().requests, 0u) << "shard " << k;
    EXPECT_EQ(router.shard_generation(k),
              static_cast<int64_t>(m.generation))
        << "shard " << k;
  }
  router.Stop();
}

TEST_F(ShardFixture, RouterAggregatesShardMetricsWithLabels) {
  constexpr uint32_t kShards = 2;
  const CanonStore& m = monolith();
  std::vector<CanonStore> shards =
      BuildShardedCanonStores(m, kShards).MoveValueOrDie();
  ServeOptions options;
  options.num_workers = 1;
  std::vector<std::unique_ptr<CanonServer>> servers;
  std::vector<int> ports;
  for (uint32_t k = 0; k < kShards; ++k) {
    servers.push_back(std::make_unique<CanonServer>(options));
    ASSERT_TRUE(servers[k]->Start().ok());
    servers[k]->Publish(std::make_shared<const CanonStore>(shards[k]));
    ports.push_back(servers[k]->port());
  }
  CanonRouter router(ports, options);
  ASSERT_TRUE(router.Start().ok());

  // One data request through the router: shard 0's forwarding counters
  // and its generation gauge move; shard 1's gauge stays at -1 (a
  // /metrics forward carries no generation header).
  const std::string surface = SurfaceOwnedBy(m, 0, kShards);
  ASSERT_FALSE(surface.empty());
  Result<HttpResponse> data =
      HttpGet(router.port(), "/lookup?surface=" + UrlEncode(surface));
  ASSERT_TRUE(data.ok()) << data.status();
  ASSERT_EQ(data.ValueOrDie().status, 200);

  Result<HttpResponse> scrape = HttpGet(router.port(), "/metrics");
  ASSERT_TRUE(scrape.ok()) << scrape.status();
  EXPECT_EQ(scrape.ValueOrDie().status, 200);
  const std::string& body = scrape.ValueOrDie().body;
  const std::string generation = std::to_string(m.generation);
  // Router-own per-shard families.
  EXPECT_NE(body.find("jocl_shard_generation{shard=\"0\"} " + generation),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("jocl_shard_generation{shard=\"1\"} -1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("jocl_shard_port{shard=\"0\"} " +
                      std::to_string(ports[0])),
            std::string::npos);
  EXPECT_NE(body.find("jocl_shard_forwarded_total{shard=\"0\"}"),
            std::string::npos);
  // Shard scrapes folded in with a shard label on every sample — both
  // unlabeled families and already-labeled ones.
  EXPECT_NE(body.find("jocl_requests_total{shard=\"0\"} 1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("jocl_requests_total{shard=\"1\"} 0"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("jocl_generation{shard=\"1\"} " + generation),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("jocl_responses_total{shard=\"0\",code=\"200\"}"),
            std::string::npos)
      << body;
  // One HELP/TYPE per family even though samples come from the router
  // and both shards.
  size_t type_lines = 0;
  const std::string needle = "# TYPE jocl_requests_total counter";
  for (size_t at = body.find(needle); at != std::string::npos;
       at = body.find(needle, at + needle.size())) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u) << body;

  // A down shard is skipped, not an error: its samples vanish while the
  // aggregate stays serveable.
  servers[1]->Stop();
  Result<HttpResponse> degraded = HttpGet(router.port(), "/metrics");
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded.ValueOrDie().status, 200);
  EXPECT_EQ(degraded.ValueOrDie().body.find("jocl_requests_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(degraded.ValueOrDie().body.find("jocl_requests_total{shard=\"0\"}"),
            std::string::npos);
  router.Stop();
}

// ---------- generation consistency under republish ---------------------------

TEST_F(ShardFixture, RoutedReadersNeverObserveMixedGenerations) {
  constexpr uint32_t kShards = 2;
  constexpr size_t kReaders = 4;
  // Pre-shard all three generations so the publisher can swap fast.
  std::vector<std::vector<CanonStore>> sharded;
  for (const CanonStore& gen : *generations_) {
    sharded.push_back(BuildShardedCanonStores(gen, kShards).MoveValueOrDie());
  }

  // Read targets drawn from the first generation (alive in all three),
  // with the expected body pre-rendered per generation: a response
  // stamped generation g must match g's bytes exactly — anything else
  // is a torn or mixed-generation answer.
  std::vector<std::string> targets;
  const CanonStore& first = (*generations_)[0];
  for (size_t s = 0; s < first.np.surface_count(); s += 3) {
    targets.push_back("/lookup?surface=" +
                      UrlEncode(first.SurfaceText(CanonKind::kNp, s)));
  }
  ASSERT_GE(targets.size(), 4u);
  std::map<int64_t, std::vector<std::string>> expected;
  for (const CanonStore& gen : *generations_) {
    std::vector<std::string>& bodies =
        expected[static_cast<int64_t>(gen.generation)];
    for (const std::string& target : targets) {
      int status = 0;
      bodies.push_back(Expected(gen, target, &status));
    }
  }

  ServeOptions options;
  options.num_workers = 1;
  std::vector<std::unique_ptr<CanonServer>> servers;
  std::vector<int> ports;
  for (uint32_t k = 0; k < kShards; ++k) {
    servers.push_back(std::make_unique<CanonServer>(options));
    ASSERT_TRUE(servers[k]->Start().ok());
    servers[k]->Publish(std::make_shared<const CanonStore>(sharded[0][k]));
    ports.push_back(servers[k]->port());
  }
  ServeOptions router_options;
  router_options.num_workers = 2;
  CanonRouter router(ports, router_options);
  ASSERT_TRUE(router.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      HttpConnection conn;
      size_t i = r;  // stagger the walk per reader
      while (!stop.load(std::memory_order_relaxed)) {
        if (!conn.connected()) {
          Result<HttpConnection> fresh =
              HttpConnection::Connect(router.port());
          if (!fresh.ok()) {
            failures.fetch_add(1);
            continue;
          }
          conn = fresh.MoveValueOrDie();
        }
        const size_t t = i++ % targets.size();
        Result<HttpResponse> response = conn.Get(targets[t]);
        if (!response.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const HttpResponse& got = response.ValueOrDie();
        auto bodies = expected.find(got.generation);
        if (bodies == expected.end() || got.body != bodies->second[t]) {
          mismatches.fetch_add(1);
        }
        reads.fetch_add(1);
      }
    });
  }

  // Republish every generation on every shard, repeatedly, while the
  // readers stream. Shards transiently disagree about the current
  // generation — that is the point — but each body still comes from
  // exactly one shard's atomically-swapped bundle.
  for (int round = 0; round < 8; ++round) {
    for (size_t g = 0; g < sharded.size(); ++g) {
      for (uint32_t k = 0; k < kShards; ++k) {
        servers[k]->Publish(
            std::make_shared<const CanonStore>(sharded[g][k]));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0) << "a reader saw a body that matches no "
                                     "fully-published generation";
  EXPECT_GT(reads.load(), 0u);
  router.Stop();
}

// ---------- fault injection: kill, recover, rejoin ---------------------------

TEST_F(ShardFixture, KilledShardRecoversFromBaseSnapshotPlusDeltaReplay) {
  constexpr uint32_t kShards = 2;
  constexpr uint32_t kVictim = 1;
  std::vector<std::vector<CanonStore>> sharded;
  for (const CanonStore& gen : *generations_) {
    sharded.push_back(BuildShardedCanonStores(gen, kShards).MoveValueOrDie());
  }

  // The victim's durable state: a base snapshot of its first generation
  // plus one delta per subsequent generation — the recovery chain.
  const std::string dir = ::testing::TempDir();
  const std::string base_path = dir + "/jocl_shard1.base.snap";
  const std::string delta1_path = dir + "/jocl_shard1.g2.delta";
  const std::string delta2_path = dir + "/jocl_shard1.g3.delta";
  ASSERT_TRUE(SaveSnapshot(sharded[0][kVictim], base_path).ok());
  ASSERT_TRUE(SaveDeltaSnapshot(sharded[0][kVictim], sharded[1][kVictim],
                                delta1_path)
                  .ok());
  ASSERT_TRUE(SaveDeltaSnapshot(sharded[1][kVictim], sharded[2][kVictim],
                                delta2_path)
                  .ok());

  // Serve the latest generation on both shards, fronted by the router.
  const CanonStore& m = monolith();
  ServeOptions options;
  options.num_workers = 1;
  std::vector<std::unique_ptr<CanonServer>> servers;
  std::vector<int> ports;
  for (uint32_t k = 0; k < kShards; ++k) {
    servers.push_back(std::make_unique<CanonServer>(options));
    ASSERT_TRUE(servers[k]->Start().ok());
    servers[k]->Publish(std::make_shared<const CanonStore>(sharded[2][k]));
    ports.push_back(servers[k]->port());
  }
  CanonRouter router(ports, options);
  ASSERT_TRUE(router.Start().ok());

  const std::string survivor_surface = SurfaceOwnedBy(m, 0, kShards);
  const std::string victim_surface = SurfaceOwnedBy(m, kVictim, kShards);
  ASSERT_FALSE(survivor_surface.empty());
  ASSERT_FALSE(victim_surface.empty());
  const std::string survivor_target =
      "/lookup?surface=" + UrlEncode(survivor_surface);
  const std::string victim_target =
      "/lookup?surface=" + UrlEncode(victim_surface);
  int expected_status = 0;
  const std::string survivor_body =
      Expected(m, survivor_target, &expected_status);
  ASSERT_EQ(expected_status, 200);
  const std::string victim_body = Expected(m, victim_target, &expected_status);
  ASSERT_EQ(expected_status, 200);

  // Background traffic across both shards for the whole kill/recover
  // window. Every 200 must carry the latest generation's exact bytes
  // (the only generation ever published here); 503 is the one other
  // legal answer while the victim is down.
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> unavailable{0};
  std::atomic<int> transport_errors{0};
  std::atomic<uint64_t> reads{0};
  std::thread traffic([&] {
    HttpConnection conn;
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!conn.connected()) {
        Result<HttpConnection> fresh = HttpConnection::Connect(router.port());
        if (!fresh.ok()) {
          transport_errors.fetch_add(1);
          continue;
        }
        conn = fresh.MoveValueOrDie();
      }
      const bool to_victim = (i++ % 2) == 0;
      const std::string& target = to_victim ? victim_target : survivor_target;
      Result<HttpResponse> response = conn.Get(target);
      if (!response.ok()) {
        transport_errors.fetch_add(1);
        continue;
      }
      const HttpResponse& got = response.ValueOrDie();
      if (got.status == 503) {
        unavailable.fetch_add(1);
      } else if (got.status != 200 ||
                 got.body != (to_victim ? victim_body : survivor_body)) {
        mismatches.fetch_add(1);
      }
      reads.fetch_add(1);
    }
  });

  // Warm traffic, then kill the victim mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  servers[kVictim]->Stop();

  // The router degrades exactly to the victim's key range: survivor
  // keys keep answering, victim keys 503 after the retry.
  Result<HttpResponse> down = HttpGet(router.port(), victim_target);
  ASSERT_TRUE(down.ok()) << down.status();
  EXPECT_EQ(down.ValueOrDie().status, 503) << down.ValueOrDie().body;
  Result<HttpResponse> alive = HttpGet(router.port(), survivor_target);
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_EQ(alive.ValueOrDie().status, 200);
  EXPECT_EQ(alive.ValueOrDie().body, survivor_body);
  // Hold the outage open until the background reader has seen it.
  for (int spin = 0; spin < 400 && unavailable.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Recovery: base snapshot, then the delta chain, one generation at a
  // time — the result must be byte-identical to the store the victim
  // was serving when it died.
  Result<CanonStore> base = LoadSnapshot(base_path);
  ASSERT_TRUE(base.ok()) << base.status();
  Result<CanonStore> mid =
      LoadAndApplyDeltaSnapshot(base.ValueOrDie(), delta1_path);
  ASSERT_TRUE(mid.ok()) << mid.status();
  Result<CanonStore> recovered =
      LoadAndApplyDeltaSnapshot(mid.ValueOrDie(), delta2_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(SerializeSnapshot(recovered.ValueOrDie()),
            SerializeSnapshot(sharded[2][kVictim]));
  // Replaying the chain out of order must fail loudly, not corrupt.
  EXPECT_FALSE(LoadAndApplyDeltaSnapshot(base.ValueOrDie(), delta2_path).ok());

  // Rejoin: a new process on a new ephemeral port, pointed at by the
  // router. In-flight readers reconnect on their next request to it.
  CanonServer revived(options);
  ASSERT_TRUE(revived.Start().ok());
  revived.Publish(
      std::make_shared<const CanonStore>(recovered.MoveValueOrDie()));
  ASSERT_NE(revived.port(), ports[kVictim]);
  router.SetShardPort(kVictim, revived.port());

  Result<HttpResponse> back = HttpGet(router.port(), victim_target);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.ValueOrDie().status, 200) << back.ValueOrDie().body;
  EXPECT_EQ(back.ValueOrDie().body, victim_body);
  EXPECT_EQ(back.ValueOrDie().generation,
            static_cast<int64_t>(m.generation));

  // Let the background reader observe the recovered shard too.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  traffic.join();

  EXPECT_EQ(mismatches.load(), 0)
      << "a client observed a non-latest-generation body";
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GE(unavailable.load(), 1)
      << "the kill window produced no 503 — the victim was never hit "
         "while down";
  // The router's telemetry recorded the outage and the rejoin.
  EXPECT_GE(router.shard_generation(kVictim),
            static_cast<int64_t>(m.generation));
  router.Stop();
  revived.Stop();
  std::remove(base_path.c_str());
  std::remove(delta1_path.c_str());
  std::remove(delta2_path.c_str());
}

}  // namespace
}  // namespace jocl
