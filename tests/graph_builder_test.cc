// Hand-verified factor tables: the graph builder must encode exactly the
// paper's feature functions (F1-F6) and heuristic scores (U1-U7). These
// tests build a tiny fully-controlled problem and check log-potentials
// cell by cell.
#include <gtest/gtest.h>

#include "core/graph_builder.h"
#include "core/problem.h"
#include "core/signals.h"
#include "data/dataset.h"

namespace jocl {
namespace {

// A tiny world: two entities, one relation, two triples whose subjects
// are aliases ("acme corp", "acme") and whose objects are both "bolt".
class GraphBuilderFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    acme_ = ds_.ckb.AddEntity("acme corp");
    bolt_ = ds_.ckb.AddEntity("bolt industries");
    rel_ = ds_.ckb.AddRelation("owner_company");
    ASSERT_TRUE(ds_.ckb.AddFact(acme_, rel_, bolt_).ok());
    ASSERT_TRUE(ds_.ckb.AddAnchor("acme corp", acme_, 80).ok());
    ASSERT_TRUE(ds_.ckb.AddAnchor("acme", acme_, 60).ok());
    ASSERT_TRUE(ds_.ckb.AddAnchor("acme", bolt_, 20).ok());  // ambiguous
    ASSERT_TRUE(ds_.ckb.AddAnchor("bolt industries", bolt_, 50).ok());
    ASSERT_TRUE(ds_.okb.AddTriple("acme corp", "owns", "bolt industries")
                    .ok());
    ASSERT_TRUE(ds_.okb.AddTriple("acme", "owns", "bolt industries").ok());
    for (size_t t = 0; t < 2; ++t) {
      ds_.gold_subject_entity.push_back(acme_);
      ds_.gold_relation.push_back(rel_);
      ds_.gold_object_entity.push_back(bolt_);
      ds_.gold_np_group.push_back(0);
      ds_.gold_np_group.push_back(1);
      ds_.gold_rp_group.push_back(0);
    }
    ds_.ppdb.AddCluster({"acme corp", "acme"});
    signals_ = BuildSignals(ds_).MoveValueOrDie();
    problem_ = BuildProblem(ds_, signals_, {0, 1});
  }

  Dataset ds_;
  EntityId acme_ = -1;
  EntityId bolt_ = -1;
  RelationId rel_ = -1;
  SignalBundle signals_;
  JoclProblem problem_;
};

TEST_F(GraphBuilderFixture, SubjectPairExistsWithPpdbBlocking) {
  // "acme corp" vs "acme" — IDF shares the rare token "acme", and the
  // PPDB cluster guarantees blocking either way.
  ASSERT_EQ(problem_.subject_pairs.size(), 1u);
  EXPECT_EQ(problem_.subject_surfaces[problem_.subject_pairs[0].a],
            "acme corp");
  EXPECT_EQ(problem_.subject_surfaces[problem_.subject_pairs[0].b], "acme");
}

TEST_F(GraphBuilderFixture, F1TableEncodesSimAndOneMinusSim) {
  JoclGraph jg = BuildJoclGraph(problem_, signals_, ds_.ckb);
  ASSERT_EQ(jg.x_vars.size(), 1u);
  // The F1 factor is the first factor attached to x_0.
  const auto& attachments = jg.graph.AttachedFactors(jg.x_vars[0]);
  ASSERT_FALSE(attachments.empty());
  const FactorNode& f1 = jg.graph.factor(attachments[0].first);
  ASSERT_EQ(f1.scope.size(), 1u);

  // Isolate each feature by zeroing all other weights.
  const std::string& a = problem_.subject_surfaces[0];
  const std::string& b = problem_.subject_surfaces[1];
  double idf = problem_.subject_pairs[0].idf;
  double emb = signals_.Emb(a, b);
  double ppdb = signals_.Ppdb(a, b);
  std::vector<double> w(WeightLayout::kCount, 0.0);

  // Sub-threshold IDF is neutralized to 0.5 (GraphBuilderOptions).
  GraphBuilderOptions defaults;
  double expected_idf = idf >= defaults.idf_neutral_below ? idf : 0.5;
  w[WeightLayout::kAlpha1 + 0] = 1.0;  // f_idf
  EXPECT_NEAR(f1.features.LogPotential(1, w), expected_idf, 1e-12);
  EXPECT_NEAR(f1.features.LogPotential(0, w), 1.0 - expected_idf, 1e-12);
  w[WeightLayout::kAlpha1 + 0] = 0.0;

  w[WeightLayout::kAlpha1 + 1] = 1.0;  // f_emb
  EXPECT_NEAR(f1.features.LogPotential(1, w), emb, 1e-12);
  EXPECT_NEAR(f1.features.LogPotential(0, w), 1.0 - emb, 1e-12);
  w[WeightLayout::kAlpha1 + 1] = 0.0;

  w[WeightLayout::kAlpha1 + 2] = 1.0;  // f_PPDB (same cluster -> 1)
  EXPECT_NEAR(f1.features.LogPotential(1, w), ppdb, 1e-12);
  EXPECT_DOUBLE_EQ(ppdb, 1.0);
}

TEST_F(GraphBuilderFixture, U4RewardsKnownFacts) {
  JoclGraph jg = BuildJoclGraph(problem_, signals_, ds_.ckb);
  // Find the U4 factor of triple 0 (named "U4").
  const FactorNode* u4 = nullptr;
  for (FactorId f = 0; f < jg.graph.factor_count(); ++f) {
    if (jg.graph.factor(f).name == "U4") {
      u4 = &jg.graph.factor(f);
      break;
    }
  }
  ASSERT_NE(u4, nullptr);
  ASSERT_EQ(u4->scope.size(), 3u);

  std::vector<double> w(WeightLayout::kCount, 0.0);
  w[WeightLayout::kBeta4] = 1.0;
  // NIL states (assignment 0) must carry the low score.
  GraphBuilderOptions defaults;
  EXPECT_NEAR(u4->features.LogPotential(0, w), defaults.fact_low, 1e-12);
  // Some assignment must carry the high score (the known fact
  // <acme, owner_company, bolt>), and none may be outside {low, high}.
  bool found_high = false;
  size_t assignments = 1;
  for (VariableId v : u4->scope) {
    assignments *= jg.graph.variable(v).cardinality;
  }
  for (size_t a = 0; a < assignments; ++a) {
    double value = u4->features.LogPotential(a, w);
    EXPECT_TRUE(std::abs(value - defaults.fact_low) < 1e-12 ||
                std::abs(value - defaults.fact_high) < 1e-12);
    if (std::abs(value - defaults.fact_high) < 1e-12) found_high = true;
  }
  EXPECT_TRUE(found_high);
}

TEST_F(GraphBuilderFixture, U5ConsistencyValues) {
  JoclGraph jg = BuildJoclGraph(problem_, signals_, ds_.ckb);
  const FactorNode* u5 = nullptr;
  for (FactorId f = 0; f < jg.graph.factor_count(); ++f) {
    if (jg.graph.factor(f).name == "U5") {
      u5 = &jg.graph.factor(f);
      break;
    }
  }
  ASSERT_NE(u5, nullptr);
  ASSERT_EQ(u5->scope.size(), 3u);  // (es_i, es_j, x)

  std::vector<double> w(WeightLayout::kCount, 0.0);
  w[WeightLayout::kBeta5] = 1.0;
  GraphBuilderOptions defaults;
  // Assignment 0 = (NIL, NIL, x=0): two NILs are neutral evidence.
  EXPECT_NEAR(u5->features.LogPotential(0, w), defaults.consistency_neutral,
              1e-12);
  // Assignment 1 = (NIL, NIL, x=1): still neutral.
  EXPECT_NEAR(u5->features.LogPotential(1, w), defaults.consistency_neutral,
              1e-12);
  // Every cell is one of {low, neutral, high}.
  size_t assignments = 1;
  for (VariableId v : u5->scope) {
    assignments *= jg.graph.variable(v).cardinality;
  }
  bool found_high = false;
  bool found_low = false;
  for (size_t a = 0; a < assignments; ++a) {
    double value = u5->features.LogPotential(a, w);
    bool ok = std::abs(value - defaults.consistency_low) < 1e-12 ||
              std::abs(value - defaults.consistency_neutral) < 1e-12 ||
              std::abs(value - defaults.consistency_high) < 1e-12;
    EXPECT_TRUE(ok) << "assignment " << a << " value " << value;
    found_high |= std::abs(value - defaults.consistency_high) < 1e-12;
    found_low |= std::abs(value - defaults.consistency_low) < 1e-12;
  }
  EXPECT_TRUE(found_high);
  EXPECT_TRUE(found_low);
}

TEST_F(GraphBuilderFixture, TransitiveTableScoresByOnesCount) {
  // Build a 3-surface problem so a triangle exists: add a third alias.
  Dataset ds = ds_;
  ASSERT_TRUE(ds.okb.AddTriple("acme corporation", "owns",
                               "bolt industries").ok());
  ds.gold_subject_entity.push_back(acme_);
  ds.gold_relation.push_back(rel_);
  ds.gold_object_entity.push_back(bolt_);
  ds.gold_np_group.push_back(0);
  ds.gold_np_group.push_back(1);
  ds.gold_rp_group.push_back(0);
  SignalBundle signals = BuildSignals(ds).MoveValueOrDie();
  JoclProblem problem = BuildProblem(ds, signals, {0, 1, 2});
  if (problem.subject_pairs.size() < 3) {
    GTEST_SKIP() << "triangle did not form under blocking";
  }
  JoclGraph jg = BuildJoclGraph(problem, signals, ds.ckb);
  const FactorNode* u1 = nullptr;
  for (FactorId f = 0; f < jg.graph.factor_count(); ++f) {
    if (jg.graph.factor(f).name == "U1") {
      u1 = &jg.graph.factor(f);
      break;
    }
  }
  ASSERT_NE(u1, nullptr);
  std::vector<double> w(WeightLayout::kCount, 0.0);
  w[WeightLayout::kBeta1] = 1.0;
  GraphBuilderOptions defaults;
  // 8 assignments over 3 binary vars; score depends only on #ones.
  for (size_t a = 0; a < 8; ++a) {
    size_t ones = static_cast<size_t>((a & 1) != 0) +
                  static_cast<size_t>((a & 2) != 0) +
                  static_cast<size_t>((a & 4) != 0);
    double expected = ones == 3   ? defaults.transitive_high
                      : ones == 2 ? defaults.transitive_low
                                  : defaults.transitive_mid;
    EXPECT_NEAR(u1->features.LogPotential(a, w), expected, 1e-12)
        << "assignment " << a;
  }
}

TEST_F(GraphBuilderFixture, LinkingVariableStatesMatchCandidatesPlusNil) {
  JoclGraph jg = BuildJoclGraph(problem_, signals_, ds_.ckb);
  for (size_t t = 0; t < problem_.triples.size(); ++t) {
    EXPECT_EQ(jg.graph.variable(jg.es_vars[t]).cardinality,
              problem_.subject_candidates[problem_.subject_of[t]].size() + 1);
    EXPECT_EQ(jg.graph.variable(jg.rp_vars[t]).cardinality,
              problem_.predicate_candidates[problem_.predicate_of[t]].size() +
                  1);
  }
}

TEST_F(GraphBuilderFixture, ScheduleGroupsFollowPaperOrder) {
  JoclGraph jg = BuildJoclGraph(problem_, signals_, ds_.ckb);
  // Full graph: 5 groups (F-canon, U-trans may be empty, F-link, U4, U-cons).
  ASSERT_GE(jg.schedule.size(), 3u);
  // First group holds canonicalization factors (unary on pair vars).
  for (FactorId f : jg.schedule.front()) {
    EXPECT_EQ(jg.graph.factor(f).scope.size(), 1u);
  }
  // Last group holds the ternary consistency factors.
  for (FactorId f : jg.schedule.back()) {
    EXPECT_EQ(jg.graph.factor(f).scope.size(), 3u);
  }
}

}  // namespace
}  // namespace jocl
