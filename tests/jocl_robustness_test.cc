// Robustness and determinism of the end-to-end pipeline on degenerate and
// adversarial inputs: empty subsets, single triples, missing CKBs, and
// repeated runs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/jocl.h"
#include "core/signals.h"
#include "data/generator.h"

namespace jocl {
namespace {

class JoclRobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.num_entities = 40;
    options.num_relations = 6;
    options.num_triples = 150;
    options.seed = 5;
    dataset_ = new Dataset(
        GenerateDataset(options, "robustness").MoveValueOrDie());
    SignalOptions signal_options;
    signal_options.embedding_epochs = 2;
    signals_ = new SignalBundle(
        BuildSignals(*dataset_, signal_options).MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete signals_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
};

Dataset* JoclRobustnessTest::dataset_ = nullptr;
SignalBundle* JoclRobustnessTest::signals_ = nullptr;

TEST_F(JoclRobustnessTest, EmptySubsetYieldsEmptyResult) {
  Jocl jocl;
  auto result = jocl.Infer(*dataset_, *signals_, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie().triples.empty());
  EXPECT_TRUE(result.ValueOrDie().np_cluster.empty());
  EXPECT_TRUE(result.ValueOrDie().np_link.empty());
}

TEST_F(JoclRobustnessTest, SingleTripleWorks) {
  Jocl jocl;
  auto result = jocl.Infer(*dataset_, *signals_, {0});
  ASSERT_TRUE(result.ok());
  const JoclResult& r = result.ValueOrDie();
  EXPECT_EQ(r.np_cluster.size(), 2u);
  EXPECT_EQ(r.rp_cluster.size(), 1u);
  // Subject and object of a single triple are distinct surfaces here;
  // no pair variables exist, so both stay in their own clusters unless
  // they are the same string.
  if (dataset_->okb.triple(0).subject != dataset_->okb.triple(0).object) {
    EXPECT_NE(r.np_cluster[0], r.np_cluster[1]);
  }
}

TEST_F(JoclRobustnessTest, DuplicateTriplesInSubsetAreDeduplicated) {
  Jocl jocl;
  auto result = jocl.Infer(*dataset_, *signals_, {3, 3, 1, 1, 2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().triples, (std::vector<size_t>{1, 2, 3}));
}

TEST_F(JoclRobustnessTest, ResultTriplesSortedAscending) {
  Jocl jocl;
  auto result = jocl.Infer(*dataset_, *signals_, {9, 2, 7, 4});
  ASSERT_TRUE(result.ok());
  const auto& triples = result.ValueOrDie().triples;
  for (size_t i = 1; i < triples.size(); ++i) {
    EXPECT_LT(triples[i - 1], triples[i]);
  }
}

TEST_F(JoclRobustnessTest, InferIsDeterministic) {
  Jocl jocl;
  auto first = jocl.Infer(*dataset_, *signals_, dataset_->test_triples);
  auto second = jocl.Infer(*dataset_, *signals_, dataset_->test_triples);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.ValueOrDie().np_cluster, second.ValueOrDie().np_cluster);
  EXPECT_EQ(first.ValueOrDie().np_link, second.ValueOrDie().np_link);
  EXPECT_EQ(first.ValueOrDie().rp_link, second.ValueOrDie().rp_link);
}

TEST_F(JoclRobustnessTest, LearningIsDeterministic) {
  Jocl jocl;
  auto first = jocl.LearnWeights(*dataset_, *signals_);
  auto second = jocl.LearnWeights(*dataset_, *signals_);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.ValueOrDie(), second.ValueOrDie());
}

TEST(JoclNoCkbTest, AllMentionsLinkToNil) {
  // An OKB with an empty CKB: no candidates anywhere, every mention must
  // link to NIL and canonicalization must still run on string evidence.
  Dataset ds;
  ASSERT_TRUE(ds.okb.AddTriple("alpha beta", "works at", "gamma delta").ok());
  ASSERT_TRUE(ds.okb.AddTriple("alpha beta", "works at", "delta gamma").ok());
  for (size_t t = 0; t < 2; ++t) {
    ds.gold_subject_entity.push_back(kNilId);
    ds.gold_relation.push_back(kNilId);
    ds.gold_object_entity.push_back(kNilId);
    ds.gold_np_group.push_back(0);
    ds.gold_np_group.push_back(1);
    ds.gold_rp_group.push_back(0);
  }
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
  Jocl jocl;
  auto result = jocl.Infer(ds, sig, {0, 1});
  ASSERT_TRUE(result.ok());
  for (int64_t link : result.ValueOrDie().np_link) {
    EXPECT_EQ(link, kNilId);
  }
  for (int64_t link : result.ValueOrDie().rp_link) {
    EXPECT_EQ(link, kNilId);
  }
  // Identical subject surfaces share a cluster.
  EXPECT_EQ(result.ValueOrDie().np_cluster[0],
            result.ValueOrDie().np_cluster[2]);
  // Identical predicates share a cluster.
  EXPECT_EQ(result.ValueOrDie().rp_cluster[0],
            result.ValueOrDie().rp_cluster[1]);
}

TEST_F(JoclRobustnessTest, LearnedWeightsAllFinite) {
  Jocl jocl;
  auto weights = jocl.LearnWeights(*dataset_, *signals_);
  ASSERT_TRUE(weights.ok());
  for (double w : weights.ValueOrDie()) {
    EXPECT_TRUE(std::isfinite(w));
  }
}

TEST_F(JoclRobustnessTest, MarginalsAreDistributions) {
  Jocl jocl;
  auto result = jocl.Infer(*dataset_, *signals_, dataset_->test_triples);
  ASSERT_TRUE(result.ok());
  for (const auto& marginal : result.ValueOrDie().diagnostics.marginals) {
    double total = 0.0;
    for (double p : marginal) {
      EXPECT_GE(p, -1e-12);
      EXPECT_LE(p, 1.0 + 1e-12);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace jocl
