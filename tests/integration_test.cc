// End-to-end shape tests: generate a ReVerb45K-like benchmark, build all
// signals, run JOCL and the key baselines, and assert the paper's
// qualitative findings (who wins) on a small instance. Absolute numbers are
// not asserted — only orderings the paper's tables establish.
#include <gtest/gtest.h>

#include "baselines/entity_linking.h"
#include "baselines/np_canonicalization.h"
#include "core/jocl.h"
#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "eval/linking_metrics.h"

namespace jocl {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateReVerb45K(/*scale=*/0.5, /*seed=*/42).MoveValueOrDie());
    SignalOptions signal_options;
    signal_options.embedding_epochs = 3;
    signals_ = new SignalBundle(
        BuildSignals(*dataset_, signal_options).MoveValueOrDie());
    Jocl jocl;
    result_ = new JoclResult(
        jocl.Run(*dataset_, *signals_, dataset_->test_triples)
            .MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete result_;
    delete signals_;
    delete dataset_;
  }

  static std::vector<size_t> GoldNp() {
    std::vector<size_t> gold;
    for (size_t t : dataset_->test_triples) {
      gold.push_back(static_cast<size_t>(dataset_->gold_np_group[t * 2]));
      gold.push_back(static_cast<size_t>(dataset_->gold_np_group[t * 2 + 1]));
    }
    return gold;
  }

  static std::vector<int64_t> GoldEntity() {
    std::vector<int64_t> gold;
    for (size_t t : dataset_->test_triples) {
      gold.push_back(dataset_->gold_subject_entity[t]);
      gold.push_back(dataset_->gold_object_entity[t]);
    }
    return gold;
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
  static JoclResult* result_;
};

Dataset* IntegrationTest::dataset_ = nullptr;
SignalBundle* IntegrationTest::signals_ = nullptr;
JoclResult* IntegrationTest::result_ = nullptr;

TEST_F(IntegrationTest, JoclCanonicalizationIsUseful) {
  ClusteringScore score =
      EvaluateClustering(result_->np_cluster, GoldNp());
  // Far better than chance on every component.
  EXPECT_GT(score.macro.f1, 0.2);
  EXPECT_GT(score.micro.f1, 0.5);
  EXPECT_GT(score.pairwise.f1, 0.3);
  EXPECT_GT(score.average_f1, 0.4);
}

TEST_F(IntegrationTest, JoclBeatsMorphNormAndIdfBaselines) {
  std::vector<size_t> gold = GoldNp();
  double jocl_f1 = EvaluateClustering(result_->np_cluster, gold).average_f1;
  double morph = EvaluateClustering(
                     MorphNormCanonicalize(*dataset_, dataset_->test_triples),
                     gold)
                     .average_f1;
  double idf = EvaluateClustering(
                   IdfTokenOverlapCanonicalize(*dataset_, *signals_,
                                               dataset_->test_triples),
                   gold)
                   .average_f1;
  EXPECT_GT(jocl_f1, morph);
  EXPECT_GT(jocl_f1, idf);
}

TEST_F(IntegrationTest, JoclLinkingBeatsPopularityOnly) {
  std::vector<int64_t> gold = GoldEntity();
  double jocl_acc = LinkingAccuracy(result_->np_link, gold);
  double spotlight_acc = LinkingAccuracy(
      SpotlightLink(*dataset_, *signals_, dataset_->test_triples), gold);
  double tagme_acc = LinkingAccuracy(
      TagMeLink(*dataset_, *signals_, dataset_->test_triples), gold);
  EXPECT_GT(jocl_acc, 0.4);
  EXPECT_GE(jocl_acc, spotlight_acc - 0.02);  // at least on par
  EXPECT_GT(jocl_acc, tagme_acc);
}

TEST_F(IntegrationTest, JointBeatsCanonicalizationAlone) {
  // Table 4's headline: the full framework >= the single-task variant.
  Jocl cano_only(JoclOptions::CanonicalizationOnly());
  auto cano = cano_only.Run(*dataset_, *signals_, dataset_->test_triples);
  ASSERT_TRUE(cano.ok());
  std::vector<size_t> gold = GoldNp();
  double joint_f1 = EvaluateClustering(result_->np_cluster, gold).average_f1;
  double cano_f1 =
      EvaluateClustering(cano.ValueOrDie().np_cluster, gold).average_f1;
  EXPECT_GE(joint_f1, cano_f1 - 0.02);
}

TEST_F(IntegrationTest, JointBeatsLinkingAlone) {
  Jocl link_only(JoclOptions::LinkingOnly());
  auto link = link_only.Run(*dataset_, *signals_, dataset_->test_triples);
  ASSERT_TRUE(link.ok());
  std::vector<int64_t> gold = GoldEntity();
  double joint_acc = LinkingAccuracy(result_->np_link, gold);
  double link_acc = LinkingAccuracy(link.ValueOrDie().np_link, gold);
  // Allow small-sample noise; at benchmark scale the joint model wins
  // outright (see bench_table4_ablation).
  EXPECT_GE(joint_acc, link_acc - 0.04);
}

TEST_F(IntegrationTest, MoreFeaturesHelp) {
  // Figure 4's shape: JOCL-all >= JOCL-single.
  JoclOptions single_options;
  single_options.builder.features = FeatureMask::Single();
  Jocl single(single_options);
  auto single_result =
      single.Run(*dataset_, *signals_, dataset_->test_triples);
  ASSERT_TRUE(single_result.ok());
  std::vector<size_t> gold = GoldNp();
  double all_f1 = EvaluateClustering(result_->np_cluster, gold).average_f1;
  double single_f1 =
      EvaluateClustering(single_result.ValueOrDie().np_cluster, gold)
          .average_f1;
  EXPECT_GE(all_f1, single_f1 - 0.02);
}

TEST_F(IntegrationTest, LbpConvergesWithinPaperBudget) {
  EXPECT_LE(result_->diagnostics.iterations, 20u);
}

TEST_F(IntegrationTest, RpCanonicalizationIsUseful) {
  std::vector<size_t> gold;
  for (size_t t : dataset_->test_triples) {
    gold.push_back(static_cast<size_t>(dataset_->gold_rp_group[t]));
  }
  ClusteringScore score = EvaluateClustering(result_->rp_cluster, gold);
  EXPECT_GT(score.average_f1, 0.3);
}

}  // namespace
}  // namespace jocl
