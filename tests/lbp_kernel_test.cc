// Tests of the LBP kernel rework: the vectorized message kernel must be
// byte-identical to the scalar reference for every thread/shard count, the
// residual-priority schedule must report an honest convergence certificate
// and decode-match the exact schedule in fewer updates, and the new
// Status/Result precondition paths must reject malformed inputs instead of
// compiling undefined behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/runtime.h"
#include "data/generator.h"
#include "graph/compiled_graph.h"
#include "graph/exact.h"
#include "graph/flat_lbp.h"
#include "graph/inference.h"
#include "util/rng.h"

namespace jocl {
namespace {

FeatureTable FixedTable(std::vector<double> log_potentials) {
  return FeatureTable::Uniform(0, std::move(log_potentials));
}

// Heterogeneous multi-component graph (same shape the engine tests use):
// chains of mixed cardinality, a loopy square, a ternary island, an
// isolated variable.
FactorGraph MakeFragmentedGraph(Rng* rng) {
  FactorGraph g;
  g.set_weight_count(1);
  auto pair_table = [&](size_t ca, size_t cb) {
    std::vector<double> table(ca * cb);
    for (double& v : table) v = rng->UniformDouble(-1.0, 1.0);
    return FixedTable(std::move(table));
  };
  for (size_t chain = 0; chain < 3; ++chain) {
    VariableId prev = g.AddVariable(2 + chain % 2);
    for (size_t i = 1; i < 4; ++i) {
      VariableId v = g.AddVariable(2 + (chain + i) % 3);
      g.AddFactor({prev, v}, pair_table(g.variable(prev).cardinality,
                                        g.variable(v).cardinality))
          .ValueOrDie();
      prev = v;
    }
  }
  std::vector<VariableId> square;
  for (size_t i = 0; i < 4; ++i) square.push_back(g.AddVariable(2));
  for (size_t i = 0; i < 4; ++i) {
    g.AddFactor({square[i], square[(i + 1) % 4]}, pair_table(2, 2))
        .ValueOrDie();
  }
  VariableId ta = g.AddVariable(2);
  VariableId tb = g.AddVariable(3);
  VariableId tc = g.AddVariable(2);
  std::vector<double> ternary(12);
  for (double& v : ternary) v = rng->UniformDouble(-1.0, 1.0);
  g.AddFactor({ta, tb, tc}, FixedTable(std::move(ternary))).ValueOrDie();
  g.AddVariable(3);
  return g;
}

// The head-component worst case in miniature: one giant loopy component —
// a backbone chain with skewed cross links, unary evidence, and a
// sprinkling of ternary factors — plus a few small satellite components.
FactorGraph MakeHeadHeavyGraph(Rng* rng, size_t head_vars) {
  FactorGraph g;
  g.set_weight_count(1);
  auto random_table = [&](size_t states) {
    std::vector<double> table(states);
    for (double& v : table) v = rng->UniformDouble(-1.5, 1.5);
    return FixedTable(std::move(table));
  };
  std::vector<VariableId> head;
  for (size_t i = 0; i < head_vars; ++i) {
    head.push_back(g.AddVariable(2 + i % 7));  // cards 2..8
  }
  auto card = [&](VariableId v) { return g.variable(v).cardinality; };
  // Backbone chain keeps the component connected.
  for (size_t i = 1; i < head.size(); ++i) {
    g.AddFactor({head[i - 1], head[i]},
                random_table(card(head[i - 1]) * card(head[i])))
        .ValueOrDie();
  }
  // Skewed cross links: low-index "head entity" variables collect most of
  // the degree, like the giant canonicalization component does.
  for (size_t i = 1; i < head.size(); ++i) {
    const size_t hub = static_cast<size_t>(
        rng->UniformUint64(std::max<size_t>(1, i / 4)));
    const VariableId other = head[hub == i ? i - 1 : i];
    g.AddFactor({head[hub], other},
                random_table(card(head[hub]) * card(other)))
        .ValueOrDie();
  }
  // Unary evidence on every third variable, ternary ties on every fifth.
  for (size_t i = 0; i < head.size(); i += 3) {
    g.AddFactor({head[i]}, random_table(card(head[i]))).ValueOrDie();
  }
  for (size_t i = 5; i + 2 < head.size(); i += 5) {
    g.AddFactor({head[i], head[i + 1], head[i + 2]},
                random_table(card(head[i]) * card(head[i + 1]) *
                             card(head[i + 2])))
        .ValueOrDie();
  }
  // Satellite components.
  for (size_t s = 0; s < 3; ++s) {
    VariableId a = g.AddVariable(3);
    VariableId b = g.AddVariable(2);
    g.AddFactor({a, b}, random_table(6)).ValueOrDie();
  }
  return g;
}

LbpResult RunEngine(const FactorGraph& g, const std::vector<double>& w,
                    LbpOptions options) {
  FlatLbpEngine engine(&g, &w, options);
  return engine.Run();
}

// ---------- byte identity: vectorized kernel vs scalar reference ------------

class KernelIdentityTest : public ::testing::TestWithParam<LbpMode> {};

TEST_P(KernelIdentityTest, VectorizedMatchesReferenceBitForBit) {
  Rng rng(17);
  const std::vector<double> weights = {1.0};
  std::vector<FactorGraph> graphs;
  graphs.push_back(MakeFragmentedGraph(&rng));
  graphs.push_back(MakeHeadHeavyGraph(&rng, 60));
  for (const FactorGraph& graph : graphs) {
    for (double damping : {0.0, 0.3}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        LbpOptions reference;
        reference.mode = GetParam();
        reference.damping = damping;
        reference.num_threads = 1;
        reference.kernel = LbpKernel::kScalarReference;
        const LbpResult expected = RunEngine(graph, weights, reference);

        LbpOptions vectorized = reference;
        vectorized.num_threads = threads;
        vectorized.kernel = LbpKernel::kVectorized;
        const LbpResult actual = RunEngine(graph, weights, vectorized);

        // Exact equality, not tolerance: the vectorized kernel performs
        // the reference's floating-point operations in the reference's
        // order, so no bit may differ.
        EXPECT_EQ(actual.marginals, expected.marginals)
            << "damping " << damping << ", " << threads << " threads";
        EXPECT_EQ(actual.iterations, expected.iterations);
        EXPECT_EQ(actual.converged, expected.converged);
        EXPECT_EQ(actual.final_residual, expected.final_residual);
        EXPECT_EQ(actual.residual_history, expected.residual_history);
        EXPECT_EQ(actual.message_updates, expected.message_updates);
      }
    }
  }
}

TEST_P(KernelIdentityTest, VectorizedMatchesReferenceUnderClamps) {
  Rng rng(29);
  FactorGraph graph = MakeHeadHeavyGraph(&rng, 40);
  // Clamp a spread of variables (the learner's conditioned pass).
  for (VariableId v = 0; v < graph.variable_count(); v += 7) {
    ASSERT_TRUE(graph.Clamp(v, v % graph.variable(v).cardinality).ok());
  }
  const std::vector<double> weights = {1.0};
  LbpOptions reference;
  reference.mode = GetParam();
  reference.kernel = LbpKernel::kScalarReference;
  const LbpResult expected = RunEngine(graph, weights, reference);
  LbpOptions vectorized = reference;
  vectorized.kernel = LbpKernel::kVectorized;
  vectorized.num_threads = 4;
  const LbpResult actual = RunEngine(graph, weights, vectorized);
  EXPECT_EQ(actual.marginals, expected.marginals);
  EXPECT_EQ(actual.final_residual, expected.final_residual);
}

INSTANTIATE_TEST_SUITE_P(Modes, KernelIdentityTest,
                         ::testing::Values(LbpMode::kSumProduct,
                                           LbpMode::kMaxProduct));

// The full sharded runtime: kernel choice must not change a single output
// bit for any (shards, threads) configuration on a generated world.
TEST(KernelRuntimeTest, ShardedRuntimeByteIdenticalAcrossKernels) {
  Dataset dataset =
      GenerateReVerb45K(/*scale=*/0.2, /*seed=*/13).MoveValueOrDie();
  SignalOptions signal_options;
  signal_options.embedding_epochs = 2;
  SignalBundle signals =
      BuildSignals(dataset, signal_options).MoveValueOrDie();

  JoclOptions reference_options;
  reference_options.inference.kernel = LbpKernel::kScalarReference;
  RuntimeOptions mono;
  mono.max_shards = 1;
  mono.num_threads = 1;
  JoclRuntime reference(reference_options, mono);
  JoclResult expected =
      reference.Infer(dataset, signals, dataset.test_triples)
          .MoveValueOrDie();

  for (size_t shards : {size_t{1}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      JoclOptions options;  // kernel defaults to kVectorized
      RuntimeOptions runtime_options;
      runtime_options.max_shards = shards;
      runtime_options.num_threads = threads;
      JoclRuntime runtime(options, runtime_options);
      JoclResult result =
          runtime.Infer(dataset, signals, dataset.test_triples)
              .MoveValueOrDie();
      EXPECT_EQ(result.np_cluster, expected.np_cluster)
          << shards << " shards, " << threads << " threads";
      EXPECT_EQ(result.rp_cluster, expected.rp_cluster);
      EXPECT_EQ(result.np_link, expected.np_link);
      EXPECT_EQ(result.triples, expected.triples);
      EXPECT_EQ(result.diagnostics.marginals, expected.diagnostics.marginals);
      EXPECT_EQ(result.diagnostics.final_residual,
                expected.diagnostics.final_residual);
    }
  }
}

// ---------- residual schedule ------------------------------------------------

TEST(ResidualScheduleTest, CertificateWithinToleranceAndDecodeMatches) {
  Rng rng(31);
  const std::vector<double> weights = {1.0};
  std::vector<FactorGraph> graphs;
  graphs.push_back(MakeFragmentedGraph(&rng));
  graphs.push_back(MakeHeadHeavyGraph(&rng, 60));
  for (const FactorGraph& graph : graphs) {
    LbpOptions staged;
    staged.max_iterations = 60;
    FlatLbpEngine staged_engine(&graph, &weights, staged);
    const LbpResult exact = staged_engine.Run();
    const std::vector<size_t> exact_decode = staged_engine.Decode();

    LbpOptions residual = staged;
    residual.schedule = LbpSchedule::kResidual;
    FlatLbpEngine residual_engine(&graph, &weights, residual);
    const LbpResult approx = residual_engine.Run();

    // The certificate is honest: converged means every pending factor
    // residual is below tolerance at stop.
    EXPECT_TRUE(approx.converged);
    EXPECT_LT(approx.final_residual, residual.tolerance);
    EXPECT_GT(approx.residual_pops, 0u);
    // Residual scheduling reaches a decode-equivalent fixed point...
    EXPECT_EQ(residual_engine.Decode(), exact_decode);
    // ...in no more updates than the staged sweeps spent.
    EXPECT_LE(approx.message_updates, exact.message_updates);
    for (size_t v = 0; v < graph.variable_count(); ++v) {
      for (size_t x = 0; x < graph.variable(v).cardinality; ++x) {
        EXPECT_NEAR(approx.marginals[v][x], exact.marginals[v][x], 5e-3);
      }
    }
  }
}

TEST(ResidualScheduleTest, HonorsClampsAndBudget) {
  Rng rng(37);
  FactorGraph graph = MakeHeadHeavyGraph(&rng, 30);
  ASSERT_TRUE(graph.Clamp(0, 1).ok());
  ASSERT_TRUE(graph.Clamp(9, 0).ok());
  const std::vector<double> weights = {1.0};

  LbpOptions residual;
  residual.schedule = LbpSchedule::kResidual;
  FlatLbpEngine engine(&graph, &weights, residual);
  const LbpResult result = engine.Run();
  // Clamped variables keep their delta marginals under the new schedule.
  EXPECT_DOUBLE_EQ(result.marginals[0][1], 1.0);
  EXPECT_DOUBLE_EQ(result.marginals[9][0], 1.0);
  // The budget caps updates at max_iterations sweeps' worth.
  size_t scheduled_factors = 0;
  for (FactorId f = 0; f < graph.factor_count(); ++f) {
    if (!graph.factor(f).scope.empty()) ++scheduled_factors;
  }
  EXPECT_LE(result.message_updates,
            residual.max_iterations * scheduled_factors);
}

TEST(ResidualScheduleTest, DeterministicAcrossThreadCounts) {
  Rng rng(41);
  FactorGraph graph = MakeFragmentedGraph(&rng);
  const std::vector<double> weights = {1.0};
  LbpOptions residual;
  residual.schedule = LbpSchedule::kResidual;
  residual.num_threads = 1;
  const LbpResult one = RunEngine(graph, weights, residual);
  residual.num_threads = 4;
  const LbpResult four = RunEngine(graph, weights, residual);
  // Components run their queues sequentially, so thread count changes
  // nothing — the approximate schedule is still deterministic.
  EXPECT_EQ(one.marginals, four.marginals);
  EXPECT_EQ(one.message_updates, four.message_updates);
  EXPECT_EQ(one.residual_pops, four.residual_pops);
  EXPECT_EQ(one.final_residual, four.final_residual);
}

// ---------- Status/Result precondition paths --------------------------------

TEST(GraphValidationTest, CompileCheckedRejectsMalformedGraphs) {
  // Weight reference beyond weight_count (weights are late-bound, so the
  // builder cannot catch this; CompileChecked must).
  {
    FactorGraph g;
    g.set_weight_count(1);
    VariableId a = g.AddVariable(2);
    g.AddFactor({a}, FeatureTable::Uniform(5, {0.0, 1.0})).ValueOrDie();
    Result<CompiledGraph> result = CompiledGraph::CompileChecked(g);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  // Same for sparse feature entries.
  {
    FactorGraph g;
    g.set_weight_count(2);
    VariableId a = g.AddVariable(2);
    FeatureTable sparse(2);
    sparse.Add(0, 0, 1.0);
    sparse.Add(1, 7, -1.0);  // weight 7 out of range
    g.AddFactor({a}, std::move(sparse)).ValueOrDie();
    EXPECT_FALSE(CompiledGraph::CompileChecked(g).ok());
  }
  // A well-formed graph passes.
  {
    Rng rng(43);
    FactorGraph g = MakeFragmentedGraph(&rng);
    EXPECT_TRUE(CompiledGraph::CompileChecked(g).ok());
  }
}

TEST(GraphValidationTest, EngineValidateChecksRunPreconditions) {
  Rng rng(47);
  FactorGraph g = MakeFragmentedGraph(&rng);
  const std::vector<double> good_weights = {1.0};
  const std::vector<double> no_weights;

  FlatLbpEngine ok_engine(&g, &good_weights);
  EXPECT_TRUE(ok_engine.Validate().ok());

  FlatLbpEngine short_engine(&g, &no_weights);
  const Status status = short_engine.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  ExactEngine exact_ok(&g, &good_weights);
  EXPECT_TRUE(exact_ok.Validate().ok());
  ExactEngine exact_short(&g, &no_weights);
  EXPECT_FALSE(exact_short.Validate().ok());
}

}  // namespace
}  // namespace jocl
