#include <gtest/gtest.h>

#include "sideinfo/amie_miner.h"
#include "sideinfo/kbp_mapper.h"
#include "sideinfo/paraphrase_store.h"

namespace jocl {
namespace {

// ---------- ParaphraseStore ------------------------------------------------------

TEST(ParaphraseStoreTest, SameClusterScoresOne) {
  ParaphraseStore store;
  store.AddCluster({"be founded by", "be established by", "be created by"});
  EXPECT_DOUBLE_EQ(store.Similarity("be founded by", "be established by"),
                   1.0);
  EXPECT_DOUBLE_EQ(store.Similarity("be founded by", "something else"), 0.0);
  EXPECT_EQ(store.cluster_count(), 1u);
}

TEST(ParaphraseStoreTest, CaseInsensitiveLookup) {
  ParaphraseStore store;
  store.AddCluster({"Barack Obama", "President Obama"});
  EXPECT_DOUBLE_EQ(store.Similarity("barack obama", "PRESIDENT OBAMA"), 1.0);
}

TEST(ParaphraseStoreTest, RepresentativeIsFirstPhrase) {
  ParaphraseStore store;
  store.AddCluster({"alpha", "beta"});
  ASSERT_TRUE(store.Representative("beta").has_value());
  EXPECT_EQ(*store.Representative("beta"), "alpha");
  EXPECT_FALSE(store.Representative("gamma").has_value());
}

TEST(ParaphraseStoreTest, FirstAssignmentWinsNoTransitiveMerge) {
  ParaphraseStore store;
  store.AddCluster({"a", "b"});
  store.AddCluster({"b", "c"});  // "b" keeps cluster 1
  EXPECT_DOUBLE_EQ(store.Similarity("a", "b"), 1.0);
  EXPECT_DOUBLE_EQ(store.Similarity("b", "c"), 0.0);
  // "c" joined cluster 2 whose representative is "b"... and "a"'s rep is "a".
  EXPECT_DOUBLE_EQ(store.Similarity("a", "c"), 0.0);
}

TEST(ParaphraseStoreTest, EmptyAndDegenerateClusters) {
  ParaphraseStore store;
  store.AddCluster({});
  store.AddCluster({""});
  EXPECT_EQ(store.phrase_count(), 0u);
}

// ---------- AmieMiner --------------------------------------------------------------

OpenKb MakeRuleCorpus() {
  OpenKb okb;
  // "is the capital of" and "is the capital city of" share argument pairs.
  const char* pairs[][2] = {{"paris", "france"},
                            {"berlin", "germany"},
                            {"madrid", "spain"},
                            {"rome", "italy"}};
  for (const auto& p : pairs) {
    EXPECT_TRUE(okb.AddTriple(p[0], "is the capital of", p[1]).ok());
    EXPECT_TRUE(okb.AddTriple(p[0], "is the capital city of", p[1]).ok());
  }
  // A predicate with disjoint arguments must not become equivalent.
  EXPECT_TRUE(okb.AddTriple("alice", "works for", "acme").ok());
  EXPECT_TRUE(okb.AddTriple("bob", "works for", "initech").ok());
  return okb;
}

TEST(AmieMinerTest, MinesBidirectionalEquivalence) {
  AmieMiner miner(AmieOptions{2, 0.5});
  OpenKb okb = MakeRuleCorpus();
  miner.Mine(okb);
  EXPECT_DOUBLE_EQ(
      miner.Similarity("is the capital of", "is the capital city of"), 1.0);
  EXPECT_DOUBLE_EQ(miner.Similarity("is the capital of", "works for"), 0.0);
  EXPECT_FALSE(miner.rules().empty());
}

TEST(AmieMinerTest, RulesRespectThresholds) {
  AmieMiner miner(AmieOptions{2, 0.5});
  OpenKb okb = MakeRuleCorpus();
  miner.Mine(okb);
  for (const auto& rule : miner.rules()) {
    EXPECT_GE(rule.support, 2u);
    EXPECT_GE(rule.confidence, 0.5);
    EXPECT_LE(rule.confidence, 1.0);
  }
}

TEST(AmieMinerTest, SupportThresholdBlocksRareRules) {
  OpenKb okb;
  // Only ONE shared argument pair: below min_support = 2.
  ASSERT_TRUE(okb.AddTriple("a", "p", "b").ok());
  ASSERT_TRUE(okb.AddTriple("a", "q", "b").ok());
  AmieMiner miner(AmieOptions{2, 0.5});
  miner.Mine(okb);
  EXPECT_DOUBLE_EQ(miner.Similarity("p", "q"), 0.0);
  AmieMiner permissive(AmieOptions{1, 0.5});
  permissive.Mine(okb);
  EXPECT_DOUBLE_EQ(permissive.Similarity("p", "q"), 1.0);
}

TEST(AmieMinerTest, ConfidenceIsDirectional) {
  OpenKb okb;
  // q's pairs are a subset of p's pairs: q => p has confidence 1 but
  // p => q only 2/4, below 0.6.
  for (const char* s : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(okb.AddTriple(s, "p", "x").ok());
  }
  ASSERT_TRUE(okb.AddTriple("a", "q", "x").ok());
  ASSERT_TRUE(okb.AddTriple("b", "q", "x").ok());
  AmieMiner miner(AmieOptions{2, 0.6});
  miner.Mine(okb);
  bool q_implies_p = false;
  bool p_implies_q = false;
  for (const auto& rule : miner.rules()) {
    if (rule.antecedent == "q" && rule.consequent == "p") q_implies_p = true;
    if (rule.antecedent == "p" && rule.consequent == "q") p_implies_q = true;
  }
  EXPECT_TRUE(q_implies_p);
  EXPECT_FALSE(p_implies_q);
  // Not bidirectional -> similarity 0.
  EXPECT_DOUBLE_EQ(miner.Similarity("p", "q"), 0.0);
}

TEST(AmieMinerTest, MorphNormalizationConflatesVariants) {
  OpenKb okb;
  // Tense variants normalize identically -> similarity 1 without rules.
  AmieMiner miner;
  miner.Mine(okb);
  EXPECT_DOUBLE_EQ(miner.Similarity("was founded by", "founded by"), 1.0);
}

// ---------- KbpMapper ----------------------------------------------------------------

TEST(KbpMapperTest, ClassifiesByTokenEvidence) {
  KbpMapper mapper;
  mapper.Train({{"was working at", 1},
                {"worked for", 1},
                {"works at", 1},
                {"was born in", 2},
                {"born at", 2}});
  EXPECT_EQ(mapper.Classify("working for"), 1);
  EXPECT_EQ(mapper.Classify("was born near"), 2);
  EXPECT_EQ(mapper.Classify("completely unrelated phrase"), kNilId);
}

TEST(KbpMapperTest, SimilarityRequiresSameNonNilCategory) {
  KbpMapper mapper;
  mapper.Train({{"was working at", 1},
                {"worked for", 1},
                {"was born in", 2}});
  EXPECT_DOUBLE_EQ(mapper.Similarity("was working at", "worked for"), 1.0);
  EXPECT_DOUBLE_EQ(mapper.Similarity("was working at", "was born in"), 0.0);
  EXPECT_DOUBLE_EQ(mapper.Similarity("nonsense", "gibberish"), 0.0);
}

TEST(KbpMapperTest, NilExamplesIgnoredAndAbstention) {
  KbpMapper mapper;
  mapper.Train({{"foo bar", kNilId}});
  EXPECT_EQ(mapper.vocabulary_size(), 0u);
  EXPECT_EQ(mapper.Classify("foo bar"), kNilId);
}

TEST(KbpMapperTest, VoteShareThresholdCausesAbstention) {
  KbpMapperOptions options;
  options.min_vote_share = 0.9;  // near-unanimous evidence required
  KbpMapper mapper(options);
  // "works" votes for both 1 and 2 equally -> no relation reaches 90%.
  mapper.Train({{"works at", 1}, {"works near", 2}});
  EXPECT_EQ(mapper.Classify("works"), kNilId);
}

}  // namespace
}  // namespace jocl
