#include <gtest/gtest.h>

#include <numeric>

#include "cluster/hac.h"
#include "cluster/union_find.h"
#include "util/rng.h"

namespace jocl {
namespace {

// ---------- union-find ---------------------------------------------------------

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
}

TEST(UnionFindTest, TransitivityThroughChains) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(2, 3));
  uf.Union(2, 3);
  EXPECT_TRUE(uf.Connected(0, 4));
}

TEST(UnionFindTest, LabelsAreDenseAndConsistent) {
  UnionFind uf(6);
  uf.Union(0, 3);
  uf.Union(1, 4);
  std::vector<size_t> labels = uf.Labels();
  EXPECT_EQ(labels.size(), 6u);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[1], labels[4]);
  EXPECT_NE(labels[0], labels[1]);
  size_t max_label = *std::max_element(labels.begin(), labels.end());
  EXPECT_EQ(max_label + 1, uf.set_count());
}

TEST(UnionFindTest, GroupsPartitionAllElements) {
  UnionFind uf(10);
  uf.Union(0, 9);
  uf.Union(2, 4);
  uf.Union(4, 6);
  auto groups = uf.Groups();
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(groups.size(), uf.set_count());
}

class UnionFindProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionFindProperty, MatchesNaiveImplementation) {
  Rng rng(GetParam());
  constexpr size_t kN = 40;
  UnionFind uf(kN);
  // Naive reference: label vector with full rewrites.
  std::vector<size_t> naive(kN);
  std::iota(naive.begin(), naive.end(), 0);
  for (int step = 0; step < 60; ++step) {
    size_t a = rng.UniformUint64(kN);
    size_t b = rng.UniformUint64(kN);
    uf.Union(a, b);
    size_t from = naive[b];
    size_t to = naive[a];
    for (auto& label : naive) {
      if (label == from) label = to;
    }
    for (int probe = 0; probe < 10; ++probe) {
      size_t x = rng.UniformUint64(kN);
      size_t y = rng.UniformUint64(kN);
      EXPECT_EQ(uf.Connected(x, y), naive[x] == naive[y]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------- HAC ------------------------------------------------------------------

// Similarity matrix helper.
std::vector<double> Matrix(size_t n, std::initializer_list<double> upper) {
  std::vector<double> m(n * n, 0.0);
  auto it = upper.begin();
  for (size_t i = 0; i < n; ++i) {
    m[i * n + i] = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      m[i * n + j] = *it;
      m[j * n + i] = *it;
      ++it;
    }
  }
  return m;
}

TEST(HacTest, EmptyAndSingleton) {
  Hac hac;
  EXPECT_TRUE(hac.ClusterMatrix(0, {}).empty());
  EXPECT_EQ(hac.ClusterMatrix(1, {1.0}), (std::vector<size_t>{0}));
}

TEST(HacTest, ThresholdOneMergesNothingBelow) {
  HacOptions options;
  options.threshold = 1.01;  // nothing reaches above 1
  Hac hac(options);
  auto labels = hac.ClusterMatrix(3, Matrix(3, {0.9, 0.9, 0.9}));
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[1], labels[2]);
}

TEST(HacTest, ZeroThresholdSingleLinkageMergesAll) {
  HacOptions options;
  options.threshold = 0.0;
  options.linkage = Linkage::kSingle;
  Hac hac(options);
  auto labels = hac.ClusterMatrix(4, Matrix(4, {0.1, 0.0, 0.0,  //
                                                0.1, 0.0,       //
                                                0.1}));
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[2], labels[3]);
}

TEST(HacTest, CompleteLinkageStopsChaining) {
  // a-b similar (0.9), b-c similar (0.9), a-c dissimilar (0.0).
  // Complete linkage at 0.5: after merging a,b the cluster's similarity to
  // c is min(0.9, 0.0) = 0, so c stays out.
  HacOptions options;
  options.threshold = 0.5;
  options.linkage = Linkage::kComplete;
  Hac hac(options);
  auto labels = hac.ClusterMatrix(3, Matrix(3, {0.9, 0.0, 0.9}));
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(HacTest, SingleLinkageChains) {
  HacOptions options;
  options.threshold = 0.5;
  options.linkage = Linkage::kSingle;
  Hac hac(options);
  auto labels = hac.ClusterMatrix(3, Matrix(3, {0.9, 0.0, 0.9}));
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);  // chained through b
}

TEST(HacTest, AverageLinkageIntermediate) {
  // a-b 1.0; c relates 0.8 to a, 0.0 to b -> average 0.4 < 0.5 stays out;
  // with threshold 0.3 it merges.
  auto matrix = Matrix(3, {1.0, 0.8, 0.0});
  HacOptions options;
  options.linkage = Linkage::kAverage;
  options.threshold = 0.5;
  auto labels_strict = Hac(options).ClusterMatrix(3, matrix);
  EXPECT_EQ(labels_strict[0], labels_strict[1]);
  EXPECT_NE(labels_strict[0], labels_strict[2]);
  options.threshold = 0.3;
  auto labels_loose = Hac(options).ClusterMatrix(3, matrix);
  EXPECT_EQ(labels_loose[0], labels_loose[2]);
}

TEST(HacTest, CallbackInterfaceMatchesMatrix) {
  HacOptions options;
  options.threshold = 0.5;
  Hac hac(options);
  auto matrix = Matrix(4, {0.9, 0.2, 0.1,  //
                           0.3, 0.2,       //
                           0.8});
  auto by_matrix = hac.ClusterMatrix(4, matrix);
  auto by_callback = hac.Cluster(
      4, [&](size_t i, size_t j) { return matrix[i * 4 + j]; });
  EXPECT_EQ(by_matrix, by_callback);
}

TEST(HacTest, DeterministicAcrossRuns) {
  Rng rng(77);
  constexpr size_t kN = 30;
  std::vector<double> matrix(kN * kN, 0.0);
  for (size_t i = 0; i < kN; ++i) {
    matrix[i * kN + i] = 1.0;
    for (size_t j = i + 1; j < kN; ++j) {
      double s = rng.UniformDouble();
      matrix[i * kN + j] = s;
      matrix[j * kN + i] = s;
    }
  }
  HacOptions options;
  options.threshold = 0.6;
  options.linkage = Linkage::kAverage;
  auto first = Hac(options).ClusterMatrix(kN, matrix);
  auto second = Hac(options).ClusterMatrix(kN, matrix);
  EXPECT_EQ(first, second);
}

class HacProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HacProperty, HigherThresholdNeverMergesMore) {
  Rng rng(GetParam());
  constexpr size_t kN = 25;
  std::vector<double> matrix(kN * kN, 0.0);
  for (size_t i = 0; i < kN; ++i) {
    matrix[i * kN + i] = 1.0;
    for (size_t j = i + 1; j < kN; ++j) {
      double s = rng.UniformDouble();
      matrix[i * kN + j] = s;
      matrix[j * kN + i] = s;
    }
  }
  auto clusters_at = [&](double threshold) {
    HacOptions options;
    options.threshold = threshold;
    options.linkage = Linkage::kSingle;
    auto labels = Hac(options).ClusterMatrix(kN, matrix);
    return *std::max_element(labels.begin(), labels.end()) + 1;
  };
  size_t prev = clusters_at(0.1);
  for (double t : {0.3, 0.5, 0.7, 0.9}) {
    size_t now = clusters_at(t);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HacProperty, ::testing::Values(3, 6, 9, 12));

}  // namespace
}  // namespace jocl
