#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "text/morph_normalizer.h"
#include "text/porter_stemmer.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace jocl {
namespace {

// ---------- tokenizer ---------------------------------------------------------

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  EXPECT_EQ(Tokenize("University of Maryland, College-Park"),
            (std::vector<std::string>{"university", "of", "maryland",
                                      "college", "park"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("--- !!").empty());
}

TEST(TokenizerTest, KeepsDigits) {
  EXPECT_EQ(Tokenize("Universitas 21"),
            (std::vector<std::string>{"universitas", "21"}));
}

TEST(TokenizerTest, ContentTokensDropStopWords) {
  EXPECT_EQ(ContentTokens("the University of Maryland"),
            (std::vector<std::string>{"university", "maryland"}));
}

TEST(TokenizerTest, StopWordsContainCommonFunctionWords) {
  const auto& stop = StopWords();
  for (const char* w : {"the", "of", "is", "was", "be", "a"}) {
    EXPECT_TRUE(stop.count(w) > 0) << w;
  }
  EXPECT_EQ(stop.count("university"), 0u);
}

// ---------- Porter stemmer -----------------------------------------------------

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemmerKnownVectors : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerKnownVectors, MatchesReference) {
  EXPECT_EQ(PorterStem(GetParam().input), GetParam().expected);
}

// Reference outputs from Porter's published vocabulary list.
INSTANTIATE_TEST_SUITE_P(
    Vectors, PorterStemmerKnownVectors,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"digitizer", "digit"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"}, StemCase{"hopefulness", "hope"},
        StemCase{"goodness", "good"}, StemCase{"formalize", "formal"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"}, StemCase{"probate", "probat"},
        StemCase{"rate", "rate"}, StemCase{"cease", "ceas"},
        StemCase{"controll", "control"}, StemCase{"roll", "roll"}));

TEST(PorterStemmerTest, ShortWordsUntouched) {
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem("be"), "be");
  EXPECT_EQ(PorterStem("a"), "a");
}

TEST(PorterStemmerTest, TenseVariantsConflate) {
  EXPECT_EQ(PorterStem("founded"), PorterStem("founding"));
  EXPECT_EQ(PorterStem("founds"), PorterStem("found"));
  EXPECT_EQ(PorterStem("established"), PorterStem("establishes"));
}

TEST(PorterStemmerTest, FixedPointsAreStable) {
  // Porter is deliberately not idempotent on every word ("university" ->
  // "univers" -> "univ"), but reference fixed points must stay put.
  for (const char* word :
       {"caress", "cat", "feed", "bled", "sing", "sky", "roll", "fall"}) {
    EXPECT_EQ(PorterStem(word), word) << word;
  }
}

// ---------- morph normalizer ------------------------------------------------------

TEST(MorphNormalizerTest, RemovesTensePluralAuxiliaryDeterminer) {
  MorphNormalizer norm;
  EXPECT_EQ(norm.Normalize("was founded by"), norm.Normalize("founded by"));
  EXPECT_EQ(norm.Normalize("is a member of"), norm.Normalize("members of"));
}

TEST(MorphNormalizerTest, IrregularForms) {
  MorphNormalizer norm;
  EXPECT_EQ(norm.Normalize("took over"), norm.Normalize("takes over"));
  EXPECT_EQ(norm.Normalize("women"), norm.Normalize("woman"));
}

TEST(MorphNormalizerTest, AllStopWordPhraseFallsBack) {
  MorphNormalizer norm;
  // "is a" normalizes to its stemmed raw tokens, not the empty string.
  EXPECT_FALSE(norm.Normalize("is a").empty());
}

TEST(MorphNormalizerTest, OptionsDisableStemming) {
  MorphNormalizerOptions options;
  options.stem = false;
  options.remove_stop_words = false;
  options.apply_irregular_forms = false;
  MorphNormalizer norm(options);
  EXPECT_EQ(norm.Normalize("The Founded Companies"), "the founded companies");
}

// ---------- similarities: known values ------------------------------------------

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.8133, 1e-3);
}

TEST(JaccardTest, SetBehavior) {
  std::unordered_set<std::string> a = {"x", "y"};
  std::unordered_set<std::string> b = {"y", "z"};
  EXPECT_NEAR(JaccardSimilarity(a, b), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, {}), 0.0);
}

TEST(NgramTest, TrigramsOfShortStrings) {
  auto grams = CharacterNgrams("ab", 3);
  EXPECT_EQ(grams.size(), 1u);
  EXPECT_TRUE(grams.count("ab") > 0);
  EXPECT_EQ(CharacterNgrams("abcd", 3).size(), 2u);  // abc, bcd
  EXPECT_DOUBLE_EQ(NgramSimilarity("abcd", "abcd"), 1.0);
}

// ---------- similarity properties (parameterized sweep) ----------------------------

class SimilarityProperties : public ::testing::TestWithParam<uint64_t> {};

std::string RandomPhrase(Rng* rng) {
  static const char* kWords[] = {"university", "maryland", "umd",  "warren",
                                 "buffett",    "founded",  "by",   "club",
                                 "kandor",     "merith",   "21",   "of"};
  size_t n = 1 + rng->UniformUint64(4);
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += kWords[rng->UniformUint64(std::size(kWords))];
  }
  return out;
}

TEST_P(SimilarityProperties, SymmetricBoundedIdentity) {
  Rng rng(GetParam());
  IdfTable idf;
  for (int i = 0; i < 30; ++i) idf.AddPhrase(RandomPhrase(&rng));
  for (int trial = 0; trial < 40; ++trial) {
    std::string a = RandomPhrase(&rng);
    std::string b = RandomPhrase(&rng);
    for (auto sim : {LevenshteinSimilarity(a, b), JaroSimilarity(a, b),
                     JaroWinklerSimilarity(a, b), NgramSimilarity(a, b),
                     idf.Similarity(a, b)}) {
      EXPECT_GE(sim, 0.0);
      EXPECT_LE(sim, 1.0 + 1e-12);
    }
    EXPECT_NEAR(LevenshteinSimilarity(a, b), LevenshteinSimilarity(b, a),
                1e-12);
    EXPECT_NEAR(JaroSimilarity(a, b), JaroSimilarity(b, a), 1e-12);
    EXPECT_NEAR(NgramSimilarity(a, b), NgramSimilarity(b, a), 1e-12);
    EXPECT_NEAR(idf.Similarity(a, b), idf.Similarity(b, a), 1e-12);
    EXPECT_DOUBLE_EQ(LevenshteinSimilarity(a, a), 1.0);
    EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, a), 1.0);
    EXPECT_DOUBLE_EQ(idf.Similarity(a, a), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- IDF table ------------------------------------------------------------

TEST(IdfTableTest, RareTokensDominate) {
  IdfTable idf;
  // "university" appears many times; "buffett" once.
  for (int i = 0; i < 50; ++i) idf.AddPhrase("university of somewhere");
  idf.AddPhrase("warren buffett");
  // Sharing the rare word scores higher than sharing the frequent one.
  double rare = idf.Similarity("warren buffett", "buffett");
  double frequent =
      idf.Similarity("university of somewhere", "university of elsewhere");
  EXPECT_GT(rare, frequent);
}

TEST(IdfTableTest, PaperFormulaOnTinyCorpus) {
  IdfTable idf;
  idf.AddPhrase("a b");
  idf.AddPhrase("b c");
  // f(a)=1, f(b)=2, f(c)=1. Sim("a b","b c") =
  // w(b) / (w(a)+w(b)+w(c)) with w(x) = 1/log(1+f(x)).
  double wa = 1.0 / std::log(2.0);
  double wb = 1.0 / std::log(3.0);
  EXPECT_NEAR(idf.Similarity("a b", "b c"), wb / (wa + wb + wa), 1e-12);
}

TEST(IdfTableTest, DisjointTokensScoreZero) {
  IdfTable idf;
  idf.AddPhrase("x y");
  EXPECT_DOUBLE_EQ(idf.Similarity("x", "z"), 0.0);
}

TEST(IdfTableTest, FrequencyLookup) {
  IdfTable idf;
  idf.AddPhrases({"a b", "a c", "a"});
  EXPECT_EQ(idf.Frequency("a"), 3);
  EXPECT_EQ(idf.Frequency("b"), 1);
  EXPECT_EQ(idf.Frequency("zzz"), 0);
  EXPECT_EQ(idf.vocabulary_size(), 3u);
}

}  // namespace
}  // namespace jocl
