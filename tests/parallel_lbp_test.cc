#include <gtest/gtest.h>

#include "graph/flat_lbp.h"
#include "util/rng.h"

namespace jocl {
namespace {

FeatureTable FixedTable(std::vector<double> log_potentials) {
  return FeatureTable::Uniform(0, std::move(log_potentials));
}

// Builds a graph of `k` disjoint chains of length `len`.
FactorGraph MakeChains(size_t k, size_t len, Rng* rng,
                       std::vector<VariableId>* vars) {
  FactorGraph g;
  g.set_weight_count(1);
  for (size_t c = 0; c < k; ++c) {
    VariableId prev = 0;
    for (size_t i = 0; i < len; ++i) {
      VariableId v = g.AddVariable(2);
      vars->push_back(v);
      double bias = rng->UniformDouble(0.0, 1.0);
      (void)g.AddFactor({v}, FixedTable({0.0, bias}));
      if (i > 0) {
        double s = rng->UniformDouble(0.2, 0.8);
        (void)g.AddFactor({prev, v}, FixedTable({s, 1.0 - s, 1.0 - s, s}));
      }
      prev = v;
    }
  }
  return g;
}

TEST(FactorGraphComponentsTest, DisjointChainsAreSeparate) {
  Rng rng(5);
  std::vector<VariableId> vars;
  FactorGraph g = MakeChains(3, 4, &rng, &vars);
  std::vector<size_t> components = FactorGraphComponents(g);
  ASSERT_EQ(components.size(), 12u);
  // Within a chain: same component; across chains: different.
  EXPECT_EQ(components[0], components[3]);
  EXPECT_EQ(components[4], components[7]);
  EXPECT_NE(components[0], components[4]);
  EXPECT_NE(components[4], components[8]);
}

TEST(FactorGraphComponentsTest, IsolatedVariableIsOwnComponent) {
  FactorGraph g;
  g.set_weight_count(1);
  g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  VariableId c = g.AddVariable(2);
  (void)g.AddFactor({b, c}, FixedTable({0.1, 0.2, 0.3, 0.4}));
  std::vector<size_t> components = FactorGraphComponents(g);
  EXPECT_NE(components[0], components[1]);
  EXPECT_EQ(components[1], components[2]);
}

TEST(ParallelLbpTest, MatchesSequentialEngine) {
  Rng rng(17);
  std::vector<VariableId> vars;
  FactorGraph g = MakeChains(6, 5, &rng, &vars);
  std::vector<double> w = {1.2};

  LbpOptions options;
  options.max_iterations = 40;
  FlatLbpEngine sequential(&g, &w, options);
  LbpResult reference = sequential.Run();

  ParallelLbpResult parallel = RunParallelLbp(g, w, options, 4);
  EXPECT_EQ(parallel.components, 6u);
  EXPECT_TRUE(parallel.converged);
  ASSERT_EQ(parallel.marginals.size(), reference.marginals.size());
  for (size_t v = 0; v < parallel.marginals.size(); ++v) {
    ASSERT_EQ(parallel.marginals[v].size(), reference.marginals[v].size());
    for (size_t s = 0; s < parallel.marginals[v].size(); ++s) {
      EXPECT_NEAR(parallel.marginals[v][s], reference.marginals[v][s], 1e-9)
          << "variable " << v << " state " << s;
    }
  }
}

TEST(ParallelLbpTest, HonorsClamps) {
  Rng rng(23);
  std::vector<VariableId> vars;
  FactorGraph g = MakeChains(2, 3, &rng, &vars);
  ASSERT_TRUE(g.Clamp(vars[0], 1).ok());
  std::vector<double> w = {1.0};
  ParallelLbpResult parallel = RunParallelLbp(g, w, {}, 2);
  EXPECT_NEAR(parallel.marginals[vars[0]][1], 1.0, 1e-12);
}

class ThreadCountInvariance : public ::testing::TestWithParam<size_t> {};

TEST_P(ThreadCountInvariance, SameMarginalsForAnyThreadCount) {
  Rng rng(31);
  std::vector<VariableId> vars;
  FactorGraph g = MakeChains(8, 4, &rng, &vars);
  std::vector<double> w = {0.9};
  ParallelLbpResult reference = RunParallelLbp(g, w, {}, 1);
  ParallelLbpResult other = RunParallelLbp(g, w, {}, GetParam());
  for (size_t v = 0; v < reference.marginals.size(); ++v) {
    for (size_t s = 0; s < reference.marginals[v].size(); ++s) {
      EXPECT_DOUBLE_EQ(reference.marginals[v][s], other.marginals[v][s]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountInvariance,
                         ::testing::Values(2, 3, 8, 16));

TEST(ParallelLbpTest, EmptyGraph) {
  FactorGraph g;
  std::vector<double> w = {1.0};
  ParallelLbpResult result = RunParallelLbp(g, w, {}, 4);
  EXPECT_EQ(result.components, 0u);
  EXPECT_TRUE(result.converged);
}

}  // namespace
}  // namespace jocl
