// Tests of the unified inference layer: the CompiledGraph CSR form, the
// InferenceEngine backends, and the sequential/parallel equivalence the
// engine design guarantees (components are independent sub-problems over
// disjoint arena slices, so thread count must not change a single bit).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/compiled_graph.h"
#include "graph/exact.h"
#include "graph/flat_lbp.h"
#include "graph/inference.h"
#include "graph/learner.h"
#include "util/rng.h"

namespace jocl {
namespace {

FeatureTable FixedTable(std::vector<double> log_potentials) {
  return FeatureTable::Uniform(0, std::move(log_potentials));
}

// A deliberately heterogeneous multi-component graph: chains of mixed
// cardinality, a loopy square, a ternary-factor island and an isolated
// variable. Returns per-component anchor variables via out-params.
FactorGraph MakeFragmentedGraph(Rng* rng, std::vector<VariableId>* vars,
                                std::vector<FactorId>* factors) {
  FactorGraph g;
  g.set_weight_count(1);
  auto pair_table = [&](size_t ca, size_t cb) {
    std::vector<double> table(ca * cb);
    for (double& v : table) v = rng->UniformDouble(-1.0, 1.0);
    return FixedTable(std::move(table));
  };
  // Three chains with mixed cardinalities.
  for (size_t chain = 0; chain < 3; ++chain) {
    VariableId prev = g.AddVariable(2 + chain % 2);
    vars->push_back(prev);
    for (size_t i = 1; i < 4; ++i) {
      VariableId v = g.AddVariable(2 + (chain + i) % 3);
      vars->push_back(v);
      factors->push_back(
          g.AddFactor({prev, v},
                      pair_table(g.variable(prev).cardinality,
                                 g.variable(v).cardinality))
              .ValueOrDie());
      prev = v;
    }
  }
  // A loopy square.
  std::vector<VariableId> square;
  for (size_t i = 0; i < 4; ++i) square.push_back(g.AddVariable(2));
  vars->insert(vars->end(), square.begin(), square.end());
  for (size_t i = 0; i < 4; ++i) {
    factors->push_back(
        g.AddFactor({square[i], square[(i + 1) % 4]}, pair_table(2, 2))
            .ValueOrDie());
  }
  // A ternary island.
  VariableId ta = g.AddVariable(2);
  VariableId tb = g.AddVariable(2);
  VariableId tc = g.AddVariable(2);
  vars->insert(vars->end(), {ta, tb, tc});
  std::vector<double> ternary(8);
  for (double& v : ternary) v = rng->UniformDouble(-1.0, 1.0);
  factors->push_back(
      g.AddFactor({ta, tb, tc}, FixedTable(std::move(ternary))).ValueOrDie());
  // An isolated variable (own component, no factors).
  vars->push_back(g.AddVariable(3));
  return g;
}

// ---------- CompiledGraph ----------------------------------------------------

TEST(CompiledGraphTest, CsrLayoutMatchesSource) {
  FactorGraph g;
  g.set_weight_count(2);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(3);
  VariableId c = g.AddVariable(2);
  FactorId f0 = g.AddFactor({a, b}, FixedTable(std::vector<double>(6, 0.0)))
                    .ValueOrDie();
  FactorId f1 = g.AddFactor({b, c}, FixedTable(std::vector<double>(6, 0.0)))
                    .ValueOrDie();
  CompiledGraph compiled = CompiledGraph::Compile(g);

  EXPECT_EQ(compiled.variable_count(), 3u);
  EXPECT_EQ(compiled.factor_count(), 2u);
  EXPECT_EQ(compiled.edge_count(), 4u);
  EXPECT_EQ(compiled.total_var_states(), 7u);
  EXPECT_EQ(compiled.total_assignments(), 12u);

  // Scope CSR: f0 -> edges {a, b}, f1 -> edges {b, c}.
  EXPECT_EQ(compiled.scope_offset[f0], 0u);
  EXPECT_EQ(compiled.scope_offset[f1], 2u);
  EXPECT_EQ(compiled.scope_var[0], a);
  EXPECT_EQ(compiled.scope_var[1], b);
  EXPECT_EQ(compiled.scope_var[2], b);
  EXPECT_EQ(compiled.scope_var[3], c);

  // Row-major strides, last slot fastest: f0 over (2,3) -> strides (3,1).
  EXPECT_EQ(compiled.slot_stride[0], 3u);
  EXPECT_EQ(compiled.slot_stride[1], 1u);
  // f1 over (3,2) -> strides (2,1).
  EXPECT_EQ(compiled.slot_stride[2], 2u);
  EXPECT_EQ(compiled.slot_stride[3], 1u);

  // Attachment CSR inverts the scopes: b touches edges 1 and 2.
  EXPECT_EQ(compiled.attach_offset[b + 1] - compiled.attach_offset[b], 2u);
  EXPECT_EQ(compiled.attach_edge[compiled.attach_offset[b]], 1u);
  EXPECT_EQ(compiled.attach_edge[compiled.attach_offset[b] + 1], 2u);

  // One connected component covering everything.
  EXPECT_EQ(compiled.component_count, 1u);
  EXPECT_EQ(compiled.comp_vars.size(), 3u);
  EXPECT_EQ(compiled.comp_factors.size(), 2u);
}

TEST(CompiledGraphTest, FlatFeaturePoolsPreserveLogPotentials) {
  Rng rng(11);
  FactorGraph g;
  g.set_weight_count(3);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(3);
  // A sparse table with irregular entry lists...
  FeatureTable sparse(6);
  sparse.Add(0, 0, 1.5);
  sparse.Add(0, 2, -0.5);
  sparse.Add(3, 1, 2.0);
  sparse.Add(5, 2, 0.25);
  ASSERT_TRUE(g.AddFactor({a, b}, std::move(sparse)).ok());
  // ...and a uniform one.
  ASSERT_TRUE(g.AddFactor({b}, FeatureTable::Uniform(1, {0.1, 0.2, 0.3}))
                  .ok());
  CompiledGraph compiled = CompiledGraph::Compile(g);

  const std::vector<double> weights = {0.7, -1.1, 0.4};
  for (FactorId f = 0; f < g.factor_count(); ++f) {
    for (size_t x = 0; x < g.AssignmentCount(f); ++x) {
      EXPECT_DOUBLE_EQ(compiled.LogPotential(f, x, weights),
                       g.factor(f).features.LogPotential(x, weights))
          << "factor " << f << " assignment " << x;
    }
  }
  // The bulk table agrees with the per-assignment accessor.
  std::vector<double> table;
  compiled.ComputeLogPotentials(weights, &table);
  ASSERT_EQ(table.size(), compiled.total_assignments());
  for (FactorId f = 0; f < g.factor_count(); ++f) {
    for (size_t x = 0; x < g.AssignmentCount(f); ++x) {
      EXPECT_DOUBLE_EQ(table[compiled.assignment_offset[f] + x],
                       compiled.LogPotential(f, x, weights));
    }
  }
  // Uniform tables stay compact: one pool value per assignment, no entries.
  EXPECT_EQ(compiled.uniform_pool.size(), 3u);
  EXPECT_EQ(compiled.entry_pool.size(), 4u);
}

TEST(CompiledGraphTest, ComponentsPartitionVariablesAndFactors) {
  Rng rng(13);
  std::vector<VariableId> vars;
  std::vector<FactorId> factors;
  FactorGraph g = MakeFragmentedGraph(&rng, &vars, &factors);
  CompiledGraph compiled = CompiledGraph::Compile(g);
  // 3 chains + square + ternary island + isolated variable = 6 components.
  EXPECT_EQ(compiled.component_count, 6u);
  EXPECT_EQ(compiled.comp_vars.size(), g.variable_count());
  EXPECT_EQ(compiled.comp_factors.size(), g.factor_count());
  // Component CSR agrees with the per-variable labels.
  for (size_t k = 0; k < compiled.component_count; ++k) {
    for (size_t i = compiled.comp_var_offset[k];
         i < compiled.comp_var_offset[k + 1]; ++i) {
      EXPECT_EQ(compiled.component_of_var[compiled.comp_vars[i]], k);
    }
    for (size_t i = compiled.comp_factor_offset[k];
         i < compiled.comp_factor_offset[k + 1]; ++i) {
      const auto& scope = g.factor(compiled.comp_factors[i]).scope;
      for (VariableId v : scope) {
        EXPECT_EQ(compiled.component_of_var[v], k);
      }
    }
  }
}

// ---------- FeatureTable::Add guard ------------------------------------------

TEST(FeatureTableTest, AddOnUniformTableIsRejected) {
  FeatureTable table = FeatureTable::Uniform(2, {0.1, 0.2});
#ifdef NDEBUG
  // Release builds ignore the invalid call instead of indexing into the
  // empty sparse storage (the old undefined behavior).
  table.Add(0, 0, 5.0);
  EXPECT_TRUE(table.is_uniform());
  EXPECT_EQ(table.assignment_count(), 2u);
  const std::vector<double> weights = {0.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(table.LogPotential(0, weights), 0.3);
#else
  EXPECT_DEATH(table.Add(0, 0, 5.0), "uniform");
#endif
}

// ---------- sequential vs parallel equivalence -------------------------------

// The acceptance bar: parallel execution must reproduce single-threaded
// marginals *exactly* — same per-component schedules, same arithmetic,
// disjoint arenas — on a multi-component graph with clamps and a staged
// factor schedule.
TEST(EngineEquivalenceTest, ParallelMarginalsBitIdenticalWithClampsAndStages) {
  Rng rng(47);
  std::vector<VariableId> vars;
  std::vector<FactorId> factors;
  FactorGraph g = MakeFragmentedGraph(&rng, &vars, &factors);
  // Clamp one variable in two different components.
  ASSERT_TRUE(g.Clamp(vars[1], 1).ok());
  ASSERT_TRUE(g.Clamp(vars[13], 0).ok());
  std::vector<double> w = {1.1};

  // A staged schedule whose groups span components (as jgraph.schedule
  // does): evens, then a few odds; the rest lands in the leftover group.
  LbpOptions options;
  options.max_iterations = 25;
  options.damping = 0.2;
  options.factor_schedule.resize(2);
  for (size_t i = 0; i < factors.size(); ++i) {
    if (i % 2 == 0) options.factor_schedule[0].push_back(factors[i]);
    if (i % 3 == 1) options.factor_schedule[1].push_back(factors[i]);
  }

  LbpOptions sequential = options;
  sequential.num_threads = 1;
  FlatLbpEngine seq_engine(&g, &w, sequential);
  LbpResult seq = seq_engine.Run();

  for (size_t threads : {2u, 4u, 16u}) {
    LbpOptions parallel = options;
    parallel.num_threads = threads;
    FlatLbpEngine par_engine(&g, &w, parallel);
    LbpResult par = par_engine.Run();
    // Exact equality, not tolerance: identical schedules over disjoint
    // arena slices must produce identical bits.
    EXPECT_EQ(par.marginals, seq.marginals) << threads << " threads";
    EXPECT_EQ(par.iterations, seq.iterations);
    EXPECT_EQ(par.converged, seq.converged);
    EXPECT_EQ(par.residual_history, seq.residual_history);
    EXPECT_EQ(par_engine.Decode(), seq_engine.Decode());
  }

  // The compatibility wrapper goes through the same engine.
  ParallelLbpResult wrapped = RunParallelLbp(g, w, options, 8);
  EXPECT_EQ(wrapped.marginals, seq.marginals);
  EXPECT_EQ(wrapped.components, seq_engine.component_count());

  // Clamped variables keep delta marginals in every mode.
  EXPECT_DOUBLE_EQ(seq.marginals[vars[1]][1], 1.0);
  EXPECT_DOUBLE_EQ(seq.marginals[vars[13]][0], 1.0);
}

TEST(EngineEquivalenceTest, ExpectedFeaturesBitIdenticalAcrossThreadCounts) {
  Rng rng(53);
  std::vector<VariableId> vars;
  std::vector<FactorId> factors;
  FactorGraph g = MakeFragmentedGraph(&rng, &vars, &factors);
  std::vector<double> w = {0.8};

  LbpOptions sequential;
  sequential.num_threads = 1;
  FlatLbpEngine seq(&g, &w, sequential);
  seq.Run();
  std::vector<double> seq_expect(1, 0.0);
  seq.AccumulateExpectedFeatures(&seq_expect);

  LbpOptions parallel;
  parallel.num_threads = 4;
  FlatLbpEngine par(&g, &w, parallel);
  par.Run();
  std::vector<double> par_expect(1, 0.0);
  par.AccumulateExpectedFeatures(&par_expect);

  EXPECT_EQ(seq_expect, par_expect);
}

// ---------- LBP vs exact through the common interface ------------------------

TEST(EngineInterfaceTest, LbpBackendsMatchExactOnTree) {
  // Small tree with a clamp: every backend of the factory must agree
  // (LBP is exact on trees).
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(3);
  VariableId c = g.AddVariable(2);
  ASSERT_TRUE(
      g.AddFactor({a, b}, FixedTable({0.3, -0.2, 0.8, 0.1, 0.6, -0.4})).ok());
  ASSERT_TRUE(
      g.AddFactor({b, c}, FixedTable({0.5, -0.1, 0.2, 0.7, -0.3, 0.4})).ok());
  ASSERT_TRUE(g.Clamp(c, 1).ok());
  std::vector<double> w = {1.4};

  auto exact = CreateInferenceEngine(InferenceBackend::kExact, &g, &w);
  LbpResult exact_result = exact->Run();
  EXPECT_TRUE(exact_result.converged);

  for (InferenceBackend backend :
       {InferenceBackend::kLbp, InferenceBackend::kParallelLbp}) {
    auto engine = CreateInferenceEngine(backend, &g, &w);
    LbpResult result = engine->Run();
    ASSERT_EQ(result.marginals.size(), exact_result.marginals.size());
    for (VariableId v = 0; v < g.variable_count(); ++v) {
      for (size_t s = 0; s < result.marginals[v].size(); ++s) {
        EXPECT_NEAR(result.marginals[v][s], exact_result.marginals[v][s],
                    1e-6)
            << "variable " << v << " state " << s;
      }
      // Interface marginal accessor agrees with the result payload.
      EXPECT_EQ(engine->Marginal(v), result.marginals[v]);
    }
    std::vector<double> lbp_expect(1, 0.0);
    std::vector<double> exact_expect(1, 0.0);
    engine->AccumulateExpectedFeatures(&lbp_expect);
    exact->AccumulateExpectedFeatures(&exact_expect);
    EXPECT_NEAR(lbp_expect[0], exact_expect[0], 1e-6);
  }
}

TEST(EngineInterfaceTest, ExactEngineFactorBeliefMatchesLbpOnTree) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  FactorId f =
      g.AddFactor({a, b}, FixedTable({0.9, -0.3, 0.2, 0.5})).ValueOrDie();
  std::vector<double> w = {1.0};

  FlatLbpEngine lbp(&g, &w);
  lbp.Run();
  ExactEngine exact(&g, &w);
  exact.Run();

  std::vector<double> lbp_belief = lbp.FactorBelief(f);
  std::vector<double> exact_belief = exact.FactorBelief(f);
  ASSERT_EQ(lbp_belief.size(), exact_belief.size());
  double total = 0.0;
  for (size_t x = 0; x < lbp_belief.size(); ++x) {
    EXPECT_NEAR(lbp_belief[x], exact_belief[x], 1e-9);
    total += exact_belief[x];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(EngineInterfaceTest, ExactEngineDecodeIsMap) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  // XOR-ish coupling where joint MAP differs from per-variable argmax:
  // P(0,1) and P(1,0) dominate jointly.
  ASSERT_TRUE(g.AddFactor({a, b}, FixedTable({0.0, 2.0, 1.9, 0.0})).ok());
  std::vector<double> w = {1.0};
  auto engine = CreateInferenceEngine(InferenceBackend::kExact, &g, &w);
  engine->Run();
  EXPECT_EQ(engine->Decode(), ExactMap(g, w));
}

// ---------- component partition + RunParallelLbp wrapper ---------------------
// (folded from the retired parallel_lbp_test.cc: disjoint-chain component
// detection and the compatibility wrapper's equality guarantees.)

// Builds a graph of `k` disjoint chains of length `len`.
FactorGraph MakeChains(size_t k, size_t len, Rng* rng,
                       std::vector<VariableId>* vars) {
  FactorGraph g;
  g.set_weight_count(1);
  for (size_t c = 0; c < k; ++c) {
    VariableId prev = 0;
    for (size_t i = 0; i < len; ++i) {
      VariableId v = g.AddVariable(2);
      vars->push_back(v);
      double bias = rng->UniformDouble(0.0, 1.0);
      (void)g.AddFactor({v}, FixedTable({0.0, bias}));
      if (i > 0) {
        double s = rng->UniformDouble(0.2, 0.8);
        (void)g.AddFactor({prev, v}, FixedTable({s, 1.0 - s, 1.0 - s, s}));
      }
      prev = v;
    }
  }
  return g;
}

TEST(FactorGraphComponentsTest, DisjointChainsAreSeparate) {
  Rng rng(5);
  std::vector<VariableId> vars;
  FactorGraph g = MakeChains(3, 4, &rng, &vars);
  std::vector<size_t> components = FactorGraphComponents(g);
  ASSERT_EQ(components.size(), 12u);
  // Within a chain: same component; across chains: different.
  EXPECT_EQ(components[0], components[3]);
  EXPECT_EQ(components[4], components[7]);
  EXPECT_NE(components[0], components[4]);
  EXPECT_NE(components[4], components[8]);
}

TEST(FactorGraphComponentsTest, IsolatedVariableIsOwnComponent) {
  FactorGraph g;
  g.set_weight_count(1);
  g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  VariableId c = g.AddVariable(2);
  (void)g.AddFactor({b, c}, FixedTable({0.1, 0.2, 0.3, 0.4}));
  std::vector<size_t> components = FactorGraphComponents(g);
  EXPECT_NE(components[0], components[1]);
  EXPECT_EQ(components[1], components[2]);
}

TEST(ParallelLbpWrapperTest, MatchesSequentialEngineOnDisjointChains) {
  Rng rng(17);
  std::vector<VariableId> vars;
  FactorGraph g = MakeChains(6, 5, &rng, &vars);
  std::vector<double> w = {1.2};

  LbpOptions options;
  options.max_iterations = 40;
  FlatLbpEngine sequential(&g, &w, options);
  LbpResult reference = sequential.Run();

  ParallelLbpResult parallel = RunParallelLbp(g, w, options, 4);
  EXPECT_EQ(parallel.components, 6u);
  EXPECT_TRUE(parallel.converged);
  ASSERT_EQ(parallel.marginals.size(), reference.marginals.size());
  // Equality is exact: per-component schedules, arithmetic and arena
  // slices are identical in both modes.
  EXPECT_EQ(parallel.marginals, reference.marginals);
}

TEST(ParallelLbpWrapperTest, SameMarginalsForAnyThreadCount) {
  Rng rng(31);
  std::vector<VariableId> vars;
  FactorGraph g = MakeChains(8, 4, &rng, &vars);
  std::vector<double> w = {0.9};
  ParallelLbpResult reference = RunParallelLbp(g, w, {}, 1);
  for (size_t threads : {2u, 3u, 8u, 16u}) {
    ParallelLbpResult other = RunParallelLbp(g, w, {}, threads);
    EXPECT_EQ(reference.marginals, other.marginals)
        << threads << " threads";
  }
}

TEST(ParallelLbpWrapperTest, HonorsClamps) {
  Rng rng(23);
  std::vector<VariableId> vars;
  FactorGraph g = MakeChains(2, 3, &rng, &vars);
  ASSERT_TRUE(g.Clamp(vars[0], 1).ok());
  std::vector<double> w = {1.0};
  ParallelLbpResult parallel = RunParallelLbp(g, w, {}, 2);
  EXPECT_NEAR(parallel.marginals[vars[0]][1], 1.0, 1e-12);
}

TEST(ParallelLbpWrapperTest, EmptyGraph) {
  FactorGraph g;
  std::vector<double> w = {1.0};
  ParallelLbpResult result = RunParallelLbp(g, w, {}, 4);
  EXPECT_EQ(result.components, 0u);
  EXPECT_TRUE(result.converged);
}

// ---------- learner over pluggable backends ----------------------------------

TEST(LearnerBackendTest, ExactBackendReproducesAnalyticGradientStep) {
  FactorGraph g;
  g.set_weight_count(2);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  FeatureTable t(4);
  t.Add(0, 0, 1.0);
  t.Add(3, 0, 1.0);
  t.Add(1, 1, 1.0);
  t.Add(2, 1, 1.0);
  ASSERT_TRUE(g.AddFactor({a, b}, std::move(t)).ok());

  std::vector<double> w0 = {0.0, 0.0};
  ASSERT_TRUE(g.Clamp(a, 1).ok());
  ExactResult clamped = ExactInference(g, w0);
  g.UnclampAll();
  ExactResult free = ExactInference(g, w0);

  LearnerOptions options;
  options.learning_rate = 0.1;
  options.iterations = 1;
  options.backend = InferenceBackend::kExact;
  FactorGraphLearner learner(options);
  LearnerResult result = learner.Learn(&g, {{a, 1}}, w0);
  for (size_t k = 0; k < 2; ++k) {
    const double expected_step =
        0.1 * (clamped.expected_features[k] - free.expected_features[k]);
    EXPECT_NEAR(result.weights[k], expected_step, 1e-12);
  }
}

}  // namespace
}  // namespace jocl
