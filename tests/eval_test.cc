#include <gtest/gtest.h>

#include "eval/clustering_metrics.h"
#include "eval/linking_metrics.h"
#include "eval/table_printer.h"
#include "util/rng.h"

namespace jocl {
namespace {

// ---------- clustering metrics ---------------------------------------------------

TEST(ClusteringMetricsTest, PerfectClusteringScoresOne) {
  std::vector<size_t> gold = {0, 0, 1, 1, 2};
  ClusteringScore score = EvaluateClustering(gold, gold);
  EXPECT_DOUBLE_EQ(score.macro.f1, 1.0);
  EXPECT_DOUBLE_EQ(score.micro.f1, 1.0);
  EXPECT_DOUBLE_EQ(score.pairwise.f1, 1.0);
  EXPECT_DOUBLE_EQ(score.average_f1, 1.0);
}

TEST(ClusteringMetricsTest, LabelPermutationInvariance) {
  std::vector<size_t> gold = {0, 0, 1, 1, 2};
  std::vector<size_t> renamed = {7, 7, 3, 3, 9};
  ClusteringScore score = EvaluateClustering(renamed, gold);
  EXPECT_DOUBLE_EQ(score.average_f1, 1.0);
}

TEST(ClusteringMetricsTest, AllSingletonsAgainstPairedGold) {
  std::vector<size_t> predicted = {0, 1, 2, 3};
  std::vector<size_t> gold = {0, 0, 1, 1};
  ClusteringScore score = EvaluateClustering(predicted, gold);
  // Every predicted cluster is pure -> macro precision 1; no gold cluster
  // is inside one predicted cluster -> macro recall 0.
  EXPECT_DOUBLE_EQ(score.macro.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.macro.recall, 0.0);
  EXPECT_DOUBLE_EQ(score.macro.f1, 0.0);
  // Purity is 1 (each singleton maps somewhere); gold-side purity 0.5.
  EXPECT_DOUBLE_EQ(score.micro.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.micro.recall, 0.5);
  // No predicted pairs -> pairwise precision 1 by convention; recall 0.
  EXPECT_DOUBLE_EQ(score.pairwise.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.pairwise.recall, 0.0);
}

TEST(ClusteringMetricsTest, OneBigClusterAgainstPairedGold) {
  std::vector<size_t> predicted = {0, 0, 0, 0};
  std::vector<size_t> gold = {0, 0, 1, 1};
  ClusteringScore score = EvaluateClustering(predicted, gold);
  EXPECT_DOUBLE_EQ(score.macro.precision, 0.0);
  EXPECT_DOUBLE_EQ(score.macro.recall, 1.0);
  EXPECT_DOUBLE_EQ(score.micro.precision, 0.5);
  EXPECT_DOUBLE_EQ(score.micro.recall, 1.0);
  // Predicted pairs: 6; hits: 2 (the two gold pairs). Gold pairs: 2, all
  // predicted together.
  EXPECT_NEAR(score.pairwise.precision, 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(score.pairwise.recall, 1.0);
}

TEST(ClusteringMetricsTest, HandComputedMixedCase) {
  // predicted: {a,b,c} {d,e} ; gold: {a,b} {c,d,e}
  std::vector<size_t> predicted = {0, 0, 0, 1, 1};
  std::vector<size_t> gold = {0, 0, 1, 1, 1};
  ClusteringScore score = EvaluateClustering(predicted, gold);
  // Macro: predicted cluster {d,e} is pure (both gold 1); {a,b,c} is not.
  EXPECT_DOUBLE_EQ(score.macro.precision, 0.5);
  // Gold cluster {a,b} is inside predicted 0 -> pure; {c,d,e} split.
  EXPECT_DOUBLE_EQ(score.macro.recall, 0.5);
  // Micro precision: (2 + 2) / 5.
  EXPECT_NEAR(score.micro.precision, 0.8, 1e-12);
  EXPECT_NEAR(score.micro.recall, 0.8, 1e-12);
  // Pairwise: predicted pairs = 3 + 1 = 4, hits = (ab) + (de) = 2.
  EXPECT_NEAR(score.pairwise.precision, 0.5, 1e-12);
  // Gold pairs = 1 + 3 = 4, hits = (ab) + (de) = 2.
  EXPECT_NEAR(score.pairwise.recall, 0.5, 1e-12);
}

TEST(ClusteringMetricsTest, EmptyInput) {
  ClusteringScore score = EvaluateClustering({}, {});
  EXPECT_DOUBLE_EQ(score.macro.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.micro.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.pairwise.precision, 1.0);
}

TEST(ClusteringMetricsTest, SubsetEvaluationIgnoresOutside) {
  std::vector<size_t> predicted = {0, 0, 5, 6};
  std::vector<size_t> gold = {1, 1, 9, 9};
  // Only elements 0 and 1 are evaluated: predicted together, gold together.
  ClusteringScore score =
      EvaluateClusteringSubset(predicted, gold, {0, 1});
  EXPECT_DOUBLE_EQ(score.average_f1, 1.0);
}

class MetricsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsProperty, ScoresAlwaysInUnitRangeAndF1Consistent) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 2 + rng.UniformUint64(30);
    std::vector<size_t> predicted(n);
    std::vector<size_t> gold(n);
    for (size_t i = 0; i < n; ++i) {
      predicted[i] = rng.UniformUint64(5);
      gold[i] = rng.UniformUint64(4);
    }
    ClusteringScore s = EvaluateClustering(predicted, gold);
    for (const PrecisionRecallF1* m : {&s.macro, &s.micro, &s.pairwise}) {
      EXPECT_GE(m->precision, 0.0);
      EXPECT_LE(m->precision, 1.0);
      EXPECT_GE(m->recall, 0.0);
      EXPECT_LE(m->recall, 1.0);
      EXPECT_NEAR(m->f1, F1(m->precision, m->recall), 1e-12);
    }
    EXPECT_NEAR(s.average_f1,
                (s.macro.f1 + s.micro.f1 + s.pairwise.f1) / 3.0, 1e-12);
    // Swapping predicted and gold swaps precision and recall.
    ClusteringScore r = EvaluateClustering(gold, predicted);
    EXPECT_NEAR(s.macro.precision, r.macro.recall, 1e-12);
    EXPECT_NEAR(s.pairwise.precision, r.pairwise.recall, 1e-12);
    EXPECT_NEAR(s.micro.precision, r.micro.recall, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------- linking metrics -----------------------------------------------------

TEST(LinkingMetricsTest, AccuracyBasics) {
  std::vector<int64_t> gold = {1, 2, kNilId, 4};
  EXPECT_DOUBLE_EQ(LinkingAccuracy(gold, gold), 1.0);
  std::vector<int64_t> predicted = {1, 3, kNilId, kNilId};
  EXPECT_DOUBLE_EQ(LinkingAccuracy(predicted, gold), 0.5);
}

TEST(LinkingMetricsTest, SubsetAccuracy) {
  std::vector<int64_t> gold = {1, 2, 3, 4};
  std::vector<int64_t> predicted = {1, 9, 3, 9};
  EXPECT_DOUBLE_EQ(LinkingAccuracySubset(predicted, gold, {0, 2}), 1.0);
  EXPECT_DOUBLE_EQ(LinkingAccuracySubset(predicted, gold, {1, 3}), 0.0);
  EXPECT_DOUBLE_EQ(LinkingAccuracySubset(predicted, gold, {}), 0.0);
}

TEST(LinkingMetricsTest, BreakdownCategories) {
  std::vector<int64_t> gold = {1, 2, kNilId, kNilId, 5};
  std::vector<int64_t> predicted = {1, 7, kNilId, 9, kNilId};
  LinkingBreakdown b = EvaluateLinking(predicted, gold);
  EXPECT_EQ(b.total, 5u);
  EXPECT_EQ(b.correct, 2u);
  EXPECT_EQ(b.correct_nil, 1u);
  EXPECT_EQ(b.wrong_entity, 1u);   // 7 vs 2
  EXPECT_EQ(b.missed_nil, 1u);     // 9 vs NIL
  EXPECT_EQ(b.spurious_nil, 1u);   // NIL vs 5
  EXPECT_DOUBLE_EQ(b.accuracy, 0.4);
}

// ---------- table printer --------------------------------------------------------

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"Method", "F1"});
  t.AddRow({"CESI", "0.761"});
  t.AddRow({"JOCL", "0.818"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| Method |"), std::string::npos);
  EXPECT_NE(out.find("| CESI   |"), std::string::npos);
  EXPECT_NE(out.find("0.818"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRowsAndFormatsNumbers) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"x"});
  t.AddSeparator();
  t.AddRow({"y", TablePrinter::Num(0.123456, 3)});
  std::string out = t.Render();
  EXPECT_NE(out.find("0.123"), std::string::npos);
  EXPECT_EQ(TablePrinter::Num(1.0, 2), "1.00");
}

}  // namespace
}  // namespace jocl
