#include <gtest/gtest.h>

#include <cstdio>

#include "embedding/corpus.h"
#include "embedding/embedding_io.h"
#include "embedding/embedding_table.h"
#include "embedding/word2vec.h"

namespace jocl {
namespace {

// ---------- EmbeddingTable -----------------------------------------------------

TEST(EmbeddingTableTest, SetAndLookup) {
  EmbeddingTable table(3);
  table.Set("foo", {1.0f, 0.0f, 0.0f});
  EXPECT_TRUE(table.Contains("foo"));
  EXPECT_FALSE(table.Contains("bar"));
  ASSERT_NE(table.Vector("foo"), nullptr);
  EXPECT_FLOAT_EQ(table.Vector("foo")[0], 1.0f);
  EXPECT_EQ(table.Vector("bar"), nullptr);
  // Overwrite keeps size stable.
  table.Set("foo", {0.0f, 1.0f, 0.0f});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FLOAT_EQ(table.Vector("foo")[1], 1.0f);
}

TEST(EmbeddingTableTest, PhraseVectorAveragesKnownTokens) {
  EmbeddingTable table(2);
  table.Set("university", {1.0f, 0.0f});
  table.Set("maryland", {0.0f, 1.0f});
  auto v = table.PhraseVector("University of Maryland");  // "of" unknown
  EXPECT_FLOAT_EQ(v[0], 0.5f);
  EXPECT_FLOAT_EQ(v[1], 0.5f);
  auto zero = table.PhraseVector("completely unknown");
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
  EXPECT_FLOAT_EQ(zero[1], 0.0f);
}

TEST(EmbeddingTableTest, CosineProperties) {
  std::vector<float> x = {1.0f, 0.0f};
  std::vector<float> y = {0.0f, 2.0f};
  std::vector<float> z = {2.0f, 0.0f};
  EXPECT_NEAR(EmbeddingTable::Cosine(x, y), 0.0, 1e-9);
  EXPECT_NEAR(EmbeddingTable::Cosine(x, z), 1.0, 1e-9);
  EXPECT_NEAR(EmbeddingTable::Cosine(x, x), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(EmbeddingTable::Cosine({0.0f, 0.0f}, x), 0.0);
  EXPECT_DOUBLE_EQ(EmbeddingTable::Cosine({1.0f}, x), 0.0);  // dim mismatch
}

TEST(EmbeddingTableTest, PhraseSimilarityFallbackAndClamp) {
  EmbeddingTable table(2);
  table.Set("a", {1.0f, 0.0f});
  table.Set("b", {-1.0f, 0.0f});
  EXPECT_DOUBLE_EQ(table.PhraseSimilarity("unknown", "a", 0.5), 0.5);
  // Opposite vectors: cosine -1 clamps to 0.
  EXPECT_DOUBLE_EQ(table.PhraseSimilarity("a", "b"), 0.0);
  EXPECT_NEAR(table.PhraseSimilarity("a", "a"), 1.0, 1e-9);
}

// ---------- corpus -------------------------------------------------------------

TEST(CorpusTest, TriplesBecomeSentences) {
  OpenKb okb;
  ASSERT_TRUE(okb.AddTriple("University of Maryland", "be a member of",
                            "Universitas 21")
                  .ok());
  auto corpus = BuildTripleCorpus(okb);
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus[0],
            (std::vector<std::string>{"university", "of", "maryland", "be",
                                      "a", "member", "of", "universitas",
                                      "21"}));
  AppendSentences({{"extra", "sentence"}}, &corpus);
  EXPECT_EQ(corpus.size(), 2u);
}

// ---------- Word2Vec -----------------------------------------------------------

TEST(Word2VecTest, RejectsEmptyCorpus) {
  Word2Vec trainer;
  EXPECT_FALSE(trainer.Train({}).ok());
}

TEST(Word2VecTest, DeterministicForFixedSeed) {
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back({"alpha", "beta", "gamma"});
    corpus.push_back({"alpha", "beta", "delta"});
  }
  Word2VecOptions options;
  options.dim = 8;
  options.epochs = 2;
  options.seed = 5;
  auto first = Word2Vec(options).Train(corpus);
  auto second = Word2Vec(options).Train(corpus);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const float* va = first.ValueOrDie().Vector("alpha");
  const float* vb = second.ValueOrDie().Vector("alpha");
  ASSERT_NE(va, nullptr);
  ASSERT_NE(vb, nullptr);
  for (size_t d = 0; d < 8; ++d) EXPECT_FLOAT_EQ(va[d], vb[d]);
}

TEST(Word2VecTest, MinCountFiltersRareWords) {
  std::vector<std::vector<std::string>> corpus = {
      {"common", "common", "rare"}, {"common", "other"}};
  Word2VecOptions options;
  options.min_count = 2;
  options.dim = 4;
  auto table = Word2Vec(options).Train(corpus);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table.ValueOrDie().Contains("common"));
  EXPECT_FALSE(table.ValueOrDie().Contains("rare"));
}

// ---------- embedding IO -------------------------------------------------------

TEST(EmbeddingIoTest, TextRoundTrip) {
  EmbeddingTable table(3);
  table.Set("alpha", {1.0f, -0.5f, 0.25f});
  table.Set("beta", {0.0f, 2.0f, -1.0f});
  std::string path = ::testing::TempDir() + "/jocl_embeddings.txt";
  ASSERT_TRUE(SaveEmbeddingsText(table, path).ok());
  auto loaded = LoadEmbeddingsText(path);
  ASSERT_TRUE(loaded.ok());
  const EmbeddingTable& t = loaded.ValueOrDie();
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dim(), 3u);
  ASSERT_NE(t.Vector("alpha"), nullptr);
  EXPECT_FLOAT_EQ(t.Vector("alpha")[1], -0.5f);
  EXPECT_FLOAT_EQ(t.Vector("beta")[2], -1.0f);
  std::remove(path.c_str());
}

TEST(EmbeddingIoTest, WordsSnapshotSorted) {
  EmbeddingTable table(1);
  table.Set("zeta", {1.0f});
  table.Set("alpha", {2.0f});
  EXPECT_EQ(table.Words(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(EmbeddingIoTest, LoadRejectsMissingAndMalformed) {
  EXPECT_FALSE(LoadEmbeddingsText("/nonexistent/emb.txt").ok());
  std::string path = ::testing::TempDir() + "/jocl_bad_emb.txt";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("2 3\nword 1.0 2.0\n", f);  // truncated vector
  fclose(f);
  EXPECT_FALSE(LoadEmbeddingsText(path).ok());
  std::remove(path.c_str());
}

// The core distributional property the Sim_emb signal relies on: words
// sharing contexts end up closer than words that never co-occur.
TEST(Word2VecTest, SharedContextWordsAreCloser) {
  std::vector<std::vector<std::string>> corpus;
  // "umd" and "maryland" both occur with {college, campus, research};
  // "banana" occurs with {fruit, yellow, sweet}.
  for (int i = 0; i < 200; ++i) {
    corpus.push_back({"umd", "college", "campus", "research"});
    corpus.push_back({"maryland", "college", "campus", "research"});
    corpus.push_back({"banana", "fruit", "yellow", "sweet"});
  }
  Word2VecOptions options;
  options.dim = 16;
  options.epochs = 8;
  options.subsample = 0.0;  // tiny vocabulary; keep every token
  options.seed = 11;
  auto result = Word2Vec(options).Train(corpus);
  ASSERT_TRUE(result.ok());
  const EmbeddingTable& table = result.ValueOrDie();
  double same_context = table.PhraseSimilarity("umd", "maryland");
  double different_context = table.PhraseSimilarity("umd", "banana");
  EXPECT_GT(same_context, different_context);
  EXPECT_GT(same_context, 0.5);
}

}  // namespace
}  // namespace jocl
