#include <gtest/gtest.h>

#include <unordered_map>

#include "baselines/entity_linking.h"
#include "baselines/np_canonicalization.h"
#include "baselines/np_common.h"
#include "baselines/relation_linking.h"
#include "baselines/rp_canonicalization.h"
#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "eval/linking_metrics.h"

namespace jocl {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.num_entities = 50;
    options.num_relations = 8;
    options.num_triples = 250;
    options.seed = 33;
    dataset_ = new Dataset(GenerateDataset(options, "baselines-test")
                               .MoveValueOrDie());
    SignalOptions signal_options;
    signal_options.embedding_epochs = 2;
    signals_ = new SignalBundle(
        BuildSignals(*dataset_, signal_options).MoveValueOrDie());
    subset_ = new std::vector<size_t>(dataset_->test_triples);
  }
  static void TearDownTestSuite() {
    delete subset_;
    delete signals_;
    delete dataset_;
  }

  static std::vector<size_t> GoldNpSubset() {
    std::vector<size_t> gold;
    for (size_t t : *subset_) {
      gold.push_back(static_cast<size_t>(dataset_->gold_np_group[t * 2]));
      gold.push_back(static_cast<size_t>(dataset_->gold_np_group[t * 2 + 1]));
    }
    return gold;
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
  static std::vector<size_t>* subset_;
};

Dataset* BaselinesTest::dataset_ = nullptr;
SignalBundle* BaselinesTest::signals_ = nullptr;
std::vector<size_t>* BaselinesTest::subset_ = nullptr;

// ---------- surface views -----------------------------------------------------

TEST_F(BaselinesTest, NpSurfaceViewCoversMentions) {
  NpSurfaceView view = BuildNpSurfaceView(*dataset_, *subset_);
  EXPECT_EQ(view.mention_surface.size(), subset_->size() * 2);
  for (size_t m : view.mention_surface) {
    EXPECT_LT(m, view.surfaces.size());
  }
  // Round trip: mention surface string matches the triple slot.
  for (size_t local = 0; local < view.triples.size(); ++local) {
    const OieTriple& t = dataset_->okb.triple(view.triples[local]);
    EXPECT_EQ(view.surfaces[view.mention_surface[local * 2]], t.subject);
    EXPECT_EQ(view.surfaces[view.mention_surface[local * 2 + 1]], t.object);
  }
}

TEST_F(BaselinesTest, SurfaceToMentionLabelsExpands) {
  std::vector<size_t> mention_surface = {0, 1, 1, 2};
  std::vector<size_t> surface_labels = {5, 5, 7};
  EXPECT_EQ(SurfaceToMentionLabels(mention_surface, surface_labels),
            (std::vector<size_t>{5, 5, 5, 7}));
}

// ---------- NP canonicalization baselines -----------------------------------------

TEST_F(BaselinesTest, AllNpBaselinesProduceAlignedLabels) {
  const size_t expected = subset_->size() * 2;
  EXPECT_EQ(MorphNormCanonicalize(*dataset_, *subset_).size(), expected);
  EXPECT_EQ(WikidataIntegratorCanonicalize(*dataset_, *subset_).size(),
            expected);
  EXPECT_EQ(TextSimilarityCanonicalize(*dataset_, *subset_).size(), expected);
  EXPECT_EQ(IdfTokenOverlapCanonicalize(*dataset_, *signals_, *subset_).size(),
            expected);
  EXPECT_EQ(AttributeOverlapCanonicalize(*dataset_, *subset_).size(),
            expected);
  EXPECT_EQ(CesiCanonicalize(*dataset_, *signals_, *subset_).size(), expected);
  EXPECT_EQ(SistCanonicalize(*dataset_, *signals_, *subset_).size(), expected);
}

TEST(MorphNormBehaviorTest, MergesMorphologicalVariantsOnly) {
  Dataset ds;
  ASSERT_TRUE(ds.okb.AddTriple("the universities", "r", "UMD").ok());
  ASSERT_TRUE(ds.okb.AddTriple("university", "r", "UMD").ok());
  ds.gold_np_group = {0, 1, 0, 1};
  ds.gold_rp_group = {0, 0};
  ds.gold_subject_entity = {0, 0};
  ds.gold_relation = {0, 0};
  ds.gold_object_entity = {1, 1};
  auto labels = MorphNormCanonicalize(ds, {0, 1});
  EXPECT_EQ(labels[0], labels[2]);  // "the universities" ~ "university"
  EXPECT_EQ(labels[1], labels[3]);  // identical surface
  EXPECT_NE(labels[0], labels[1]);  // unrelated strings stay apart
}

TEST_F(BaselinesTest, BetterBaselinesBeatMorphNorm) {
  std::vector<size_t> gold = GoldNpSubset();
  double morph =
      EvaluateClustering(MorphNormCanonicalize(*dataset_, *subset_), gold)
          .average_f1;
  double cesi = EvaluateClustering(
                    CesiCanonicalize(*dataset_, *signals_, *subset_), gold)
                    .average_f1;
  double sist = EvaluateClustering(
                    SistCanonicalize(*dataset_, *signals_, *subset_), gold)
                    .average_f1;
  EXPECT_GT(cesi, morph);
  EXPECT_GT(sist, morph);
}

// ---------- RP canonicalization baselines --------------------------------------------

TEST_F(BaselinesTest, RpBaselinesProduceAlignedLabels) {
  EXPECT_EQ(AmieCanonicalize(*dataset_, *signals_, *subset_).size(),
            subset_->size());
  EXPECT_EQ(PattyCanonicalize(*dataset_, *subset_).size(), subset_->size());
  EXPECT_EQ(SistRpCanonicalize(*dataset_, *signals_, *subset_).size(),
            subset_->size());
}

TEST_F(BaselinesTest, AmieHasLowCoverageAsInPaper) {
  // AMIE only merges RPs passing support thresholds; most surfaces stay
  // singletons (paper §4.2.2).
  auto labels = AmieCanonicalize(*dataset_, *signals_, *subset_);
  std::unordered_map<size_t, size_t> sizes;
  for (size_t label : labels) ++sizes[label];
  size_t singleton_mentions = 0;
  for (size_t m = 0; m < labels.size(); ++m) {
    // A label used by exactly one distinct surface but many mentions is not
    // a merge; approximate by counting labels of size 1.
    if (sizes[labels[m]] == 1) ++singleton_mentions;
  }
  // Some mentions should remain unmerged singletons.
  EXPECT_GT(singleton_mentions, 0u);
}

// ---------- entity linking baselines ---------------------------------------------------

TEST_F(BaselinesTest, EntityLinkersProduceAlignedLinks) {
  const size_t expected = subset_->size() * 2;
  EXPECT_EQ(SpotlightLink(*dataset_, *signals_, *subset_).size(), expected);
  EXPECT_EQ(TagMeLink(*dataset_, *signals_, *subset_).size(), expected);
  EXPECT_EQ(FalconLink(*dataset_, *signals_, *subset_).size(), expected);
  EXPECT_EQ(EarlLink(*dataset_, *signals_, *subset_).size(), expected);
  EXPECT_EQ(KbpearlLink(*dataset_, *signals_, *subset_).size(), expected);
}

TEST_F(BaselinesTest, SpotlightBeatsRandomGuessing) {
  std::vector<int64_t> gold;
  for (size_t t : *subset_) {
    gold.push_back(dataset_->gold_subject_entity[t]);
    gold.push_back(dataset_->gold_object_entity[t]);
  }
  auto links = SpotlightLink(*dataset_, *signals_, *subset_);
  double accuracy = LinkingAccuracy(links, gold);
  // Popularity priors on a ReVerb45K-like set should do far better than
  // 1/|E| random chance.
  EXPECT_GT(accuracy, 0.2);
}

TEST(SpotlightBehaviorTest, LinksUnambiguousAlias) {
  Dataset ds;
  EntityId umd = ds.ckb.AddEntity("university of maryland");
  ASSERT_TRUE(ds.ckb.AddAnchor("umd", umd, 50).ok());
  ASSERT_TRUE(ds.okb.AddTriple("UMD", "r", "UMD").ok());
  SignalBundle signals;
  signals.ppdb = &ds.ppdb;
  auto links = SpotlightLink(ds, signals, {0});
  EXPECT_EQ(links[0], umd);
}

TEST(TagMeBehaviorTest, PrunesLowCommonnessCandidates) {
  Dataset ds;
  EntityId a = ds.ckb.AddEntity("alpha place");
  EntityId b = ds.ckb.AddEntity("beta place");
  // "place" is highly ambiguous: 50/50 split stays below epsilon = 0.55.
  ASSERT_TRUE(ds.ckb.AddAnchor("place", a, 10).ok());
  ASSERT_TRUE(ds.ckb.AddAnchor("place", b, 10).ok());
  ASSERT_TRUE(ds.okb.AddTriple("place", "r", "place").ok());
  SignalBundle signals;
  signals.ppdb = &ds.ppdb;
  auto links = TagMeLink(ds, signals, {0});
  EXPECT_EQ(links[0], kNilId);
}

TEST(FalconBehaviorTest, ExactNameMatchWins) {
  Dataset ds;
  EntityId umd = ds.ckb.AddEntity("university of maryland");
  ds.ckb.AddEntity("university of virginia");
  ASSERT_TRUE(
      ds.okb.AddTriple("University of Maryland", "r", "x y z").ok());
  SignalBundle signals;
  signals.ppdb = &ds.ppdb;
  auto links = FalconLink(ds, signals, {0});
  EXPECT_EQ(links[0], umd);
  EXPECT_EQ(links[1], kNilId);  // "x y z" matches nothing
}

// ---------- crafted per-baseline behaviors ------------------------------------------

// Shared scaffolding for a hand-built 2-triple data set.
Dataset TwoTripleDataset(const char* s0, const char* p0, const char* o0,
                         const char* s1, const char* p1, const char* o1) {
  Dataset ds;
  EXPECT_TRUE(ds.okb.AddTriple(s0, p0, o0).ok());
  EXPECT_TRUE(ds.okb.AddTriple(s1, p1, o1).ok());
  for (size_t t = 0; t < 2; ++t) {
    ds.gold_subject_entity.push_back(kNilId);
    ds.gold_relation.push_back(kNilId);
    ds.gold_object_entity.push_back(kNilId);
    ds.gold_np_group.push_back(static_cast<int64_t>(t * 2));
    ds.gold_np_group.push_back(static_cast<int64_t>(t * 2 + 1));
    ds.gold_rp_group.push_back(static_cast<int64_t>(t));
  }
  return ds;
}

TEST(TextSimilarityBehaviorTest, MergesTypoVariants) {
  Dataset ds = TwoTripleDataset("mississippi", "r", "x",
                                "missisippi", "r", "y");
  auto labels = TextSimilarityCanonicalize(ds, {0, 1});
  EXPECT_EQ(labels[0], labels[2]);  // one dropped char: Jaro-Winkler high
}

TEST(TextSimilarityBehaviorTest, KeepsDissimilarApart) {
  Dataset ds = TwoTripleDataset("alpha", "r", "x", "omega", "r", "y");
  auto labels = TextSimilarityCanonicalize(ds, {0, 1});
  EXPECT_NE(labels[0], labels[2]);
}

TEST(AttributeOverlapBehaviorTest, MergesSharedAttributeProfiles) {
  // Two subjects with identical (normalized) relation profiles merge;
  // a third with a disjoint profile stays out.
  Dataset ds;
  ASSERT_TRUE(ds.okb.AddTriple("aaa", "founded by", "x").ok());
  ASSERT_TRUE(ds.okb.AddTriple("bbb", "was founded by", "y").ok());
  ASSERT_TRUE(ds.okb.AddTriple("ccc", "lives in", "z").ok());
  for (size_t t = 0; t < 3; ++t) {
    ds.gold_subject_entity.push_back(kNilId);
    ds.gold_relation.push_back(kNilId);
    ds.gold_object_entity.push_back(kNilId);
    ds.gold_np_group.push_back(static_cast<int64_t>(t * 2));
    ds.gold_np_group.push_back(static_cast<int64_t>(t * 2 + 1));
    ds.gold_rp_group.push_back(static_cast<int64_t>(t));
  }
  auto labels = AttributeOverlapCanonicalize(ds, {0, 1, 2});
  EXPECT_EQ(labels[0], labels[2]);  // aaa ~ bbb (same normalized RP)
  EXPECT_NE(labels[0], labels[4]);  // ccc apart
}

TEST(CesiBehaviorTest, PpdbShortCircuitMergesTokenDisjointAliases) {
  Dataset ds = TwoTripleDataset("international business machines", "r", "x",
                                "big blue", "r", "y");
  ds.ppdb.AddCluster({"international business machines", "big blue"});
  SignalBundle sig;
  sig.ppdb = &ds.ppdb;
  auto labels = CesiCanonicalize(ds, sig, {0, 1});
  EXPECT_EQ(labels[0], labels[2]);
}

TEST(EarlBehaviorTest, RelationSpecificDensityDisambiguates) {
  // Candidates: "springfield" could be city A or city B. Only A is
  // connected to "illinois" via the triple's relation, so EARL must pick A.
  Dataset ds = TwoTripleDataset("springfield city", "located in", "illinois",
                                "springfield city", "located in",
                                "illinois");
  EntityId a = ds.ckb.AddEntity("springfield city");
  EntityId b = ds.ckb.AddEntity("springfield city theater");
  EntityId il = ds.ckb.AddEntity("illinois");
  RelationId located = ds.ckb.AddRelation("located_city");
  ASSERT_TRUE(ds.ckb.AddRelationAlias(located, "located in").ok());
  ASSERT_TRUE(ds.ckb.AddFact(a, located, il).ok());
  (void)b;
  SignalBundle sig;
  sig.ppdb = &ds.ppdb;
  auto links = EarlLink(ds, sig, {0, 1});
  EXPECT_EQ(links[0], a);
  EXPECT_EQ(links[1], il);
}

TEST(KbpearlBehaviorTest, AbstainsWithoutEvidence) {
  // No anchors, no facts: every candidate score stays below the abstain
  // threshold and KBPearl links nothing.
  Dataset ds = TwoTripleDataset("zzz qqq", "rrr sss", "www vvv",
                                "zzz qqq", "rrr sss", "www vvv");
  ds.ckb.AddEntity("totally unrelated");
  SignalBundle sig;
  sig.ppdb = &ds.ppdb;
  auto links = KbpearlLink(ds, sig, {0, 1});
  for (int64_t link : links) EXPECT_EQ(link, kNilId);
}

TEST(FalconRelationBehaviorTest, MorphNormalizedAliasMatchWins) {
  Dataset ds = TwoTripleDataset("a", "was founded by", "b",
                                "c", "was founded by", "d");
  RelationId founded = ds.ckb.AddRelation("founder_company");
  ASSERT_TRUE(ds.ckb.AddRelationAlias(founded, "founded by").ok());
  ds.ckb.AddRelation("owner_company");
  SignalBundle sig;
  sig.ppdb = &ds.ppdb;
  auto links = FalconRelationLink(ds, sig, {0, 1});
  // "was founded by" morph-normalizes to the alias "founded by".
  EXPECT_EQ(links[0], founded);
  EXPECT_EQ(links[1], founded);
}

TEST(PattyBehaviorTest, SharedArgumentPairsMerge) {
  // Two RPs over the same (subject, object) pairs merge once the shared
  // support reaches the threshold.
  Dataset ds;
  const char* pairs[][2] = {{"p1", "q1"}, {"p2", "q2"}};
  for (const auto& pair : pairs) {
    ASSERT_TRUE(ds.okb.AddTriple(pair[0], "acquired", pair[1]).ok());
    ASSERT_TRUE(ds.okb.AddTriple(pair[0], "bought out", pair[1]).ok());
  }
  for (size_t t = 0; t < 4; ++t) {
    ds.gold_subject_entity.push_back(kNilId);
    ds.gold_relation.push_back(kNilId);
    ds.gold_object_entity.push_back(kNilId);
    ds.gold_np_group.push_back(static_cast<int64_t>(t * 2));
    ds.gold_np_group.push_back(static_cast<int64_t>(t * 2 + 1));
    ds.gold_rp_group.push_back(0);
  }
  auto labels = PattyCanonicalize(ds, {0, 1, 2, 3}, /*min_shared_pairs=*/2);
  // Mentions 0/2 use "acquired", 1/3 use "bought out" — all one cluster.
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[2], labels[3]);
}

// ---------- relation linking baselines ----------------------------------------------------

TEST_F(BaselinesTest, RelationLinkersProduceAlignedLinks) {
  EXPECT_EQ(FalconRelationLink(*dataset_, *signals_, *subset_).size(),
            subset_->size());
  EXPECT_EQ(EarlRelationLink(*dataset_, *signals_, *subset_).size(),
            subset_->size());
  EXPECT_EQ(KbpearlRelationLink(*dataset_, *signals_, *subset_).size(),
            subset_->size());
  EXPECT_EQ(RematchRelationLink(*dataset_, *signals_, *subset_).size(),
            subset_->size());
}

TEST(RematchBehaviorTest, SurfaceMatchFindsAliasedRelation) {
  Dataset ds;
  RelationId member = ds.ckb.AddRelation("member_club");
  ASSERT_TRUE(ds.ckb.AddRelationAlias(member, "be a member of").ok());
  ds.ckb.AddRelation("owner_company");
  ASSERT_TRUE(ds.okb.AddTriple("x", "be a member of", "y").ok());
  SignalBundle signals;
  signals.ppdb = &ds.ppdb;
  auto links = RematchRelationLink(ds, signals, {0});
  EXPECT_EQ(links[0], member);
}

}  // namespace
}  // namespace jocl
