#include <gtest/gtest.h>

#include <cstdio>

#include "kb/curated_kb.h"
#include "kb/kb_io.h"
#include "kb/open_kb.h"

namespace jocl {
namespace {

CuratedKb MakeSmallKb() {
  CuratedKb kb;
  EntityId umd = kb.AddEntity("University of Maryland");
  EntityId md = kb.AddEntity("Maryland");
  EntityId u21 = kb.AddEntity("Universitas 21");
  EntityId uva = kb.AddEntity("University of Virginia");
  RelationId located = kb.AddRelation("location.contained_by");
  RelationId member = kb.AddRelation("organizations_founded");
  EXPECT_TRUE(kb.AddRelationAlias(member, "member of").ok());
  EXPECT_TRUE(kb.AddFact(umd, located, md).ok());
  EXPECT_TRUE(kb.AddFact(umd, member, u21).ok());
  EXPECT_TRUE(kb.AddFact(uva, member, u21).ok());
  EXPECT_TRUE(kb.AddAnchor("university of maryland", umd, 90).ok());
  EXPECT_TRUE(kb.AddAnchor("umd", umd, 40).ok());
  EXPECT_TRUE(kb.AddAnchor("maryland", md, 70).ok());
  EXPECT_TRUE(kb.AddAnchor("maryland", umd, 30).ok());  // ambiguous
  EXPECT_TRUE(kb.AddAnchor("u21", u21, 10).ok());
  EXPECT_TRUE(kb.AddAnchor("universitas 21", u21, 25).ok());
  return kb;
}

// ---------- CuratedKb ---------------------------------------------------------

TEST(CuratedKbTest, AddAndLookupEntities) {
  CuratedKb kb;
  EntityId a = kb.AddEntity("Alpha Corp");
  EXPECT_EQ(kb.entity(a).name, "alpha corp");  // canonicalized lower case
  EXPECT_EQ(kb.AddEntity("alpha corp"), a);    // idempotent by name
  EXPECT_EQ(kb.FindEntityByName("ALPHA CORP"), a);
  EXPECT_EQ(kb.FindEntityByName("beta"), kNilId);
  EXPECT_EQ(kb.entity_count(), 1u);
}

TEST(CuratedKbTest, FactValidationAndIdempotence) {
  CuratedKb kb;
  EntityId a = kb.AddEntity("a");
  EntityId b = kb.AddEntity("b");
  RelationId r = kb.AddRelation("rel");
  EXPECT_FALSE(kb.AddFact(a, r, 99).ok());
  EXPECT_FALSE(kb.AddFact(99, r, b).ok());
  EXPECT_FALSE(kb.AddFact(a, 99, b).ok());
  EXPECT_TRUE(kb.AddFact(a, r, b).ok());
  EXPECT_TRUE(kb.AddFact(a, r, b).ok());  // duplicate ok
  EXPECT_EQ(kb.fact_count(), 1u);
  EXPECT_TRUE(kb.HasFact(a, r, b));
  EXPECT_FALSE(kb.HasFact(b, r, a));  // directed
}

TEST(CuratedKbTest, FactsInvolving) {
  CuratedKb kb = MakeSmallKb();
  EntityId umd = kb.FindEntityByName("university of maryland");
  auto facts = kb.FactsInvolving(umd);
  EXPECT_EQ(facts.size(), 2u);
  EXPECT_TRUE(kb.FactsInvolving(999).empty());
}

TEST(CuratedKbTest, AnchorStatisticsAndPopularity) {
  CuratedKb kb = MakeSmallKb();
  EntityId umd = kb.FindEntityByName("university of maryland");
  EntityId md = kb.FindEntityByName("maryland");
  EXPECT_EQ(kb.AnchorCount("maryland"), 100);
  EXPECT_EQ(kb.AnchorCount("maryland", md), 70);
  EXPECT_EQ(kb.AnchorCount("maryland", umd), 30);
  EXPECT_DOUBLE_EQ(kb.Popularity("maryland", md), 0.7);
  EXPECT_DOUBLE_EQ(kb.Popularity("maryland", umd), 0.3);
  EXPECT_DOUBLE_EQ(kb.Popularity("unseen surface", md), 0.0);
  EXPECT_FALSE(kb.AddAnchor("x", 999, 5).ok());
  EXPECT_FALSE(kb.AddAnchor("x", umd, 0).ok());
}

TEST(CuratedKbTest, AnchorLookupIsCaseInsensitive) {
  CuratedKb kb = MakeSmallKb();
  EntityId umd = kb.FindEntityByName("university of maryland");
  EXPECT_EQ(kb.AnchorCount("UMD", umd), 40);
}

TEST(CuratedKbTest, EntityCandidatesExactAnchorsRankedByPopularity) {
  CuratedKb kb = MakeSmallKb();
  EntityId md = kb.FindEntityByName("maryland");
  auto candidates = kb.EntityCandidates("maryland", 5);
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].id, md);
  EXPECT_DOUBLE_EQ(candidates[0].popularity, 0.7);
  EXPECT_GE(candidates[0].popularity, candidates[1].popularity);
}

TEST(CuratedKbTest, EntityCandidatesFuzzyFallback) {
  CuratedKb kb = MakeSmallKb();
  // "university maryland" has no anchor; fuzzy matching through the token
  // index should still reach the university.
  auto candidates = kb.EntityCandidates("university maryland", 5);
  ASSERT_FALSE(candidates.empty());
  EntityId umd = kb.FindEntityByName("university of maryland");
  bool found = false;
  for (const auto& c : candidates) found |= (c.id == umd);
  EXPECT_TRUE(found);
}

TEST(CuratedKbTest, EntityCandidatesCapRespected) {
  CuratedKb kb = MakeSmallKb();
  EXPECT_LE(kb.EntityCandidates("university", 2).size(), 2u);
}

TEST(CuratedKbTest, RelationCandidatesUseAliases) {
  CuratedKb kb = MakeSmallKb();
  RelationId member = kb.FindRelationByName("organizations_founded");
  auto candidates = kb.RelationCandidates("be a member of", 3);
  ASSERT_FALSE(candidates.empty());
  // The alias "member of" should pull organizations_founded to the top.
  EXPECT_EQ(candidates[0].id, member);
}

TEST(CuratedKbTest, RelationAliasValidation) {
  CuratedKb kb;
  EXPECT_FALSE(kb.AddRelationAlias(0, "x").ok());
  RelationId r = kb.AddRelation("rel");
  EXPECT_TRUE(kb.AddRelationAlias(r, "alias one").ok());
  EXPECT_EQ(kb.RelationAliases(r).size(), 1u);
  EXPECT_TRUE(kb.RelationAliases(999).empty());
}

// ---------- KB serialization -----------------------------------------------------

TEST(KbIoTest, RoundTripPreservesEverything) {
  CuratedKb kb = MakeSmallKb();
  std::string prefix = ::testing::TempDir() + "/jocl_kb";
  ASSERT_TRUE(SaveCuratedKb(kb, prefix).ok());
  auto loaded = LoadCuratedKb(prefix);
  ASSERT_TRUE(loaded.ok());
  const CuratedKb& lk = loaded.ValueOrDie();

  EXPECT_EQ(lk.entity_count(), kb.entity_count());
  EXPECT_EQ(lk.relation_count(), kb.relation_count());
  EXPECT_EQ(lk.fact_count(), kb.fact_count());

  // Facts survive via names.
  EntityId umd = lk.FindEntityByName("university of maryland");
  EntityId md = lk.FindEntityByName("maryland");
  RelationId located = lk.FindRelationByName("location.contained_by");
  ASSERT_NE(umd, kNilId);
  ASSERT_NE(located, kNilId);
  EXPECT_TRUE(lk.HasFact(umd, located, md));

  // Anchor statistics survive exactly.
  EXPECT_EQ(lk.AnchorCount("maryland"), kb.AnchorCount("maryland"));
  EXPECT_DOUBLE_EQ(lk.Popularity("maryland", md), 0.7);

  // Relation aliases survive.
  RelationId member = lk.FindRelationByName("organizations_founded");
  EXPECT_EQ(lk.RelationAliases(member).size(), 1u);

  for (const char* suffix :
       {".entities.tsv", ".relations.tsv", ".facts.tsv", ".anchors.tsv"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(KbIoTest, AnchorRowsDeterministicAndComplete) {
  CuratedKb kb = MakeSmallKb();
  auto first = kb.AnchorRows();
  auto second = kb.AnchorRows();
  EXPECT_EQ(first, second);
  int64_t total = 0;
  for (const auto& [surface, entity, count] : first) total += count;
  // Sum of all rows equals the sum of all per-surface totals.
  EXPECT_EQ(total, kb.AnchorCount("university of maryland") +
                       kb.AnchorCount("umd") + kb.AnchorCount("maryland") +
                       kb.AnchorCount("u21") +
                       kb.AnchorCount("universitas 21"));
}

TEST(KbIoTest, LoadMissingFilesFails) {
  EXPECT_FALSE(LoadCuratedKb("/nonexistent/prefix").ok());
}

// ---------- OpenKb ---------------------------------------------------------------

TEST(OpenKbTest, AddTripleValidation) {
  OpenKb okb;
  EXPECT_TRUE(okb.AddTriple("a", "rel", "b").ok());
  EXPECT_FALSE(okb.AddTriple("", "rel", "b").ok());
  EXPECT_FALSE(okb.AddTriple("a", "  ", "b").ok());
  EXPECT_EQ(okb.size(), 1u);
}

TEST(OpenKbTest, TrimsWhitespace) {
  OpenKb okb;
  ASSERT_TRUE(okb.AddTriple("  UMD ", " be a member of ", " U21 ").ok());
  EXPECT_EQ(okb.triple(0).subject, "UMD");
  EXPECT_EQ(okb.triple(0).predicate, "be a member of");
  EXPECT_EQ(okb.triple(0).object, "U21");
}

TEST(OpenKbTest, MentionViews) {
  OpenKb okb;
  ASSERT_TRUE(okb.AddTriple("A", "r1", "B").ok());
  ASSERT_TRUE(okb.AddTriple("B", "r2", "C").ok());
  auto nps = okb.NounPhraseMentions();
  ASSERT_EQ(nps.size(), 4u);
  EXPECT_TRUE(nps[0].is_subject);
  EXPECT_EQ(nps[0].phrase, "A");
  EXPECT_FALSE(nps[1].is_subject);
  EXPECT_EQ(nps[1].phrase, "B");
  EXPECT_EQ(nps[3].triple_index, 1u);
  auto rps = okb.RelationPhraseMentions();
  ASSERT_EQ(rps.size(), 2u);
  EXPECT_EQ(rps[1].phrase, "r2");
}

TEST(OpenKbTest, DistinctPhrases) {
  OpenKb okb;
  ASSERT_TRUE(okb.AddTriple("A", "r", "B").ok());
  ASSERT_TRUE(okb.AddTriple("B", "r", "A").ok());
  ASSERT_TRUE(okb.AddTriple("A", "r2", "C").ok());
  EXPECT_EQ(okb.DistinctNounPhrases(),
            (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_EQ(okb.DistinctRelationPhrases(),
            (std::vector<std::string>{"r", "r2"}));
}

}  // namespace
}  // namespace jocl
