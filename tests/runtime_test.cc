// Tests of the sharded end-to-end runtime: the union-find problem
// partition, the signal cache's equivalence to the uncached bundle, and
// the acceptance bar — a byte-identical JoclResult for every
// (max_shards, num_threads) configuration, including the monolithic
// single-shard run.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/runtime.h"
#include "core/shard.h"
#include "core/signal_cache.h"
#include "data/generator.h"

namespace jocl {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateReVerb45K(/*scale=*/0.25, /*seed=*/11).MoveValueOrDie());
    SignalOptions signal_options;
    signal_options.embedding_epochs = 2;
    signals_ = new SignalBundle(
        BuildSignals(*dataset_, signal_options).MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete signals_;
    delete dataset_;
  }

  static JoclProblem Problem() {
    return BuildProblem(*dataset_, *signals_, dataset_->test_triples);
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
};

Dataset* RuntimeTest::dataset_ = nullptr;
SignalBundle* RuntimeTest::signals_ = nullptr;

// ---------- PartitionProblem -------------------------------------------------

TEST_F(RuntimeTest, PartitionCoversTriplesAndPairsExactlyOnce) {
  JoclProblem problem = Problem();
  ShardPlan plan = PartitionProblem(problem, /*max_shards=*/0);
  ASSERT_GT(plan.component_count, 1u);
  EXPECT_EQ(plan.shards.size(), plan.component_count);

  std::vector<size_t> triple_seen(problem.triples.size(), 0);
  std::vector<size_t> pair_seen(problem.subject_pairs.size(), 0);
  for (const ProblemShard& shard : plan.shards) {
    for (size_t t : shard.triple_map) ++triple_seen[t];
    for (size_t p : shard.subject_pair_map) ++pair_seen[p];
    // Index maps are strictly increasing (local order == global order).
    EXPECT_TRUE(std::is_sorted(shard.triple_map.begin(),
                               shard.triple_map.end()));
    EXPECT_TRUE(std::is_sorted(shard.subject_pair_map.begin(),
                               shard.subject_pair_map.end()));
  }
  for (size_t count : triple_seen) EXPECT_EQ(count, 1u);
  for (size_t count : pair_seen) EXPECT_EQ(count, 1u);
}

TEST_F(RuntimeTest, ShardProblemsReindexConsistently) {
  JoclProblem problem = Problem();
  ShardPlan plan = PartitionProblem(problem, /*max_shards=*/0);
  for (const ProblemShard& shard : plan.shards) {
    const JoclProblem& local = shard.problem;
    ASSERT_EQ(local.triples.size(), shard.triple_map.size());
    for (size_t t = 0; t < local.triples.size(); ++t) {
      // Same dataset triple, same surface strings as the global problem.
      EXPECT_EQ(local.triples[t], problem.triples[shard.triple_map[t]]);
      EXPECT_EQ(local.subject_surfaces[local.subject_of[t]],
                problem.subject_surfaces
                    [problem.subject_of[shard.triple_map[t]]]);
    }
    for (size_t p = 0; p < local.subject_pairs.size(); ++p) {
      const SurfacePair& global_pair =
          problem.subject_pairs[shard.subject_pair_map[p]];
      EXPECT_EQ(shard.subject_surface_map[local.subject_pairs[p].a],
                global_pair.a);
      EXPECT_EQ(shard.subject_surface_map[local.subject_pairs[p].b],
                global_pair.b);
      EXPECT_EQ(local.subject_pairs[p].idf, global_pair.idf);
      EXPECT_EQ(local.subject_pairs[p].candidate_blocked,
                global_pair.candidate_blocked);
    }
  }
}

TEST_F(RuntimeTest, PartitionGroupingIsCappedAndDeterministic) {
  JoclProblem problem = Problem();
  ShardPlan capped = PartitionProblem(problem, /*max_shards=*/3);
  EXPECT_LE(capped.shards.size(), 3u);
  EXPECT_EQ(capped.component_count,
            PartitionProblem(problem, 0).component_count);
  ShardPlan again = PartitionProblem(problem, /*max_shards=*/3);
  ASSERT_EQ(again.shards.size(), capped.shards.size());
  for (size_t s = 0; s < capped.shards.size(); ++s) {
    EXPECT_EQ(again.shards[s].triple_map, capped.shards[s].triple_map);
  }
}

TEST_F(RuntimeTest, SingleShardIsTheWholeProblem) {
  JoclProblem problem = Problem();
  ShardPlan plan = PartitionProblem(problem, /*max_shards=*/1);
  ASSERT_EQ(plan.shards.size(), 1u);
  const JoclProblem& local = plan.shards[0].problem;
  EXPECT_EQ(local.triples, problem.triples);
  EXPECT_EQ(local.subject_surfaces, problem.subject_surfaces);
  EXPECT_EQ(local.subject_of, problem.subject_of);
  EXPECT_EQ(local.subject_rep, problem.subject_rep);
  EXPECT_EQ(local.predicate_surfaces, problem.predicate_surfaces);
  EXPECT_EQ(local.object_surfaces, problem.object_surfaces);
  ASSERT_EQ(local.subject_pairs.size(), problem.subject_pairs.size());
  for (size_t p = 0; p < local.subject_pairs.size(); ++p) {
    EXPECT_EQ(local.subject_pairs[p].a, problem.subject_pairs[p].a);
    EXPECT_EQ(local.subject_pairs[p].b, problem.subject_pairs[p].b);
  }
}

// ---------- SignalCache ------------------------------------------------------

TEST_F(RuntimeTest, SignalCacheMatchesBundleSemantics) {
  JoclProblem problem = Problem();
  SignalCache cache =
      SignalCache::ForProblem(problem, *signals_, dataset_->ckb);

  auto sample = [](size_t n) { return std::min<size_t>(n, 25); };
  const auto& nps = problem.subject_surfaces;
  for (size_t i = 0; i < sample(nps.size()); ++i) {
    for (size_t j = i + 1; j < sample(nps.size()); ++j) {
      // Discrete signals are exactly equal; Emb differs only by float
      // rounding (unit-normalize-then-dot vs cosine of raw sums).
      EXPECT_DOUBLE_EQ(cache.Ppdb(nps[i], nps[j]),
                       signals_->Ppdb(nps[i], nps[j]));
      EXPECT_NEAR(cache.Emb(nps[i], nps[j]), signals_->Emb(nps[i], nps[j]),
                  1e-6);
    }
  }
  const auto& rps = problem.predicate_surfaces;
  for (size_t i = 0; i < sample(rps.size()); ++i) {
    for (size_t j = i + 1; j < sample(rps.size()); ++j) {
      EXPECT_DOUBLE_EQ(cache.Amie(rps[i], rps[j]),
                       signals_->Amie(rps[i], rps[j]));
      EXPECT_DOUBLE_EQ(cache.Kbp(rps[i], rps[j]),
                       signals_->Kbp(rps[i], rps[j]));
    }
  }
}

TEST_F(RuntimeTest, SignalCacheFallsBackForUnknownPhrases) {
  SignalCache cache = SignalCache::ForPhrases({"alpha beta"}, *signals_);
  EXPECT_EQ(cache.IdOf("never registered"), SignalCache::kUnknown);
  EXPECT_DOUBLE_EQ(cache.Emb("alpha beta", "never registered"),
                   signals_->Emb("alpha beta", "never registered"));
  EXPECT_DOUBLE_EQ(cache.Kbp("never registered", "also unknown"),
                   signals_->Kbp("never registered", "also unknown"));
}

// ---------- the acceptance bar: byte-identical results -----------------------

TEST_F(RuntimeTest, ShardedRuntimeIsByteIdenticalToMonolithic) {
  JoclOptions options;
  RuntimeOptions monolithic;
  monolithic.max_shards = 1;
  monolithic.num_threads = 1;
  JoclRuntime reference(options, monolithic);
  JoclResult expected =
      reference.Infer(*dataset_, *signals_, dataset_->test_triples)
          .MoveValueOrDie();

  struct Config {
    size_t shards;
    size_t threads;
  };
  // {1, 4} drives the leftover-parallelism path: one shard, so the four
  // requested threads move inside the engine (component-parallel LBP).
  for (Config config :
       {Config{0, 1}, Config{0, 4}, Config{3, 2}, Config{1, 4}}) {
    RuntimeOptions runtime_options;
    runtime_options.max_shards = config.shards;
    runtime_options.num_threads = config.threads;
    JoclRuntime runtime(options, runtime_options);
    RuntimeStats stats;
    JoclResult result =
        runtime
            .Infer(*dataset_, *signals_, dataset_->test_triples, {}, &stats)
            .MoveValueOrDie();
    if (config.shards == 0) EXPECT_GT(stats.shards, 1u);

    // Exact equality, not tolerance: shard graphs are the monolithic
    // graph's connected components and decode runs globally, so no bit
    // may differ.
    EXPECT_EQ(result.np_cluster, expected.np_cluster)
        << config.shards << " shards, " << config.threads << " threads";
    EXPECT_EQ(result.rp_cluster, expected.rp_cluster);
    EXPECT_EQ(result.np_link, expected.np_link);
    EXPECT_EQ(result.rp_link, expected.rp_link);
    EXPECT_EQ(result.triples, expected.triples);
    EXPECT_EQ(result.weights, expected.weights);
    EXPECT_EQ(result.diagnostics.iterations, expected.diagnostics.iterations);
    EXPECT_EQ(result.diagnostics.converged, expected.diagnostics.converged);
    EXPECT_EQ(result.diagnostics.final_residual,
              expected.diagnostics.final_residual);
    EXPECT_EQ(result.diagnostics.residual_history,
              expected.diagnostics.residual_history);
    EXPECT_EQ(result.diagnostics.marginals, expected.diagnostics.marginals);
  }
}

TEST_F(RuntimeTest, InferWrapperMatchesRuntime) {
  JoclOptions options;
  options.runtime_threads = 2;
  options.runtime_shards = 0;
  Jocl jocl(options);
  JoclResult via_wrapper =
      jocl.Infer(*dataset_, *signals_, dataset_->test_triples)
          .MoveValueOrDie();
  RuntimeOptions runtime_options;
  runtime_options.num_threads = 2;
  JoclRuntime runtime(options, runtime_options);
  JoclResult direct =
      runtime.Infer(*dataset_, *signals_, dataset_->test_triples)
          .MoveValueOrDie();
  EXPECT_EQ(via_wrapper.np_cluster, direct.np_cluster);
  EXPECT_EQ(via_wrapper.np_link, direct.np_link);
  EXPECT_EQ(via_wrapper.rp_cluster, direct.rp_cluster);
  EXPECT_EQ(via_wrapper.rp_link, direct.rp_link);
  EXPECT_EQ(via_wrapper.diagnostics.marginals, direct.diagnostics.marginals);
}

TEST_F(RuntimeTest, AblationsAreShardInvariantToo) {
  // The JOCLlink fallback decode and the canonicalization-only path also
  // go through the sharded runtime; they must be execution-invariant.
  for (const JoclOptions& options :
       {JoclOptions::CanonicalizationOnly(), JoclOptions::LinkingOnly()}) {
    RuntimeOptions monolithic;
    monolithic.max_shards = 1;
    monolithic.num_threads = 1;
    JoclResult expected =
        JoclRuntime(options, monolithic)
            .Infer(*dataset_, *signals_, dataset_->test_triples)
            .MoveValueOrDie();
    RuntimeOptions sharded;
    sharded.max_shards = 0;
    sharded.num_threads = 4;
    JoclResult result =
        JoclRuntime(options, sharded)
            .Infer(*dataset_, *signals_, dataset_->test_triples)
            .MoveValueOrDie();
    EXPECT_EQ(result.np_cluster, expected.np_cluster);
    EXPECT_EQ(result.rp_cluster, expected.rp_cluster);
    EXPECT_EQ(result.np_link, expected.np_link);
    EXPECT_EQ(result.rp_link, expected.rp_link);
    EXPECT_EQ(result.diagnostics.marginals, expected.diagnostics.marginals);
  }
}

TEST_F(RuntimeTest, EmptySubsetProducesEmptyResult) {
  JoclRuntime runtime;
  RuntimeStats stats;
  JoclResult result =
      runtime.Infer(*dataset_, *signals_, {}, {}, &stats).MoveValueOrDie();
  EXPECT_TRUE(result.np_cluster.empty());
  EXPECT_TRUE(result.np_link.empty());
  EXPECT_EQ(stats.shards, 0u);
  EXPECT_TRUE(result.diagnostics.converged);
}

}  // namespace
}  // namespace jocl
