// Serving-layer tests: CanonStore construction over a decoded result,
// snapshot round-trip byte-identity, corruption handling (truncated /
// bit-flipped / wrong-magic / future-version files must fail with clean
// Status errors), request routing, and the acceptance bar — correct
// responses under >= 4 concurrent HTTP readers while an ingestion
// session swaps the published store mid-flight.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "serve/canon_store.h"
#include "serve/http_client.h"
#include "serve/http_util.h"
#include "serve/json.h"
#include "serve/response_cache.h"
#include "serve/server.h"
#include "serve/snapshot_io.h"

// ---------- heap-allocation probe (zero-alloc acceptance) --------------------
//
// Replacing the global operator new lets tests count allocations on the
// calling thread only, so the server's own threads never add noise.
namespace {
thread_local uint64_t g_thread_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_thread_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace jocl {
namespace {

// ---------- a tiny world with a known canonical structure --------------------
//
// The paper's Figure 1(a) example: "University of Maryland" / "UMD" are
// the same entity, "Universitas 21" / "U21" likewise, and the CKB knows
// both through anchors + PPDB.
class ServeWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset();
    dataset_->name = "serve-world";
    CuratedKb& ckb = dataset_->ckb;
    EntityId maryland = ckb.AddEntity("maryland");
    EntityId u21 = ckb.AddEntity("universitas 21");
    EntityId uva = ckb.AddEntity("university of virginia");
    EntityId umd = ckb.AddEntity("university of maryland");
    RelationId contained_by = ckb.AddRelation("location.contained_by");
    RelationId founded = ckb.AddRelation("organizations_founded");
    ASSERT_TRUE(ckb.AddRelationAlias(contained_by, "locate in").ok());
    ASSERT_TRUE(ckb.AddRelationAlias(founded, "member of").ok());
    ASSERT_TRUE(ckb.AddFact(umd, contained_by, maryland).ok());
    ASSERT_TRUE(ckb.AddFact(uva, founded, u21).ok());
    ASSERT_TRUE(ckb.AddAnchor("university of maryland", umd, 95).ok());
    ASSERT_TRUE(ckb.AddAnchor("umd", umd, 40).ok());
    ASSERT_TRUE(ckb.AddAnchor("maryland", maryland, 70).ok());
    ASSERT_TRUE(ckb.AddAnchor("universitas 21", u21, 30).ok());
    ASSERT_TRUE(ckb.AddAnchor("u21", u21, 12).ok());
    ASSERT_TRUE(ckb.AddAnchor("university of virginia", uva, 80).ok());

    OpenKb& okb = dataset_->okb;
    ASSERT_TRUE(
        okb.AddTriple("University of Maryland", "locate in", "Maryland")
            .ok());
    ASSERT_TRUE(
        okb.AddTriple("UMD", "be a member of", "Universitas 21").ok());
    ASSERT_TRUE(okb.AddTriple("University of Virginia",
                              "be an early member of", "U21")
                    .ok());
    for (size_t t = 0; t < okb.size(); ++t) {
      dataset_->gold_subject_entity.push_back(kNilId);
      dataset_->gold_relation.push_back(kNilId);
      dataset_->gold_object_entity.push_back(kNilId);
      dataset_->gold_np_group.push_back(static_cast<int64_t>(t * 2));
      dataset_->gold_np_group.push_back(static_cast<int64_t>(t * 2 + 1));
      dataset_->gold_rp_group.push_back(static_cast<int64_t>(t));
    }
    dataset_->ppdb.AddCluster({"university of maryland", "umd"});
    dataset_->ppdb.AddCluster({"universitas 21", "u21"});
    dataset_->ppdb.AddCluster({"be a member of", "be an early member of"});
    signals_ = new SignalBundle(BuildSignals(*dataset_).MoveValueOrDie());

    std::vector<size_t> all = {0, 1, 2};
    result_ = new JoclResult(
        JoclRuntime().Infer(*dataset_, *signals_, all).MoveValueOrDie());
    problem_ = new JoclProblem(BuildProblem(*dataset_, *signals_, all));
    store_ = new CanonStore(
        BuildCanonStore(*problem_, *result_, dataset_->ckb, /*generation=*/7));
  }

  static void TearDownTestSuite() {
    delete store_;
    delete problem_;
    delete result_;
    delete signals_;
    delete dataset_;
    store_ = nullptr;
    problem_ = nullptr;
    result_ = nullptr;
    signals_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
  static JoclResult* result_;
  static JoclProblem* problem_;
  static CanonStore* store_;
};

Dataset* ServeWorld::dataset_ = nullptr;
SignalBundle* ServeWorld::signals_ = nullptr;
JoclResult* ServeWorld::result_ = nullptr;
JoclProblem* ServeWorld::problem_ = nullptr;
CanonStore* ServeWorld::store_ = nullptr;

// ---------- CanonStore -------------------------------------------------------

TEST_F(ServeWorld, StoreIndexesSurfacesClustersAndLinks) {
  const CanonStore& store = *store_;
  EXPECT_EQ(store.triple_count, 3u);
  EXPECT_EQ(store.generation, 7u);
  ASSERT_TRUE(ValidateCanonStore(store).ok());

  // Surfaces keep the OKB's raw casing; lookups are exact-match.
  const int64_t umd = store.FindSurface(CanonKind::kNp, "UMD");
  const int64_t long_form =
      store.FindSurface(CanonKind::kNp, "University of Maryland");
  ASSERT_GE(umd, 0);
  ASSERT_GE(long_form, 0);
  EXPECT_EQ(store.FindSurface(CanonKind::kNp, "no such surface"), -1);
  EXPECT_EQ(store.FindSurface(CanonKind::kRp, "UMD"), -1);
  EXPECT_GE(store.FindSurface(CanonKind::kRp, "locate in"), 0);

  // The joint model canonicalizes UMD with its long form; both surfaces
  // sit in one cluster whose canonical link is the UMD entity.
  ConstSpan<uint32_t> umd_clusters = store.ClustersOf(CanonKind::kNp, umd);
  ConstSpan<uint32_t> long_clusters =
      store.ClustersOf(CanonKind::kNp, long_form);
  ASSERT_EQ(umd_clusters.size(), 1u);
  ASSERT_EQ(long_clusters.size(), 1u);
  EXPECT_EQ(umd_clusters[0], long_clusters[0]);
  const size_t cluster = umd_clusters[0];
  ConstSpan<uint32_t> members =
      store.ClusterMembers(CanonKind::kNp, cluster);
  EXPECT_EQ(members.size(), 2u);
  bool saw_umd = false;
  bool saw_long = false;
  for (uint32_t member : members) {
    if (store.SurfaceText(CanonKind::kNp, member) == "UMD") saw_umd = true;
    if (store.SurfaceText(CanonKind::kNp, member) ==
        "University of Maryland") {
      saw_long = true;
    }
  }
  EXPECT_TRUE(saw_umd);
  EXPECT_TRUE(saw_long);
  EXPECT_EQ(store.ClusterLinkName(CanonKind::kNp, cluster),
            "university of maryland");
  EXPECT_EQ(store.ClusterLink(CanonKind::kNp, cluster),
            dataset_->ckb.FindEntityByName("university of maryland"));
  EXPECT_EQ(store.MentionCount(CanonKind::kNp, umd), 1u);
}

TEST_F(ServeWorld, StoreIsDeterministic) {
  CanonStore rebuilt =
      BuildCanonStore(*problem_, *result_, dataset_->ckb, 7);
  EXPECT_EQ(SerializeSnapshot(rebuilt), SerializeSnapshot(*store_));
}

// ---------- snapshot I/O -----------------------------------------------------

TEST_F(ServeWorld, SnapshotRoundTripIsByteIdentical) {
  const std::string bytes = SerializeSnapshot(*store_);
  Result<CanonStore> loaded = DeserializeSnapshot(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SerializeSnapshot(loaded.ValueOrDie()), bytes);

  const std::string path = ::testing::TempDir() + "/jocl_serve_test.snap";
  size_t written = 0;
  ASSERT_TRUE(SaveSnapshot(*store_, path, &written).ok());
  EXPECT_EQ(written, bytes.size());
  Result<CanonStore> from_file = LoadSnapshot(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  EXPECT_EQ(SerializeSnapshot(from_file.ValueOrDie()), bytes);
  const CanonStore& reloaded = from_file.ValueOrDie();
  EXPECT_EQ(reloaded.FindSurface(CanonKind::kNp, "UMD"),
            store_->FindSurface(CanonKind::kNp, "UMD"));
  std::remove(path.c_str());
}

TEST_F(ServeWorld, LoadRejectsTruncatedFile) {
  const std::string bytes = SerializeSnapshot(*store_);
  // Mid-payload truncation: the header's promised size no longer holds.
  Result<CanonStore> cut =
      DeserializeSnapshot(std::string_view(bytes).substr(0, bytes.size() - 7));
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), StatusCode::kIOError);
  EXPECT_NE(cut.status().message().find("truncated"), std::string::npos)
      << cut.status();
  // Header truncation.
  Result<CanonStore> header =
      DeserializeSnapshot(std::string_view(bytes).substr(0, 12));
  ASSERT_FALSE(header.ok());
  EXPECT_NE(header.status().message().find("header"), std::string::npos);
  // Empty file.
  EXPECT_FALSE(DeserializeSnapshot("").ok());
}

TEST_F(ServeWorld, LoadRejectsFlippedChecksumAndPayloadBytes) {
  const std::string bytes = SerializeSnapshot(*store_);
  // Flip one payload byte: the stored checksum no longer matches.
  std::string corrupt = bytes;
  corrupt[kSnapshotHeaderBytes + corrupt.size() / 2] ^= 0x40;
  Result<CanonStore> payload_flip = DeserializeSnapshot(corrupt);
  ASSERT_FALSE(payload_flip.ok());
  EXPECT_NE(payload_flip.status().message().find("checksum"),
            std::string::npos)
      << payload_flip.status();
  // Flip one byte of the stored checksum itself.
  corrupt = bytes;
  corrupt[24] ^= 0x01;
  Result<CanonStore> checksum_flip = DeserializeSnapshot(corrupt);
  ASSERT_FALSE(checksum_flip.ok());
  EXPECT_NE(checksum_flip.status().message().find("checksum"),
            std::string::npos);
}

TEST_F(ServeWorld, LoadRejectsWrongMagic) {
  std::string corrupt = SerializeSnapshot(*store_);
  corrupt[0] = 'X';
  Result<CanonStore> loaded = DeserializeSnapshot(corrupt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST_F(ServeWorld, LoadRejectsFutureVersion) {
  std::string corrupt = SerializeSnapshot(*store_);
  corrupt[8] = 99;  // version field (little-endian u32 at offset 8)
  Result<CanonStore> loaded = DeserializeSnapshot(corrupt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("version 99"), std::string::npos)
      << loaded.status();
}

TEST(SnapshotIoTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadSnapshot("/nonexistent/dir/store.snap").ok());
}

// ---------- delta snapshots --------------------------------------------------

TEST_F(ServeWorld, DeltaSnapshotRoundTripIsByteIdentical) {
  // Two structurally different generations out of a live session: the
  // second batch grows the text pool, every array, and the generation.
  JoclSession session(dataset_, signals_);
  std::vector<CanonStore> generations;
  session.SetPublishCallback([&](const JoclSession& s) {
    generations.push_back(BuildCanonStore(s.problem(), s.result(),
                                          dataset_->ckb, s.generation()));
  });
  ASSERT_TRUE(session.AddTriples({0}).ok());
  ASSERT_TRUE(session.AddTriples({1, 2}).ok());
  ASSERT_EQ(generations.size(), 2u);
  const CanonStore& base = generations[0];
  const CanonStore& target = generations[1];

  const std::string delta = SerializeDeltaSnapshot(base, target);
  Result<CanonStore> applied = ApplyDeltaSnapshot(base, delta);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(SerializeSnapshot(applied.ValueOrDie()),
            SerializeSnapshot(target));

  // A self-delta degenerates to one "unchanged" op per chunk — far
  // smaller than any full snapshot.
  const std::string identity = SerializeDeltaSnapshot(target, target);
  EXPECT_LT(identity.size(), 200u);
  Result<CanonStore> same = ApplyDeltaSnapshot(target, identity);
  ASSERT_TRUE(same.ok()) << same.status();
  EXPECT_EQ(SerializeSnapshot(same.ValueOrDie()), SerializeSnapshot(target));

  // File round trip.
  const std::string path = ::testing::TempDir() + "/jocl_serve_test.delta";
  size_t written = 0;
  ASSERT_TRUE(SaveDeltaSnapshot(base, target, path, &written).ok());
  EXPECT_GT(written, 0u);
  Result<CanonStore> from_file = LoadAndApplyDeltaSnapshot(base, path);
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  EXPECT_EQ(SerializeSnapshot(from_file.ValueOrDie()),
            SerializeSnapshot(target));
  std::remove(path.c_str());
}

TEST_F(ServeWorld, DeltaRejectsTruncationAndBitFlips) {
  CanonStore target =
      BuildCanonStore(*problem_, *result_, dataset_->ckb, /*generation=*/8);
  const std::string delta = SerializeDeltaSnapshot(*store_, target);
  ASSERT_GT(delta.size(), 64u);

  // Header truncation.
  Result<CanonStore> header =
      ApplyDeltaSnapshot(*store_, std::string_view(delta).substr(0, 12));
  ASSERT_FALSE(header.ok());
  EXPECT_NE(header.status().message().find("32-byte header"),
            std::string::npos)
      << header.status();
  // Mid-payload truncation: the header's promised size no longer holds.
  Result<CanonStore> cut = ApplyDeltaSnapshot(
      *store_, std::string_view(delta).substr(0, delta.size() - 5));
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), StatusCode::kIOError);
  EXPECT_NE(cut.status().message().find("truncated"), std::string::npos)
      << cut.status();
  // One flipped payload byte trips the delta's own checksum.
  std::string corrupt = delta;
  corrupt[kSnapshotHeaderBytes + corrupt.size() / 4] ^= 0x20;
  Result<CanonStore> flipped = ApplyDeltaSnapshot(*store_, corrupt);
  ASSERT_FALSE(flipped.ok());
  EXPECT_NE(flipped.status().message().find("checksum"), std::string::npos)
      << flipped.status();
}

TEST_F(ServeWorld, DeltaRejectsWrongBaseAndForeignFormats) {
  CanonStore target =
      BuildCanonStore(*problem_, *result_, dataset_->ckb, /*generation=*/8);
  const std::string delta = SerializeDeltaSnapshot(*store_, target);

  // Wrong base generation.
  CanonStore other =
      BuildCanonStore(*problem_, *result_, dataset_->ckb, /*generation=*/9);
  Result<CanonStore> wrong_gen = ApplyDeltaSnapshot(other, delta);
  ASSERT_FALSE(wrong_gen.ok());
  EXPECT_EQ(wrong_gen.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(wrong_gen.status().message().find("base generation 7"),
            std::string::npos)
      << wrong_gen.status();

  // Same generation, different bytes: the base checksum catches it.
  CanonStore tweaked = *store_;
  tweaked.triple_count += 1;
  Result<CanonStore> wrong_base = ApplyDeltaSnapshot(tweaked, delta);
  ASSERT_FALSE(wrong_base.ok());
  EXPECT_EQ(wrong_base.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(wrong_base.status().message().find("does not match this base"),
            std::string::npos)
      << wrong_base.status();

  // Future delta version.
  std::string future = delta;
  future[8] = 99;  // version field (little-endian u32 at offset 8)
  Result<CanonStore> version = ApplyDeltaSnapshot(*store_, future);
  ASSERT_FALSE(version.ok());
  EXPECT_EQ(version.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(version.status().message().find("version 99"), std::string::npos)
      << version.status();

  // Cross-format hints: a full snapshot is not a delta and vice versa.
  Result<CanonStore> full_as_delta =
      ApplyDeltaSnapshot(*store_, SerializeSnapshot(*store_));
  ASSERT_FALSE(full_as_delta.ok());
  EXPECT_NE(full_as_delta.status().message().find("full snapshot"),
            std::string::npos)
      << full_as_delta.status();
  Result<CanonStore> delta_as_full = DeserializeSnapshot(delta);
  ASSERT_FALSE(delta_as_full.ok());
  EXPECT_NE(delta_as_full.status().message().find("delta snapshot"),
            std::string::npos)
      << delta_as_full.status();
}

// ---------- JSON helpers -----------------------------------------------------

TEST(JsonTest, EscapesSpecials) {
  EXPECT_EQ(JsonQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonTest, LooksLikeJsonAcceptsAndRejects) {
  EXPECT_TRUE(LooksLikeJson("{\"a\":[1,2,{\"b\":\"}\"}]}"));
  EXPECT_TRUE(LooksLikeJson("  [1,2,3]\n"));
  EXPECT_FALSE(LooksLikeJson("plain text"));
  EXPECT_FALSE(LooksLikeJson("{\"a\":1"));
  EXPECT_FALSE(LooksLikeJson("{\"a\":1}}"));
  EXPECT_FALSE(LooksLikeJson("{} trailing"));
}

// ---------- request routing (no sockets) -------------------------------------

TEST_F(ServeWorld, RoutingAnswersAndErrors) {
  ServeCounters counters;
  int status = 0;
  // /stats works before any store is published.
  std::string body =
      HandleCanonRequest(nullptr, "GET", "/stats", counters, &status);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(LooksLikeJson(body)) << body;
  EXPECT_NE(body.find("\"published\":false"), std::string::npos);
  // Data endpoints 503 before a store exists.
  body = HandleCanonRequest(nullptr, "GET", "/lookup?surface=umd", counters,
                            &status);
  EXPECT_EQ(status, 503);
  EXPECT_TRUE(LooksLikeJson(body));
  // Unknown endpoint, bad method, missing/invalid parameters.
  body = HandleCanonRequest(store_, "GET", "/nope", counters, &status);
  EXPECT_EQ(status, 404);
  body = HandleCanonRequest(store_, "POST", "/lookup?surface=x", counters,
                            &status);
  EXPECT_EQ(status, 405);
  body = HandleCanonRequest(store_, "GET", "/lookup", counters, &status);
  EXPECT_EQ(status, 400);
  body = HandleCanonRequest(store_, "GET", "/lookup?surface=x&kind=zz",
                            counters, &status);
  EXPECT_EQ(status, 400);
  body = HandleCanonRequest(store_, "GET", "/cluster?id=abc", counters,
                            &status);
  EXPECT_EQ(status, 400);
  body = HandleCanonRequest(store_, "GET", "/cluster?id=99999", counters,
                            &status);
  EXPECT_EQ(status, 404);
  // Correct answers.
  body = HandleCanonRequest(store_, "GET",
                            "/lookup?surface=UMD&kind=np", counters, &status);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(LooksLikeJson(body)) << body;
  EXPECT_NE(body.find("university of maryland"), std::string::npos) << body;
  body = HandleCanonRequest(store_, "GET",
                            "/link?surface=University%20of%20Maryland",
                            counters, &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"link\":{"), std::string::npos) << body;
  body = HandleCanonRequest(store_, "GET", "/lookup?surface=zzz", counters,
                            &status);
  EXPECT_EQ(status, 404);
  EXPECT_TRUE(LooksLikeJson(body));
}

// ---------- HTTP server ------------------------------------------------------

TEST_F(ServeWorld, ServerAnswersOverHttp) {
  ServeOptions options;
  options.num_workers = 2;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  server.Publish(std::make_shared<const CanonStore>(*store_));

  Result<HttpResponse> lookup = HttpGet(
      server.port(), "/lookup?surface=" + UrlEncode("University of Maryland"));
  ASSERT_TRUE(lookup.ok()) << lookup.status();
  EXPECT_EQ(lookup.ValueOrDie().status, 200);
  EXPECT_TRUE(LooksLikeJson(lookup.ValueOrDie().body))
      << lookup.ValueOrDie().body;
  EXPECT_NE(lookup.ValueOrDie().body.find("UMD"), std::string::npos)
      << lookup.ValueOrDie().body;

  Result<HttpResponse> stats = HttpGet(server.port(), "/stats");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.ValueOrDie().status, 200);
  EXPECT_TRUE(LooksLikeJson(stats.ValueOrDie().body));
  EXPECT_NE(stats.ValueOrDie().body.find("\"published\":true"),
            std::string::npos);

  Result<HttpResponse> missing =
      HttpGet(server.port(), "/lookup?surface=zzz");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(missing.ValueOrDie().status, 404);

  // /stats is a scrape, not a data-path request.
  const ServeCounters counters = server.counters();
  EXPECT_GE(counters.requests, 2u);
  EXPECT_GE(counters.scrapes, 1u);
  EXPECT_GE(counters.ok, 2u);
  EXPECT_GE(counters.not_found, 1u);
  server.Stop();
}

TEST_F(ServeWorld, MetricsEndpointExposesPrometheusFamilies) {
  ServeOptions options;
  options.num_workers = 2;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Publish(std::make_shared<const CanonStore>(*store_));

  // Drive the data path so counters and latency histograms move.
  Result<HttpResponse> hit = HttpGet(
      server.port(), "/lookup?surface=" + UrlEncode("UMD"));
  ASSERT_TRUE(hit.ok()) << hit.status();
  ASSERT_EQ(hit.ValueOrDie().status, 200);
  Result<HttpResponse> miss = HttpGet(server.port(), "/lookup?surface=zzz");
  ASSERT_TRUE(miss.ok()) << miss.status();
  ASSERT_EQ(miss.ValueOrDie().status, 404);

  Result<HttpResponse> scrape = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(scrape.ok()) << scrape.status();
  EXPECT_EQ(scrape.ValueOrDie().status, 200);
  const std::string& body = scrape.ValueOrDie().body;
  EXPECT_NE(body.find("# TYPE jocl_requests_total counter"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("jocl_requests_total 2\n"), std::string::npos) << body;
  EXPECT_NE(body.find("jocl_responses_total{code=\"200\"}"),
            std::string::npos);
  EXPECT_NE(body.find("jocl_responses_total{code=\"404\"} 1\n"),
            std::string::npos)
      << body;
  // Per-endpoint latency histograms: cumulative buckets, +Inf, sum, count.
  EXPECT_NE(body.find("# TYPE jocl_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(body.find("jocl_request_latency_seconds_bucket{"
                      "endpoint=\"/lookup\",le=\"+Inf\"} 2\n"),
            std::string::npos)
      << body;
  EXPECT_NE(
      body.find("jocl_request_latency_seconds_count{endpoint=\"/lookup\"} 2"),
      std::string::npos)
      << body;
  EXPECT_NE(
      body.find("jocl_request_latency_seconds_sum{endpoint=\"/lookup\"}"),
      std::string::npos);
  // Store gauges: the published generation is 7 in this world.
  EXPECT_NE(body.find("jocl_generation 7\n"), std::string::npos) << body;
  EXPECT_NE(body.find("jocl_published 1\n"), std::string::npos) << body;

  // /metrics itself lands on the scrape counter, not the data path.
  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_GE(counters.scrapes, 1u);

  // A second scrape sees the first one counted.
  Result<HttpResponse> again = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_NE(again.ValueOrDie().body.find("jocl_scrapes_total"),
            std::string::npos);
  EXPECT_EQ(server.counters().requests, 2u);
  server.Stop();
}

TEST_F(ServeWorld, MetricsRecordingDoesNotAllocate) {
  // The per-request instrumentation the event loop runs — counter adds
  // and a histogram record — must never touch the heap (same bar as the
  // cached hot path; counted by the replaced operator new).
  MetricsRegistry registry;
  Counter* requests = registry.AddCounter("probe_requests_total", "", "");
  Histogram* latency = registry.AddHistogram(
      "probe_latency_seconds", "endpoint=\"/lookup\"", "");
  // Warm-up: the first call pins this thread's cell slot.
  requests->Add();
  latency->Record(4096);

  const uint64_t allocations_before = g_thread_allocations;
  for (int i = 0; i < 1000; ++i) {
    requests->Add();
    latency->Record(MonotonicNanos() % (1u << 30));
  }
  EXPECT_EQ(g_thread_allocations, allocations_before)
      << "metrics recording allocated on the heap";
}

// ---------- acceptance: concurrent readers across ingestion swaps ------------

TEST_F(ServeWorld, ConcurrentReadersSurviveStoreSwapsMidFlight) {
  // An ingestion session over the world's triples, published batch by
  // batch; every response a reader observes must be byte-equal to the
  // deterministic answer of SOME published generation (or the canned
  // not-found body) — never torn, mixed or blocking.
  ServeOptions options;
  options.num_workers = 4;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string lookup_target =
      "/lookup?surface=" + UrlEncode("University of Maryland");
  const std::string link_target = "/link?surface=" + UrlEncode("U21");

  std::mutex expected_mutex;
  std::set<std::string> expected_bodies;
  auto remember = [&](const CanonStore& store) {
    ServeCounters counters;
    int status = 0;
    std::lock_guard<std::mutex> lock(expected_mutex);
    expected_bodies.insert(HandleCanonRequest(
        &store, "GET", "/lookup?surface=University%20of%20Maryland",
        counters, &status));
    expected_bodies.insert(HandleCanonRequest(&store, "GET",
                                              "/link?surface=U21", counters,
                                              &status));
  };

  JoclSession session(dataset_, signals_);
  session.SetPublishCallback([&](const JoclSession& s) {
    auto store = std::make_shared<const CanonStore>(BuildCanonStore(
        s.problem(), s.result(), dataset_->ckb, s.generation()));
    remember(*store);           // expected set grows before the swap…
    server.Publish(std::move(store));  // …so readers never see a surprise
  });
  ASSERT_TRUE(session.AddTriples({0}).ok());  // first store is live

  constexpr size_t kReaders = 4;
  constexpr size_t kRequestsPerReader = 120;
  std::vector<std::string> observed[kReaders];
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (size_t i = 0; i < kRequestsPerReader; ++i) {
        const std::string& target =
            (i % 2 == 0) ? lookup_target : link_target;
        Result<HttpResponse> response = HttpGet(server.port(), target);
        // "U21" only enters the store once triple 2 is ingested, so 404
        // (with the canned not-found body) is a correct early answer.
        if (!response.ok() ||
            (response.ValueOrDie().status != 200 &&
             response.ValueOrDie().status != 404) ||
            !LooksLikeJson(response.ValueOrDie().body)) {
          failures.fetch_add(1);
          continue;
        }
        observed[r].push_back(response.ValueOrDie().body);
      }
    });
  }
  // Swap the store mid-flight: grow, then shrink, then grow again.
  ASSERT_TRUE(session.AddTriples({1}).ok());
  ASSERT_TRUE(session.AddTriples({2}).ok());
  ASSERT_TRUE(session.RemoveTriples({2}).ok());
  ASSERT_TRUE(session.AddTriples({2}).ok());
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  std::lock_guard<std::mutex> lock(expected_mutex);
  ASSERT_GE(expected_bodies.size(), 2u);
  size_t total = 0;
  for (size_t r = 0; r < kReaders; ++r) {
    total += observed[r].size();
    for (const std::string& body : observed[r]) {
      EXPECT_TRUE(expected_bodies.count(body) == 1)
          << "torn or stale-unknown response: " << body;
    }
  }
  EXPECT_EQ(total, kReaders * kRequestsPerReader);
  const ServeCounters counters = server.counters();
  EXPECT_GE(counters.publishes, 5u);
  EXPECT_GE(counters.requests, total);
  server.Stop();
}

TEST_F(ServeWorld, RetrainedWeightsReachReadersWithoutDroppingRequests) {
  // The learn -> infer -> serve loop's last hop: a live session hot-swaps
  // new weights via UpdateWeights while readers keep hitting the server.
  // Every in-flight response must stay valid, and after the swap a reader
  // must observe the post-retrain generation.
  ServeOptions options;
  options.num_workers = 2;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());

  JoclSession session(dataset_, signals_);
  session.SetPublishCallback([&](const JoclSession& s) {
    server.Publish(std::make_shared<const CanonStore>(BuildCanonStore(
        s.problem(), s.result(), dataset_->ckb, s.generation())));
  });
  ASSERT_TRUE(session.AddTriples({0, 1, 2}).ok());
  const size_t generation_before = session.generation();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<size_t> served{0};
  std::thread reader([&] {
    while (!stop.load()) {
      Result<HttpResponse> response = HttpGet(server.port(), "/stats");
      if (!response.ok() || response.ValueOrDie().status != 200 ||
          !LooksLikeJson(response.ValueOrDie().body)) {
        failures.fetch_add(1);
      } else {
        served.fetch_add(1);
      }
    }
  });

  // Retrain stand-in: any new weight vector exercises the same path as a
  // learner-produced one (ShardedLearner needs gold labels this
  // handcrafted world intentionally keeps minimal).
  std::vector<double> retrained = Jocl::DefaultWeights();
  retrained[WeightLayout::kAlpha1] = 2.5;
  retrained[WeightLayout::kBeta5] = 0.4;
  SessionStats stats;
  ASSERT_TRUE(session.UpdateWeights(retrained, &stats).ok());
  EXPECT_EQ(session.generation(), generation_before + 1);
  EXPECT_EQ(stats.dirty_shards, stats.shards);

  // Post-swap, readers observe the retrained generation.
  Result<HttpResponse> after = HttpGet(server.port(), "/stats");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after.ValueOrDie().status, 200);
  EXPECT_NE(after.ValueOrDie().body.find(
                "\"generation\":" + std::to_string(session.generation())),
            std::string::npos)
      << after.ValueOrDie().body;

  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(served.load(), 0u);
  server.Stop();
}

// ---------- http_util: parsing the event loop relies on ---------------------

TEST(HttpUtilTest, ParseRequestHeadAppliesKeepAliveRules) {
  RequestHead head = ParseRequestHead("GET /x HTTP/1.1\r\nHost: h\r\n\r\n");
  EXPECT_TRUE(head.valid);
  EXPECT_EQ(head.method, "GET");
  EXPECT_EQ(head.target, "/x");
  EXPECT_TRUE(head.keep_alive);  // 1.1 default
  head = ParseRequestHead("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_FALSE(head.keep_alive);
  head = ParseRequestHead("GET /x HTTP/1.0\r\nHost: h\r\n\r\n");
  EXPECT_FALSE(head.keep_alive);  // 1.0 default
  head = ParseRequestHead("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  EXPECT_TRUE(head.keep_alive);
  head = ParseRequestHead(
      "GET /x HTTP/1.1\r\nConnection: Keep-Alive, Upgrade\r\n\r\n");
  EXPECT_TRUE(head.keep_alive);  // token list, case-insensitive
  head = ParseRequestHead(
      "POST /x HTTP/1.1\r\nContent-Length: 12\r\n\r\n");
  EXPECT_TRUE(head.valid);
  EXPECT_EQ(head.content_length, 12u);
  EXPECT_FALSE(ParseRequestHead("garbage\r\n\r\n").valid);
}

TEST(HttpUtilTest, ZeroAllocDecodersAgreeWithAllocatingParser) {
  char scratch[16];
  std::string_view out;
  const std::string_view plain = "abc";
  ASSERT_TRUE(UrlDecodeInto(plain, scratch, sizeof(scratch), &out));
  EXPECT_EQ(out, "abc");
  EXPECT_EQ(out.data(), plain.data());  // no escapes: aliases the input
  ASSERT_TRUE(UrlDecodeInto("a%20b+c", scratch, sizeof(scratch), &out));
  EXPECT_EQ(out, "a b c");
  EXPECT_EQ(out, UrlDecode("a%20b+c"));
  // Decoded form longer than the scratch capacity: refuse, don't clip.
  EXPECT_FALSE(UrlDecodeInto("0123456789abcdef%20", scratch, 16, &out));

  std::string_view raw;
  EXPECT_EQ(FindQueryValue("surface=UMD&kind=np", "kind", &raw),
            QueryScan::kFound);
  EXPECT_EQ(raw, "np");
  EXPECT_EQ(FindQueryValue("surface=UMD", "kind", &raw), QueryScan::kMissing);
  // An escaped key can only be resolved by full decoding — the scanner
  // must hand over rather than guess.
  EXPECT_EQ(FindQueryValue("%73urface=UMD", "surface", &raw),
            QueryScan::kNeedsFallback);
  // First-match-wins, mirroring QueryParams::Find.
  EXPECT_EQ(FindQueryValue("kind=np&kind=rp", "kind", &raw),
            QueryScan::kFound);
  EXPECT_EQ(raw, "np");
}

TEST(HttpUtilTest, TruncatedPercentEscapesPassThroughVerbatim) {
  // Malformed escapes must neither crash nor eat adjacent bytes, and
  // both decoders must agree on every case.
  struct Case {
    std::string_view in;
    std::string_view want;
  };
  const Case kCases[] = {
      {"abc%", "abc%"},      // bare percent at the end
      {"abc%4", "abc%4"},    // one hex digit, then EOF
      {"abc%zz", "abc%zz"},  // non-hex continuation
      {"%", "%"},
      {"%%41", "%A"},        // first % malformed, second decodes
      {"a%2zb", "a%2zb"},    // one good digit, one bad
      {"%41%", "A%"},
      {"%ff", "\xff"},       // lowercase hex
  };
  char scratch[32];
  for (const Case& c : kCases) {
    EXPECT_EQ(UrlDecode(c.in), c.want) << c.in;
    std::string_view out;
    ASSERT_TRUE(UrlDecodeInto(c.in, scratch, sizeof(scratch), &out)) << c.in;
    EXPECT_EQ(out, c.want) << c.in;
  }
}

TEST(HttpUtilTest, DuplicateQueryKeysKeepFirstMatch) {
  const QueryParams params =
      ParseQuery("kind=np&kind=rp&surface=a&surface=b&empty=&empty=x");
  ASSERT_NE(params.Find("kind"), nullptr);
  EXPECT_EQ(*params.Find("kind"), "np");
  ASSERT_NE(params.Find("surface"), nullptr);
  EXPECT_EQ(*params.Find("surface"), "a");
  ASSERT_NE(params.Find("empty"), nullptr);
  EXPECT_EQ(*params.Find("empty"), "");
  // An escaped first key still wins after decoding.
  const QueryParams escaped = ParseQuery("%6Bind=np&kind=rp");
  ASSERT_NE(escaped.Find("kind"), nullptr);
  EXPECT_EQ(*escaped.Find("kind"), "np");
  // The zero-alloc scanner mirrors the semantics on raw keys.
  std::string_view raw;
  EXPECT_EQ(FindQueryValue("surface=a&surface=b", "surface", &raw),
            QueryScan::kFound);
  EXPECT_EQ(raw, "a");
}

// ---------- pre-rendered response cache --------------------------------------

TEST_F(ServeWorld, CachedResponsesAreByteIdenticalToRenderedOnes) {
  const ResponseCache cache = BuildResponseCache(*store_);
  ASSERT_FALSE(cache.empty());
  EXPECT_GT(cache.arena_bytes(), 0u);
  const ServeCounters no_counters;
  char scratch[2048];
  const std::vector<std::string> hot_targets = {
      "/lookup?surface=UMD",
      "/lookup?surface=University%20of%20Maryland&kind=np",
      "/link?surface=University%20of%20Maryland",
      "/cluster?id=0",
      "/cluster?id=0&kind=rp",
  };
  for (const std::string& target : hot_targets) {
    ResponseCache::Hit hit;
    ASSERT_TRUE(cache.Find("GET", target, scratch, sizeof(scratch), &hit))
        << target;
    int status = 0;
    const std::string rendered =
        HandleCanonRequest(store_, "GET", target, no_counters, &status);
    ASSERT_EQ(status, 200) << target;
    EXPECT_EQ(hit.body, rendered) << target;
    EXPECT_NE(hit.header.find("Content-Length: " +
                              std::to_string(rendered.size())),
              std::string_view::npos)
        << hit.header;
  }
  // Everything else is a miss and falls back to the renderer: /stats,
  // unknown surfaces, malformed parameters, escaped keys, bad methods.
  ResponseCache::Hit hit;
  EXPECT_FALSE(cache.Find("GET", "/stats", scratch, sizeof(scratch), &hit));
  EXPECT_FALSE(
      cache.Find("GET", "/lookup?surface=zzz", scratch, sizeof(scratch), &hit));
  EXPECT_FALSE(cache.Find("GET", "/lookup", scratch, sizeof(scratch), &hit));
  EXPECT_FALSE(
      cache.Find("GET", "/cluster?id=99999", scratch, sizeof(scratch), &hit));
  EXPECT_FALSE(
      cache.Find("GET", "/cluster?id=abc", scratch, sizeof(scratch), &hit));
  EXPECT_FALSE(cache.Find("POST", "/lookup?surface=UMD", scratch,
                          sizeof(scratch), &hit));
  EXPECT_FALSE(cache.Find("GET", "/lookup?%73urface=UMD", scratch,
                          sizeof(scratch), &hit));
}

TEST_F(ServeWorld, CachedHotPathDoesNotAllocate) {
  const ResponseCache cache = BuildResponseCache(*store_);
  const std::string raw_head =
      "GET /lookup?surface=University%20of%20Maryland HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\nConnection: keep-alive\r\n\r\n";
  const std::string cluster_target = "/cluster?id=0";
  char scratch[2048];
  ResponseCache::Hit hit;
  // Warm-up, and prove these are hits at all.
  RequestHead head = ParseRequestHead(raw_head);
  ASSERT_TRUE(head.valid);
  ASSERT_TRUE(
      cache.Find(head.method, head.target, scratch, sizeof(scratch), &hit));
  ASSERT_TRUE(
      cache.Find("GET", cluster_target, scratch, sizeof(scratch), &hit));

  // The steady-state serving path: parse head -> binary-search the
  // cache (with a percent-escape decoded into stack scratch) -> hand
  // the arena views to writev. Zero heap allocations, counted by the
  // replaced global operator new on this thread.
  const uint64_t allocations_before = g_thread_allocations;
  for (int i = 0; i < 1000; ++i) {
    const RequestHead request = ParseRequestHead(raw_head);
    cache.Find(request.method, request.target, scratch, sizeof(scratch),
               &hit);
    cache.Find("GET", cluster_target, scratch, sizeof(scratch), &hit);
  }
  EXPECT_EQ(g_thread_allocations, allocations_before)
      << "cached hot path allocated on the heap";
}

// ---------- keep-alive over real sockets -------------------------------------

namespace {

int ConnectRaw(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout;
  timeout.tv_sec = 5;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendRaw(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string ReadUntilEof(int fd) {
  std::string out;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  return out;
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace

TEST_F(ServeWorld, KeepAliveConnectionServesManySequentialRequests) {
  ServeOptions options;
  options.num_workers = 2;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Publish(std::make_shared<const CanonStore>(*store_));

  Result<HttpConnection> connected = HttpConnection::Connect(server.port());
  ASSERT_TRUE(connected.ok()) << connected.status();
  HttpConnection conn = connected.MoveValueOrDie();
  const std::string lookup =
      "/lookup?surface=" + UrlEncode("University of Maryland");
  constexpr int kRequests = 50;
  for (int i = 0; i < kRequests; ++i) {
    // Mix the cached endpoint with /stats, which renders every time.
    const std::string target = (i % 3 == 2) ? std::string("/stats") : lookup;
    Result<HttpResponse> response = conn.Get(target);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response.ValueOrDie().status, 200);
    EXPECT_TRUE(LooksLikeJson(response.ValueOrDie().body))
        << response.ValueOrDie().body;
  }
  EXPECT_TRUE(conn.connected());
  EXPECT_EQ(conn.requests_sent(), static_cast<uint64_t>(kRequests));

  const ServeCounters counters = server.counters();
  EXPECT_EQ(counters.connections_accepted, 1u);
  // Every third request was a /stats scrape; the two counters split the
  // stream between them.
  EXPECT_GE(counters.requests + counters.scrapes,
            static_cast<uint64_t>(kRequests));
  EXPECT_GT(counters.scrapes, 0u);
  EXPECT_GE(counters.connections_reused, static_cast<uint64_t>(kRequests - 1));
  EXPECT_GT(counters.cache_hits, 0u);
  EXPECT_GT(counters.cache_misses, 0u);  // the /stats renders
  EXPECT_GT(counters.writev_bytes, 0u);
  server.Stop();
}

TEST_F(ServeWorld, PipelinedRequestsAreAnsweredInOrder) {
  ServeOptions options;
  options.num_workers = 1;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Publish(std::make_shared<const CanonStore>(*store_));

  const int fd = ConnectRaw(server.port());
  ASSERT_GE(fd, 0);
  // Three requests in one burst; the last one closes the connection so
  // EOF frames the full pipeline for the reader.
  const std::string batch =
      "GET /lookup?surface=UMD HTTP/1.1\r\nHost: h\r\n\r\n"
      "GET /cluster?id=0 HTTP/1.1\r\nHost: h\r\n\r\n"
      "GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
  ASSERT_TRUE(SendRaw(fd, batch));
  const std::string raw = ReadUntilEof(fd);
  ::close(fd);

  EXPECT_EQ(CountOccurrences(raw, "HTTP/1.1 200 OK"), 3u) << raw;
  const size_t first = raw.find("\"surface\":\"UMD\"");
  const size_t second = raw.find("\"cluster\":{");
  const size_t third = raw.find("\"published\":true");
  EXPECT_NE(first, std::string::npos) << raw;
  EXPECT_NE(second, std::string::npos) << raw;
  EXPECT_NE(third, std::string::npos) << raw;
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
  server.Stop();
}

TEST_F(ServeWorld, SlowLorisAndIdleConnectionsTimeOut) {
  ServeOptions options;
  options.num_workers = 1;
  options.idle_timeout_ms = 100;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Publish(std::make_shared<const CanonStore>(*store_));

  // Slow loris: a request head that trickles in and never completes.
  const int slow_fd = ConnectRaw(server.port());
  ASSERT_GE(slow_fd, 0);
  ASSERT_TRUE(SendRaw(slow_fd, "GET /stats HTT"));
  const std::string raw = ReadUntilEof(slow_fd);  // server must close
  ::close(slow_fd);
  EXPECT_NE(raw.find("HTTP/1.1 408"), std::string::npos) << raw;

  // Plain idle connection: closed quietly, no response owed.
  const int idle_fd = ConnectRaw(server.port());
  ASSERT_GE(idle_fd, 0);
  EXPECT_EQ(ReadUntilEof(idle_fd), "");
  ::close(idle_fd);

  EXPECT_GE(server.counters().connections_timed_out, 2u);
  server.Stop();
}

TEST_F(ServeWorld, OversizedRequestHeadIsRejectedWith431) {
  ServeOptions options;
  options.num_workers = 1;
  CanonServer server(options);  // default 16 KiB cap
  ASSERT_TRUE(server.Start().ok());
  server.Publish(std::make_shared<const CanonStore>(*store_));

  const int fd = ConnectRaw(server.port());
  ASSERT_GE(fd, 0);
  const std::string huge =
      "GET /stats HTTP/1.1\r\nX-Filler: " + std::string(18 * 1024, 'x');
  ASSERT_TRUE(SendRaw(fd, huge));  // no terminator: the cap must trip
  const std::string raw = ReadUntilEof(fd);
  ::close(fd);
  EXPECT_NE(raw.find("HTTP/1.1 431"), std::string::npos) << raw;
  EXPECT_GE(server.counters().bad_request, 1u);
  server.Stop();
}

TEST_F(ServeWorld, OversizedTargetLinesAreRejectedAtTheCap) {
  ServeOptions options;
  options.num_workers = 1;
  options.max_request_bytes = 512;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Publish(std::make_shared<const CanonStore>(*store_));

  // Query sizes straddling the cap; the expectation derives from the
  // full head size, so both sides of the boundary are exercised.
  const size_t kSurfaceLengths[] = {8, 200, 400, 470, 520, 2048};
  for (const size_t length : kSurfaceLengths) {
    const std::string head =
        "GET /lookup?surface=" + std::string(length, 'z') +
        " HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
    const bool expect_431 = head.size() > options.max_request_bytes;
    const int fd = ConnectRaw(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendRaw(fd, head));
    const std::string raw = ReadUntilEof(fd);
    ::close(fd);
    if (expect_431) {
      EXPECT_NE(raw.find("HTTP/1.1 431"), std::string::npos)
          << "surface length " << length << ": " << raw.substr(0, 64);
    } else {
      // Inside the cap: an ordinary answer (404 — no such surface).
      EXPECT_NE(raw.find("HTTP/1.1 404"), std::string::npos)
          << "surface length " << length << ": " << raw.substr(0, 64);
    }
  }
  server.Stop();
}

TEST_F(ServeWorld, PipelinedRequestsSurviveEveryByteSplit) {
  ServeOptions options;
  options.num_workers = 1;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Publish(std::make_shared<const CanonStore>(*store_));

  // Two pipelined requests; the second closes the connection so EOF
  // frames the pair. Splitting the burst at every byte boundary walks
  // the parser through every partial-head and partial-pipeline state.
  const std::string batch =
      "GET /lookup?surface=UMD HTTP/1.1\r\nHost: h\r\n\r\n"
      "GET /stats HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
  for (size_t split = 1; split < batch.size(); ++split) {
    const int fd = ConnectRaw(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendRaw(fd, std::string_view(batch).substr(0, split)));
    ASSERT_TRUE(SendRaw(fd, std::string_view(batch).substr(split)));
    const std::string raw = ReadUntilEof(fd);
    ::close(fd);
    EXPECT_EQ(CountOccurrences(raw, "HTTP/1.1 200 OK"), 2u)
        << "split at byte " << split;
    const size_t first = raw.find("\"surface\":\"UMD\"");
    const size_t second = raw.find("\"published\":true");
    EXPECT_NE(first, std::string::npos) << "split at byte " << split;
    EXPECT_NE(second, std::string::npos) << "split at byte " << split;
    EXPECT_LT(first, second) << "split at byte " << split;
  }
  server.Stop();
}

TEST_F(ServeWorld, PrerenderOffServesIdenticalBytesToPrerenderOn) {
  ServeOptions cached_options;
  cached_options.num_workers = 1;
  ServeOptions rendered_options;
  rendered_options.num_workers = 1;
  rendered_options.prerender = false;
  CanonServer cached_server(cached_options);
  CanonServer rendered_server(rendered_options);
  ASSERT_TRUE(cached_server.Start().ok());
  ASSERT_TRUE(rendered_server.Start().ok());
  auto store = std::make_shared<const CanonStore>(*store_);
  cached_server.Publish(store);
  rendered_server.Publish(store);

  const std::vector<std::string> targets = {
      "/lookup?surface=" + UrlEncode("University of Maryland"),
      "/link?surface=" + UrlEncode("UMD"),
      "/cluster?id=0",
      "/lookup?surface=zzz",  // 404s render identically too
  };
  for (const std::string& target : targets) {
    Result<HttpResponse> from_cache = HttpGet(cached_server.port(), target);
    Result<HttpResponse> from_render =
        HttpGet(rendered_server.port(), target);
    ASSERT_TRUE(from_cache.ok()) << from_cache.status();
    ASSERT_TRUE(from_render.ok()) << from_render.status();
    EXPECT_EQ(from_cache.ValueOrDie().status,
              from_render.ValueOrDie().status)
        << target;
    EXPECT_EQ(from_cache.ValueOrDie().body, from_render.ValueOrDie().body)
        << target;
  }
  EXPECT_GT(cached_server.counters().cache_hits, 0u);
  EXPECT_EQ(rendered_server.counters().cache_hits, 0u);
  cached_server.Stop();
  rendered_server.Stop();
}

// ---------- acceptance: keep-alive + cached path across republish ------------

TEST_F(ServeWorld, KeepAliveCachedReadersNeverMixGenerations) {
  // The PR 4 mixed-generation invariant, extended to the pre-rendered
  // cache and keep-alive connections: every body observed over a
  // long-lived connection while the bundle is republished underneath
  // must match SOME published generation byte-for-byte — the cache and
  // its store swap under one pointer, so a cached body can never pair
  // with a mismatched generation.
  ServeOptions options;
  options.num_workers = 4;  // prerender stays on (the default)
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string lookup_target =
      "/lookup?surface=" + UrlEncode("University of Maryland");
  const std::string link_target = "/link?surface=" + UrlEncode("U21");

  std::mutex expected_mutex;
  std::set<std::string> expected_bodies;
  auto remember = [&](const CanonStore& store) {
    ServeCounters no_counters;
    int status = 0;
    std::lock_guard<std::mutex> lock(expected_mutex);
    expected_bodies.insert(HandleCanonRequest(
        &store, "GET", "/lookup?surface=University%20of%20Maryland",
        no_counters, &status));
    expected_bodies.insert(HandleCanonRequest(
        &store, "GET", "/link?surface=U21", no_counters, &status));
  };

  JoclSession session(dataset_, signals_);
  session.SetPublishCallback([&](const JoclSession& s) {
    auto store = std::make_shared<const CanonStore>(BuildCanonStore(
        s.problem(), s.result(), dataset_->ckb, s.generation()));
    remember(*store);
    server.Publish(std::move(store));
  });
  ASSERT_TRUE(session.AddTriples({0}).ok());

  constexpr size_t kReaders = 4;
  constexpr size_t kRequestsPerReader = 150;
  std::vector<std::string> observed[kReaders];
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      HttpConnection conn;
      for (size_t i = 0; i < kRequestsPerReader; ++i) {
        if (!conn.connected()) {
          Result<HttpConnection> fresh = HttpConnection::Connect(server.port());
          if (!fresh.ok()) {
            failures.fetch_add(1);
            continue;
          }
          conn = fresh.MoveValueOrDie();
        }
        const std::string& target =
            (i % 2 == 0) ? lookup_target : link_target;
        Result<HttpResponse> response = conn.Get(target);
        if (!response.ok() ||
            (response.ValueOrDie().status != 200 &&
             response.ValueOrDie().status != 404) ||
            !LooksLikeJson(response.ValueOrDie().body)) {
          failures.fetch_add(1);
          continue;
        }
        observed[r].push_back(response.ValueOrDie().body);
      }
    });
  }
  ASSERT_TRUE(session.AddTriples({1}).ok());
  ASSERT_TRUE(session.AddTriples({2}).ok());
  ASSERT_TRUE(session.RemoveTriples({2}).ok());
  ASSERT_TRUE(session.AddTriples({2}).ok());
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  std::lock_guard<std::mutex> lock(expected_mutex);
  ASSERT_GE(expected_bodies.size(), 2u);
  size_t total = 0;
  for (size_t r = 0; r < kReaders; ++r) {
    total += observed[r].size();
    for (const std::string& body : observed[r]) {
      EXPECT_TRUE(expected_bodies.count(body) == 1)
          << "mixed-generation or torn response: " << body;
    }
  }
  EXPECT_EQ(total, kReaders * kRequestsPerReader);
  const ServeCounters counters = server.counters();
  EXPECT_GE(counters.publishes, 5u);
  EXPECT_GT(counters.cache_hits, 0u);
  EXPECT_GT(counters.connections_reused, 0u);
  server.Stop();
}

// ---------- session publish hook --------------------------------------------

TEST_F(ServeWorld, SessionPublishCallbackFiresPerSuccessfulBatch) {
  JoclSession session(dataset_, signals_);
  size_t published = 0;
  session.SetPublishCallback([&](const JoclSession& s) {
    ++published;
    EXPECT_EQ(s.generation(), published);
    EXPECT_EQ(s.problem().triples, s.result().triples);
  });
  ASSERT_TRUE(session.AddTriples({0, 1}).ok());
  ASSERT_TRUE(session.AddTriples({2}).ok());
  ASSERT_TRUE(session.RemoveTriples({2}).ok());
  EXPECT_EQ(published, 3u);
  session.SetPublishCallback(nullptr);
  ASSERT_TRUE(session.AddTriples({2}).ok());
  EXPECT_EQ(published, 3u);
}

}  // namespace
}  // namespace jocl
