// Serving-layer tests: CanonStore construction over a decoded result,
// snapshot round-trip byte-identity, corruption handling (truncated /
// bit-flipped / wrong-magic / future-version files must fail with clean
// Status errors), request routing, and the acceptance bar — correct
// responses under >= 4 concurrent HTTP readers while an ingestion
// session swaps the published store mid-flight.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "core/session.h"
#include "serve/canon_store.h"
#include "serve/http_client.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/snapshot_io.h"

namespace jocl {
namespace {

// ---------- a tiny world with a known canonical structure --------------------
//
// The paper's Figure 1(a) example: "University of Maryland" / "UMD" are
// the same entity, "Universitas 21" / "U21" likewise, and the CKB knows
// both through anchors + PPDB.
class ServeWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset();
    dataset_->name = "serve-world";
    CuratedKb& ckb = dataset_->ckb;
    EntityId maryland = ckb.AddEntity("maryland");
    EntityId u21 = ckb.AddEntity("universitas 21");
    EntityId uva = ckb.AddEntity("university of virginia");
    EntityId umd = ckb.AddEntity("university of maryland");
    RelationId contained_by = ckb.AddRelation("location.contained_by");
    RelationId founded = ckb.AddRelation("organizations_founded");
    ASSERT_TRUE(ckb.AddRelationAlias(contained_by, "locate in").ok());
    ASSERT_TRUE(ckb.AddRelationAlias(founded, "member of").ok());
    ASSERT_TRUE(ckb.AddFact(umd, contained_by, maryland).ok());
    ASSERT_TRUE(ckb.AddFact(uva, founded, u21).ok());
    ASSERT_TRUE(ckb.AddAnchor("university of maryland", umd, 95).ok());
    ASSERT_TRUE(ckb.AddAnchor("umd", umd, 40).ok());
    ASSERT_TRUE(ckb.AddAnchor("maryland", maryland, 70).ok());
    ASSERT_TRUE(ckb.AddAnchor("universitas 21", u21, 30).ok());
    ASSERT_TRUE(ckb.AddAnchor("u21", u21, 12).ok());
    ASSERT_TRUE(ckb.AddAnchor("university of virginia", uva, 80).ok());

    OpenKb& okb = dataset_->okb;
    ASSERT_TRUE(
        okb.AddTriple("University of Maryland", "locate in", "Maryland")
            .ok());
    ASSERT_TRUE(
        okb.AddTriple("UMD", "be a member of", "Universitas 21").ok());
    ASSERT_TRUE(okb.AddTriple("University of Virginia",
                              "be an early member of", "U21")
                    .ok());
    for (size_t t = 0; t < okb.size(); ++t) {
      dataset_->gold_subject_entity.push_back(kNilId);
      dataset_->gold_relation.push_back(kNilId);
      dataset_->gold_object_entity.push_back(kNilId);
      dataset_->gold_np_group.push_back(static_cast<int64_t>(t * 2));
      dataset_->gold_np_group.push_back(static_cast<int64_t>(t * 2 + 1));
      dataset_->gold_rp_group.push_back(static_cast<int64_t>(t));
    }
    dataset_->ppdb.AddCluster({"university of maryland", "umd"});
    dataset_->ppdb.AddCluster({"universitas 21", "u21"});
    dataset_->ppdb.AddCluster({"be a member of", "be an early member of"});
    signals_ = new SignalBundle(BuildSignals(*dataset_).MoveValueOrDie());

    std::vector<size_t> all = {0, 1, 2};
    result_ = new JoclResult(
        JoclRuntime().Infer(*dataset_, *signals_, all).MoveValueOrDie());
    problem_ = new JoclProblem(BuildProblem(*dataset_, *signals_, all));
    store_ = new CanonStore(
        BuildCanonStore(*problem_, *result_, dataset_->ckb, /*generation=*/7));
  }

  static void TearDownTestSuite() {
    delete store_;
    delete problem_;
    delete result_;
    delete signals_;
    delete dataset_;
    store_ = nullptr;
    problem_ = nullptr;
    result_ = nullptr;
    signals_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
  static JoclResult* result_;
  static JoclProblem* problem_;
  static CanonStore* store_;
};

Dataset* ServeWorld::dataset_ = nullptr;
SignalBundle* ServeWorld::signals_ = nullptr;
JoclResult* ServeWorld::result_ = nullptr;
JoclProblem* ServeWorld::problem_ = nullptr;
CanonStore* ServeWorld::store_ = nullptr;

// ---------- CanonStore -------------------------------------------------------

TEST_F(ServeWorld, StoreIndexesSurfacesClustersAndLinks) {
  const CanonStore& store = *store_;
  EXPECT_EQ(store.triple_count, 3u);
  EXPECT_EQ(store.generation, 7u);
  ASSERT_TRUE(ValidateCanonStore(store).ok());

  // Surfaces keep the OKB's raw casing; lookups are exact-match.
  const int64_t umd = store.FindSurface(CanonKind::kNp, "UMD");
  const int64_t long_form =
      store.FindSurface(CanonKind::kNp, "University of Maryland");
  ASSERT_GE(umd, 0);
  ASSERT_GE(long_form, 0);
  EXPECT_EQ(store.FindSurface(CanonKind::kNp, "no such surface"), -1);
  EXPECT_EQ(store.FindSurface(CanonKind::kRp, "UMD"), -1);
  EXPECT_GE(store.FindSurface(CanonKind::kRp, "locate in"), 0);

  // The joint model canonicalizes UMD with its long form; both surfaces
  // sit in one cluster whose canonical link is the UMD entity.
  ConstSpan<uint32_t> umd_clusters = store.ClustersOf(CanonKind::kNp, umd);
  ConstSpan<uint32_t> long_clusters =
      store.ClustersOf(CanonKind::kNp, long_form);
  ASSERT_EQ(umd_clusters.size(), 1u);
  ASSERT_EQ(long_clusters.size(), 1u);
  EXPECT_EQ(umd_clusters[0], long_clusters[0]);
  const size_t cluster = umd_clusters[0];
  ConstSpan<uint32_t> members =
      store.ClusterMembers(CanonKind::kNp, cluster);
  EXPECT_EQ(members.size(), 2u);
  bool saw_umd = false;
  bool saw_long = false;
  for (uint32_t member : members) {
    if (store.SurfaceText(CanonKind::kNp, member) == "UMD") saw_umd = true;
    if (store.SurfaceText(CanonKind::kNp, member) ==
        "University of Maryland") {
      saw_long = true;
    }
  }
  EXPECT_TRUE(saw_umd);
  EXPECT_TRUE(saw_long);
  EXPECT_EQ(store.ClusterLinkName(CanonKind::kNp, cluster),
            "university of maryland");
  EXPECT_EQ(store.ClusterLink(CanonKind::kNp, cluster),
            dataset_->ckb.FindEntityByName("university of maryland"));
  EXPECT_EQ(store.MentionCount(CanonKind::kNp, umd), 1u);
}

TEST_F(ServeWorld, StoreIsDeterministic) {
  CanonStore rebuilt =
      BuildCanonStore(*problem_, *result_, dataset_->ckb, 7);
  EXPECT_EQ(SerializeSnapshot(rebuilt), SerializeSnapshot(*store_));
}

// ---------- snapshot I/O -----------------------------------------------------

TEST_F(ServeWorld, SnapshotRoundTripIsByteIdentical) {
  const std::string bytes = SerializeSnapshot(*store_);
  Result<CanonStore> loaded = DeserializeSnapshot(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SerializeSnapshot(loaded.ValueOrDie()), bytes);

  const std::string path = ::testing::TempDir() + "/jocl_serve_test.snap";
  size_t written = 0;
  ASSERT_TRUE(SaveSnapshot(*store_, path, &written).ok());
  EXPECT_EQ(written, bytes.size());
  Result<CanonStore> from_file = LoadSnapshot(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  EXPECT_EQ(SerializeSnapshot(from_file.ValueOrDie()), bytes);
  const CanonStore& reloaded = from_file.ValueOrDie();
  EXPECT_EQ(reloaded.FindSurface(CanonKind::kNp, "UMD"),
            store_->FindSurface(CanonKind::kNp, "UMD"));
  std::remove(path.c_str());
}

TEST_F(ServeWorld, LoadRejectsTruncatedFile) {
  const std::string bytes = SerializeSnapshot(*store_);
  // Mid-payload truncation: the header's promised size no longer holds.
  Result<CanonStore> cut =
      DeserializeSnapshot(std::string_view(bytes).substr(0, bytes.size() - 7));
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), StatusCode::kIOError);
  EXPECT_NE(cut.status().message().find("truncated"), std::string::npos)
      << cut.status();
  // Header truncation.
  Result<CanonStore> header =
      DeserializeSnapshot(std::string_view(bytes).substr(0, 12));
  ASSERT_FALSE(header.ok());
  EXPECT_NE(header.status().message().find("header"), std::string::npos);
  // Empty file.
  EXPECT_FALSE(DeserializeSnapshot("").ok());
}

TEST_F(ServeWorld, LoadRejectsFlippedChecksumAndPayloadBytes) {
  const std::string bytes = SerializeSnapshot(*store_);
  // Flip one payload byte: the stored checksum no longer matches.
  std::string corrupt = bytes;
  corrupt[kSnapshotHeaderBytes + corrupt.size() / 2] ^= 0x40;
  Result<CanonStore> payload_flip = DeserializeSnapshot(corrupt);
  ASSERT_FALSE(payload_flip.ok());
  EXPECT_NE(payload_flip.status().message().find("checksum"),
            std::string::npos)
      << payload_flip.status();
  // Flip one byte of the stored checksum itself.
  corrupt = bytes;
  corrupt[24] ^= 0x01;
  Result<CanonStore> checksum_flip = DeserializeSnapshot(corrupt);
  ASSERT_FALSE(checksum_flip.ok());
  EXPECT_NE(checksum_flip.status().message().find("checksum"),
            std::string::npos);
}

TEST_F(ServeWorld, LoadRejectsWrongMagic) {
  std::string corrupt = SerializeSnapshot(*store_);
  corrupt[0] = 'X';
  Result<CanonStore> loaded = DeserializeSnapshot(corrupt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST_F(ServeWorld, LoadRejectsFutureVersion) {
  std::string corrupt = SerializeSnapshot(*store_);
  corrupt[8] = 2;  // version field (little-endian u32 at offset 8)
  Result<CanonStore> loaded = DeserializeSnapshot(corrupt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("version 2"), std::string::npos)
      << loaded.status();
}

TEST(SnapshotIoTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadSnapshot("/nonexistent/dir/store.snap").ok());
}

// ---------- JSON helpers -----------------------------------------------------

TEST(JsonTest, EscapesSpecials) {
  EXPECT_EQ(JsonQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonTest, LooksLikeJsonAcceptsAndRejects) {
  EXPECT_TRUE(LooksLikeJson("{\"a\":[1,2,{\"b\":\"}\"}]}"));
  EXPECT_TRUE(LooksLikeJson("  [1,2,3]\n"));
  EXPECT_FALSE(LooksLikeJson("plain text"));
  EXPECT_FALSE(LooksLikeJson("{\"a\":1"));
  EXPECT_FALSE(LooksLikeJson("{\"a\":1}}"));
  EXPECT_FALSE(LooksLikeJson("{} trailing"));
}

// ---------- request routing (no sockets) -------------------------------------

TEST_F(ServeWorld, RoutingAnswersAndErrors) {
  ServeCounters counters;
  int status = 0;
  // /stats works before any store is published.
  std::string body =
      HandleCanonRequest(nullptr, "GET", "/stats", counters, &status);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(LooksLikeJson(body)) << body;
  EXPECT_NE(body.find("\"published\":false"), std::string::npos);
  // Data endpoints 503 before a store exists.
  body = HandleCanonRequest(nullptr, "GET", "/lookup?surface=umd", counters,
                            &status);
  EXPECT_EQ(status, 503);
  EXPECT_TRUE(LooksLikeJson(body));
  // Unknown endpoint, bad method, missing/invalid parameters.
  body = HandleCanonRequest(store_, "GET", "/nope", counters, &status);
  EXPECT_EQ(status, 404);
  body = HandleCanonRequest(store_, "POST", "/lookup?surface=x", counters,
                            &status);
  EXPECT_EQ(status, 405);
  body = HandleCanonRequest(store_, "GET", "/lookup", counters, &status);
  EXPECT_EQ(status, 400);
  body = HandleCanonRequest(store_, "GET", "/lookup?surface=x&kind=zz",
                            counters, &status);
  EXPECT_EQ(status, 400);
  body = HandleCanonRequest(store_, "GET", "/cluster?id=abc", counters,
                            &status);
  EXPECT_EQ(status, 400);
  body = HandleCanonRequest(store_, "GET", "/cluster?id=99999", counters,
                            &status);
  EXPECT_EQ(status, 404);
  // Correct answers.
  body = HandleCanonRequest(store_, "GET",
                            "/lookup?surface=UMD&kind=np", counters, &status);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(LooksLikeJson(body)) << body;
  EXPECT_NE(body.find("university of maryland"), std::string::npos) << body;
  body = HandleCanonRequest(store_, "GET",
                            "/link?surface=University%20of%20Maryland",
                            counters, &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"link\":{"), std::string::npos) << body;
  body = HandleCanonRequest(store_, "GET", "/lookup?surface=zzz", counters,
                            &status);
  EXPECT_EQ(status, 404);
  EXPECT_TRUE(LooksLikeJson(body));
}

// ---------- HTTP server ------------------------------------------------------

TEST_F(ServeWorld, ServerAnswersOverHttp) {
  ServeOptions options;
  options.num_workers = 2;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  server.Publish(std::make_shared<const CanonStore>(*store_));

  Result<HttpResponse> lookup = HttpGet(
      server.port(), "/lookup?surface=" + UrlEncode("University of Maryland"));
  ASSERT_TRUE(lookup.ok()) << lookup.status();
  EXPECT_EQ(lookup.ValueOrDie().status, 200);
  EXPECT_TRUE(LooksLikeJson(lookup.ValueOrDie().body))
      << lookup.ValueOrDie().body;
  EXPECT_NE(lookup.ValueOrDie().body.find("UMD"), std::string::npos)
      << lookup.ValueOrDie().body;

  Result<HttpResponse> stats = HttpGet(server.port(), "/stats");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.ValueOrDie().status, 200);
  EXPECT_TRUE(LooksLikeJson(stats.ValueOrDie().body));
  EXPECT_NE(stats.ValueOrDie().body.find("\"published\":true"),
            std::string::npos);

  Result<HttpResponse> missing =
      HttpGet(server.port(), "/lookup?surface=zzz");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(missing.ValueOrDie().status, 404);

  const ServeCounters counters = server.counters();
  EXPECT_GE(counters.requests, 3u);
  EXPECT_GE(counters.ok, 2u);
  EXPECT_GE(counters.not_found, 1u);
  server.Stop();
}

// ---------- acceptance: concurrent readers across ingestion swaps ------------

TEST_F(ServeWorld, ConcurrentReadersSurviveStoreSwapsMidFlight) {
  // An ingestion session over the world's triples, published batch by
  // batch; every response a reader observes must be byte-equal to the
  // deterministic answer of SOME published generation (or the canned
  // not-found body) — never torn, mixed or blocking.
  ServeOptions options;
  options.num_workers = 4;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string lookup_target =
      "/lookup?surface=" + UrlEncode("University of Maryland");
  const std::string link_target = "/link?surface=" + UrlEncode("U21");

  std::mutex expected_mutex;
  std::set<std::string> expected_bodies;
  auto remember = [&](const CanonStore& store) {
    ServeCounters counters;
    int status = 0;
    std::lock_guard<std::mutex> lock(expected_mutex);
    expected_bodies.insert(HandleCanonRequest(
        &store, "GET", "/lookup?surface=University%20of%20Maryland",
        counters, &status));
    expected_bodies.insert(HandleCanonRequest(&store, "GET",
                                              "/link?surface=U21", counters,
                                              &status));
  };

  JoclSession session(dataset_, signals_);
  session.SetPublishCallback([&](const JoclSession& s) {
    auto store = std::make_shared<const CanonStore>(BuildCanonStore(
        s.problem(), s.result(), dataset_->ckb, s.generation()));
    remember(*store);           // expected set grows before the swap…
    server.Publish(std::move(store));  // …so readers never see a surprise
  });
  ASSERT_TRUE(session.AddTriples({0}).ok());  // first store is live

  constexpr size_t kReaders = 4;
  constexpr size_t kRequestsPerReader = 120;
  std::vector<std::string> observed[kReaders];
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (size_t i = 0; i < kRequestsPerReader; ++i) {
        const std::string& target =
            (i % 2 == 0) ? lookup_target : link_target;
        Result<HttpResponse> response = HttpGet(server.port(), target);
        // "U21" only enters the store once triple 2 is ingested, so 404
        // (with the canned not-found body) is a correct early answer.
        if (!response.ok() ||
            (response.ValueOrDie().status != 200 &&
             response.ValueOrDie().status != 404) ||
            !LooksLikeJson(response.ValueOrDie().body)) {
          failures.fetch_add(1);
          continue;
        }
        observed[r].push_back(response.ValueOrDie().body);
      }
    });
  }
  // Swap the store mid-flight: grow, then shrink, then grow again.
  ASSERT_TRUE(session.AddTriples({1}).ok());
  ASSERT_TRUE(session.AddTriples({2}).ok());
  ASSERT_TRUE(session.RemoveTriples({2}).ok());
  ASSERT_TRUE(session.AddTriples({2}).ok());
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  std::lock_guard<std::mutex> lock(expected_mutex);
  ASSERT_GE(expected_bodies.size(), 2u);
  size_t total = 0;
  for (size_t r = 0; r < kReaders; ++r) {
    total += observed[r].size();
    for (const std::string& body : observed[r]) {
      EXPECT_TRUE(expected_bodies.count(body) == 1)
          << "torn or stale-unknown response: " << body;
    }
  }
  EXPECT_EQ(total, kReaders * kRequestsPerReader);
  const ServeCounters counters = server.counters();
  EXPECT_GE(counters.publishes, 5u);
  EXPECT_GE(counters.requests, total);
  server.Stop();
}

TEST_F(ServeWorld, RetrainedWeightsReachReadersWithoutDroppingRequests) {
  // The learn -> infer -> serve loop's last hop: a live session hot-swaps
  // new weights via UpdateWeights while readers keep hitting the server.
  // Every in-flight response must stay valid, and after the swap a reader
  // must observe the post-retrain generation.
  ServeOptions options;
  options.num_workers = 2;
  CanonServer server(options);
  ASSERT_TRUE(server.Start().ok());

  JoclSession session(dataset_, signals_);
  session.SetPublishCallback([&](const JoclSession& s) {
    server.Publish(std::make_shared<const CanonStore>(BuildCanonStore(
        s.problem(), s.result(), dataset_->ckb, s.generation())));
  });
  ASSERT_TRUE(session.AddTriples({0, 1, 2}).ok());
  const size_t generation_before = session.generation();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<size_t> served{0};
  std::thread reader([&] {
    while (!stop.load()) {
      Result<HttpResponse> response = HttpGet(server.port(), "/stats");
      if (!response.ok() || response.ValueOrDie().status != 200 ||
          !LooksLikeJson(response.ValueOrDie().body)) {
        failures.fetch_add(1);
      } else {
        served.fetch_add(1);
      }
    }
  });

  // Retrain stand-in: any new weight vector exercises the same path as a
  // learner-produced one (ShardedLearner needs gold labels this
  // handcrafted world intentionally keeps minimal).
  std::vector<double> retrained = Jocl::DefaultWeights();
  retrained[WeightLayout::kAlpha1] = 2.5;
  retrained[WeightLayout::kBeta5] = 0.4;
  SessionStats stats;
  ASSERT_TRUE(session.UpdateWeights(retrained, &stats).ok());
  EXPECT_EQ(session.generation(), generation_before + 1);
  EXPECT_EQ(stats.dirty_shards, stats.shards);

  // Post-swap, readers observe the retrained generation.
  Result<HttpResponse> after = HttpGet(server.port(), "/stats");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after.ValueOrDie().status, 200);
  EXPECT_NE(after.ValueOrDie().body.find(
                "\"generation\":" + std::to_string(session.generation())),
            std::string::npos)
      << after.ValueOrDie().body;

  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(served.load(), 0u);
  server.Stop();
}

// ---------- session publish hook --------------------------------------------

TEST_F(ServeWorld, SessionPublishCallbackFiresPerSuccessfulBatch) {
  JoclSession session(dataset_, signals_);
  size_t published = 0;
  session.SetPublishCallback([&](const JoclSession& s) {
    ++published;
    EXPECT_EQ(s.generation(), published);
    EXPECT_EQ(s.problem().triples, s.result().triples);
  });
  ASSERT_TRUE(session.AddTriples({0, 1}).ok());
  ASSERT_TRUE(session.AddTriples({2}).ok());
  ASSERT_TRUE(session.RemoveTriples({2}).ok());
  EXPECT_EQ(published, 3u);
  session.SetPublishCallback(nullptr);
  ASSERT_TRUE(session.AddTriples({2}).ok());
  EXPECT_EQ(published, 3u);
}

}  // namespace
}  // namespace jocl
