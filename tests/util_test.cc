#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace jocl {
namespace {

// ---------- Status / Result -------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "invalid argument: bad input");
}

TEST(StatusTest, EveryCodeHasDistinctName) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kIOError,
        StatusCode::kInternal}) {
    names.insert(StatusCodeToString(code));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveValueOut) {
  Result<std::string> r(std::string("payload"));
  std::string v = r.MoveValueOrDie();
  EXPECT_EQ(v, "payload");
}

// ---------- Rng ------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(10), 10u);
  }
  EXPECT_EQ(rng.UniformUint64(1), 0u);
  EXPECT_EQ(rng.UniformUint64(0), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0.0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.03);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.6, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(3);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = items;
  rng.Shuffle(&items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(RngTest, SplitStreamsDecorrelated) {
  Rng parent(42);
  Rng child_a = parent.Split(1);
  Rng child_b = parent.Split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.NextUint64() == child_b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfSamplerTest, PmfSumsToOneAndDecreases) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (size_t r = 0; r < zipf.size(); ++r) {
    total += zipf.Pmf(r);
    if (r > 0) EXPECT_LE(zipf.Pmf(r), zipf.Pmf(r - 1) + 1e-12);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SampleSkewsTowardLowRanks) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(8);
  int low = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(&rng) < 5) ++low;
  }
  // The top 5 of 50 ranks should dominate under s = 1.2.
  EXPECT_GT(low, kDraws / 3);
}

// ---------- string_util -------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::vector<std::string> pieces = {"x", "", "yz", "q"};
  EXPECT_EQ(Split(Join(pieces, "|"), '|'), pieces);
}

TEST(StringUtilTest, SplitWhitespaceDropsRuns) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("university of md", "uni"));
  EXPECT_FALSE(StartsWith("md", "university"));
  EXPECT_TRUE(EndsWith("founded by", "by"));
  EXPECT_FALSE(EndsWith("by", "founded by"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

}  // namespace
}  // namespace jocl
