#include <gtest/gtest.h>

#include <cmath>

#include "graph/factor_graph.h"
#include "graph/exact.h"
#include "graph/flat_lbp.h"
#include "graph/learner.h"
#include "util/rng.h"

namespace jocl {
namespace {

// Builds a FeatureTable with one fixed log-potential per assignment, tied
// to weight 0 with weight value 1 (so log phi = value when w[0] = 1).
FeatureTable FixedTable(std::vector<double> log_potentials) {
  return FeatureTable::Uniform(0, std::move(log_potentials));
}

// ---------- FactorGraph ------------------------------------------------------

TEST(FactorGraphTest, AddVariablesAndFactors) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(3);
  EXPECT_EQ(g.variable_count(), 2u);
  auto f = g.AddFactor({a, b}, FixedTable(std::vector<double>(6, 0.0)));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(g.factor_count(), 1u);
  EXPECT_EQ(g.AssignmentCount(f.ValueOrDie()), 6u);
  EXPECT_EQ(g.AttachedFactors(a).size(), 1u);
  EXPECT_EQ(g.AttachedFactors(b).size(), 1u);
}

TEST(FactorGraphTest, RejectsBadScopesAndTables) {
  FactorGraph g;
  VariableId a = g.AddVariable(2);
  EXPECT_FALSE(g.AddFactor({99}, FixedTable({0.0, 0.0})).ok());
  EXPECT_FALSE(g.AddFactor({a}, FixedTable({0.0, 0.0, 0.0})).ok());
}

TEST(FactorGraphTest, ClampValidation) {
  FactorGraph g;
  VariableId a = g.AddVariable(2);
  EXPECT_FALSE(g.Clamp(99, 0).ok());
  EXPECT_FALSE(g.Clamp(a, 5).ok());
  EXPECT_TRUE(g.Clamp(a, 1).ok());
  EXPECT_TRUE(g.IsClamped(a));
  g.Unclamp(a);
  EXPECT_FALSE(g.IsClamped(a));
}

TEST(FactorGraphTest, AssignmentDecodeRowMajorLastFastest) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(3);
  FactorId f =
      g.AddFactor({a, b}, FixedTable(std::vector<double>(6, 0.0)))
          .ValueOrDie();
  std::vector<size_t> states;
  g.DecodeAssignment(f, 4, &states);  // 4 = 1*3 + 1
  EXPECT_EQ(states, (std::vector<size_t>{1, 1}));
  g.DecodeAssignment(f, 2, &states);  // 2 = 0*3 + 2
  EXPECT_EQ(states, (std::vector<size_t>{0, 2}));
}

// ---------- LogSumExp ---------------------------------------------------------

TEST(LogSumExpTest, MatchesDirectComputation) {
  EXPECT_NEAR(LogSumExp({std::log(1.0), std::log(3.0)}), std::log(4.0),
              1e-12);
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_TRUE(std::isinf(LogSumExp({})));
}

// ---------- LBP vs exact -----------------------------------------------------

// Single unary factor: marginal must equal the softmax of potentials.
TEST(LbpTest, SingleVariableMatchesSoftmax) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId v = g.AddVariable(3);
  ASSERT_TRUE(g.AddFactor({v}, FixedTable({0.0, 1.0, 2.0})).ok());
  std::vector<double> w = {1.0};
  FlatLbpEngine engine(&g, &w);
  LbpResult result = engine.Run();
  EXPECT_TRUE(result.converged);
  double z = std::exp(0.0) + std::exp(1.0) + std::exp(2.0);
  EXPECT_NEAR(result.marginals[v][0], std::exp(0.0) / z, 1e-9);
  EXPECT_NEAR(result.marginals[v][1], std::exp(1.0) / z, 1e-9);
  EXPECT_NEAR(result.marginals[v][2], std::exp(2.0) / z, 1e-9);
}

// Chain (tree): LBP is exact.
TEST(LbpTest, ChainMatchesExactInference) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  VariableId c = g.AddVariable(2);
  // Pairwise attraction between neighbors + a bias on a.
  ASSERT_TRUE(g.AddFactor({a}, FixedTable({0.3, 0.9})).ok());
  ASSERT_TRUE(g.AddFactor({a, b}, FixedTable({0.8, 0.1, 0.1, 0.8})).ok());
  ASSERT_TRUE(g.AddFactor({b, c}, FixedTable({0.7, 0.2, 0.2, 0.7})).ok());
  std::vector<double> w = {1.3};
  ExactResult exact = ExactInference(g, w);
  FlatLbpEngine engine(&g, &w);
  LbpResult lbp = engine.Run();
  for (VariableId v : {a, b, c}) {
    for (size_t s = 0; s < 2; ++s) {
      EXPECT_NEAR(lbp.marginals[v][s], exact.marginals[v][s], 1e-6)
          << "variable " << v << " state " << s;
    }
  }
}

// Clamping conditions the distribution.
TEST(LbpTest, ClampedChainMatchesExact) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  ASSERT_TRUE(g.AddFactor({a, b}, FixedTable({1.0, 0.0, 0.0, 1.0})).ok());
  ASSERT_TRUE(g.Clamp(a, 1).ok());
  std::vector<double> w = {2.0};
  ExactResult exact = ExactInference(g, w);
  FlatLbpEngine engine(&g, &w);
  LbpResult lbp = engine.Run();
  EXPECT_NEAR(lbp.marginals[a][1], 1.0, 1e-12);
  EXPECT_NEAR(lbp.marginals[b][1], exact.marginals[b][1], 1e-9);
  // Strong coupling: b should strongly prefer state 1 given a = 1.
  EXPECT_GT(lbp.marginals[b][1], 0.8);
}

// Ternary factor handling (the shape of U1/U4/U5).
TEST(LbpTest, TernaryFactorTreeMatchesExact) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  VariableId c = g.AddVariable(2);
  // Reward all-equal assignments (000 and 111).
  std::vector<double> values(8, 0.1);
  values[0] = 0.9;
  values[7] = 0.9;
  ASSERT_TRUE(g.AddFactor({a, b, c}, FixedTable(values)).ok());
  ASSERT_TRUE(g.AddFactor({a}, FixedTable({0.0, 1.5})).ok());
  std::vector<double> w = {2.0};
  ExactResult exact = ExactInference(g, w);
  FlatLbpEngine engine(&g, &w);
  LbpResult lbp = engine.Run();
  for (VariableId v : {a, b, c}) {
    EXPECT_NEAR(lbp.marginals[v][1], exact.marginals[v][1], 1e-6);
  }
}

// Loopy graphs: LBP approximates; on small random graphs with moderate
// potentials it should stay close to exact.
class LoopyAccuracy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LoopyAccuracy, CloseToExactOnSmallRandomLoopyGraphs) {
  Rng rng(GetParam());
  FactorGraph g;
  g.set_weight_count(1);
  constexpr size_t kVars = 5;
  std::vector<VariableId> vars;
  for (size_t i = 0; i < kVars; ++i) vars.push_back(g.AddVariable(2));
  // A ring plus one chord -> loops guaranteed.
  auto add_pair = [&](VariableId x, VariableId y) {
    double s = rng.UniformDouble(0.2, 0.8);
    ASSERT_TRUE(
        g.AddFactor({x, y}, FixedTable({s, 1.0 - s, 1.0 - s, s})).ok());
  };
  for (size_t i = 0; i < kVars; ++i) add_pair(vars[i], vars[(i + 1) % kVars]);
  add_pair(vars[0], vars[2]);
  for (size_t i = 0; i < kVars; ++i) {
    double bias = rng.UniformDouble(0.0, 1.0);
    ASSERT_TRUE(g.AddFactor({vars[i]}, FixedTable({0.0, bias})).ok());
  }
  std::vector<double> w = {1.0};
  ExactResult exact = ExactInference(g, w);
  LbpOptions options;
  options.max_iterations = 50;
  options.damping = 0.3;
  FlatLbpEngine engine(&g, &w, options);
  LbpResult lbp = engine.Run();
  for (size_t i = 0; i < kVars; ++i) {
    EXPECT_NEAR(lbp.marginals[vars[i]][1], exact.marginals[vars[i]][1], 0.05)
        << "seed " << GetParam() << " var " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopyAccuracy,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// LBP is exact on trees — verify against brute force on random trees with
// mixed cardinalities, free and clamped.
class RandomTreeExactness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTreeExactness, MatchesBruteForce) {
  Rng rng(GetParam());
  FactorGraph g;
  g.set_weight_count(1);
  constexpr size_t kVars = 7;
  std::vector<VariableId> vars;
  std::vector<size_t> cards;
  for (size_t i = 0; i < kVars; ++i) {
    size_t card = 2 + rng.UniformUint64(3);  // 2..4 states
    cards.push_back(card);
    vars.push_back(g.AddVariable(card));
  }
  // Random tree: connect each node i > 0 to a random earlier node.
  for (size_t i = 1; i < kVars; ++i) {
    size_t parent = rng.UniformUint64(i);
    std::vector<double> table(cards[parent] * cards[i]);
    for (double& v : table) v = rng.UniformDouble(-1.0, 1.0);
    ASSERT_TRUE(
        g.AddFactor({vars[parent], vars[i]}, FixedTable(table)).ok());
  }
  // Random unary biases.
  for (size_t i = 0; i < kVars; ++i) {
    std::vector<double> table(cards[i]);
    for (double& v : table) v = rng.UniformDouble(-1.0, 1.0);
    ASSERT_TRUE(g.AddFactor({vars[i]}, FixedTable(table)).ok());
  }
  std::vector<double> w = {1.0};

  // Free pass.
  {
    ExactResult exact = ExactInference(g, w);
    LbpOptions options;
    options.max_iterations = 60;
    FlatLbpEngine engine(&g, &w, options);
    engine.Run();
    for (size_t i = 0; i < kVars; ++i) {
      for (size_t s = 0; s < cards[i]; ++s) {
        EXPECT_NEAR(engine.Marginal(vars[i])[s], exact.marginals[vars[i]][s],
                    1e-6);
      }
    }
  }
  // Clamped pass: clamp two random variables.
  ASSERT_TRUE(g.Clamp(vars[0], rng.UniformUint64(cards[0])).ok());
  size_t other = 1 + rng.UniformUint64(kVars - 1);
  ASSERT_TRUE(g.Clamp(vars[other], rng.UniformUint64(cards[other])).ok());
  {
    ExactResult exact = ExactInference(g, w);
    LbpOptions options;
    options.max_iterations = 60;
    FlatLbpEngine engine(&g, &w, options);
    engine.Run();
    for (size_t i = 0; i < kVars; ++i) {
      for (size_t s = 0; s < cards[i]; ++s) {
        EXPECT_NEAR(engine.Marginal(vars[i])[s], exact.marginals[vars[i]][s],
                    1e-6);
      }
    }
    // Expected features must match too (this is what the learner uses).
    std::vector<double> expected(1, 0.0);
    engine.AccumulateExpectedFeatures(&expected);
    // Sum over factors of E[h]; exact gives the same aggregate.
    EXPECT_NEAR(expected[0], exact.expected_features[0], 1e-6);
  }
  g.UnclampAll();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeExactness,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

TEST(LbpTest, ConvergesWithinPaperIterationBudget) {
  // The paper reports convergence within 20 sweeps; check a moderate graph.
  Rng rng(4);
  FactorGraph g;
  g.set_weight_count(1);
  std::vector<VariableId> vars;
  for (int i = 0; i < 30; ++i) vars.push_back(g.AddVariable(2));
  for (int i = 0; i + 1 < 30; ++i) {
    double s = rng.UniformDouble(0.3, 0.7);
    ASSERT_TRUE(g.AddFactor({vars[static_cast<size_t>(i)],
                             vars[static_cast<size_t>(i + 1)]},
                            FixedTable({s, 1.0 - s, 1.0 - s, s}))
                    .ok());
  }
  // Unary biases break the symmetry so messages are non-trivial.
  for (int i = 0; i < 30; ++i) {
    double bias = rng.UniformDouble(0.0, 1.0);
    ASSERT_TRUE(g.AddFactor({vars[static_cast<size_t>(i)],},
                            FixedTable({0.0, bias}))
                    .ok());
  }
  std::vector<double> w = {1.0};
  LbpOptions options;
  options.max_iterations = 20;
  FlatLbpEngine engine(&g, &w, options);
  LbpResult result = engine.Run();
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 20u);
  // Residuals should be non-increasing in the tail.
  ASSERT_GE(result.residual_history.size(), 2u);
  EXPECT_LT(result.residual_history.back(),
            result.residual_history.front() + 1e-12);
}

TEST(LbpTest, FactorScheduleEquivalentFixedPoint) {
  // A custom schedule must reach the same marginals as the default one on
  // a tree (both are exact at convergence).
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  VariableId c = g.AddVariable(2);
  FactorId f1 =
      g.AddFactor({a, b}, FixedTable({0.6, 0.2, 0.2, 0.6})).ValueOrDie();
  FactorId f2 =
      g.AddFactor({b, c}, FixedTable({0.7, 0.1, 0.1, 0.7})).ValueOrDie();
  FactorId f3 = g.AddFactor({a}, FixedTable({0.2, 0.9})).ValueOrDie();
  std::vector<double> w = {1.0};

  FlatLbpEngine default_engine(&g, &w);
  LbpResult default_result = default_engine.Run();

  LbpOptions staged;
  staged.factor_schedule = {{f3}, {f1}, {f2}};
  FlatLbpEngine staged_engine(&g, &w, staged);
  LbpResult staged_result = staged_engine.Run();

  for (VariableId v : {a, b, c}) {
    EXPECT_NEAR(default_result.marginals[v][1], staged_result.marginals[v][1],
                1e-6);
  }
}

// Max-product on trees finds the exact MAP assignment.
class MaxProductExactness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxProductExactness, TreeMapMatchesBruteForce) {
  Rng rng(GetParam());
  FactorGraph g;
  g.set_weight_count(1);
  constexpr size_t kVars = 6;
  std::vector<VariableId> vars;
  std::vector<size_t> cards;
  for (size_t i = 0; i < kVars; ++i) {
    size_t card = 2 + rng.UniformUint64(2);
    cards.push_back(card);
    vars.push_back(g.AddVariable(card));
  }
  for (size_t i = 1; i < kVars; ++i) {
    size_t parent = rng.UniformUint64(i);
    std::vector<double> table(cards[parent] * cards[i]);
    for (double& v : table) v = rng.UniformDouble(-2.0, 2.0);
    ASSERT_TRUE(
        g.AddFactor({vars[parent], vars[i]}, FixedTable(table)).ok());
  }
  for (size_t i = 0; i < kVars; ++i) {
    std::vector<double> table(cards[i]);
    for (double& v : table) v = rng.UniformDouble(-2.0, 2.0);
    ASSERT_TRUE(g.AddFactor({vars[i]}, FixedTable(table)).ok());
  }
  std::vector<double> w = {1.0};
  std::vector<size_t> exact = ExactMap(g, w);
  LbpOptions options;
  options.mode = LbpMode::kMaxProduct;
  options.max_iterations = 60;
  FlatLbpEngine engine(&g, &w, options);
  engine.Run();
  std::vector<size_t> decoded = engine.Decode();
  // Random continuous potentials make ties measure-zero, so the decoded
  // assignment must equal the exact MAP.
  EXPECT_EQ(decoded, exact) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxProductExactness,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

TEST(LbpTest, MaxProductRespectsClamps) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  ASSERT_TRUE(g.AddFactor({a, b}, FixedTable({1.0, 0.0, 0.0, 1.0})).ok());
  ASSERT_TRUE(g.AddFactor({a}, FixedTable({2.0, 0.0})).ok());  // prefers a=0
  ASSERT_TRUE(g.Clamp(a, 1).ok());  // but a is observed as 1
  std::vector<double> w = {1.0};
  LbpOptions options;
  options.mode = LbpMode::kMaxProduct;
  FlatLbpEngine engine(&g, &w, options);
  engine.Run();
  std::vector<size_t> decoded = engine.Decode();
  EXPECT_EQ(decoded[a], 1u);
  EXPECT_EQ(decoded[b], 1u);  // coupling drags b along
}

TEST(LbpTest, DecodePicksArgmax) {
  FactorGraph g;
  g.set_weight_count(1);
  VariableId v = g.AddVariable(3);
  ASSERT_TRUE(g.AddFactor({v}, FixedTable({0.1, 2.0, 0.3})).ok());
  std::vector<double> w = {1.0};
  FlatLbpEngine engine(&g, &w);
  engine.Run();
  EXPECT_EQ(engine.Decode()[v], 1u);
}

// ---------- expected features & learning ------------------------------------------

TEST(LbpTest, ExpectedFeaturesMatchExactOnTree) {
  FactorGraph g;
  g.set_weight_count(2);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  FeatureTable t(4);
  t.Add(0, 0, 1.0);  // (0,0): feature0
  t.Add(3, 0, 1.0);  // (1,1): feature0  (agreement indicator)
  t.Add(1, 1, 1.0);  // (0,1): feature1
  t.Add(2, 1, 1.0);  // (1,0): feature1  (disagreement indicator)
  ASSERT_TRUE(g.AddFactor({a, b}, std::move(t)).ok());
  std::vector<double> w = {0.7, -0.2};
  ExactResult exact = ExactInference(g, w);
  FlatLbpEngine engine(&g, &w);
  engine.Run();
  std::vector<double> expected(2, 0.0);
  engine.AccumulateExpectedFeatures(&expected);
  EXPECT_NEAR(expected[0], exact.expected_features[0], 1e-9);
  EXPECT_NEAR(expected[1], exact.expected_features[1], 1e-9);
  EXPECT_NEAR(expected[0] + expected[1], 1.0, 1e-9);  // indicators partition
}

TEST(LearnerTest, LearnsAgreementWeightFromLabels) {
  // Two binary variables with an agreement/disagreement feature pair; all
  // labels agree -> the agreement weight should grow past the
  // disagreement weight.
  FactorGraph g;
  g.set_weight_count(2);
  std::vector<std::pair<VariableId, size_t>> labels;
  for (int i = 0; i < 6; ++i) {
    VariableId a = g.AddVariable(2);
    VariableId b = g.AddVariable(2);
    FeatureTable t(4);
    t.Add(0, 0, 1.0);
    t.Add(3, 0, 1.0);
    t.Add(1, 1, 1.0);
    t.Add(2, 1, 1.0);
    ASSERT_TRUE(g.AddFactor({a, b}, std::move(t)).ok());
    labels.emplace_back(a, 1);
    labels.emplace_back(b, 1);
  }
  LearnerOptions options;
  options.learning_rate = 0.3;
  options.iterations = 40;
  FactorGraphLearner learner(options);
  LearnerResult result = learner.Learn(&g, labels, {0.0, 0.0});
  EXPECT_GT(result.weights[0], result.weights[1]);
  // Gradient magnitude should shrink as learning converges.
  ASSERT_GE(result.trace.size(), 2u);
  EXPECT_LT(result.trace.back().gradient_max_norm,
            result.trace.front().gradient_max_norm);
  // Graph is left unclamped.
  for (VariableId v = 0; v < g.variable_count(); ++v) {
    EXPECT_FALSE(g.IsClamped(v));
  }
}

TEST(LearnerTest, GradientMatchesExactExpectationsOnTinyGraph) {
  // One factor, one labeled variable: the analytic gradient is
  // E[h | label] - E[h]; verify the first learner step moves weights by
  // lr * that difference.
  FactorGraph g;
  g.set_weight_count(2);
  VariableId a = g.AddVariable(2);
  VariableId b = g.AddVariable(2);
  FeatureTable t(4);
  t.Add(0, 0, 1.0);
  t.Add(3, 0, 1.0);
  t.Add(1, 1, 1.0);
  t.Add(2, 1, 1.0);
  ASSERT_TRUE(g.AddFactor({a, b}, std::move(t)).ok());

  std::vector<double> w0 = {0.0, 0.0};
  ASSERT_TRUE(g.Clamp(a, 1).ok());
  ExactResult clamped = ExactInference(g, w0);
  g.UnclampAll();
  ExactResult free = ExactInference(g, w0);

  LearnerOptions options;
  options.learning_rate = 0.1;
  options.iterations = 1;
  FactorGraphLearner learner(options);
  LearnerResult result = learner.Learn(&g, {{a, 1}}, w0);
  for (size_t k = 0; k < 2; ++k) {
    double expected_step = 0.1 * (clamped.expected_features[k] -
                                  free.expected_features[k]);
    EXPECT_NEAR(result.weights[k], expected_step, 1e-6);
  }
}

}  // namespace
}  // namespace jocl
