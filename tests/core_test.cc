#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "core/feature_config.h"
#include "core/graph_builder.h"
#include "core/jocl.h"
#include "core/problem.h"
#include "core/signals.h"
#include "data/generator.h"

namespace jocl {
namespace {

// One shared small data set + signals for the whole binary (word2vec
// training is the expensive part; build it once).
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.num_entities = 50;
    options.num_relations = 8;
    options.num_triples = 250;
    options.seed = 21;
    dataset_ = new Dataset(GenerateDataset(options, "core-test")
                               .MoveValueOrDie());
    SignalOptions signal_options;
    signal_options.embedding_epochs = 2;
    signals_ = new SignalBundle(
        BuildSignals(*dataset_, signal_options).MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete signals_;
    delete dataset_;
    signals_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
};

Dataset* CoreTest::dataset_ = nullptr;
SignalBundle* CoreTest::signals_ = nullptr;

// ---------- feature config -------------------------------------------------------

TEST(FeatureConfigTest, WeightLayoutNamesDistinct) {
  std::unordered_set<std::string> names;
  for (size_t w = 0; w < WeightLayout::kCount; ++w) {
    names.insert(WeightLayout::Name(w));
  }
  EXPECT_EQ(names.size(), WeightLayout::kCount);
  EXPECT_EQ(WeightLayout::Name(999), "unknown");
}

TEST(FeatureConfigTest, VariantMasksMatchTable5) {
  FeatureMask single = FeatureMask::Single();
  EXPECT_TRUE(single.np_idf);
  EXPECT_FALSE(single.np_emb);
  EXPECT_FALSE(single.np_ppdb);
  EXPECT_TRUE(single.link_pop);
  EXPECT_FALSE(single.link_emb);
  EXPECT_TRUE(single.rel_ngram);
  EXPECT_FALSE(single.rel_ld);

  FeatureMask dbl = FeatureMask::Double();
  EXPECT_TRUE(dbl.np_idf);
  EXPECT_TRUE(dbl.np_emb);
  EXPECT_FALSE(dbl.np_ppdb);
  EXPECT_TRUE(dbl.link_emb);
  EXPECT_FALSE(dbl.link_ppdb);

  FeatureMask all = FeatureMask::All();
  EXPECT_TRUE(all.np_ppdb);
  EXPECT_TRUE(all.rp_amie);
  EXPECT_TRUE(all.rp_kbp);
}

// ---------- signals ---------------------------------------------------------------

TEST_F(CoreTest, SignalsPopulated) {
  EXPECT_GT(signals_->np_idf.vocabulary_size(), 0u);
  EXPECT_GT(signals_->rp_idf.vocabulary_size(), 0u);
  EXPECT_GT(signals_->embeddings.size(), 0u);
  EXPECT_NE(signals_->ppdb, nullptr);
}

TEST_F(CoreTest, SignalRangesValid) {
  const auto& t0 = dataset_->okb.triple(0);
  const auto& t1 = dataset_->okb.triple(1);
  for (double sim :
       {signals_->NpIdf(t0.subject, t1.subject),
        signals_->Emb(t0.subject, t1.subject),
        signals_->Ppdb(t0.subject, t1.subject),
        signals_->Amie(t0.predicate, t1.predicate),
        signals_->Kbp(t0.predicate, t1.predicate),
        SignalBundle::Ngram(t0.predicate, t1.predicate),
        SignalBundle::Ld(t0.predicate, t1.predicate)}) {
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

// ---------- absence-is-neutral signal semantics -----------------------------------

TEST_F(CoreTest, PpdbAbsenceIsNeutral) {
  // Phrases outside PPDB score 0.5 (no evidence), not 0 (difference).
  EXPECT_DOUBLE_EQ(
      signals_->Ppdb("zzz never in ppdb", "qqq also never in ppdb"), 0.5);
}

TEST(SignalNeutralityTest, PpdbKnownDisagreementIsZero) {
  Dataset ds;
  ds.ppdb.AddCluster({"alpha corp", "alpha"});
  ds.ppdb.AddCluster({"beta inc", "beta"});
  SignalBundle sig;
  sig.ppdb = &ds.ppdb;
  // Both known, different clusters -> genuine negative evidence.
  EXPECT_DOUBLE_EQ(sig.Ppdb("alpha corp", "beta inc"), 0.0);
  // Same cluster -> 1.
  EXPECT_DOUBLE_EQ(sig.Ppdb("alpha", "alpha corp"), 1.0);
  // One unknown -> neutral.
  EXPECT_DOUBLE_EQ(sig.Ppdb("alpha corp", "gamma llc"), 0.5);
}

TEST(SignalNeutralityTest, AmieWithoutEvidenceIsNeutral) {
  Dataset ds;
  // One triple: every predicate is below the support threshold.
  ASSERT_TRUE(ds.okb.AddTriple("a", "works at", "b").ok());
  ds.gold_subject_entity = {kNilId};
  ds.gold_relation = {kNilId};
  ds.gold_object_entity = {kNilId};
  ds.gold_np_group = {0, 1};
  ds.gold_rp_group = {0};
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
  EXPECT_DOUBLE_EQ(sig.Amie("works at", "is employed by"), 0.5);
  // Identical normalized forms stay 1 regardless of support.
  EXPECT_DOUBLE_EQ(sig.Amie("works at", "worked at"), 1.0);
}

TEST(SignalNeutralityTest, KbpAbstentionIsNeutral) {
  SignalBundle sig;
  sig.kbp.Train({{"was founded by", 1},
                 {"founded by", 1},
                 {"lives in", 2},
                 {"resides in", 2}});
  // Both classifiable, same category -> 1.
  EXPECT_DOUBLE_EQ(sig.Kbp("was founded by", "founded by"), 1.0);
  // Both classifiable, different categories -> 0.
  EXPECT_DOUBLE_EQ(sig.Kbp("founded by", "lives in"), 0.0);
  // Unclassifiable phrase -> neutral.
  EXPECT_DOUBLE_EQ(sig.Kbp("completely mysterious", "founded by"), 0.5);
}

// ---------- problem construction -----------------------------------------------------

TEST_F(CoreTest, ProblemSurfacesCoverAllMentions) {
  std::vector<size_t> all(dataset_->okb.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  JoclProblem problem = BuildProblem(*dataset_, *signals_, all);
  EXPECT_EQ(problem.triples.size(), dataset_->okb.size());
  EXPECT_EQ(problem.subject_of.size(), problem.triples.size());
  for (size_t t = 0; t < problem.triples.size(); ++t) {
    EXPECT_EQ(problem.subject_surfaces[problem.subject_of[t]],
              dataset_->okb.triple(problem.triples[t]).subject);
    EXPECT_EQ(problem.object_surfaces[problem.object_of[t]],
              dataset_->okb.triple(problem.triples[t]).object);
  }
  // Representative mentions point back at their own surface.
  for (size_t s = 0; s < problem.subject_surfaces.size(); ++s) {
    EXPECT_EQ(problem.subject_of[problem.subject_rep[s]], s);
  }
}

TEST_F(CoreTest, PairsRespectThresholdAndUniqueness) {
  std::vector<size_t> all(dataset_->okb.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  ProblemOptions options;
  options.pair_threshold = 0.5;
  options.side_info_blocking = false;  // test the paper's pure IDF rule
  JoclProblem problem = BuildProblem(*dataset_, *signals_, all, options);
  std::unordered_set<uint64_t> seen;
  for (const auto& pair : problem.subject_pairs) {
    EXPECT_LT(pair.a, pair.b);
    EXPECT_GE(pair.idf, 0.5);
    EXPECT_NEAR(pair.idf,
                signals_->np_idf.Similarity(
                    problem.subject_surfaces[pair.a],
                    problem.subject_surfaces[pair.b]),
                1e-12);
    uint64_t key = (static_cast<uint64_t>(pair.a) << 32) | pair.b;
    EXPECT_TRUE(seen.insert(key).second);
  }
  EXPECT_FALSE(problem.subject_pairs.empty());
}

TEST_F(CoreTest, HigherThresholdFewerPairs) {
  std::vector<size_t> all(dataset_->okb.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  ProblemOptions loose;
  loose.pair_threshold = 0.4;
  ProblemOptions strict;
  strict.pair_threshold = 0.8;
  size_t loose_pairs =
      BuildProblem(*dataset_, *signals_, all, loose).subject_pairs.size();
  size_t strict_pairs =
      BuildProblem(*dataset_, *signals_, all, strict).subject_pairs.size();
  EXPECT_GE(loose_pairs, strict_pairs);
}

TEST_F(CoreTest, SideInfoBlockingAddsPairs) {
  std::vector<size_t> all(dataset_->okb.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  ProblemOptions with;
  ProblemOptions without;
  without.side_info_blocking = false;
  JoclProblem p_with = BuildProblem(*dataset_, *signals_, all, with);
  JoclProblem p_without = BuildProblem(*dataset_, *signals_, all, without);
  EXPECT_GE(p_with.subject_pairs.size(), p_without.subject_pairs.size());
  EXPECT_GE(p_with.predicate_pairs.size(),
            p_without.predicate_pairs.size());
  // The IDF-qualified pairs are a subset of the extended pair set.
  std::unordered_set<uint64_t> extended;
  for (const auto& pair : p_with.subject_pairs) {
    extended.insert((static_cast<uint64_t>(pair.a) << 32) | pair.b);
  }
  for (const auto& pair : p_without.subject_pairs) {
    EXPECT_TRUE(extended.count((static_cast<uint64_t>(pair.a) << 32) |
                               pair.b) > 0);
  }
}

TEST_F(CoreTest, CandidatesBounded) {
  std::vector<size_t> all(dataset_->okb.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  ProblemOptions options;
  options.max_candidates = 3;
  JoclProblem problem = BuildProblem(*dataset_, *signals_, all, options);
  for (const auto& c : problem.subject_candidates) {
    EXPECT_LE(c.size(), 3u);
  }
  for (const auto& c : problem.predicate_candidates) {
    EXPECT_LE(c.size(), 3u);
  }
}

// ---------- graph builder --------------------------------------------------------------

TEST_F(CoreTest, GraphStructureMatchesProblem) {
  std::vector<size_t> subset(dataset_->okb.size());
  for (size_t i = 0; i < subset.size(); ++i) subset[i] = i;
  subset.resize(100);
  JoclProblem problem = BuildProblem(*dataset_, *signals_, subset);
  JoclGraph jg = BuildJoclGraph(problem, *signals_, dataset_->ckb);
  EXPECT_EQ(jg.x_vars.size(), problem.subject_pairs.size());
  EXPECT_EQ(jg.y_vars.size(), problem.predicate_pairs.size());
  EXPECT_EQ(jg.z_vars.size(), problem.object_pairs.size());
  EXPECT_EQ(jg.es_vars.size(), problem.triples.size());
  // Every pair variable is binary; every linking variable has
  // candidates + 1 states.
  for (VariableId v : jg.x_vars) {
    EXPECT_EQ(jg.graph.variable(v).cardinality, 2u);
  }
  for (size_t t = 0; t < problem.triples.size(); ++t) {
    EXPECT_EQ(jg.graph.variable(jg.es_vars[t]).cardinality,
              problem.subject_candidates[problem.subject_of[t]].size() + 1);
  }
  EXPECT_EQ(jg.graph.weight_count(), WeightLayout::kCount);
  EXPECT_FALSE(jg.schedule.empty());
}

TEST_F(CoreTest, AblationsRemoveFactorFamilies) {
  std::vector<size_t> subset;
  for (size_t i = 0; i < 80; ++i) subset.push_back(i);
  JoclProblem problem = BuildProblem(*dataset_, *signals_, subset);

  GraphBuilderOptions full;
  JoclGraph jg_full = BuildJoclGraph(problem, *signals_, dataset_->ckb, full);

  GraphBuilderOptions cano_only;
  cano_only.enable_linking = false;
  cano_only.enable_consistency = false;
  cano_only.enable_fact_inclusion = false;
  JoclGraph jg_cano =
      BuildJoclGraph(problem, *signals_, dataset_->ckb, cano_only);
  EXPECT_TRUE(jg_cano.es_vars.empty());
  EXPECT_LT(jg_cano.graph.factor_count(), jg_full.graph.factor_count());

  GraphBuilderOptions link_only;
  link_only.enable_canonicalization = false;
  link_only.enable_transitive = false;
  link_only.enable_consistency = false;
  JoclGraph jg_link =
      BuildJoclGraph(problem, *signals_, dataset_->ckb, link_only);
  EXPECT_TRUE(jg_link.x_vars.empty());
  EXPECT_EQ(jg_link.es_vars.size(), problem.triples.size());

  GraphBuilderOptions no_cons;
  no_cons.enable_consistency = false;
  JoclGraph jg_nc = BuildJoclGraph(problem, *signals_, dataset_->ckb, no_cons);
  EXPECT_LT(jg_nc.graph.factor_count(), jg_full.graph.factor_count());
}

TEST_F(CoreTest, FeatureMaskShrinksFactorFeatures) {
  std::vector<size_t> subset;
  for (size_t i = 0; i < 60; ++i) subset.push_back(i);
  JoclProblem problem = BuildProblem(*dataset_, *signals_, subset);
  GraphBuilderOptions single;
  single.features = FeatureMask::Single();
  JoclGraph jg = BuildJoclGraph(problem, *signals_, dataset_->ckb, single);
  // With the single mask, an F1 factor's log-potential must only depend on
  // alpha1.idf: zeroing every other weight must not change it.
  ASSERT_FALSE(jg.x_vars.empty());
  std::vector<double> w_all(WeightLayout::kCount, 1.0);
  std::vector<double> w_idf(WeightLayout::kCount, 0.0);
  w_idf[WeightLayout::kAlpha1] = 1.0;
  const FactorNode& factor = jg.graph.factor(0);  // first F1 factor
  for (size_t a = 0; a < 2; ++a) {
    double all_but_idf = factor.features.LogPotential(a, w_all) -
                         factor.features.LogPotential(a, w_idf);
    EXPECT_NEAR(all_but_idf, 0.0, 1e-12);
  }
}

// ---------- end-to-end pipeline ---------------------------------------------------------

TEST_F(CoreTest, RunProducesAlignedOutputs) {
  Jocl jocl;
  auto result = jocl.Run(*dataset_, *signals_, dataset_->test_triples);
  ASSERT_TRUE(result.ok());
  const JoclResult& r = result.ValueOrDie();
  EXPECT_EQ(r.triples.size(), dataset_->test_triples.size());
  EXPECT_EQ(r.np_cluster.size(), r.triples.size() * 2);
  EXPECT_EQ(r.np_link.size(), r.triples.size() * 2);
  EXPECT_EQ(r.rp_cluster.size(), r.triples.size());
  EXPECT_EQ(r.rp_link.size(), r.triples.size());
  EXPECT_EQ(r.weights.size(), WeightLayout::kCount);
  EXPECT_GT(r.diagnostics.iterations, 0u);
}

TEST_F(CoreTest, LearnedWeightsDifferFromDefaults) {
  Jocl jocl;
  auto weights = jocl.LearnWeights(*dataset_, *signals_);
  ASSERT_TRUE(weights.ok());
  std::vector<double> defaults = Jocl::DefaultWeights();
  double diff = 0.0;
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    diff += std::abs(weights.ValueOrDie()[k] - defaults[k]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST_F(CoreTest, InferRejectsBadWeights) {
  Jocl jocl;
  auto result = jocl.Infer(*dataset_, *signals_, dataset_->test_triples,
                           std::vector<double>{1.0, 2.0});
  EXPECT_FALSE(result.ok());
}

TEST_F(CoreTest, IdenticalSurfacesClusterTogether) {
  Jocl jocl;
  auto result = jocl.Infer(*dataset_, *signals_, dataset_->test_triples);
  ASSERT_TRUE(result.ok());
  const JoclResult& r = result.ValueOrDie();
  // Mentions with the same surface string must share a cluster.
  std::unordered_map<std::string, size_t> first_label;
  for (size_t i = 0; i < r.triples.size(); ++i) {
    const OieTriple& triple = dataset_->okb.triple(r.triples[i]);
    auto [it_s, ins_s] =
        first_label.emplace(triple.subject, r.np_cluster[i * 2]);
    if (!ins_s) EXPECT_EQ(it_s->second, r.np_cluster[i * 2]);
    auto [it_o, ins_o] =
        first_label.emplace(triple.object, r.np_cluster[i * 2 + 1]);
    if (!ins_o) EXPECT_EQ(it_o->second, r.np_cluster[i * 2 + 1]);
  }
}

TEST_F(CoreTest, VariantsRun) {
  for (const JoclOptions& options :
       {JoclOptions::CanonicalizationOnly(), JoclOptions::LinkingOnly(),
        JoclOptions::WithoutConsistency()}) {
    Jocl jocl(options);
    std::vector<size_t> subset(dataset_->test_triples.begin(),
                               dataset_->test_triples.begin() + 50);
    auto result = jocl.Infer(*dataset_, *signals_, subset);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.ValueOrDie().np_cluster.size(), subset.size() * 2);
  }
}

}  // namespace
}  // namespace jocl
