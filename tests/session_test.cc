// Tests of the incremental streaming session: delta-partition edge cases
// (merge, single-shard touch, removal split, empty no-op) on a
// handcrafted world whose components are known by construction, plus the
// acceptance bar — cold-restart equivalence: ingesting a dataset in K
// batches yields a result byte-identical to one-shot JoclRuntime::Infer,
// for K in {1, 4, 16}.
#include <gtest/gtest.h>

#include <vector>

#include "core/runtime.h"
#include "core/session.h"
#include "data/generator.h"

namespace jocl {
namespace {

// ---------- handcrafted delta-partition world --------------------------------
//
// Components are wired through pair variables, which exist between
// *distinct* surfaces with identical token sets (IDF similarity 1.0):
//   A = {t0, t1}   subjects "barack obama" / "obama barack"
//   B = {t2}       subject "angela merkel"
//   C = {t3}       subject "tim cook"
//   t4 bridges A and B: subject pairs with B, object pairs with A
//   t5 touches C only: subject pairs with "tim cook"
class SessionDeltaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset();
    dataset_->name = "session-delta-world";
    OpenKb& okb = dataset_->okb;
    ASSERT_TRUE(okb.AddTriple("barack obama", "lives in", "washington dc").ok());
    ASSERT_TRUE(okb.AddTriple("obama barack", "works in", "white house").ok());
    ASSERT_TRUE(okb.AddTriple("angela merkel", "lives in", "berlin city").ok());
    ASSERT_TRUE(okb.AddTriple("tim cook", "works at", "apple inc").ok());
    ASSERT_TRUE(okb.AddTriple("merkel angela", "visited", "dc washington").ok());
    ASSERT_TRUE(okb.AddTriple("cook tim", "works at", "cupertino hq").ok());
    signals_ = new SignalBundle(BuildSignals(*dataset_).MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete signals_;
    delete dataset_;
  }

  static JoclResult OneShot(const std::vector<size_t>& triples) {
    return JoclRuntime()
        .Infer(*dataset_, *signals_, triples)
        .MoveValueOrDie();
  }

  static void ExpectByteIdentical(const JoclResult& a, const JoclResult& b) {
    EXPECT_EQ(a.np_cluster, b.np_cluster);
    EXPECT_EQ(a.rp_cluster, b.rp_cluster);
    EXPECT_EQ(a.np_link, b.np_link);
    EXPECT_EQ(a.rp_link, b.rp_link);
    EXPECT_EQ(a.triples, b.triples);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.diagnostics.iterations, b.diagnostics.iterations);
    EXPECT_EQ(a.diagnostics.converged, b.diagnostics.converged);
    EXPECT_EQ(a.diagnostics.final_residual, b.diagnostics.final_residual);
    EXPECT_EQ(a.diagnostics.residual_history, b.diagnostics.residual_history);
    EXPECT_EQ(a.diagnostics.marginals, b.diagnostics.marginals);
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
};

Dataset* SessionDeltaTest::dataset_ = nullptr;
SignalBundle* SessionDeltaTest::signals_ = nullptr;

TEST_F(SessionDeltaTest, FirstBatchPartitionsAsExpected) {
  JoclSession session(dataset_, signals_);
  SessionStats stats;
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}, &stats).ok());
  EXPECT_EQ(stats.added, 4u);
  EXPECT_EQ(stats.shards, 3u);        // {t0,t1}, {t2}, {t3}
  EXPECT_EQ(stats.dirty_shards, 3u);  // everything is new
  EXPECT_EQ(stats.clean_shards, 0u);
  ExpectByteIdentical(session.result(), OneShot({0, 1, 2, 3}));
}

TEST_F(SessionDeltaTest, BridgeBatchMergesTwoShardsAndLeavesTheThirdClean) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}).ok());
  SessionStats stats;
  ASSERT_TRUE(session.AddTriples({4}, &stats).ok());
  // t4 bridges {t0,t1} and {t2} into one shard; {t3} is untouched.
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_EQ(stats.dirty_shards, 1u);
  EXPECT_EQ(stats.clean_shards, 1u);
  EXPECT_EQ(stats.merged_shards, 1u);
  EXPECT_EQ(stats.split_components, 0u);
  ExpectByteIdentical(session.result(), OneShot({0, 1, 2, 3, 4}));
}

TEST_F(SessionDeltaTest, BatchTouchingOneShardDirtiesOnlyThatShard) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}).ok());
  SessionStats stats;
  ASSERT_TRUE(session.AddTriples({5}, &stats).ok());
  // t5 attaches to {t3}; {t0,t1} and {t2} stay clean.
  EXPECT_EQ(stats.shards, 3u);
  EXPECT_EQ(stats.dirty_shards, 1u);
  EXPECT_EQ(stats.clean_shards, 2u);
  EXPECT_EQ(stats.merged_shards, 0u);
  ExpectByteIdentical(session.result(), OneShot({0, 1, 2, 3, 5}));
}

TEST_F(SessionDeltaTest, RemovalSplitsTheMergedShardAndRestoresFromStore) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}).ok());
  ASSERT_TRUE(session.AddTriples({4}).ok());  // merge
  SessionStats stats;
  ASSERT_TRUE(session.RemoveTriples({4}, &stats).ok());
  EXPECT_EQ(stats.removed, 1u);
  // The merged shard splits back into {t0,t1} and {t2} — both solved
  // before the merge and still cached, so nothing is re-inferred.
  EXPECT_EQ(stats.shards, 3u);
  EXPECT_EQ(stats.dirty_shards, 0u);
  EXPECT_EQ(stats.clean_shards, 3u);
  EXPECT_EQ(stats.split_components, 1u);
  ExpectByteIdentical(session.result(), OneShot({0, 1, 2, 3}));
}

TEST_F(SessionDeltaTest, EmptyAndRedundantBatchesAreNoOps) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}).ok());
  JoclResult before = session.result();

  SessionStats stats;
  ASSERT_TRUE(session.AddTriples({}, &stats).ok());
  EXPECT_EQ(stats.shards, 0u);  // Refresh never ran
  EXPECT_EQ(stats.added, 0u);
  ASSERT_TRUE(session.AddTriples({0, 2}, &stats).ok());  // already active
  EXPECT_EQ(stats.added, 0u);
  EXPECT_EQ(stats.shards, 0u);
  ASSERT_TRUE(session.RemoveTriples({4, 5}, &stats).ok());  // never active
  EXPECT_EQ(stats.removed, 0u);
  EXPECT_EQ(stats.shards, 0u);

  ExpectByteIdentical(session.result(), before);
  EXPECT_EQ(session.active_triples(), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST_F(SessionDeltaTest, OutOfRangeIndexIsRejected) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0}).ok());
  Status status = session.AddTriples({0, 99});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(session.active_triples(), (std::vector<size_t>{0}));
}

// ---------- generated world: the acceptance bar ------------------------------

class SessionEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateReVerb45K(/*scale=*/0.25, /*seed=*/11).MoveValueOrDie());
    SignalOptions signal_options;
    signal_options.embedding_epochs = 2;
    signals_ = new SignalBundle(
        BuildSignals(*dataset_, signal_options).MoveValueOrDie());
    oneshot_ = new JoclResult(
        JoclRuntime()
            .Infer(*dataset_, *signals_, dataset_->test_triples)
            .MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete oneshot_;
    delete signals_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
  static JoclResult* oneshot_;
};

Dataset* SessionEquivalenceTest::dataset_ = nullptr;
SignalBundle* SessionEquivalenceTest::signals_ = nullptr;
JoclResult* SessionEquivalenceTest::oneshot_ = nullptr;

TEST_F(SessionEquivalenceTest, ColdRestartEquivalenceAcrossBatchCounts) {
  const std::vector<size_t>& stream = dataset_->test_triples;
  for (size_t k : {1u, 4u, 16u}) {
    JoclSession session(dataset_, signals_);
    for (size_t b = 0; b < k; ++b) {
      size_t begin = b * stream.size() / k;
      size_t end = (b + 1) * stream.size() / k;
      ASSERT_TRUE(session
                      .AddTriples(std::vector<size_t>(stream.begin() + begin,
                                                      stream.begin() + end))
                      .ok());
    }
    // Exact equality, not tolerance: the problem rebuild is deterministic
    // in the active set, per-component beliefs are pure functions of the
    // local problem, and the decode is global — no bit may differ.
    const JoclResult& result = session.result();
    EXPECT_EQ(result.np_cluster, oneshot_->np_cluster) << "K=" << k;
    EXPECT_EQ(result.rp_cluster, oneshot_->rp_cluster) << "K=" << k;
    EXPECT_EQ(result.np_link, oneshot_->np_link) << "K=" << k;
    EXPECT_EQ(result.rp_link, oneshot_->rp_link) << "K=" << k;
    EXPECT_EQ(result.triples, oneshot_->triples) << "K=" << k;
    EXPECT_EQ(result.weights, oneshot_->weights) << "K=" << k;
    EXPECT_EQ(result.diagnostics.iterations, oneshot_->diagnostics.iterations);
    EXPECT_EQ(result.diagnostics.converged, oneshot_->diagnostics.converged);
    EXPECT_EQ(result.diagnostics.final_residual,
              oneshot_->diagnostics.final_residual);
    EXPECT_EQ(result.diagnostics.residual_history,
              oneshot_->diagnostics.residual_history);
    EXPECT_EQ(result.diagnostics.marginals, oneshot_->diagnostics.marginals)
        << "K=" << k;
  }
}

TEST_F(SessionEquivalenceTest, RemovalReachesTheSameStateAsNeverIngesting) {
  const std::vector<size_t>& stream = dataset_->test_triples;
  // Ingest everything in 4 batches, then retire the second quarter; the
  // session must land exactly where a one-shot run over the remaining
  // triples lands.
  JoclSession session(dataset_, signals_);
  for (size_t b = 0; b < 4; ++b) {
    size_t begin = b * stream.size() / 4;
    size_t end = (b + 1) * stream.size() / 4;
    ASSERT_TRUE(session
                    .AddTriples(std::vector<size_t>(stream.begin() + begin,
                                                    stream.begin() + end))
                    .ok());
  }
  std::vector<size_t> removed(stream.begin() + stream.size() / 4,
                              stream.begin() + stream.size() / 2);
  SessionStats stats;
  ASSERT_TRUE(session.RemoveTriples(removed, &stats).ok());
  EXPECT_EQ(stats.removed, removed.size());

  std::vector<size_t> remaining;
  for (size_t t : stream) {
    if (t < removed.front() || t > removed.back()) remaining.push_back(t);
  }
  JoclResult expected =
      JoclRuntime().Infer(*dataset_, *signals_, remaining).MoveValueOrDie();
  EXPECT_EQ(session.result().np_cluster, expected.np_cluster);
  EXPECT_EQ(session.result().np_link, expected.np_link);
  EXPECT_EQ(session.result().rp_cluster, expected.rp_cluster);
  EXPECT_EQ(session.result().rp_link, expected.rp_link);
  EXPECT_EQ(session.result().diagnostics.marginals,
            expected.diagnostics.marginals);
}

TEST_F(SessionEquivalenceTest, WarmStartConvergesAndMatchesShapes) {
  // Warm start is approximate (not byte-identical by contract), so assert
  // structure and convergence rather than bit equality.
  const std::vector<size_t>& stream = dataset_->test_triples;
  SessionOptions session_options;
  session_options.warm_start = true;
  JoclSession session(dataset_, signals_, {}, session_options);
  SessionStats stats;
  size_t total_hints = 0;
  for (size_t b = 0; b < 4; ++b) {
    size_t begin = b * stream.size() / 4;
    size_t end = (b + 1) * stream.size() / 4;
    ASSERT_TRUE(session
                    .AddTriples(std::vector<size_t>(stream.begin() + begin,
                                                    stream.begin() + end),
                                &stats)
                    .ok());
    total_hints += stats.warm_hints;
  }
  EXPECT_GT(total_hints, 0u);  // later batches reuse earlier beliefs
  // The reference cold run itself stops at max_iterations on this data,
  // so assert execution shape rather than convergence.
  EXPECT_GT(session.result().diagnostics.iterations, 0u);
  EXPECT_LE(session.result().diagnostics.iterations,
            JoclOptions().inference.max_iterations);
  EXPECT_EQ(session.result().np_cluster.size(), oneshot_->np_cluster.size());
  EXPECT_EQ(session.result().np_link.size(), oneshot_->np_link.size());
  EXPECT_EQ(session.result().triples, oneshot_->triples);
}

TEST_F(SessionEquivalenceTest, StaleComponentsAreEvicted) {
  const std::vector<size_t>& stream = dataset_->test_triples;
  SessionOptions session_options;
  session_options.stale_retention = 0;  // evict as soon as a shard is unused
  JoclSession session(dataset_, signals_, {}, session_options);
  std::vector<size_t> half(stream.begin(),
                           stream.begin() + stream.size() / 2);
  ASSERT_TRUE(session.AddTriples(half).ok());
  size_t cached_after_first = session.cached_components();
  EXPECT_GT(cached_after_first, 0u);
  // With retention 0 every cached entry must belong to the live partition.
  ASSERT_TRUE(
      session
          .AddTriples(std::vector<size_t>(stream.begin() + stream.size() / 2,
                                          stream.end()))
          .ok());
  SessionStats stats;
  ASSERT_TRUE(session.RemoveTriples(half, &stats).ok());
  EXPECT_EQ(session.cached_components(), stats.shards);
}

}  // namespace
}  // namespace jocl
