// Tests of the incremental streaming session: delta-partition edge cases
// (merge, single-shard touch, removal split, empty no-op) on a
// handcrafted world whose components are known by construction, plus the
// acceptance bar — cold-restart equivalence: ingesting a dataset in K
// batches yields a result byte-identical to one-shot JoclRuntime::Infer,
// for K in {1, 4, 16}.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/problem_builder.h"
#include "core/runtime.h"
#include "core/session.h"
#include "core/shard.h"
#include "data/generator.h"

namespace jocl {
namespace {

// ---------- handcrafted delta-partition world --------------------------------
//
// Components are wired through pair variables, which exist between
// *distinct* surfaces with identical token sets (IDF similarity 1.0):
//   A = {t0, t1}   subjects "barack obama" / "obama barack"
//   B = {t2}       subject "angela merkel"
//   C = {t3}       subject "tim cook"
//   t4 bridges A and B: subject pairs with B, object pairs with A
//   t5 touches C only: subject pairs with "tim cook"
class SessionDeltaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset();
    dataset_->name = "session-delta-world";
    OpenKb& okb = dataset_->okb;
    ASSERT_TRUE(okb.AddTriple("barack obama", "lives in", "washington dc").ok());
    ASSERT_TRUE(okb.AddTriple("obama barack", "works in", "white house").ok());
    ASSERT_TRUE(okb.AddTriple("angela merkel", "lives in", "berlin city").ok());
    ASSERT_TRUE(okb.AddTriple("tim cook", "works at", "apple inc").ok());
    ASSERT_TRUE(okb.AddTriple("merkel angela", "visited", "dc washington").ok());
    ASSERT_TRUE(okb.AddTriple("cook tim", "works at", "cupertino hq").ok());
    signals_ = new SignalBundle(BuildSignals(*dataset_).MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete signals_;
    delete dataset_;
  }

  static JoclResult OneShot(const std::vector<size_t>& triples) {
    return JoclRuntime()
        .Infer(*dataset_, *signals_, triples)
        .MoveValueOrDie();
  }

  static void ExpectByteIdentical(const JoclResult& a, const JoclResult& b) {
    EXPECT_EQ(a.np_cluster, b.np_cluster);
    EXPECT_EQ(a.rp_cluster, b.rp_cluster);
    EXPECT_EQ(a.np_link, b.np_link);
    EXPECT_EQ(a.rp_link, b.rp_link);
    EXPECT_EQ(a.triples, b.triples);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.diagnostics.iterations, b.diagnostics.iterations);
    EXPECT_EQ(a.diagnostics.converged, b.diagnostics.converged);
    EXPECT_EQ(a.diagnostics.final_residual, b.diagnostics.final_residual);
    EXPECT_EQ(a.diagnostics.residual_history, b.diagnostics.residual_history);
    EXPECT_EQ(a.diagnostics.marginals, b.diagnostics.marginals);
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
};

Dataset* SessionDeltaTest::dataset_ = nullptr;
SignalBundle* SessionDeltaTest::signals_ = nullptr;

TEST_F(SessionDeltaTest, FirstBatchPartitionsAsExpected) {
  JoclSession session(dataset_, signals_);
  SessionStats stats;
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}, &stats).ok());
  EXPECT_EQ(stats.added, 4u);
  EXPECT_EQ(stats.shards, 3u);        // {t0,t1}, {t2}, {t3}
  EXPECT_EQ(stats.dirty_shards, 3u);  // everything is new
  EXPECT_EQ(stats.clean_shards, 0u);
  ExpectByteIdentical(session.result(), OneShot({0, 1, 2, 3}));
}

TEST_F(SessionDeltaTest, BridgeBatchMergesTwoShardsAndLeavesTheThirdClean) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}).ok());
  SessionStats stats;
  ASSERT_TRUE(session.AddTriples({4}, &stats).ok());
  // t4 bridges {t0,t1} and {t2} into one shard; {t3} is untouched.
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_EQ(stats.dirty_shards, 1u);
  EXPECT_EQ(stats.clean_shards, 1u);
  EXPECT_EQ(stats.merged_shards, 1u);
  EXPECT_EQ(stats.split_components, 0u);
  ExpectByteIdentical(session.result(), OneShot({0, 1, 2, 3, 4}));
}

TEST_F(SessionDeltaTest, BatchTouchingOneShardDirtiesOnlyThatShard) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}).ok());
  SessionStats stats;
  ASSERT_TRUE(session.AddTriples({5}, &stats).ok());
  // t5 attaches to {t3}; {t0,t1} and {t2} stay clean.
  EXPECT_EQ(stats.shards, 3u);
  EXPECT_EQ(stats.dirty_shards, 1u);
  EXPECT_EQ(stats.clean_shards, 2u);
  EXPECT_EQ(stats.merged_shards, 0u);
  ExpectByteIdentical(session.result(), OneShot({0, 1, 2, 3, 5}));
}

TEST_F(SessionDeltaTest, RemovalSplitsTheMergedShardAndRestoresFromStore) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}).ok());
  ASSERT_TRUE(session.AddTriples({4}).ok());  // merge
  SessionStats stats;
  ASSERT_TRUE(session.RemoveTriples({4}, &stats).ok());
  EXPECT_EQ(stats.removed, 1u);
  // The merged shard splits back into {t0,t1} and {t2} — both solved
  // before the merge and still cached, so nothing is re-inferred.
  EXPECT_EQ(stats.shards, 3u);
  EXPECT_EQ(stats.dirty_shards, 0u);
  EXPECT_EQ(stats.clean_shards, 3u);
  EXPECT_EQ(stats.split_components, 1u);
  ExpectByteIdentical(session.result(), OneShot({0, 1, 2, 3}));
}

TEST_F(SessionDeltaTest, EmptyAndRedundantBatchesAreNoOps) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0, 1, 2, 3}).ok());
  JoclResult before = session.result();

  SessionStats stats;
  ASSERT_TRUE(session.AddTriples({}, &stats).ok());
  EXPECT_EQ(stats.shards, 0u);  // Refresh never ran
  EXPECT_EQ(stats.added, 0u);
  ASSERT_TRUE(session.AddTriples({0, 2}, &stats).ok());  // already active
  EXPECT_EQ(stats.added, 0u);
  EXPECT_EQ(stats.shards, 0u);
  ASSERT_TRUE(session.RemoveTriples({4, 5}, &stats).ok());  // never active
  EXPECT_EQ(stats.removed, 0u);
  EXPECT_EQ(stats.shards, 0u);

  ExpectByteIdentical(session.result(), before);
  EXPECT_EQ(session.active_triples(), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST_F(SessionDeltaTest, OutOfRangeIndexIsRejected) {
  JoclSession session(dataset_, signals_);
  ASSERT_TRUE(session.AddTriples({0}).ok());
  Status status = session.AddTriples({0, 99});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(session.active_triples(), (std::vector<size_t>{0}));
}

// ---------- O(Δ) front-end: byte-identity helpers ----------------------------

::testing::AssertionResult ProblemsIdentical(const JoclProblem& a,
                                             const JoclProblem& b) {
  if (a.triples != b.triples)
    return ::testing::AssertionFailure() << "triples differ";
  if (a.subject_surfaces != b.subject_surfaces ||
      a.predicate_surfaces != b.predicate_surfaces ||
      a.object_surfaces != b.object_surfaces)
    return ::testing::AssertionFailure() << "surface lists differ";
  if (a.subject_of != b.subject_of || a.predicate_of != b.predicate_of ||
      a.object_of != b.object_of)
    return ::testing::AssertionFailure() << "per-triple surface maps differ";
  if (a.subject_rep != b.subject_rep || a.predicate_rep != b.predicate_rep ||
      a.object_rep != b.object_rep)
    return ::testing::AssertionFailure() << "representatives differ";
  const auto pairs_equal = [](const std::vector<SurfacePair>& x,
                              const std::vector<SurfacePair>& y) {
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i].a != y[i].a || x[i].b != y[i].b || x[i].idf != y[i].idf ||
          x[i].candidate_blocked != y[i].candidate_blocked)
        return false;
    }
    return true;
  };
  if (!pairs_equal(a.subject_pairs, b.subject_pairs) ||
      !pairs_equal(a.predicate_pairs, b.predicate_pairs) ||
      !pairs_equal(a.object_pairs, b.object_pairs))
    return ::testing::AssertionFailure() << "pair lists differ";
  const auto np_cands_equal =
      [](const std::vector<std::vector<EntityCandidate>>& x,
         const std::vector<std::vector<EntityCandidate>>& y) {
        if (x.size() != y.size()) return false;
        for (size_t i = 0; i < x.size(); ++i) {
          if (x[i].size() != y[i].size()) return false;
          for (size_t j = 0; j < x[i].size(); ++j) {
            if (x[i][j].id != y[i][j].id ||
                x[i][j].popularity != y[i][j].popularity)
              return false;
          }
        }
        return true;
      };
  if (!np_cands_equal(a.subject_candidates, b.subject_candidates) ||
      !np_cands_equal(a.object_candidates, b.object_candidates))
    return ::testing::AssertionFailure() << "entity candidate lists differ";
  if (a.predicate_candidates.size() != b.predicate_candidates.size())
    return ::testing::AssertionFailure() << "relation candidate lists differ";
  for (size_t i = 0; i < a.predicate_candidates.size(); ++i) {
    const auto& x = a.predicate_candidates[i];
    const auto& y = b.predicate_candidates[i];
    if (x.size() != y.size())
      return ::testing::AssertionFailure() << "relation candidate lists differ";
    for (size_t j = 0; j < x.size(); ++j) {
      if (x[j].id != y[j].id || x[j].score != y[j].score)
        return ::testing::AssertionFailure()
               << "relation candidate lists differ";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult PlansIdentical(const ShardPlan& a,
                                          const ShardPlan& b) {
  if (a.component_count != b.component_count)
    return ::testing::AssertionFailure() << "component counts differ";
  if (a.shards.size() != b.shards.size())
    return ::testing::AssertionFailure() << "shard counts differ";
  for (size_t s = 0; s < a.shards.size(); ++s) {
    const ProblemShard& x = a.shards[s];
    const ProblemShard& y = b.shards[s];
    ::testing::AssertionResult local = ProblemsIdentical(x.problem, y.problem);
    if (!local) return local << " in shard " << s;
    if (x.triple_map != y.triple_map ||
        x.subject_surface_map != y.subject_surface_map ||
        x.predicate_surface_map != y.predicate_surface_map ||
        x.object_surface_map != y.object_surface_map ||
        x.subject_pair_map != y.subject_pair_map ||
        x.predicate_pair_map != y.predicate_pair_map ||
        x.object_pair_map != y.object_pair_map)
      return ::testing::AssertionFailure() << "index maps differ in shard "
                                           << s;
  }
  return ::testing::AssertionSuccess();
}

// ---------- adversarial sequences × front-end threads ------------------------
//
// Each step mutates the session (adds, then removals) and asserts the
// session's problem is byte-identical to a from-scratch BuildProblem over
// the active set, and its result byte-identical to one-shot inference —
// for a sequential and a parallel front-end alike. The sequences target
// the delta front-end's hard cases: a merge immediately undone, the
// active set emptied and rebuilt, and the same surfaces entering and
// leaving across consecutive batches.
struct ChurnStep {
  std::vector<size_t> add;
  std::vector<size_t> remove;
};

class SessionAdversarialTest : public SessionDeltaTest {
 protected:
  void RunSequence(const std::vector<ChurnStep>& steps) {
    for (size_t threads : {1u, 4u}) {
      SessionOptions session_options;
      session_options.frontend_threads = threads;
      JoclSession session(dataset_, signals_, {}, session_options);
      std::vector<size_t> active;
      for (size_t i = 0; i < steps.size(); ++i) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " step=" + std::to_string(i));
        if (!steps[i].add.empty()) {
          ASSERT_TRUE(session.AddTriples(steps[i].add).ok());
          for (size_t t : steps[i].add) {
            if (std::find(active.begin(), active.end(), t) == active.end())
              active.push_back(t);
          }
        }
        if (!steps[i].remove.empty()) {
          ASSERT_TRUE(session.RemoveTriples(steps[i].remove).ok());
          for (size_t t : steps[i].remove) {
            active.erase(std::remove(active.begin(), active.end(), t),
                         active.end());
          }
        }
        std::sort(active.begin(), active.end());
        ASSERT_EQ(session.active_triples(), active);
        if (active.empty()) continue;  // nothing to compare against
        JoclProblem scratch = BuildProblem(*dataset_, *signals_, active,
                                           JoclOptions().problem);
        ASSERT_TRUE(ProblemsIdentical(session.problem(), scratch));
        ExpectByteIdentical(session.result(), OneShot(active));
      }
    }
  }
};

TEST_F(SessionAdversarialTest, MergeThenSplitThenRemerge) {
  RunSequence({{{0, 1, 2, 3}, {}},  // three components
               {{4}, {}},           // bridge merges {t0,t1} and {t2}
               {{}, {4}},           // split back
               {{4}, {}},           // re-merge
               {{5}, {4}}});        // merge undone while another grows
}

TEST_F(SessionAdversarialTest, RemoveAllThenReAdd) {
  RunSequence({{{0, 1, 2, 3, 4, 5}, {}},
               {{}, {0, 1, 2, 3, 4, 5}},  // active set emptied
               {{0, 1, 2, 3, 4, 5}, {}},  // rebuilt from nothing
               {{}, {1, 3, 5}},
               {{1, 3, 5}, {}}});
}

TEST_F(SessionAdversarialTest, InterleavedChurnOfTheSameSurfaces) {
  // t0/t1 carry the paired "barack obama" / "obama barack" surfaces;
  // churning them exercises surface retire/revive and representative
  // (first-mention) changes, which shift pair emission order.
  RunSequence({{{0, 1, 2}, {}},
               {{}, {0}},    // t1's surface keeps the pair alive; rep moves
               {{0}, {1}},   // swap which mention carries the surface
               {{1}, {}},
               {{3, 4}, {0, 1}},  // drop the pair entirely mid-merge
               {{0, 1}, {}}});
}

// ---------- generated world: the acceptance bar ------------------------------

class SessionEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateReVerb45K(/*scale=*/0.25, /*seed=*/11).MoveValueOrDie());
    SignalOptions signal_options;
    signal_options.embedding_epochs = 2;
    signals_ = new SignalBundle(
        BuildSignals(*dataset_, signal_options).MoveValueOrDie());
    oneshot_ = new JoclResult(
        JoclRuntime()
            .Infer(*dataset_, *signals_, dataset_->test_triples)
            .MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete oneshot_;
    delete signals_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
  static JoclResult* oneshot_;
};

Dataset* SessionEquivalenceTest::dataset_ = nullptr;
SignalBundle* SessionEquivalenceTest::signals_ = nullptr;
JoclResult* SessionEquivalenceTest::oneshot_ = nullptr;

TEST_F(SessionEquivalenceTest, ColdRestartEquivalenceAcrossBatchCounts) {
  const std::vector<size_t>& stream = dataset_->test_triples;
  for (size_t k : {1u, 4u, 16u}) {
    JoclSession session(dataset_, signals_);
    for (size_t b = 0; b < k; ++b) {
      size_t begin = b * stream.size() / k;
      size_t end = (b + 1) * stream.size() / k;
      ASSERT_TRUE(session
                      .AddTriples(std::vector<size_t>(stream.begin() + begin,
                                                      stream.begin() + end))
                      .ok());
    }
    // Exact equality, not tolerance: the problem rebuild is deterministic
    // in the active set, per-component beliefs are pure functions of the
    // local problem, and the decode is global — no bit may differ.
    const JoclResult& result = session.result();
    EXPECT_EQ(result.np_cluster, oneshot_->np_cluster) << "K=" << k;
    EXPECT_EQ(result.rp_cluster, oneshot_->rp_cluster) << "K=" << k;
    EXPECT_EQ(result.np_link, oneshot_->np_link) << "K=" << k;
    EXPECT_EQ(result.rp_link, oneshot_->rp_link) << "K=" << k;
    EXPECT_EQ(result.triples, oneshot_->triples) << "K=" << k;
    EXPECT_EQ(result.weights, oneshot_->weights) << "K=" << k;
    EXPECT_EQ(result.diagnostics.iterations, oneshot_->diagnostics.iterations);
    EXPECT_EQ(result.diagnostics.converged, oneshot_->diagnostics.converged);
    EXPECT_EQ(result.diagnostics.final_residual,
              oneshot_->diagnostics.final_residual);
    EXPECT_EQ(result.diagnostics.residual_history,
              oneshot_->diagnostics.residual_history);
    EXPECT_EQ(result.diagnostics.marginals, oneshot_->diagnostics.marginals)
        << "K=" << k;
  }
}

TEST_F(SessionEquivalenceTest, RemovalReachesTheSameStateAsNeverIngesting) {
  const std::vector<size_t>& stream = dataset_->test_triples;
  // Ingest everything in 4 batches, then retire the second quarter; the
  // session must land exactly where a one-shot run over the remaining
  // triples lands.
  JoclSession session(dataset_, signals_);
  for (size_t b = 0; b < 4; ++b) {
    size_t begin = b * stream.size() / 4;
    size_t end = (b + 1) * stream.size() / 4;
    ASSERT_TRUE(session
                    .AddTriples(std::vector<size_t>(stream.begin() + begin,
                                                    stream.begin() + end))
                    .ok());
  }
  std::vector<size_t> removed(stream.begin() + stream.size() / 4,
                              stream.begin() + stream.size() / 2);
  SessionStats stats;
  ASSERT_TRUE(session.RemoveTriples(removed, &stats).ok());
  EXPECT_EQ(stats.removed, removed.size());

  std::vector<size_t> remaining;
  for (size_t t : stream) {
    if (t < removed.front() || t > removed.back()) remaining.push_back(t);
  }
  JoclResult expected =
      JoclRuntime().Infer(*dataset_, *signals_, remaining).MoveValueOrDie();
  EXPECT_EQ(session.result().np_cluster, expected.np_cluster);
  EXPECT_EQ(session.result().np_link, expected.np_link);
  EXPECT_EQ(session.result().rp_cluster, expected.rp_cluster);
  EXPECT_EQ(session.result().rp_link, expected.rp_link);
  EXPECT_EQ(session.result().diagnostics.marginals,
            expected.diagnostics.marginals);
}

TEST_F(SessionEquivalenceTest, WarmStartConvergesAndMatchesShapes) {
  // Warm start is approximate (not byte-identical by contract), so assert
  // structure and convergence rather than bit equality.
  const std::vector<size_t>& stream = dataset_->test_triples;
  SessionOptions session_options;
  session_options.warm_start = true;
  JoclSession session(dataset_, signals_, {}, session_options);
  SessionStats stats;
  size_t total_hints = 0;
  for (size_t b = 0; b < 4; ++b) {
    size_t begin = b * stream.size() / 4;
    size_t end = (b + 1) * stream.size() / 4;
    ASSERT_TRUE(session
                    .AddTriples(std::vector<size_t>(stream.begin() + begin,
                                                    stream.begin() + end),
                                &stats)
                    .ok());
    total_hints += stats.warm_hints;
  }
  EXPECT_GT(total_hints, 0u);  // later batches reuse earlier beliefs
  // The reference cold run itself stops at max_iterations on this data,
  // so assert execution shape rather than convergence.
  EXPECT_GT(session.result().diagnostics.iterations, 0u);
  EXPECT_LE(session.result().diagnostics.iterations,
            JoclOptions().inference.max_iterations);
  EXPECT_EQ(session.result().np_cluster.size(), oneshot_->np_cluster.size());
  EXPECT_EQ(session.result().np_link.size(), oneshot_->np_link.size());
  EXPECT_EQ(session.result().triples, oneshot_->triples);
}

TEST_F(SessionEquivalenceTest, IncrementalFrontEndMatchesScratchUnderChurn) {
  // Property test of the O(Δ) front-end pair against the from-scratch
  // reference on a generated world: over a seeded random add/remove walk,
  // after every batch the memoized ProblemBuilder must emit the same
  // problem as BuildProblem, the persistent union-find must label the
  // same components, and the materialized plan must be byte-identical to
  // PartitionProblem — for a sequential and a parallel front-end alike.
  const std::vector<size_t>& stream = dataset_->test_triples;
  const ProblemOptions options = JoclOptions().problem;
  ASSERT_TRUE(ProblemBuilder::Supports(options));
  for (size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ProblemBuilder builder(dataset_, signals_, options, nullptr);
    IncrementalPartitioner partitioner(dataset_->okb.size());
    std::vector<uint8_t> in_active(dataset_->okb.size(), 0);
    std::vector<size_t> active;
    std::mt19937 rng(17);
    for (size_t step = 0; step < 10; ++step) {
      SCOPED_TRACE("step=" + std::to_string(step));
      // Toggle a random slice of the stream: first steps are add-heavy,
      // later ones mix removals of long-active triples back in.
      std::vector<size_t> added;
      std::vector<size_t> removed;
      std::vector<uint8_t> touched(dataset_->okb.size(), 0);
      const size_t slice = 1 + rng() % (stream.size() / 3);
      for (size_t i = 0; i < slice; ++i) {
        const size_t t = stream[rng() % stream.size()];
        if (touched[t]) continue;  // added/removed must stay disjoint
        touched[t] = 1;
        if (!in_active[t]) {
          in_active[t] = 1;
          added.push_back(t);
        } else if (step >= 3) {
          in_active[t] = 0;
          removed.push_back(t);
        }
      }
      std::sort(added.begin(), added.end());
      added.erase(std::unique(added.begin(), added.end()), added.end());
      std::sort(removed.begin(), removed.end());
      removed.erase(std::unique(removed.begin(), removed.end()),
                    removed.end());
      active.clear();
      for (size_t t = 0; t < in_active.size(); ++t) {
        if (in_active[t]) active.push_back(t);
      }
      if (active.empty()) continue;

      JoclProblem problem;
      FrontEndDelta delta;
      builder.Apply(added, removed, active, threads, &problem, &delta);
      JoclProblem scratch = BuildProblem(*dataset_, *signals_, active, options);
      ASSERT_TRUE(ProblemsIdentical(problem, scratch));

      partitioner.Apply(delta);
      std::vector<size_t> comp_of_triple;
      std::vector<size_t> comp_weight;
      size_t components;
      if (delta.overflow) {
        components =
            ComputeProblemComponents(problem, &comp_of_triple, &comp_weight);
      } else {
        components =
            partitioner.Components(active, &comp_of_triple, &comp_weight);
      }
      std::vector<size_t> scratch_comp_of;
      std::vector<size_t> scratch_weight;
      ASSERT_EQ(components, ComputeProblemComponents(scratch, &scratch_comp_of,
                                                     &scratch_weight));
      ASSERT_EQ(comp_of_triple, scratch_comp_of);
      ASSERT_EQ(comp_weight, scratch_weight);

      ShardPlan incremental = MaterializeShardPlan(
          problem, comp_of_triple, comp_weight, /*max_shards=*/0,
          /*lazy=*/false);
      ASSERT_TRUE(
          PlansIdentical(incremental, PartitionProblem(scratch, 0)));
    }
  }
}

TEST_F(SessionEquivalenceTest, StaleComponentsAreEvicted) {
  const std::vector<size_t>& stream = dataset_->test_triples;
  SessionOptions session_options;
  session_options.stale_retention = 0;  // evict as soon as a shard is unused
  JoclSession session(dataset_, signals_, {}, session_options);
  std::vector<size_t> half(stream.begin(),
                           stream.begin() + stream.size() / 2);
  ASSERT_TRUE(session.AddTriples(half).ok());
  size_t cached_after_first = session.cached_components();
  EXPECT_GT(cached_after_first, 0u);
  // With retention 0 every cached entry must belong to the live partition.
  ASSERT_TRUE(
      session
          .AddTriples(std::vector<size_t>(stream.begin() + stream.size() / 2,
                                          stream.end()))
          .ok());
  SessionStats stats;
  ASSERT_TRUE(session.RemoveTriples(half, &stats).ok());
  EXPECT_EQ(session.cached_components(), stats.shards);
}

}  // namespace
}  // namespace jocl
