// Tests of the sharded learning runtime (core/sharded_learner.h): weight
// byte-identity across every threads/shards setting, gradient equivalence
// with the monolithic FactorGraphLearner, label scatter onto shard-local
// variable ids over a multi-component problem, the trace's
// objective/seconds fields, and the session's UpdateWeights hot-swap
// (retrain -> hot-swap byte-identical to a cold restart with the same
// weights).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "core/graph_builder.h"
#include "core/runtime.h"
#include "core/session.h"
#include "core/shard.h"
#include "core/sharded_learner.h"
#include "core/signal_cache.h"
#include "data/generator.h"
#include "graph/learner.h"

namespace jocl {
namespace {

class LearnerRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateReVerb45K(/*scale=*/0.25, /*seed=*/11).MoveValueOrDie());
    SignalOptions signal_options;
    signal_options.embedding_epochs = 2;
    signals_ = new SignalBundle(
        BuildSignals(*dataset_, signal_options).MoveValueOrDie());
    labeled_ = new std::vector<size_t>(
        dataset_->validation_triples.begin(),
        dataset_->validation_triples.begin() +
            std::min<size_t>(80, dataset_->validation_triples.size()));
  }
  static void TearDownTestSuite() {
    delete labeled_;
    delete signals_;
    delete dataset_;
  }

  /// Short learning schedule shared by the tests (the guarantees under
  /// test are iteration-count independent).
  static JoclOptions ShortLearning() {
    JoclOptions options;
    options.learner.iterations = 3;
    return options;
  }

  static LearnerResult LearnWith(size_t threads, size_t shards,
                                 LearnerRunStats* stats = nullptr) {
    LearnRuntimeOptions runtime;
    runtime.num_threads = threads;
    runtime.max_shards = shards;
    ShardedLearner learner(ShortLearning(), runtime);
    return learner
        .Learn(*dataset_, *signals_, *labeled_, Jocl::DefaultWeights(), stats)
        .MoveValueOrDie();
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
  static std::vector<size_t>* labeled_;
};

Dataset* LearnerRuntimeTest::dataset_ = nullptr;
SignalBundle* LearnerRuntimeTest::signals_ = nullptr;
std::vector<size_t>* LearnerRuntimeTest::labeled_ = nullptr;

// ---------- determinism ------------------------------------------------------

TEST_F(LearnerRuntimeTest, WeightsByteIdenticalAcrossThreadsAndShards) {
  LearnerRunStats reference_stats;
  LearnerResult reference = LearnWith(1, 1, &reference_stats);
  ASSERT_FALSE(reference.trace.empty());
  ASSERT_GT(reference_stats.components, 1u);
  EXPECT_EQ(reference_stats.bins, 1u);

  for (size_t threads : {1u, 4u}) {
    for (size_t shards : {1u, 8u}) {
      LearnerRunStats stats;
      LearnerResult result = LearnWith(threads, shards, &stats);
      // Byte-identical: exact double equality, no tolerance.
      EXPECT_EQ(result.weights, reference.weights)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(result.converged, reference.converged);
      ASSERT_EQ(result.trace.size(), reference.trace.size());
      for (size_t i = 0; i < result.trace.size(); ++i) {
        EXPECT_EQ(result.trace[i].objective, reference.trace[i].objective);
        EXPECT_EQ(result.trace[i].gradient_max_norm,
                  reference.trace[i].gradient_max_norm);
      }
      // The knobs are execution-only; shape facts stay put.
      EXPECT_EQ(stats.components, reference_stats.components);
      EXPECT_EQ(stats.labels, reference_stats.labels);
    }
  }
  // Per-component binning (the default) is also identical.
  LearnerResult per_component = LearnWith(0, 0);
  EXPECT_EQ(per_component.weights, reference.weights);
}

TEST_F(LearnerRuntimeTest, TraceCarriesObjectiveAndSeconds) {
  LearnerResult result = LearnWith(1, 0);
  ASSERT_FALSE(result.trace.empty());
  for (const LearnerTrace& trace : result.trace) {
    EXPECT_TRUE(std::isfinite(trace.objective));
    // log p(Y^L) estimate: conditioning cannot exceed the free mass.
    EXPECT_LE(trace.objective, 1e-9);
    EXPECT_GE(trace.seconds, 0.0);
    EXPECT_GE(trace.gradient_max_norm, 0.0);
  }
}

// ---------- equivalence with the monolithic learner --------------------------

TEST_F(LearnerRuntimeTest, OneStepMatchesMonolithicLearner) {
  // One gradient step: the sharded reduction must equal the monolithic
  // accumulation up to float summation order (per-component partial sums
  // versus one factor-order sweep).
  JoclOptions options = ShortLearning();
  options.learner.iterations = 1;

  JoclProblem problem =
      BuildProblem(*dataset_, *signals_, *labeled_, options.problem);
  SignalCache cache =
      SignalCache::ForProblem(problem, *signals_, dataset_->ckb);
  JoclGraph jgraph =
      BuildJoclGraph(problem, cache, dataset_->ckb, options.builder);
  std::vector<std::pair<VariableId, size_t>> labels =
      BuildGoldLabels(*dataset_, problem, jgraph, options.builder);
  LearnerOptions learner_options = options.learner;
  learner_options.lbp.factor_schedule = jgraph.schedule;
  learner_options.backend = InferenceBackend::kLbp;
  FactorGraphLearner monolithic(learner_options);
  LearnerResult monolithic_result =
      monolithic.Learn(&jgraph.graph, labels, Jocl::DefaultWeights());

  ShardedLearner sharded(options, {});
  LearnerResult sharded_result =
      sharded.Learn(*dataset_, *signals_, *labeled_, Jocl::DefaultWeights())
          .MoveValueOrDie();

  ASSERT_EQ(sharded_result.weights.size(), monolithic_result.weights.size());
  for (size_t k = 0; k < sharded_result.weights.size(); ++k) {
    EXPECT_NEAR(sharded_result.weights[k], monolithic_result.weights[k],
                1e-10)
        << WeightLayout::Name(k);
  }
}

// ---------- label scatter ----------------------------------------------------

TEST_F(LearnerRuntimeTest, LabelsScatterCorrectlyAcrossComponents) {
  JoclOptions options;
  JoclProblem problem =
      BuildProblem(*dataset_, *signals_, *labeled_, options.problem);
  SignalCache cache =
      SignalCache::ForProblem(problem, *signals_, dataset_->ckb);
  ShardPlan plan = PartitionProblem(problem, /*max_shards=*/0);
  ASSERT_GT(plan.component_count, 1u);

  // Global labels keyed by variable id.
  JoclGraph global_graph =
      BuildJoclGraph(problem, cache, dataset_->ckb, options.builder);
  std::vector<std::pair<VariableId, size_t>> global_labels =
      BuildGoldLabels(*dataset_, problem, global_graph, options.builder);
  std::unordered_map<VariableId, size_t> global_state;
  for (const auto& [variable, state] : global_labels) {
    global_state[variable] = state;
  }

  // Every shard-local label must agree with the global label of the
  // variable it maps to through the shard's strictly-increasing merge
  // maps, and the shard labels must jointly cover the global set.
  size_t covered = 0;
  for (const ProblemShard& shard : plan.shards) {
    JoclGraph local_graph =
        BuildJoclGraph(shard.problem, cache, dataset_->ckb, options.builder);
    std::vector<std::pair<VariableId, size_t>> local_labels =
        BuildGoldLabels(*dataset_, shard.problem, local_graph,
                        options.builder);
    std::unordered_map<VariableId, size_t> local_state;
    for (const auto& [variable, state] : local_labels) {
      local_state[variable] = state;
    }
    covered += local_labels.size();

    auto expect_pairs = [&](const std::vector<VariableId>& local_vars,
                            const std::vector<VariableId>& global_vars,
                            const std::vector<size_t>& pair_map) {
      ASSERT_EQ(local_vars.size(), pair_map.size());
      for (size_t p = 0; p < pair_map.size(); ++p) {
        EXPECT_EQ(local_state.at(local_vars[p]),
                  global_state.at(global_vars[pair_map[p]]));
      }
    };
    expect_pairs(local_graph.x_vars, global_graph.x_vars,
                 shard.subject_pair_map);
    expect_pairs(local_graph.y_vars, global_graph.y_vars,
                 shard.predicate_pair_map);
    expect_pairs(local_graph.z_vars, global_graph.z_vars,
                 shard.object_pair_map);
    for (size_t t = 0; t < shard.triple_map.size(); ++t) {
      size_t global_t = shard.triple_map[t];
      EXPECT_EQ(local_state.at(local_graph.es_vars[t]),
                global_state.at(global_graph.es_vars[global_t]));
      EXPECT_EQ(local_state.at(local_graph.rp_vars[t]),
                global_state.at(global_graph.rp_vars[global_t]));
      EXPECT_EQ(local_state.at(local_graph.eo_vars[t]),
                global_state.at(global_graph.eo_vars[global_t]));
    }
  }
  EXPECT_EQ(covered, global_labels.size());
}

// ---------- session hot-swap -------------------------------------------------

TEST_F(LearnerRuntimeTest, UpdateWeightsEquivalentToColdRestart) {
  LearnerResult learned = LearnWith(0, 0);
  ASSERT_NE(learned.weights, Jocl::DefaultWeights());

  std::vector<size_t> stream(
      dataset_->test_triples.begin(),
      dataset_->test_triples.begin() +
          std::min<size_t>(200, dataset_->test_triples.size()));
  std::vector<size_t> first_half(stream.begin(),
                                 stream.begin() + stream.size() / 2);
  std::vector<size_t> second_half(stream.begin() + stream.size() / 2,
                                  stream.end());

  // Retrain path: ingest under uniform weights, then hot-swap.
  JoclSession hot(dataset_, signals_);
  size_t publishes = 0;
  hot.SetPublishCallback([&publishes](const JoclSession&) { ++publishes; });
  ASSERT_TRUE(hot.AddTriples(first_half).ok());
  ASSERT_TRUE(hot.AddTriples(second_half).ok());
  const size_t generation_before = hot.generation();
  const size_t publishes_before = publishes;

  SessionStats stats;
  ASSERT_TRUE(hot.UpdateWeights(learned.weights, &stats).ok());
  EXPECT_EQ(hot.generation(), generation_before + 1);
  EXPECT_EQ(publishes, publishes_before + 1);  // republished for serving
  EXPECT_EQ(stats.dirty_shards, stats.shards);  // everything re-inferred
  EXPECT_EQ(stats.clean_shards, 0u);
  // The active set is unchanged, so the hot-swap must take the front-end
  // fast path: the persisted problem and partition are reused verbatim —
  // no rebuild, no candidate-generation lookups.
  EXPECT_TRUE(stats.frontend_reused);
  EXPECT_EQ(stats.problem_cache_hits, 0u);
  EXPECT_EQ(stats.problem_cache_misses, 0u);
  EXPECT_EQ(hot.weights(), learned.weights);
  EXPECT_EQ(hot.result().weights, learned.weights);

  // Cold restart with the same weights.
  JoclSession cold(dataset_, signals_, {}, {}, learned.weights);
  ASSERT_TRUE(cold.AddTriples(stream).ok());

  EXPECT_EQ(hot.result().np_cluster, cold.result().np_cluster);
  EXPECT_EQ(hot.result().rp_cluster, cold.result().rp_cluster);
  EXPECT_EQ(hot.result().np_link, cold.result().np_link);
  EXPECT_EQ(hot.result().rp_link, cold.result().rp_link);
  EXPECT_EQ(hot.result().triples, cold.result().triples);
  EXPECT_EQ(hot.result().diagnostics.marginals,
            cold.result().diagnostics.marginals);

  // And both equal the one-shot runtime under the learned weights.
  JoclResult oneshot = JoclRuntime()
                           .Infer(*dataset_, *signals_, stream,
                                  learned.weights)
                           .MoveValueOrDie();
  EXPECT_EQ(hot.result().np_cluster, oneshot.np_cluster);
  EXPECT_EQ(hot.result().diagnostics.marginals,
            oneshot.diagnostics.marginals);
}

TEST_F(LearnerRuntimeTest, UpdateWeightsNoOpAndValidation) {
  JoclSession session(dataset_, signals_);
  std::vector<size_t> batch(dataset_->test_triples.begin(),
                            dataset_->test_triples.begin() +
                                std::min<size_t>(
                                    40, dataset_->test_triples.size()));
  ASSERT_TRUE(session.AddTriples(batch).ok());
  const size_t generation = session.generation();

  // Identical weights: no re-inference, no publish.
  size_t publishes = 0;
  session.SetPublishCallback(
      [&publishes](const JoclSession&) { ++publishes; });
  ASSERT_TRUE(session.UpdateWeights(session.weights()).ok());
  EXPECT_EQ(session.generation(), generation);
  EXPECT_EQ(publishes, 0u);

  // Wrong arity is rejected.
  EXPECT_FALSE(session.UpdateWeights({1.0, 2.0}).ok());
  EXPECT_EQ(session.generation(), generation);

  // Empty = DefaultWeights(), which the session already has: still a
  // no-op.
  ASSERT_TRUE(session.UpdateWeights({}).ok());
  EXPECT_EQ(session.generation(), generation);
}

}  // namespace
}  // namespace jocl
