// Observability-layer tests: histogram bucket boundaries, sharded-cell
// merge under concurrent recorders, Prometheus exposition (golden
// rendering, family grouping, aggregation with extra labels), and the
// trace recorder — span nesting, per-track sequence determinism across
// thread counts, and Chrome trace-event JSON well-formedness.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "core/signals.h"
#include "data/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jocl {
namespace {

// ---------- histogram buckets ------------------------------------------------

TEST(HistogramTest, BucketBoundariesArePowersOfTwoTimes1024) {
  EXPECT_EQ(Histogram::BucketBoundNanos(0), 1024u);
  EXPECT_EQ(Histogram::BucketBoundNanos(1), 2048u);
  EXPECT_EQ(Histogram::BucketBoundNanos(10), 1024u << 10);
  EXPECT_EQ(Histogram::BucketBoundNanos(23), 1024ull << 23);  // ~8.6s

  // A sample equal to a bound lands in that bucket; one past it spills
  // into the next. Zero is in the first bucket; everything beyond the
  // last finite bound is +Inf (index kBuckets).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1024), 0u);
  EXPECT_EQ(Histogram::BucketOf(1025), 1u);
  EXPECT_EQ(Histogram::BucketOf(2048), 1u);
  EXPECT_EQ(Histogram::BucketOf(2049), 2u);
  EXPECT_EQ(Histogram::BucketOf(Histogram::BucketBoundNanos(23)), 23u);
  EXPECT_EQ(Histogram::BucketOf(Histogram::BucketBoundNanos(23) + 1),
            Histogram::kBuckets);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets);
}

TEST(HistogramTest, RecordAccumulatesBucketSumAndCount) {
  Histogram histogram;
  histogram.Record(100);    // bucket 0
  histogram.Record(1024);   // bucket 0
  histogram.Record(4000);   // bucket 2 (2048 < 4000 <= 4096)
  histogram.Record(1ull << 40);  // +Inf
  const Histogram::Snapshot snap = histogram.Read();
  EXPECT_EQ(snap.bucket[0], 2u);
  EXPECT_EQ(snap.bucket[1], 0u);
  EXPECT_EQ(snap.bucket[2], 1u);
  EXPECT_EQ(snap.bucket[Histogram::kBuckets], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum_ns, 100u + 1024u + 4000u + (1ull << 40));
}

// ---------- concurrent recording + merge-on-scrape ---------------------------

TEST(MetricsRegistryTest, ConcurrentRecordersMergeExactlyOnScrape) {
  MetricsRegistry registry;
  Counter* counter = registry.AddCounter("t_ops_total", "", "ops");
  Histogram* histogram =
      registry.AddHistogram("t_latency_seconds", "", "latency");
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20000;

  // Scrape while recorders run: merged counts must never decrease
  // (each cell is monotonic and loads respect modification order).
  std::atomic<bool> stop{false};
  std::atomic<bool> scrape_failed{false};
  std::thread scraper([&] {
    uint64_t last = 0;
    while (!stop.load()) {
      const uint64_t now = counter->Value();
      if (now < last) scrape_failed.store(true);
      last = now;
      const Histogram::Snapshot snap = histogram->Read();
      if (snap.count > kThreads * kPerThread) scrape_failed.store(true);
    }
  });

  std::vector<std::thread> recorders;
  for (size_t t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        counter->Add();
        histogram->Record(t * 1000 + i);
      }
    });
  }
  for (std::thread& thread : recorders) thread.join();
  stop.store(true);
  scraper.join();

  EXPECT_FALSE(scrape_failed.load());
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  const Histogram::Snapshot final_snap = histogram->Read();
  EXPECT_EQ(final_snap.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= Histogram::kBuckets; ++i) {
    bucket_total += final_snap.bucket[i];
  }
  EXPECT_EQ(bucket_total, final_snap.count);
}

// ---------- Prometheus exposition --------------------------------------------

TEST(MetricsRegistryTest, RendersGoldenExposition) {
  MetricsRegistry registry;
  Counter* total = registry.AddCounter("t_requests_total", "", "Requests");
  Counter* ok =
      registry.AddCounter("t_requests_total", "code=\"200\"", "ignored");
  Gauge* generation = registry.AddGauge("t_generation", "", "Generation");
  total->Add(3);
  ok->Add();
  generation->Set(-1);
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP t_requests_total Requests\n"
            "# TYPE t_requests_total counter\n"
            "t_requests_total 3\n"
            "t_requests_total{code=\"200\"} 1\n"
            "# HELP t_generation Generation\n"
            "# TYPE t_generation gauge\n"
            "t_generation -1\n");
}

TEST(MetricsRegistryTest, RendersHistogramAsCumulativeSeries) {
  MetricsRegistry registry;
  Histogram* histogram = registry.AddHistogram(
      "t_latency_seconds", "endpoint=\"/lookup\"", "Request latency");
  histogram->Record(1000);  // bucket 0
  histogram->Record(1500);  // bucket 1
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE t_latency_seconds histogram"),
            std::string::npos)
      << text;
  // Cumulative: bucket 0 holds 1, bucket 1 (le="2.048e-06") holds 2,
  // and every later bucket including +Inf stays at 2.
  EXPECT_NE(text.find("t_latency_seconds_bucket{endpoint=\"/lookup\","
                      "le=\"1.024e-06\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("t_latency_seconds_bucket{endpoint=\"/lookup\","
                      "le=\"2.048e-06\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("t_latency_seconds_bucket{endpoint=\"/lookup\","
                      "le=\"+Inf\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("t_latency_seconds_sum{endpoint=\"/lookup\"}"),
            std::string::npos);
  EXPECT_NE(text.find("t_latency_seconds_count{endpoint=\"/lookup\"} 2\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ReregistrationReturnsTheSameHandle) {
  MetricsRegistry registry;
  Counter* first = registry.AddCounter("t_total", "a=\"1\"", "help");
  Counter* again = registry.AddCounter("t_total", "a=\"1\"", "other help");
  Counter* other_labels = registry.AddCounter("t_total", "a=\"2\"", "help");
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other_labels);
  first->Add(2);
  again->Add(3);
  EXPECT_EQ(first->Value(), 5u);
}

TEST(PrometheusAggregatorTest, MergesDocumentsAndStampsExtraLabels) {
  MetricsRegistry own;
  own.AddCounter("t_requests_total", "", "Requests")->Add(7);
  MetricsRegistry shard;
  shard.AddCounter("t_requests_total", "", "Requests")->Add(2);
  shard.AddCounter("t_responses_total", "code=\"200\"", "Responses")->Add(1);
  shard.AddHistogram("t_latency_seconds", "", "Latency")->Record(1000);

  PrometheusAggregator aggregator;
  aggregator.AddText(own.RenderPrometheus(), "");
  aggregator.AddText(shard.RenderPrometheus(), "shard=\"0\"");
  const std::string text = aggregator.Render();

  // The unlabeled own sample and the relabeled shard sample share one
  // family block with a single HELP/TYPE header.
  const std::string expected_head =
      "# HELP t_requests_total Requests\n"
      "# TYPE t_requests_total counter\n"
      "t_requests_total 7\n"
      "t_requests_total{shard=\"0\"} 2\n";
  EXPECT_EQ(text.substr(0, expected_head.size()), expected_head) << text;
  // Existing labels get the extra label prepended.
  EXPECT_NE(text.find("t_responses_total{shard=\"0\",code=\"200\"} 1\n"),
            std::string::npos)
      << text;
  // Histogram series relabel too, including the le label.
  EXPECT_NE(text.find("t_latency_seconds_bucket{shard=\"0\","
                      "le=\"1.024e-06\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("t_latency_seconds_count{shard=\"0\"} 1\n"),
            std::string::npos);
  // _bucket/_sum/_count all fold into the t_latency_seconds family: its
  // TYPE line appears exactly once.
  size_t type_count = 0;
  for (size_t at = text.find("# TYPE t_latency_seconds histogram");
       at != std::string::npos;
       at = text.find("# TYPE t_latency_seconds histogram", at + 1)) {
    ++type_count;
  }
  EXPECT_EQ(type_count, 1u);
}

// ---------- trace recorder ---------------------------------------------------

TEST(TraceRecorderTest, NoGlobalRecorderMeansNoSpans) {
  ASSERT_EQ(TraceRecorder::Global(), nullptr);
  {
    ScopedSpan span("ignored");
    TraceTrackScope track("shard/", 3);
    ScopedSpan inner("also ignored");
  }
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.Spans().empty());
}

TEST(TraceRecorderTest, NestedSpansRecordParentSeqAndContainment) {
  TraceRecorder recorder;
  {
    ScopedTraceSession session(&recorder);
    ScopedSpan root("root");
    {
      ScopedSpan child("child_a");
      ScopedSpan leaf("leaf");
    }
    ScopedSpan child_b("child_b");
  }
  const std::vector<TraceRecorder::Span> spans = recorder.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Sorted by (track, seq); seqs are reserved at span START, so the
  // order is root, child_a, leaf, child_b even though children complete
  // before their parents.
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].seq, 0u);
  EXPECT_EQ(spans[0].parent_seq, -1);
  EXPECT_EQ(spans[1].name, "child_a");
  EXPECT_EQ(spans[1].seq, 1u);
  EXPECT_EQ(spans[1].parent_seq, 0);
  EXPECT_EQ(spans[2].name, "leaf");
  EXPECT_EQ(spans[2].seq, 2u);
  EXPECT_EQ(spans[2].parent_seq, 1);
  EXPECT_EQ(spans[3].name, "child_b");
  EXPECT_EQ(spans[3].seq, 3u);
  EXPECT_EQ(spans[3].parent_seq, 0);
  for (const TraceRecorder::Span& span : spans) {
    EXPECT_EQ(span.track, "main");
  }
  // Containment: every child's interval sits inside the root's.
  const TraceRecorder::Span& root = spans[0];
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, root.start_ns) << spans[i].name;
    EXPECT_LE(spans[i].start_ns + spans[i].dur_ns,
              root.start_ns + root.dur_ns)
        << spans[i].name;
  }
}

TEST(TraceRecorderTest, TrackScopesIsolateThreadsAndSortNumerically) {
  TraceRecorder recorder;
  {
    ScopedTraceSession session(&recorder);
    ScopedSpan main_span("orchestrate");
    std::vector<std::thread> workers;
    for (size_t s : {10, 2, 0}) {
      workers.emplace_back([s] {
        TraceTrackScope track("shard/", s);
        // Inside a fresh track the parent resets: this span is a root
        // even though the spawning thread has "orchestrate" open.
        ScopedSpan span("shard_run");
        ScopedSpan inner("infer");
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const std::vector<TraceRecorder::Span> spans = recorder.Spans();
  ASSERT_EQ(spans.size(), 7u);
  // (length, lexicographic) track order: main, shard/0, shard/2, shard/10.
  EXPECT_EQ(spans[0].track, "main");
  EXPECT_EQ(spans[1].track, "shard/0");
  EXPECT_EQ(spans[3].track, "shard/2");
  EXPECT_EQ(spans[5].track, "shard/10");
  for (size_t i = 1; i < spans.size(); i += 2) {
    EXPECT_EQ(spans[i].name, "shard_run");
    EXPECT_EQ(spans[i].seq, 0u);
    EXPECT_EQ(spans[i].parent_seq, -1);
    EXPECT_EQ(spans[i + 1].name, "infer");
    EXPECT_EQ(spans[i + 1].seq, 1u);
    EXPECT_EQ(spans[i + 1].parent_seq, 0);
  }
}

// Minimal JSON well-formedness check: balanced structure, valid string
// escapes, no trailing garbage. Enough to catch an unescaped quote or a
// missing comma without a full parser.
bool JsonWellFormed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

// Blanks every "ts" and "dur" value so two runs of the same workload can
// be compared byte-for-byte modulo timestamps.
std::string StripTimings(const std::string& json) {
  std::string out;
  size_t pos = 0;
  while (pos < json.size()) {
    const size_t ts = json.find("\"ts\":", pos);
    if (ts == std::string::npos) {
      out.append(json, pos, json.size() - pos);
      break;
    }
    // Every X event renders as …,"ts":N,"dur":N,"args":{…}.
    const size_t end = json.find(",\"args\"", ts);
    EXPECT_NE(end, std::string::npos) << json.substr(ts, 64);
    out.append(json, pos, ts - pos);
    out.append("\"ts\":0,\"dur\":0");
    pos = end;
  }
  return out;
}

TEST(TraceRecorderTest, ChromeJsonIsWellFormedAndEscapesNames) {
  TraceRecorder recorder;
  {
    ScopedTraceSession session(&recorder);
    // Literal split after \x01: "\x01c" would parse as hex 0x1c.
    ScopedSpan tricky("name \"with\" quotes\nand\tcontrol\x01" "chars");
    ScopedSpan args_span("with_args", "\"shard\":3,\"variables\":120");
  }
  const std::string json = recorder.ToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"name \\\"with\\\" quotes\\nand"
                      "\\tcontrol\\u0001chars\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\":3,\"variables\":120"), std::string::npos)
      << json;
}

// ---------- determinism across thread counts (the acceptance bar) ------------

class TraceDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(GenerateReVerb45K(0.05).MoveValueOrDie());
    signals_ = new SignalBundle(BuildSignals(*dataset_).MoveValueOrDie());
  }
  static void TearDownTestSuite() {
    delete signals_;
    delete dataset_;
    signals_ = nullptr;
    dataset_ = nullptr;
  }

  /// Runs one full inference with \p threads workers under a fresh
  /// recorder and returns its Chrome JSON dump.
  static std::string TracedRun(size_t threads) {
    TraceRecorder recorder;
    {
      ScopedTraceSession session(&recorder);
      RuntimeOptions options;
      options.num_threads = threads;
      JoclRuntime runtime({}, options);
      JoclResult result =
          runtime.Infer(*dataset_, *signals_, dataset_->test_triples)
              .MoveValueOrDie();
      (void)result;
    }
    const std::string json = recorder.ToChromeJson();
    EXPECT_FALSE(recorder.Spans().empty());
    return json;
  }

  static Dataset* dataset_;
  static SignalBundle* signals_;
};

Dataset* TraceDeterminism::dataset_ = nullptr;
SignalBundle* TraceDeterminism::signals_ = nullptr;

TEST_F(TraceDeterminism, PipelineDumpIsByteIdenticalAcrossRunsAndThreads) {
  const std::string one_a = TracedRun(1);
  const std::string one_b = TracedRun(1);
  const std::string four_a = TracedRun(4);
  const std::string four_b = TracedRun(4);
  EXPECT_TRUE(JsonWellFormed(one_a));
  EXPECT_TRUE(JsonWellFormed(four_a));
  // Same workload, same logical tracks and seqs: byte-identical modulo
  // the ts/dur fields — across repeat runs AND across thread counts,
  // because spans land on plan-indexed tracks, never physical threads.
  EXPECT_EQ(StripTimings(one_a), StripTimings(one_b));
  EXPECT_EQ(StripTimings(four_a), StripTimings(four_b));
  EXPECT_EQ(StripTimings(one_a), StripTimings(four_a));
  // The pipeline stages the issue names are all present.
  for (const char* stage :
       {"\"build_problem\"", "\"signal_cache\"", "\"partition\"",
        "\"build_graph\"", "\"compile\"", "\"infer\"", "\"decode\"",
        "\"shard_run\""}) {
    EXPECT_NE(one_a.find(stage), std::string::npos) << stage;
  }
}

}  // namespace
}  // namespace jocl
