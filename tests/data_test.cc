#include <gtest/gtest.h>

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "data/dataset_io.h"
#include "data/generator.h"
#include "data/lexicon.h"

namespace jocl {
namespace {

GeneratorOptions SmallOptions(uint64_t seed = 7) {
  GeneratorOptions options;
  options.num_entities = 60;
  options.num_relations = 10;
  options.num_triples = 300;
  options.seed = seed;
  return options;
}

// ---------- Lexicon -----------------------------------------------------------

TEST(LexiconTest, PoolsPopulatedAndDistinctWordsUnique) {
  Rng rng(1);
  Lexicon lexicon(100, &rng);
  EXPECT_GE(lexicon.type_words().size(), 20u);
  EXPECT_GE(lexicon.verb_synsets().size(), 15u);
  EXPECT_EQ(lexicon.distinct_words().size(), 100u);
  std::unordered_set<std::string> unique(lexicon.distinct_words().begin(),
                                         lexicon.distinct_words().end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(LexiconTest, VerbFormsInflected) {
  Rng rng(1);
  Lexicon lexicon(10, &rng);
  bool found = false;
  for (const auto& synset : lexicon.verb_synsets()) {
    for (const auto& verb : synset.verbs) {
      if (verb.base == "found") {
        EXPECT_EQ(verb.past, "founded");
        EXPECT_EQ(verb.gerund, "founding");
        EXPECT_EQ(verb.third, "founds");
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexiconTest, SyntheticWordsArePronounceableAscii) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::string word = Lexicon::MakeSyntheticWord(&rng);
    EXPECT_GE(word.size(), 3u);
    for (char c : word) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << word;
    }
  }
}

// ---------- generator invariants --------------------------------------------------

TEST(GeneratorTest, RejectsDegenerateSizes) {
  GeneratorOptions options;
  options.num_entities = 2;
  EXPECT_FALSE(GenerateDataset(options, "bad").ok());
}

TEST(GeneratorTest, GoldVectorsAlignedWithTriples) {
  auto result = GenerateDataset(SmallOptions(), "t");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  size_t n = ds.okb.size();
  EXPECT_EQ(n, 300u);
  EXPECT_EQ(ds.gold_subject_entity.size(), n);
  EXPECT_EQ(ds.gold_relation.size(), n);
  EXPECT_EQ(ds.gold_object_entity.size(), n);
  EXPECT_EQ(ds.gold_np_group.size(), n * 2);
  EXPECT_EQ(ds.gold_rp_group.size(), n);
  EXPECT_EQ(ds.validation_triples.size() + ds.test_triples.size(), n);
}

TEST(GeneratorTest, ReVerbLikeHasNoNilGold) {
  auto result = GenerateReVerb45K(0.2, 3);
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  for (size_t t = 0; t < ds.okb.size(); ++t) {
    EXPECT_NE(ds.gold_subject_entity[t], kNilId);
    EXPECT_NE(ds.gold_relation[t], kNilId);
    EXPECT_NE(ds.gold_object_entity[t], kNilId);
  }
  EXPECT_FALSE(ds.validation_triples.empty());
}

TEST(GeneratorTest, NytLikeHasNilsAndNoValidation) {
  auto result = GenerateNYTimes2018(0.3, 5);
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  size_t nil_entities = 0;
  size_t nil_relations = 0;
  for (size_t t = 0; t < ds.okb.size(); ++t) {
    if (ds.gold_subject_entity[t] == kNilId) ++nil_entities;
    if (ds.gold_relation[t] == kNilId) ++nil_relations;
  }
  EXPECT_GT(nil_entities, 0u);
  EXPECT_GT(nil_relations, 0u);
  EXPECT_TRUE(ds.validation_triples.empty());
}

TEST(GeneratorTest, GoldLinkConsistentWithGoldGroups) {
  auto result = GenerateDataset(SmallOptions(), "t");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  // Same gold group <=> same gold entity (for linkable mentions). Check on
  // the subject role.
  std::unordered_map<int64_t, int64_t> group_entity;
  for (size_t t = 0; t < ds.okb.size(); ++t) {
    int64_t group = ds.gold_np_group[t * 2];
    int64_t entity = ds.gold_subject_entity[t];
    auto [it, inserted] = group_entity.emplace(group, entity);
    if (!inserted) EXPECT_EQ(it->second, entity) << "group " << group;
  }
}

TEST(GeneratorTest, SameGroupMentionsShareGoldEntityAcrossRoles) {
  auto result = GenerateDataset(SmallOptions(), "t");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  std::unordered_map<int64_t, int64_t> group_entity;
  for (size_t m = 0; m < ds.gold_np_group.size(); ++m) {
    auto [it, inserted] =
        group_entity.emplace(ds.gold_np_group[m], ds.GoldEntityOfMention(m));
    if (!inserted) EXPECT_EQ(it->second, ds.GoldEntityOfMention(m));
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateDataset(SmallOptions(11), "a");
  auto b = GenerateDataset(SmallOptions(11), "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Dataset& da = a.ValueOrDie();
  const Dataset& db = b.ValueOrDie();
  ASSERT_EQ(da.okb.size(), db.okb.size());
  for (size_t t = 0; t < da.okb.size(); ++t) {
    EXPECT_EQ(da.okb.triple(t).subject, db.okb.triple(t).subject);
    EXPECT_EQ(da.okb.triple(t).predicate, db.okb.triple(t).predicate);
    EXPECT_EQ(da.okb.triple(t).object, db.okb.triple(t).object);
  }
  EXPECT_EQ(da.validation_triples, db.validation_triples);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateDataset(SmallOptions(11), "a");
  auto b = GenerateDataset(SmallOptions(12), "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  size_t differences = 0;
  size_t n = std::min(a.ValueOrDie().okb.size(), b.ValueOrDie().okb.size());
  for (size_t t = 0; t < n; ++t) {
    if (a.ValueOrDie().okb.triple(t).subject !=
        b.ValueOrDie().okb.triple(t).subject) {
      ++differences;
    }
  }
  EXPECT_GT(differences, n / 4);
}

TEST(GeneratorTest, EntitiesHaveMultipleAliasesInUse) {
  auto result = GenerateDataset(SmallOptions(), "t");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  // Count distinct surfaces per gold group; a healthy share of groups with
  // >= 2 mentions should expose >= 2 surfaces (the ReVerb45K contract).
  std::unordered_map<int64_t, std::unordered_set<std::string>> surfaces;
  for (size_t t = 0; t < ds.okb.size(); ++t) {
    surfaces[ds.gold_np_group[t * 2]].insert(ds.okb.triple(t).subject);
    surfaces[ds.gold_np_group[t * 2 + 1]].insert(ds.okb.triple(t).object);
  }
  size_t multi = 0;
  size_t total = 0;
  for (const auto& [group, set] : surfaces) {
    ++total;
    if (set.size() >= 2) ++multi;
  }
  EXPECT_GT(multi, total / 4);
}

TEST(GeneratorTest, CkbFactsSubsetOfGoldFacts) {
  auto result = GenerateDataset(SmallOptions(), "t");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  // Every CKB fact must be derivable from some gold triple.
  std::unordered_set<std::string> gold;
  for (size_t t = 0; t < ds.okb.size(); ++t) {
    if (ds.gold_subject_entity[t] == kNilId ||
        ds.gold_relation[t] == kNilId || ds.gold_object_entity[t] == kNilId) {
      continue;
    }
    gold.insert(std::to_string(ds.gold_subject_entity[t]) + ":" +
                std::to_string(ds.gold_relation[t]) + ":" +
                std::to_string(ds.gold_object_entity[t]));
  }
  for (const Fact& fact : ds.ckb.facts()) {
    std::string key = std::to_string(fact.subject) + ":" +
                      std::to_string(fact.relation) + ":" +
                      std::to_string(fact.object);
    EXPECT_TRUE(gold.count(key) > 0) << key;
  }
  EXPECT_GT(ds.ckb.fact_count(), 0u);
}

TEST(GeneratorTest, ValidationSplitRoughlyTwentyPercent) {
  GeneratorOptions options = SmallOptions();
  options.num_triples = 1000;
  auto result = GenerateDataset(options, "t");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  double fraction = static_cast<double>(ds.validation_triples.size()) /
                    static_cast<double>(ds.okb.size());
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.45);
}

TEST(GeneratorTest, PpdbAndAuxSentencesPopulated) {
  auto result = GenerateDataset(SmallOptions(), "t");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  EXPECT_GT(ds.ppdb.cluster_count(), 0u);
  EXPECT_GT(ds.aux_sentences.size(), 0u);
}

// ---------- generator invariants across seeds (parameterized sweep) --------------

class GeneratorInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorInvariants, HoldAcrossSeeds) {
  GeneratorOptions options = SmallOptions(GetParam());
  auto result = GenerateDataset(options, "sweep");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();

  // Structural alignment.
  EXPECT_EQ(ds.okb.size(), options.num_triples);
  EXPECT_EQ(ds.gold_np_group.size(), ds.okb.size() * 2);
  EXPECT_EQ(ds.validation_triples.size() + ds.test_triples.size(),
            ds.okb.size());

  // Splits are disjoint and sorted-unique.
  std::unordered_set<size_t> validation(ds.validation_triples.begin(),
                                        ds.validation_triples.end());
  EXPECT_EQ(validation.size(), ds.validation_triples.size());
  for (size_t t : ds.test_triples) EXPECT_EQ(validation.count(t), 0u);

  // Gold entity ids are valid CKB ids or NIL; gold link consistency with
  // groups holds for every mention.
  std::unordered_map<int64_t, int64_t> group_entity;
  for (size_t m = 0; m < ds.gold_np_group.size(); ++m) {
    int64_t entity = ds.GoldEntityOfMention(m);
    if (entity != kNilId) {
      EXPECT_GE(entity, 0);
      EXPECT_LT(entity, static_cast<int64_t>(ds.ckb.entity_count()));
    }
    auto [it, inserted] = group_entity.emplace(ds.gold_np_group[m], entity);
    if (!inserted) EXPECT_EQ(it->second, entity);
  }

  // Every CKB fact has valid ids.
  for (const Fact& fact : ds.ckb.facts()) {
    EXPECT_GE(fact.subject, 0);
    EXPECT_LT(fact.subject, static_cast<int64_t>(ds.ckb.entity_count()));
    EXPECT_GE(fact.relation, 0);
    EXPECT_LT(fact.relation, static_cast<int64_t>(ds.ckb.relation_count()));
  }

  // Anchor statistics are internally consistent for mentioned surfaces.
  for (size_t t = 0; t < std::min<size_t>(ds.okb.size(), 50); ++t) {
    const std::string& s = ds.okb.triple(t).subject;
    int64_t total = ds.ckb.AnchorCount(s);
    if (total > 0) {
      auto candidates = ds.ckb.ExactAnchorCandidates(s, 100);
      int64_t sum = 0;
      for (const auto& c : candidates) {
        sum += ds.ckb.AnchorCount(s, c.id);
      }
      EXPECT_EQ(sum, total) << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorInvariants,
                         ::testing::Values(1, 7, 42, 99, 1234, 777777));

// ---------- dataset IO ------------------------------------------------------------

TEST(DatasetIoTest, TsvRoundTrip) {
  auto result = GenerateDataset(SmallOptions(), "t");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.ValueOrDie();
  std::string path = ::testing::TempDir() + "/jocl_triples.tsv";
  ASSERT_TRUE(SaveTriplesTsv(ds, path).ok());
  auto loaded = LoadTriplesTsv(path);
  ASSERT_TRUE(loaded.ok());
  const Dataset& ld = loaded.ValueOrDie();
  ASSERT_EQ(ld.okb.size(), ds.okb.size());
  for (size_t t = 0; t < ds.okb.size(); ++t) {
    EXPECT_EQ(ld.okb.triple(t).subject, ds.okb.triple(t).subject);
    EXPECT_EQ(ld.gold_relation[t], ds.gold_relation[t]);
    EXPECT_EQ(ld.gold_np_group[t * 2], ds.gold_np_group[t * 2]);
  }
  EXPECT_EQ(ld.validation_triples, ds.validation_triples);
  EXPECT_EQ(ld.test_triples, ds.test_triples);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadRejectsMalformedFile) {
  std::string path = ::testing::TempDir() + "/jocl_bad.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("only\tthree\tcolumns\n", f);
  fclose(f);
  EXPECT_FALSE(LoadTriplesTsv(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadTriplesTsv("/nonexistent/path/file.tsv").ok());
}

}  // namespace
}  // namespace jocl
