#include <gtest/gtest.h>

#include <unordered_set>

#include "core/decode.h"
#include "core/jocl.h"
#include "util/rng.h"

namespace jocl {
namespace {

size_t ClusterCount(const std::vector<size_t>& labels) {
  return std::unordered_set<size_t>(labels.begin(), labels.end()).size();
}

TEST(ClusterPairGraphTest, EmptyGraphAllSingletons) {
  auto labels = ClusterPairGraph(4, {}, 0.5);
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(ClusterCount(labels), 4u);
}

TEST(ClusterPairGraphTest, ConfidentEdgeMerges) {
  auto labels = ClusterPairGraph(3, {{0, 1, 0.9}}, 0.5);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(ClusterPairGraphTest, SubThresholdEdgeIgnored) {
  auto labels = ClusterPairGraph(2, {{0, 1, 0.49}}, 0.5);
  EXPECT_NE(labels[0], labels[1]);
}

TEST(ClusterPairGraphTest, ChainAssemblesWithoutCrossEdges) {
  // Spanning-chain clusters must still assemble: absent edges are neutral.
  std::vector<PairEdge> edges = {{0, 1, 0.9}, {1, 2, 0.9}, {2, 3, 0.9}};
  auto labels = ClusterPairGraph(4, edges, 0.5);
  EXPECT_EQ(ClusterCount(labels), 1u);
}

TEST(ClusterPairGraphTest, ContradictedMergeVetoed) {
  // Two tight pairs {0,1} and {2,3}; one strong bridge 1-2 but the other
  // observed cross edges (0-2, 0-3, 1-3) say "different" loudly. The
  // average of observed cross beliefs (0.95 + 0.05*3)/4 = 0.29 < 0.5, so
  // the bridge merge must be vetoed.
  std::vector<PairEdge> edges = {
      {0, 1, 0.99}, {2, 3, 0.99},                    // intra-cluster
      {1, 2, 0.95},                                  // the wrong bridge
      {0, 2, 0.05}, {0, 3, 0.05}, {1, 3, 0.05},      // contradictions
  };
  auto labels = ClusterPairGraph(4, edges, 0.5);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(ClusterPairGraphTest, SupportedMergeSurvivesVeto) {
  // Same topology but the cross edges agree with the bridge.
  std::vector<PairEdge> edges = {
      {0, 1, 0.99}, {2, 3, 0.99},
      {1, 2, 0.95},
      {0, 2, 0.8}, {0, 3, 0.8}, {1, 3, 0.8},
  };
  auto labels = ClusterPairGraph(4, edges, 0.5);
  EXPECT_EQ(ClusterCount(labels), 1u);
}

TEST(ClusterPairGraphTest, DuplicateEdgesKeepMaxWeight) {
  std::vector<PairEdge> edges = {{0, 1, 0.2}, {0, 1, 0.9}, {1, 0, 0.4}};
  auto labels = ClusterPairGraph(2, edges, 0.5);
  EXPECT_EQ(labels[0], labels[1]);
}

TEST(ClusterPairGraphTest, LabelsAreDense) {
  std::vector<PairEdge> edges = {{1, 3, 0.9}};
  auto labels = ClusterPairGraph(5, edges, 0.5);
  size_t max_label = 0;
  for (size_t l : labels) max_label = std::max(max_label, l);
  EXPECT_EQ(max_label + 1, ClusterCount(labels));
}

TEST(ClusterPairGraphTest, Deterministic) {
  Rng rng(9);
  std::vector<PairEdge> edges;
  for (int i = 0; i < 200; ++i) {
    size_t a = rng.UniformUint64(40);
    size_t b = rng.UniformUint64(40);
    if (a != b) edges.emplace_back(a, b, rng.UniformDouble());
  }
  auto first = ClusterPairGraph(40, edges, 0.5);
  auto second = ClusterPairGraph(40, edges, 0.5);
  EXPECT_EQ(first, second);
}

class ClusterPairGraphProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterPairGraphProperty, NeverCoarserThanTransitiveClosure) {
  // The veto only *blocks* merges, so the result partition must refine
  // the transitive closure of the confident edges.
  Rng rng(GetParam());
  constexpr size_t kN = 30;
  std::vector<PairEdge> edges;
  for (int i = 0; i < 120; ++i) {
    size_t a = rng.UniformUint64(kN);
    size_t b = rng.UniformUint64(kN);
    if (a != b) edges.emplace_back(a, b, rng.UniformDouble());
  }
  auto labels = ClusterPairGraph(kN, edges, 0.5);
  // Closure reference.
  std::vector<size_t> closure(kN);
  for (size_t i = 0; i < kN; ++i) closure[i] = i;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b, w] : edges) {
      if (w < 0.5) continue;
      size_t lo = std::min(closure[a], closure[b]);
      if (closure[a] != lo || closure[b] != lo) {
        size_t from_a = closure[a];
        size_t from_b = closure[b];
        for (auto& c : closure) {
          if (c == from_a || c == from_b) c = lo;
        }
        changed = true;
      }
    }
  }
  // Same veto-cluster implies same closure-cluster.
  for (size_t i = 0; i < kN; ++i) {
    for (size_t j = i + 1; j < kN; ++j) {
      if (labels[i] == labels[j]) {
        EXPECT_EQ(closure[i], closure[j])
            << "veto clustering merged across closure components";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterPairGraphProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------- §3.5 conflict resolution -----------------------------------------

// A minimal three-triple problem: subject surfaces {a, b, c} (one mention
// each), distinct predicates and objects, no object/predicate pairs unless
// a test adds them. Subject pair (a, b) is the conflict under test.
class ConflictResolutionTest : public ::testing::Test {
 protected:
  static constexpr int64_t kE1 = 10;
  static constexpr int64_t kE2 = 20;
  static constexpr int64_t kR1 = 100;
  static constexpr int64_t kR2 = 200;

  void SetUp() override {
    problem_.triples = {0, 1, 2};
    problem_.subject_surfaces = {"a", "b", "c"};
    problem_.predicate_surfaces = {"p", "q", "r"};
    problem_.object_surfaces = {"x", "y", "z"};
    problem_.subject_of = {0, 1, 2};
    problem_.predicate_of = {0, 1, 2};
    problem_.object_of = {0, 1, 2};
    problem_.subject_rep = {0, 1, 2};
    problem_.predicate_rep = {0, 1, 2};
    problem_.object_rep = {0, 1, 2};
    problem_.subject_pairs = {SurfacePair{0, 1, 0.8}};
    problem_.subject_candidates = {{{kE1, 0.9}}, {{kE2, 0.9}}, {{kE1, 0.9}}};
    problem_.predicate_candidates.assign(3, {});
    problem_.object_candidates.assign(3, {});

    // Pair (a, b) decoded same-meaning with belief 0.9.
    beliefs_.x_state = {1};
    beliefs_.x_marg = {{0.1, 0.9}};
    beliefs_.y_state = {};
    beliefs_.y_marg = {};
    beliefs_.z_state = {};
    beliefs_.z_marg = {};
    // Subjects decoded to their single candidate with confidence 0.8
    // (overturnable); objects and predicates decoded NIL.
    beliefs_.es_state = {1, 1, 1};
    beliefs_.es_marg = {{0.2, 0.8}, {0.2, 0.8}, {0.2, 0.8}};
    beliefs_.rp_state = {0, 0, 0};
    beliefs_.rp_marg = {{1.0}, {1.0}, {1.0}};
    beliefs_.eo_state = {0, 0, 0};
    beliefs_.eo_marg = {{1.0}, {1.0}, {1.0}};

    // Decoded links: a -> e1, b -> e2, c -> e1 (e1's group is larger).
    np_link_ = {kE1, kNilId, kE2, kNilId, kE1, kNilId};
    rp_link_ = {kNilId, kNilId, kNilId};
  }

  JoclProblem problem_;
  JoclBeliefs beliefs_;
  JointDecodeOptions options_;
  std::vector<int64_t> np_link_;
  std::vector<int64_t> rp_link_;
};

TEST_F(ConflictResolutionTest, LoserMentionsMoveToLargerLinkGroup) {
  ResolveLinkConflicts(problem_, beliefs_, options_, &np_link_, &rp_link_);
  // b sat in the smaller group (e2: 1 mention vs e1: 2) and was only 0.8
  // confident -> overturned to e1.
  EXPECT_EQ(np_link_[2], kE1);
  // The winners stay put.
  EXPECT_EQ(np_link_[0], kE1);
  EXPECT_EQ(np_link_[4], kE1);
}

TEST_F(ConflictResolutionTest, ConfidentLinksSurviveTheOverturnGuard) {
  beliefs_.es_marg[1] = {0.1, 0.9};  // b's own link is 0.9 >= 0.85
  ResolveLinkConflicts(problem_, beliefs_, options_, &np_link_, &rp_link_);
  EXPECT_EQ(np_link_[2], kE2);

  // Lowering the guard makes the same mention overturnable again.
  beliefs_.es_marg[1] = {0.1, 0.9};
  options_.overturn_guard = 0.95;
  np_link_ = {kE1, kNilId, kE2, kNilId, kE1, kNilId};
  ResolveLinkConflicts(problem_, beliefs_, options_, &np_link_, &rp_link_);
  EXPECT_EQ(np_link_[2], kE1);
}

TEST_F(ConflictResolutionTest, UnconfidentPairsDoNotFire) {
  beliefs_.x_marg[0] = {0.3, 0.7};  // below conflict_confidence 0.75
  ResolveLinkConflicts(problem_, beliefs_, options_, &np_link_, &rp_link_);
  EXPECT_EQ(np_link_[2], kE2);

  beliefs_.x_state[0] = 0;  // decoded different-meaning: never fires
  beliefs_.x_marg[0] = {0.1, 0.9};
  ResolveLinkConflicts(problem_, beliefs_, options_, &np_link_, &rp_link_);
  EXPECT_EQ(np_link_[2], kE2);
}

TEST_F(ConflictResolutionTest, NilLinksAreNeverResolved) {
  np_link_[2] = kNilId;  // b unlinked: nothing to resolve against
  ResolveLinkConflicts(problem_, beliefs_, options_, &np_link_, &rp_link_);
  EXPECT_EQ(np_link_[0], kE1);
  EXPECT_EQ(np_link_[2], kNilId);
  EXPECT_EQ(np_link_[4], kE1);
}

TEST_F(ConflictResolutionTest, AgreeingLinksAreLeftAlone) {
  np_link_[2] = kE1;  // no conflict on the pair
  ResolveLinkConflicts(problem_, beliefs_, options_, &np_link_, &rp_link_);
  EXPECT_EQ(np_link_[0], kE1);
  EXPECT_EQ(np_link_[2], kE1);
}

TEST_F(ConflictResolutionTest, RelationConflictsUseGroupSizeToo) {
  problem_.predicate_pairs = {SurfacePair{0, 1, 0.8}};
  beliefs_.y_state = {1};
  beliefs_.y_marg = {{0.05, 0.95}};
  rp_link_ = {kR1, kR2, kR1};  // r1's group (2) beats r2's (1)
  ResolveLinkConflicts(problem_, beliefs_, options_, &np_link_, &rp_link_);
  EXPECT_EQ(rp_link_[1], kR1);
  EXPECT_EQ(rp_link_[0], kR1);
  EXPECT_EQ(rp_link_[2], kR1);
}

}  // namespace
}  // namespace jocl
