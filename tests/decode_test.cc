#include <gtest/gtest.h>

#include <unordered_set>

#include "core/decode.h"
#include "util/rng.h"

namespace jocl {
namespace {

size_t ClusterCount(const std::vector<size_t>& labels) {
  return std::unordered_set<size_t>(labels.begin(), labels.end()).size();
}

TEST(ClusterPairGraphTest, EmptyGraphAllSingletons) {
  auto labels = ClusterPairGraph(4, {}, 0.5);
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(ClusterCount(labels), 4u);
}

TEST(ClusterPairGraphTest, ConfidentEdgeMerges) {
  auto labels = ClusterPairGraph(3, {{0, 1, 0.9}}, 0.5);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(ClusterPairGraphTest, SubThresholdEdgeIgnored) {
  auto labels = ClusterPairGraph(2, {{0, 1, 0.49}}, 0.5);
  EXPECT_NE(labels[0], labels[1]);
}

TEST(ClusterPairGraphTest, ChainAssemblesWithoutCrossEdges) {
  // Spanning-chain clusters must still assemble: absent edges are neutral.
  std::vector<PairEdge> edges = {{0, 1, 0.9}, {1, 2, 0.9}, {2, 3, 0.9}};
  auto labels = ClusterPairGraph(4, edges, 0.5);
  EXPECT_EQ(ClusterCount(labels), 1u);
}

TEST(ClusterPairGraphTest, ContradictedMergeVetoed) {
  // Two tight pairs {0,1} and {2,3}; one strong bridge 1-2 but the other
  // observed cross edges (0-2, 0-3, 1-3) say "different" loudly. The
  // average of observed cross beliefs (0.95 + 0.05*3)/4 = 0.29 < 0.5, so
  // the bridge merge must be vetoed.
  std::vector<PairEdge> edges = {
      {0, 1, 0.99}, {2, 3, 0.99},                    // intra-cluster
      {1, 2, 0.95},                                  // the wrong bridge
      {0, 2, 0.05}, {0, 3, 0.05}, {1, 3, 0.05},      // contradictions
  };
  auto labels = ClusterPairGraph(4, edges, 0.5);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(ClusterPairGraphTest, SupportedMergeSurvivesVeto) {
  // Same topology but the cross edges agree with the bridge.
  std::vector<PairEdge> edges = {
      {0, 1, 0.99}, {2, 3, 0.99},
      {1, 2, 0.95},
      {0, 2, 0.8}, {0, 3, 0.8}, {1, 3, 0.8},
  };
  auto labels = ClusterPairGraph(4, edges, 0.5);
  EXPECT_EQ(ClusterCount(labels), 1u);
}

TEST(ClusterPairGraphTest, DuplicateEdgesKeepMaxWeight) {
  std::vector<PairEdge> edges = {{0, 1, 0.2}, {0, 1, 0.9}, {1, 0, 0.4}};
  auto labels = ClusterPairGraph(2, edges, 0.5);
  EXPECT_EQ(labels[0], labels[1]);
}

TEST(ClusterPairGraphTest, LabelsAreDense) {
  std::vector<PairEdge> edges = {{1, 3, 0.9}};
  auto labels = ClusterPairGraph(5, edges, 0.5);
  size_t max_label = 0;
  for (size_t l : labels) max_label = std::max(max_label, l);
  EXPECT_EQ(max_label + 1, ClusterCount(labels));
}

TEST(ClusterPairGraphTest, Deterministic) {
  Rng rng(9);
  std::vector<PairEdge> edges;
  for (int i = 0; i < 200; ++i) {
    size_t a = rng.UniformUint64(40);
    size_t b = rng.UniformUint64(40);
    if (a != b) edges.emplace_back(a, b, rng.UniformDouble());
  }
  auto first = ClusterPairGraph(40, edges, 0.5);
  auto second = ClusterPairGraph(40, edges, 0.5);
  EXPECT_EQ(first, second);
}

class ClusterPairGraphProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterPairGraphProperty, NeverCoarserThanTransitiveClosure) {
  // The veto only *blocks* merges, so the result partition must refine
  // the transitive closure of the confident edges.
  Rng rng(GetParam());
  constexpr size_t kN = 30;
  std::vector<PairEdge> edges;
  for (int i = 0; i < 120; ++i) {
    size_t a = rng.UniformUint64(kN);
    size_t b = rng.UniformUint64(kN);
    if (a != b) edges.emplace_back(a, b, rng.UniformDouble());
  }
  auto labels = ClusterPairGraph(kN, edges, 0.5);
  // Closure reference.
  std::vector<size_t> closure(kN);
  for (size_t i = 0; i < kN; ++i) closure[i] = i;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b, w] : edges) {
      if (w < 0.5) continue;
      size_t lo = std::min(closure[a], closure[b]);
      if (closure[a] != lo || closure[b] != lo) {
        size_t from_a = closure[a];
        size_t from_b = closure[b];
        for (auto& c : closure) {
          if (c == from_a || c == from_b) c = lo;
        }
        changed = true;
      }
    }
  }
  // Same veto-cluster implies same closure-cluster.
  for (size_t i = 0; i < kN; ++i) {
    for (size_t j = i + 1; j < kN; ++j) {
      if (labels[i] == labels[j]) {
        EXPECT_EQ(closure[i], closure[j])
            << "veto clustering merged across closure components";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterPairGraphProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace jocl
