#include <gtest/gtest.h>

#include <cstdio>

#include "core/feature_config.h"
#include "core/weights_io.h"

namespace jocl {
namespace {

TEST(WeightsIoTest, RoundTrip) {
  std::vector<double> weights(WeightLayout::kCount, 1.0);
  weights[WeightLayout::kAlpha1] = 0.25;
  weights[WeightLayout::kBeta5] = -1.5;
  std::string path = ::testing::TempDir() + "/jocl_weights.tsv";
  ASSERT_TRUE(SaveWeights(weights, path).ok());
  auto loaded = LoadWeights(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[k], weights[k]) << k;
  }
  std::remove(path.c_str());
}

TEST(WeightsIoTest, SaveRejectsWrongSize) {
  EXPECT_FALSE(SaveWeights({1.0, 2.0}, "/tmp/never_written.tsv").ok());
}

TEST(WeightsIoTest, MissingEntriesDefaultToUniform) {
  std::string path = ::testing::TempDir() + "/jocl_partial_weights.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("alpha1.idf\t3.5\n", f);
  fclose(f);
  auto loaded = LoadWeights(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[WeightLayout::kAlpha1], 3.5);
  EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[WeightLayout::kBeta4], 1.0);
  std::remove(path.c_str());
}

TEST(WeightsIoTest, RejectsUnknownNamesAndGarbage) {
  std::string path = ::testing::TempDir() + "/jocl_bad_weights.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("no.such.weight\t1.0\n", f);
  fclose(f);
  EXPECT_FALSE(LoadWeights(path).ok());
  f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("alpha1.idf\tnot_a_number\n", f);
  fclose(f);
  EXPECT_FALSE(LoadWeights(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadWeights("/nonexistent/weights.tsv").ok());
}

TEST(WeightsIoTest, ReportSortsByAdjustment) {
  std::vector<double> weights(WeightLayout::kCount, 1.0);
  weights[WeightLayout::kBeta4] = 5.0;   // most adjusted
  weights[WeightLayout::kAlpha2] = 0.5;  // second
  std::string report = FormatWeightReport(weights);
  size_t beta4_pos = report.find("beta4.fact");
  size_t alpha2_pos = report.find("alpha2.idf");
  ASSERT_NE(beta4_pos, std::string::npos);
  ASSERT_NE(alpha2_pos, std::string::npos);
  EXPECT_LT(beta4_pos, alpha2_pos);
}

}  // namespace
}  // namespace jocl
