#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <locale>
#include <string>

#include "core/feature_config.h"
#include "core/weights_io.h"

namespace jocl {
namespace {

// A numpunct facet with a comma decimal point — the de_DE-style locale
// that used to corrupt stream-formatted weight TSVs, without depending
// on any named locale being installed.
class CommaDecimal : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

TEST(WeightsIoTest, RoundTrip) {
  std::vector<double> weights(WeightLayout::kCount, 1.0);
  weights[WeightLayout::kAlpha1] = 0.25;
  weights[WeightLayout::kBeta5] = -1.5;
  std::string path = ::testing::TempDir() + "/jocl_weights.tsv";
  ASSERT_TRUE(SaveWeights(weights, path).ok());
  auto loaded = LoadWeights(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[k], weights[k]) << k;
  }
  std::remove(path.c_str());
}

TEST(WeightsIoTest, RoundTripUnderCommaDecimalLocale) {
  // Save/load must be locale-independent (std::to_chars/from_chars):
  // under a comma-decimal global locale, stream insertion would write
  // "0,25" and strtod-based parsing would truncate it at the comma.
  const std::locale previous = std::locale::global(
      std::locale(std::locale::classic(), new CommaDecimal));
  std::vector<double> weights(WeightLayout::kCount, 1.0);
  weights[WeightLayout::kAlpha1] = 0.25;
  weights[WeightLayout::kBeta5] = -1234.5678;
  weights[WeightLayout::kAlpha2] = 1e-17;
  std::string path = ::testing::TempDir() + "/jocl_locale_weights.tsv";
  const Status save_status = SaveWeights(weights, path);
  auto loaded = LoadWeights(path);
  std::locale::global(previous);
  ASSERT_TRUE(save_status.ok()) << save_status;
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[k], weights[k]) << k;
  }
  std::remove(path.c_str());
}

TEST(WeightsIoTest, LoadRejectsTrailingGarbageAfterNumber) {
  std::string path = ::testing::TempDir() + "/jocl_trailing_weights.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("alpha1.idf\t1.5garbage\n", f);
  fclose(f);
  EXPECT_FALSE(LoadWeights(path).ok());
  std::remove(path.c_str());
}

TEST(WeightsIoTest, SaveRejectsWrongSize) {
  EXPECT_FALSE(SaveWeights({1.0, 2.0}, "/tmp/never_written.tsv").ok());
}

TEST(WeightsIoTest, MissingEntriesDefaultToUniform) {
  std::string path = ::testing::TempDir() + "/jocl_partial_weights.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("alpha1.idf\t3.5\n", f);
  fclose(f);
  auto loaded = LoadWeights(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[WeightLayout::kAlpha1], 3.5);
  EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[WeightLayout::kBeta4], 1.0);
  std::remove(path.c_str());
}

TEST(WeightsIoTest, RejectsUnknownNamesAndGarbage) {
  std::string path = ::testing::TempDir() + "/jocl_bad_weights.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("no.such.weight\t1.0\n", f);
  fclose(f);
  EXPECT_FALSE(LoadWeights(path).ok());
  f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("alpha1.idf\tnot_a_number\n", f);
  fclose(f);
  EXPECT_FALSE(LoadWeights(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadWeights("/nonexistent/weights.tsv").ok());
}

TEST(WeightsIoTest, SavedFileCarriesValidatedHeader) {
  std::vector<double> weights(WeightLayout::kCount, 1.0);
  weights[WeightLayout::kAlpha3] = 2.75;
  std::string path = ::testing::TempDir() + "/jocl_header_weights.tsv";
  ASSERT_TRUE(SaveWeights(weights, path).ok());
  // The first line names every feature column in layout order.
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header.rfind("# jocl-weights\t", 0), 0u);
  EXPECT_NE(header.find("\talpha1.idf\t"), std::string::npos);
  in.close();
  auto loaded = LoadWeights(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(loaded.ValueOrDie()[WeightLayout::kAlpha3], 2.75);
  std::remove(path.c_str());
}

TEST(WeightsIoTest, RejectsReorderedHeader) {
  // A header whose first two columns are swapped simulates a file from a
  // build with a different WeightLayout: it must fail with a message
  // naming the divergence, not silently misassign by name.
  std::string path = ::testing::TempDir() + "/jocl_reordered_weights.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::string header = "# jocl-weights";
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    size_t swapped = k == 0 ? 1 : (k == 1 ? 0 : k);
    header += "\t" + WeightLayout::Name(swapped);
  }
  fputs((header + "\n").c_str(), f);
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    fputs((WeightLayout::Name(k) + "\t1.0\n").c_str(), f);
  }
  fclose(f);
  auto loaded = LoadWeights(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("reordered"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WeightsIoTest, RejectsExtendedHeader) {
  // One extra column = the file came from an extended feature set.
  std::string path = ::testing::TempDir() + "/jocl_extended_weights.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::string header = "# jocl-weights";
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    header += "\t" + WeightLayout::Name(k);
  }
  header += "\tbeta8.future";
  fputs((header + "\n").c_str(), f);
  fclose(f);
  auto loaded = LoadWeights(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("different feature set"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(WeightsIoTest, HeaderedFileRejectsMissingEntries) {
  // With a header the file promises the full set; a truncated body is an
  // error (headerless legacy files stay lenient — see
  // MissingEntriesDefaultToUniform above).
  std::string path = ::testing::TempDir() + "/jocl_truncated_weights.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::string header = "# jocl-weights";
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    header += "\t" + WeightLayout::Name(k);
  }
  fputs((header + "\n").c_str(), f);
  fputs("alpha1.idf\t3.5\n", f);
  fclose(f);
  auto loaded = LoadWeights(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("no value for"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(WeightsIoTest, RejectsUnrecognizedComment) {
  std::string path = ::testing::TempDir() + "/jocl_comment_weights.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("# some other tool's banner\nalpha1.idf\t1.0\n", f);
  fclose(f);
  EXPECT_FALSE(LoadWeights(path).ok());
  std::remove(path.c_str());
}

TEST(WeightsIoTest, ReportSortsByAdjustment) {
  std::vector<double> weights(WeightLayout::kCount, 1.0);
  weights[WeightLayout::kBeta4] = 5.0;   // most adjusted
  weights[WeightLayout::kAlpha2] = 0.5;  // second
  std::string report = FormatWeightReport(weights);
  size_t beta4_pos = report.find("beta4.fact");
  size_t alpha2_pos = report.find("alpha2.idf");
  ASSERT_NE(beta4_pos, std::string::npos);
  ASSERT_NE(alpha2_pos, std::string::npos);
  EXPECT_LT(beta4_pos, alpha2_pos);
}

}  // namespace
}  // namespace jocl
