#ifndef JOCL_TEXT_MORPH_NORMALIZER_H_
#define JOCL_TEXT_MORPH_NORMALIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace jocl {

/// \brief Options controlling morphological normalization of a phrase.
struct MorphNormalizerOptions {
  /// Drop determiners / auxiliaries / other stop words.
  bool remove_stop_words = true;
  /// Porter-stem each remaining token (conflates tense and pluralization).
  bool stem = true;
  /// Map irregular verb/noun forms ("was"->"be", "children"->"child")
  /// before stemming.
  bool apply_irregular_forms = true;
};

/// \brief Morphological normalizer in the spirit of ReVerb's Morph Norm
/// (Fader et al. 2011): removes tense, pluralization, auxiliary verbs,
/// determiners and modifiers so that paraphrased phrases collide.
///
/// Used (a) as the Morph Norm canonicalization baseline, and (b) to prepare
/// triples for the AMIE rule miner (paper §3.1.4 feeds AMIE
/// "morphological normalized OIE triples").
class MorphNormalizer {
 public:
  explicit MorphNormalizer(MorphNormalizerOptions options = {});

  /// Normalizes a phrase to its canonical token sequence.
  std::vector<std::string> NormalizeTokens(std::string_view phrase) const;

  /// Normalizes a phrase to a single space-joined canonical string. Returns
  /// the stemmed full phrase (never empty for non-empty alphanumeric input;
  /// falls back to the raw tokens when everything was a stop word).
  std::string Normalize(std::string_view phrase) const;

 private:
  MorphNormalizerOptions options_;
};

}  // namespace jocl

#endif  // JOCL_TEXT_MORPH_NORMALIZER_H_
