#include "text/porter_stemmer.h"

#include <cstring>
#include <cstddef>

namespace jocl {
namespace {

// Implementation of the 1980 Porter algorithm. The word is held in a
// mutable buffer `b` with logical end `k` (inclusive index of last char),
// following Porter's original exposition.
class Stemmer {
 public:
  explicit Stemmer(std::string word) : b_(std::move(word)) {
    k_ = static_cast<int>(b_.size()) - 1;
  }

  std::string Run() {
    if (k_ <= 1) return b_;  // words of length <= 2 are left alone
    Step1a();
    Step1b();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5a();
    Step5b();
    b_.resize(static_cast<size_t>(k_) + 1);
    return b_;
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure m(): number of VC sequences in b[0..j_].
  int Measure() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int j) const {
    if (j < 1) return false;
    if (b_[static_cast<size_t>(j)] != b_[static_cast<size_t>(j - 1)]) {
      return false;
    }
    return IsConsonant(j);
  }

  // cvc(i) — consonant-vowel-consonant ending where the last consonant is
  // not w, x, or y. Restores an 'e' in words like "hop(e)".
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool Ends(const char* s) {
    int length = static_cast<int>(std::strlen(s));
    if (length > k_ + 1) return false;
    if (std::memcmp(b_.data() + k_ - length + 1, s,
                    static_cast<size_t>(length)) != 0) {
      return false;
    }
    j_ = k_ - length;
    return true;
  }

  void SetTo(const char* s) {
    int length = static_cast<int>(std::strlen(s));
    b_.resize(static_cast<size_t>(j_ + 1));
    b_.append(s);
    k_ = j_ + length;
  }

  void ReplaceIfM(const char* s) {
    if (Measure() > 0) SetTo(s);
  }

  void Step1a() {
    if (b_[static_cast<size_t>(k_)] != 's') return;
    if (Ends("sses")) {
      k_ -= 2;
    } else if (Ends("ies")) {
      SetTo("i");
    } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
      --k_;
    }
  }

  void Step1b() {
    bool restore = false;
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if (Ends("ed")) {
      if (VowelInStem()) {
        k_ = j_;
        restore = true;
      }
    } else if (Ends("ing")) {
      if (VowelInStem()) {
        k_ = j_;
        restore = true;
      }
    }
    if (!restore) return;
    b_.resize(static_cast<size_t>(k_) + 1);
    if (Ends("at")) {
      SetTo("ate");
    } else if (Ends("bl")) {
      SetTo("ble");
    } else if (Ends("iz")) {
      SetTo("ize");
    } else if (DoubleConsonant(k_)) {
      char ch = b_[static_cast<size_t>(k_)];
      if (ch != 'l' && ch != 's' && ch != 'z') --k_;
    } else {
      j_ = k_;
      if (Measure() == 1 && Cvc(k_)) SetTo("e");
    }
  }

  void Step1c() {
    if (Ends("y") && VowelInStem()) b_[static_cast<size_t>(k_)] = 'i';
  }

  void Step2() {
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("ational")) { ReplaceIfM("ate"); break; }
        if (Ends("tional")) { ReplaceIfM("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfM("ence"); break; }
        if (Ends("anci")) { ReplaceIfM("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfM("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { ReplaceIfM("ble"); break; }
        if (Ends("alli")) { ReplaceIfM("al"); break; }
        if (Ends("entli")) { ReplaceIfM("ent"); break; }
        if (Ends("eli")) { ReplaceIfM("e"); break; }
        if (Ends("ousli")) { ReplaceIfM("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfM("ize"); break; }
        if (Ends("ation")) { ReplaceIfM("ate"); break; }
        if (Ends("ator")) { ReplaceIfM("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfM("al"); break; }
        if (Ends("iveness")) { ReplaceIfM("ive"); break; }
        if (Ends("fulness")) { ReplaceIfM("ful"); break; }
        if (Ends("ousness")) { ReplaceIfM("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfM("al"); break; }
        if (Ends("iviti")) { ReplaceIfM("ive"); break; }
        if (Ends("biliti")) { ReplaceIfM("ble"); break; }
        break;
      case 'g':
        if (Ends("logi")) { ReplaceIfM("log"); break; }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (Ends("icate")) { ReplaceIfM("ic"); break; }
        if (Ends("ative")) { ReplaceIfM(""); break; }
        if (Ends("alize")) { ReplaceIfM("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfM("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfM("ic"); break; }
        if (Ends("ful")) { ReplaceIfM(""); break; }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfM(""); break; }
        break;
      default:
        break;
    }
  }

  void Step4() {
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          break;
        }
        if (Ends("ou")) break;
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) k_ = j_;
  }

  void Step5a() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int m = Measure();
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) --k_;
    }
  }

  void Step5b() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleConsonant(k_) &&
        Measure() > 1) {
      --k_;
    }
  }

  std::string b_;
  int k_ = -1;
  int j_ = -1;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  return Stemmer(std::string(word)).Run();
}

}  // namespace jocl
