#include "text/similarity.h"

#include <algorithm>
#include <cstddef>
#include <cmath>

#include "text/tokenizer.h"

namespace jocl {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  std::vector<size_t> prev(n + 1);
  std::vector<size_t> curr(n + 1);
  for (size_t i = 0; i <= n; ++i) prev[i] = i;
  for (size_t j = 1; j <= m; ++j) {
    curr[0] = j;
    for (size_t i = 1; i <= n; ++i) {
      size_t substitution = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[i] = std::min({prev[i] + 1, curr[i - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[n];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const size_t window =
      a.size() > b.size() ? a.size() / 2 : b.size() / 2;
  const size_t match_window = window == 0 ? 0 : window - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  constexpr double kScaling = 0.1;
  return jaro + static_cast<double>(prefix) * kScaling * (1.0 - jaro);
}

double JaccardSimilarity(const std::unordered_set<std::string>& a,
                         const std::unordered_set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t intersection = 0;
  for (const auto& item : small) {
    if (large.count(item) > 0) ++intersection;
  }
  size_t unions = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

std::unordered_set<std::string> CharacterNgrams(std::string_view text,
                                                size_t n) {
  std::unordered_set<std::string> grams;
  if (n == 0) return grams;
  if (text.size() < n) {
    if (!text.empty()) grams.emplace(text);
    return grams;
  }
  for (size_t i = 0; i + n <= text.size(); ++i) {
    grams.emplace(text.substr(i, n));
  }
  return grams;
}

double NgramSimilarity(std::string_view a, std::string_view b, size_t n) {
  return JaccardSimilarity(CharacterNgrams(a, n), CharacterNgrams(b, n));
}

void IdfTable::AddPhrases(const std::vector<std::string>& phrases) {
  for (const auto& phrase : phrases) AddPhrase(phrase);
}

void IdfTable::AddPhrase(std::string_view phrase) {
  for (const auto& token : Tokenize(phrase)) {
    ++counts_[token];
  }
}

int64_t IdfTable::Frequency(const std::string& token) const {
  auto it = counts_.find(token);
  return it == counts_.end() ? 0 : it->second;
}

double IdfTable::TokenWeight(const std::string& token) const {
  int64_t f = std::max<int64_t>(1, Frequency(token));
  return 1.0 / std::log(1.0 + static_cast<double>(f));
}

double IdfTable::Similarity(std::string_view a, std::string_view b) const {
  std::vector<std::string> tokens_a = Tokenize(a);
  std::vector<std::string> tokens_b = Tokenize(b);
  std::unordered_set<std::string> set_a(tokens_a.begin(), tokens_a.end());
  std::unordered_set<std::string> set_b(tokens_b.begin(), tokens_b.end());
  if (set_a.empty() && set_b.empty()) return 1.0;
  if (set_a.empty() || set_b.empty()) return 0.0;
  double intersection_weight = 0.0;
  double union_weight = 0.0;
  for (const auto& token : set_a) {
    double w = TokenWeight(token);
    union_weight += w;
    if (set_b.count(token) > 0) intersection_weight += w;
  }
  for (const auto& token : set_b) {
    if (set_a.count(token) == 0) union_weight += TokenWeight(token);
  }
  if (union_weight <= 0.0) return 0.0;
  return intersection_weight / union_weight;
}

}  // namespace jocl
