#include "text/tokenizer.h"

#include <cctype>

namespace jocl {

std::vector<std::string> Tokenize(std::string_view phrase) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : phrase) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

const std::unordered_set<std::string>& StopWords() {
  static const std::unordered_set<std::string>* const kStopWords =
      new std::unordered_set<std::string>{
          "a",     "an",    "the",   "of",   "in",   "on",    "at",  "to",
          "for",   "with",  "by",    "from", "as",   "is",    "are", "was",
          "were",  "be",    "been",  "being", "am",  "has",   "have", "had",
          "do",    "does",  "did",   "will", "would", "can",  "could",
          "shall", "should", "may",  "might", "must", "and",  "or",  "but",
          "not",   "no",    "it",    "its",  "this", "that",  "these",
          "those", "there", "which", "who",  "whom", "whose", "what",
      };
  return *kStopWords;
}

std::vector<std::string> ContentTokens(std::string_view phrase) {
  std::vector<std::string> tokens = Tokenize(phrase);
  std::vector<std::string> content;
  content.reserve(tokens.size());
  const auto& stop = StopWords();
  for (auto& token : tokens) {
    if (stop.find(token) == stop.end()) content.push_back(std::move(token));
  }
  return content;
}

}  // namespace jocl
