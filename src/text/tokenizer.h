#ifndef JOCL_TEXT_TOKENIZER_H_
#define JOCL_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace jocl {

/// \brief Splits a phrase into lower-cased word tokens.
///
/// Tokens are maximal runs of alphanumeric characters; punctuation is a
/// separator. "University of Maryland, College-Park" ->
/// {"university", "of", "maryland", "college", "park"}.
std::vector<std::string> Tokenize(std::string_view phrase);

/// \brief Returns the set of English stop words used throughout the library
/// (determiners, auxiliaries, prepositions commonly found in OIE relation
/// phrases). The set is immutable and built once.
const std::unordered_set<std::string>& StopWords();

/// \brief Tokenizes and removes stop words. May return an empty vector when
/// the phrase consists only of stop words; callers must handle that.
std::vector<std::string> ContentTokens(std::string_view phrase);

}  // namespace jocl

#endif  // JOCL_TEXT_TOKENIZER_H_
