#ifndef JOCL_TEXT_SIMILARITY_H_
#define JOCL_TEXT_SIMILARITY_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace jocl {

/// \brief Levenshtein edit distance between two strings (unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// \brief Levenshtein similarity normalized to [0, 1]:
/// `1 - LD(a, b) / max(|a|, |b|)`; two empty strings are fully similar.
/// This is the paper's "LD" relation-linking signal (§3.2.4).
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// \brief Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// \brief Jaro-Winkler similarity in [0, 1] with the standard prefix boost
/// (scaling 0.1, prefix capped at 4). Used by the Text Similarity baseline
/// (Galárraga et al. 2014).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// \brief Jaccard similarity of two token sets in [0, 1]. Two empty sets
/// have similarity 1 by convention.
double JaccardSimilarity(const std::unordered_set<std::string>& a,
                         const std::unordered_set<std::string>& b);

/// \brief Character n-gram set of a string (n >= 1). Strings shorter than n
/// contribute themselves as a single gram.
std::unordered_set<std::string> CharacterNgrams(std::string_view text,
                                                size_t n);

/// \brief Jaccard similarity between the character n-gram sets of the two
/// strings. The paper's "Ngram" relation-linking signal (§3.2.4);
/// default n = 3.
double NgramSimilarity(std::string_view a, std::string_view b, size_t n = 3);

/// \brief Corpus-level word-frequency table backing IDF token overlap.
///
/// `f(x)` is the frequency of word x over all NPs (or RPs) in the OKB
/// (paper §3.1.3). Build once per data set, then score pairs.
class IdfTable {
 public:
  IdfTable() = default;

  /// Counts every token of every phrase into the table.
  void AddPhrases(const std::vector<std::string>& phrases);

  /// Counts the tokens of a single phrase.
  void AddPhrase(std::string_view phrase);

  /// Frequency of a token (0 for unseen tokens).
  int64_t Frequency(const std::string& token) const;

  /// Total number of distinct tokens seen.
  size_t vocabulary_size() const { return counts_.size(); }

  /// \brief IDF-weighted token overlap similarity between two phrases
  /// (paper §3.1.3):
  ///   sum_{x in T(a) ∩ T(b)} 1/log(1+f(x))  /
  ///   sum_{x in T(a) ∪ T(b)} 1/log(1+f(x)).
  /// Tokens unseen at build time get frequency 1 (maximally informative).
  /// Returns 1.0 when both token sets are empty, 0.0 when disjoint.
  double Similarity(std::string_view a, std::string_view b) const;

 private:
  double TokenWeight(const std::string& token) const;

  std::unordered_map<std::string, int64_t> counts_;
};

}  // namespace jocl

#endif  // JOCL_TEXT_SIMILARITY_H_
