#include "text/morph_normalizer.h"

#include <unordered_map>

#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace jocl {
namespace {

const std::unordered_map<std::string, std::string>& IrregularForms() {
  static const auto* const kForms =
      new std::unordered_map<std::string, std::string>{
          {"was", "be"},      {"were", "be"},    {"is", "be"},
          {"are", "be"},      {"am", "be"},      {"been", "be"},
          {"being", "be"},    {"has", "have"},   {"had", "have"},
          {"did", "do"},      {"does", "do"},    {"done", "do"},
          {"went", "go"},     {"gone", "go"},    {"made", "make"},
          {"took", "take"},   {"taken", "take"}, {"got", "get"},
          {"gotten", "get"},  {"said", "say"},   {"children", "child"},
          {"men", "man"},     {"women", "woman"}, {"people", "person"},
          {"wrote", "write"}, {"written", "write"}, {"founded", "found"},
          {"held", "hold"},   {"won", "win"},    {"led", "lead"},
          {"left", "leave"},  {"became", "become"},
      };
  return *kForms;
}

}  // namespace

MorphNormalizer::MorphNormalizer(MorphNormalizerOptions options)
    : options_(options) {}

std::vector<std::string> MorphNormalizer::NormalizeTokens(
    std::string_view phrase) const {
  std::vector<std::string> tokens = Tokenize(phrase);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  const auto& stop = StopWords();
  const auto& irregular = IrregularForms();
  for (auto& token : tokens) {
    std::string word = token;
    if (options_.apply_irregular_forms) {
      auto it = irregular.find(word);
      if (it != irregular.end()) word = it->second;
    }
    if (options_.remove_stop_words && stop.count(word) > 0) continue;
    if (options_.stem) word = PorterStem(word);
    out.push_back(std::move(word));
  }
  if (out.empty()) {
    // Everything was a stop word (common for copular RPs like "is a");
    // keep the stemmed raw tokens so the phrase still has a canonical form.
    for (auto& token : tokens) {
      out.push_back(options_.stem ? PorterStem(token) : token);
    }
  }
  return out;
}

std::string MorphNormalizer::Normalize(std::string_view phrase) const {
  return Join(NormalizeTokens(phrase), " ");
}

}  // namespace jocl
