#ifndef JOCL_TEXT_PORTER_STEMMER_H_
#define JOCL_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace jocl {

/// \brief Classic Porter (1980) suffix-stripping stemmer.
///
/// Used by the morphological normalizer (the Morph Norm baseline of
/// Fader et al. 2011) and by AMIE input normalization to conflate tense and
/// plural variants: "founded" / "founding" / "founds" -> "found".
/// Input is expected to be a lower-case ASCII token; other input is returned
/// with only the applicable rules applied.
std::string PorterStem(std::string_view word);

}  // namespace jocl

#endif  // JOCL_TEXT_PORTER_STEMMER_H_
