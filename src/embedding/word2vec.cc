#include "embedding/word2vec.h"

#include <algorithm>
#include <cstddef>
#include <cmath>
#include <unordered_map>

namespace jocl {
namespace {

// Precomputed logistic table, the classic word2vec trick: sigmoid(x) for
// x in [-kMaxExp, kMaxExp] quantized into kTableSize bins.
constexpr int kTableSize = 1000;
constexpr double kMaxExp = 6.0;

const std::vector<float>& SigmoidTable() {
  static const std::vector<float>* const kTable = [] {
    auto* table = new std::vector<float>(kTableSize);
    for (int i = 0; i < kTableSize; ++i) {
      double x = (2.0 * i / kTableSize - 1.0) * kMaxExp;
      (*table)[static_cast<size_t>(i)] =
          static_cast<float>(1.0 / (1.0 + std::exp(-x)));
    }
    return table;
  }();
  return *kTable;
}

inline float FastSigmoid(float x) {
  if (x >= kMaxExp) return 1.0f;
  if (x <= -kMaxExp) return 0.0f;
  int index = static_cast<int>((x + kMaxExp) * (kTableSize / (2.0 * kMaxExp)));
  index = std::clamp(index, 0, kTableSize - 1);
  return SigmoidTable()[static_cast<size_t>(index)];
}

}  // namespace

Word2Vec::Word2Vec(Word2VecOptions options) : options_(options) {}

Result<EmbeddingTable> Word2Vec::Train(
    const std::vector<std::vector<std::string>>& corpus) const {
  // ---- vocabulary -------------------------------------------------------
  std::unordered_map<std::string, size_t> counts_map;
  for (const auto& sentence : corpus) {
    for (const auto& word : sentence) ++counts_map[word];
  }
  std::vector<std::pair<std::string, size_t>> vocab;
  for (auto& [word, count] : counts_map) {
    if (count >= options_.min_count) vocab.emplace_back(word, count);
  }
  if (vocab.empty()) {
    return Status::InvalidArgument("word2vec: empty corpus or vocabulary");
  }
  // Deterministic ordering: by count desc, then lexicographic.
  std::sort(vocab.begin(), vocab.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::unordered_map<std::string, int> word_to_id;
  std::vector<size_t> counts(vocab.size());
  size_t total_tokens = 0;
  for (size_t i = 0; i < vocab.size(); ++i) {
    word_to_id[vocab[i].first] = static_cast<int>(i);
    counts[i] = vocab[i].second;
    total_tokens += vocab[i].second;
  }
  const size_t v = vocab.size();
  const size_t dim = options_.dim;

  // ---- negative-sampling table (unigram^0.75) ----------------------------
  std::vector<double> weights(v);
  for (size_t i = 0; i < v; ++i) {
    weights[i] = std::pow(static_cast<double>(counts[i]), 0.75);
  }
  // Alias-free sampling via cumulative weights (binary search per draw).
  std::vector<double> cumulative(v);
  double acc = 0.0;
  for (size_t i = 0; i < v; ++i) {
    acc += weights[i];
    cumulative[i] = acc;
  }
  for (double& c : cumulative) c /= acc;
  Rng rng(options_.seed);
  auto sample_negative = [&]() -> int {
    double u = rng.UniformDouble();
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    if (it == cumulative.end()) return static_cast<int>(v) - 1;
    return static_cast<int>(it - cumulative.begin());
  };

  // ---- parameter init ----------------------------------------------------
  std::vector<float> syn0(v * dim);  // input vectors (the result)
  std::vector<float> syn1(v * dim, 0.0f);  // output vectors
  for (float& x : syn0) {
    x = static_cast<float>((rng.UniformDouble() - 0.5) / dim);
  }

  // ---- SGD over (center, context) pairs -----------------------------------
  const size_t total_sentences = corpus.size() * options_.epochs;
  size_t processed_sentences = 0;
  std::vector<float> grad_center(dim);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const auto& sentence : corpus) {
      double progress = static_cast<double>(processed_sentences) /
                        static_cast<double>(std::max<size_t>(1, total_sentences));
      float lr = static_cast<float>(
          options_.learning_rate * std::max(0.05, 1.0 - progress));
      ++processed_sentences;

      // Map to ids, apply frequent-word subsampling.
      std::vector<int> ids;
      ids.reserve(sentence.size());
      for (const auto& word : sentence) {
        auto it = word_to_id.find(word);
        if (it == word_to_id.end()) continue;
        if (options_.subsample > 0.0) {
          double freq = static_cast<double>(counts[static_cast<size_t>(
                            it->second)]) /
                        static_cast<double>(total_tokens);
          double keep = (std::sqrt(freq / options_.subsample) + 1.0) *
                        options_.subsample / freq;
          if (keep < 1.0 && rng.UniformDouble() > keep) continue;
        }
        ids.push_back(it->second);
      }
      if (ids.size() < 2) continue;

      for (size_t pos = 0; pos < ids.size(); ++pos) {
        size_t reduced = 1 + static_cast<size_t>(
            rng.UniformUint64(options_.window));
        size_t lo = pos >= reduced ? pos - reduced : 0;
        size_t hi = std::min(ids.size(), pos + reduced + 1);
        int center = ids[pos];
        float* center_vec = syn0.data() + static_cast<size_t>(center) * dim;

        for (size_t cpos = lo; cpos < hi; ++cpos) {
          if (cpos == pos) continue;
          int context = ids[cpos];
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);

          // One positive + `negatives` negative updates.
          for (size_t k = 0; k <= options_.negatives; ++k) {
            int target;
            float label;
            if (k == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = sample_negative();
              if (target == context) continue;
              label = 0.0f;
            }
            float* target_vec =
                syn1.data() + static_cast<size_t>(target) * dim;
            float dot = 0.0f;
            for (size_t d = 0; d < dim; ++d) dot += center_vec[d] * target_vec[d];
            float grad = (label - FastSigmoid(dot)) * lr;
            for (size_t d = 0; d < dim; ++d) {
              grad_center[d] += grad * target_vec[d];
              target_vec[d] += grad * center_vec[d];
            }
          }
          for (size_t d = 0; d < dim; ++d) center_vec[d] += grad_center[d];
        }
      }
    }
  }

  // ---- export -------------------------------------------------------------
  // Common-component removal: raw SGNS vectors are anisotropic (every
  // cosine lands near 1, starving downstream features of signal), so the
  // corpus-mean vector is subtracted from every word vector first — the
  // standard "all-but-the-top" isotropy fix.
  std::vector<float> mean(dim, 0.0f);
  for (size_t i = 0; i < v; ++i) {
    for (size_t d = 0; d < dim; ++d) mean[d] += syn0[i * dim + d];
  }
  for (float& m : mean) m /= static_cast<float>(v);

  EmbeddingTable table(dim);
  std::vector<float> row(dim);
  for (size_t i = 0; i < v; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      row[d] = syn0[i * dim + d] - mean[d];
    }
    table.Set(vocab[i].first, row);
  }
  return table;
}

}  // namespace jocl
