#ifndef JOCL_EMBEDDING_EMBEDDING_TABLE_H_
#define JOCL_EMBEDDING_EMBEDDING_TABLE_H_

#include <deque>
#include <string>
#include <cstddef>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace jocl {

/// \brief Dense word-embedding store with phrase composition.
///
/// JOCL's `Sim_emb` signal (§3.1.3): a phrase embedding is the average of
/// its word vectors ("for a NP which contains several words, we average the
/// vectors of all the single words"), and phrase similarity is the cosine
/// between the averages, clamped to [0, 1] so it can feed the two-state
/// feature functions directly.
class EmbeddingTable {
 public:
  /// Constructs an empty table with the given dimensionality.
  explicit EmbeddingTable(size_t dim = 0) : dim_(dim) {}

  // The index is keyed by string_views into words_, so copies must rebuild
  // it against their own storage. Moves keep string addresses stable
  // (deque blocks are transferred wholesale) and can use the defaults.
  EmbeddingTable(const EmbeddingTable& other);
  EmbeddingTable& operator=(const EmbeddingTable& other);
  EmbeddingTable(EmbeddingTable&&) = default;
  EmbeddingTable& operator=(EmbeddingTable&&) = default;

  size_t dim() const { return dim_; }
  size_t size() const { return index_.size(); }

  /// Inserts or overwrites the vector of \p word; the vector length must
  /// equal dim().
  void Set(std::string_view word, const std::vector<float>& vector);

  /// True iff the word has a vector.
  bool Contains(std::string_view word) const;

  /// Pointer to the word's vector (length dim()), or nullptr.
  const float* Vector(std::string_view word) const;

  /// Average of the vectors of the phrase's known tokens. Returns a zero
  /// vector when no token is known (callers should treat that as "no
  /// evidence", similarity 0.5 neutral is up to the signal layer).
  std::vector<float> PhraseVector(std::string_view phrase) const;

  /// Cosine similarity of two raw vectors; 0 when either has zero norm.
  static double Cosine(const std::vector<float>& a,
                       const std::vector<float>& b);

  /// Cosine of the two phrase vectors clamped to [0, 1]. Returns
  /// \p fallback when either phrase has no known token.
  double PhraseSimilarity(std::string_view a, std::string_view b,
                          double fallback = 0.5) const;

  /// Snapshot of all words in the table (deterministic order: sorted).
  /// Intended for serialization and diagnostics, not hot paths.
  std::vector<std::string> Words() const;

 private:
  void RebuildIndex();

  size_t dim_;
  /// Owns the word strings; deque keeps element addresses stable under
  /// growth so index_ can key string_views into it. Lookups with a
  /// string_view therefore never construct a std::string (the hot signal
  /// path calls Vector() per token, per phrase, per pair).
  std::deque<std::string> words_;
  std::unordered_map<std::string_view, size_t> index_;
  std::vector<float> data_;  // row-major, one row per word
};

}  // namespace jocl

#endif  // JOCL_EMBEDDING_EMBEDDING_TABLE_H_
