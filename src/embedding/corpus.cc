#include "embedding/corpus.h"

#include "text/tokenizer.h"

namespace jocl {

std::vector<std::vector<std::string>> BuildTripleCorpus(const OpenKb& okb) {
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(okb.size());
  for (const auto& triple : okb.triples()) {
    std::vector<std::string> sentence;
    for (const auto& token : Tokenize(triple.subject)) {
      sentence.push_back(token);
    }
    for (const auto& token : Tokenize(triple.predicate)) {
      sentence.push_back(token);
    }
    for (const auto& token : Tokenize(triple.object)) {
      sentence.push_back(token);
    }
    if (!sentence.empty()) corpus.push_back(std::move(sentence));
  }
  return corpus;
}

void AppendSentences(const std::vector<std::vector<std::string>>& extra,
                     std::vector<std::vector<std::string>>* corpus) {
  corpus->insert(corpus->end(), extra.begin(), extra.end());
}

}  // namespace jocl
