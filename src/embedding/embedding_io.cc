#include "embedding/embedding_io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace jocl {

Status SaveEmbeddingsText(const EmbeddingTable& table,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << table.size() << ' ' << table.dim() << '\n';
  // EmbeddingTable has no iteration API by design (hot-path lookups only),
  // so serialization walks the words via the index snapshot.
  for (const auto& word : table.Words()) {
    const float* v = table.Vector(word);
    out << word;
    for (size_t d = 0; d < table.dim(); ++d) out << ' ' << v[d];
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EmbeddingTable> LoadEmbeddingsText(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  size_t count = 0;
  size_t dim = 0;
  if (!(in >> count >> dim) || dim == 0) {
    return Status::IOError("malformed embedding header in " + path);
  }
  EmbeddingTable table(dim);
  std::string word;
  std::vector<float> vector(dim);
  for (size_t i = 0; i < count; ++i) {
    if (!(in >> word)) {
      return Status::IOError("unexpected end of embeddings at row " +
                             std::to_string(i));
    }
    for (size_t d = 0; d < dim; ++d) {
      if (!(in >> vector[d])) {
        return Status::IOError("truncated vector for word '" + word + "'");
      }
    }
    table.Set(word, vector);
  }
  return table;
}

}  // namespace jocl
