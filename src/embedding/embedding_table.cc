#include "embedding/embedding_table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>

#include "text/tokenizer.h"

namespace jocl {

EmbeddingTable::EmbeddingTable(const EmbeddingTable& other)
    : dim_(other.dim_), words_(other.words_), data_(other.data_) {
  RebuildIndex();
}

EmbeddingTable& EmbeddingTable::operator=(const EmbeddingTable& other) {
  if (this == &other) return *this;
  dim_ = other.dim_;
  words_ = other.words_;
  data_ = other.data_;
  RebuildIndex();
  return *this;
}

void EmbeddingTable::RebuildIndex() {
  index_.clear();
  index_.reserve(words_.size());
  for (size_t row = 0; row < words_.size(); ++row) {
    index_.emplace(std::string_view(words_[row]), row);
  }
}

void EmbeddingTable::Set(std::string_view word,
                         const std::vector<float>& vector) {
  assert(vector.size() == dim_ && "vector length must equal table dim");
  auto it = index_.find(word);
  if (it == index_.end()) {
    words_.emplace_back(word);
    index_.emplace(std::string_view(words_.back()), words_.size() - 1);
    data_.insert(data_.end(), vector.begin(), vector.end());
  } else {
    std::copy(vector.begin(), vector.end(),
              data_.begin() + static_cast<ptrdiff_t>(it->second * dim_));
  }
}

bool EmbeddingTable::Contains(std::string_view word) const {
  return index_.find(word) != index_.end();
}

const float* EmbeddingTable::Vector(std::string_view word) const {
  auto it = index_.find(word);
  if (it == index_.end()) return nullptr;
  return data_.data() + it->second * dim_;
}

std::vector<float> EmbeddingTable::PhraseVector(
    std::string_view phrase) const {
  std::vector<float> sum(dim_, 0.0f);
  size_t known = 0;
  for (const auto& token : Tokenize(phrase)) {
    const float* v = Vector(token);
    if (v == nullptr) continue;
    for (size_t d = 0; d < dim_; ++d) sum[d] += v[d];
    ++known;
  }
  if (known > 1) {
    float inv = 1.0f / static_cast<float>(known);
    for (float& x : sum) x *= inv;
  }
  return sum;
}

double EmbeddingTable::Cosine(const std::vector<float>& a,
                              const std::vector<float>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    dot += static_cast<double>(a[d]) * b[d];
    norm_a += static_cast<double>(a[d]) * a[d];
    norm_b += static_cast<double>(b[d]) * b[d];
  }
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

std::vector<std::string> EmbeddingTable::Words() const {
  std::vector<std::string> words(words_.begin(), words_.end());
  std::sort(words.begin(), words.end());
  return words;
}

double EmbeddingTable::PhraseSimilarity(std::string_view a,
                                        std::string_view b,
                                        double fallback) const {
  std::vector<float> va = PhraseVector(a);
  std::vector<float> vb = PhraseVector(b);
  auto is_zero = [](const std::vector<float>& v) {
    for (float x : v) {
      if (x != 0.0f) return false;
    }
    return true;
  };
  if (is_zero(va) || is_zero(vb)) return fallback;
  double cosine = Cosine(va, vb);
  return cosine < 0.0 ? 0.0 : cosine;
}

}  // namespace jocl
