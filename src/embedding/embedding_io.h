#ifndef JOCL_EMBEDDING_EMBEDDING_IO_H_
#define JOCL_EMBEDDING_EMBEDDING_IO_H_

#include <string>

#include "embedding/embedding_table.h"
#include "util/result.h"

namespace jocl {

/// \brief Saves an embedding table in the word2vec text format:
/// first line `<count> <dim>`, then one `word v1 v2 ... vdim` row per
/// word. Training embeddings is the expensive part of signal
/// construction; persisting them lets repeated experiments skip it.
Status SaveEmbeddingsText(const EmbeddingTable& table,
                          const std::string& path);

/// \brief Loads a table saved by SaveEmbeddingsText (or produced by any
/// word2vec-compatible tool). Fails on malformed headers, inconsistent
/// dimensions, or unreadable files.
Result<EmbeddingTable> LoadEmbeddingsText(const std::string& path);

}  // namespace jocl

#endif  // JOCL_EMBEDDING_EMBEDDING_IO_H_
