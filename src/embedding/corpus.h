#ifndef JOCL_EMBEDDING_CORPUS_H_
#define JOCL_EMBEDDING_CORPUS_H_

#include <string>
#include <vector>

#include "kb/open_kb.h"

namespace jocl {

/// \brief Builds a word2vec training corpus from an OKB.
///
/// Each triple becomes one sentence: the tokens of subject, predicate and
/// object in order. \p repetitions controls how many shuffled passes are
/// materialized (the generator's paraphrases then co-occur with the same
/// context tokens across triples, which is what makes `Sim_emb` informative).
std::vector<std::vector<std::string>> BuildTripleCorpus(const OpenKb& okb);

/// \brief Extends a corpus in place with the supplied auxiliary sentences
/// (e.g. the synthetic "source text" sentences the data generator emits).
void AppendSentences(const std::vector<std::vector<std::string>>& extra,
                     std::vector<std::vector<std::string>>* corpus);

}  // namespace jocl

#endif  // JOCL_EMBEDDING_CORPUS_H_
