#ifndef JOCL_EMBEDDING_WORD2VEC_H_
#define JOCL_EMBEDDING_WORD2VEC_H_

#include <string>
#include <cstddef>
#include <vector>

#include "embedding/embedding_table.h"
#include "util/result.h"
#include "util/rng.h"

namespace jocl {

/// \brief Hyper-parameters for skip-gram negative-sampling training.
struct Word2VecOptions {
  size_t dim = 48;            ///< embedding dimensionality
  size_t window = 4;          ///< max context window (actual is sampled 1..window)
  size_t negatives = 5;       ///< negative samples per positive pair
  double learning_rate = 0.025;  ///< initial SGD step, linearly decayed
  size_t epochs = 5;          ///< passes over the corpus
  double subsample = 1e-3;    ///< frequent-word subsampling threshold (0 = off)
  size_t min_count = 1;       ///< discard words rarer than this
  uint64_t seed = 42;         ///< RNG seed (training is deterministic)
};

/// \brief From-scratch word2vec (Mikolov et al. 2013) skip-gram trainer
/// with negative sampling.
///
/// This is the library's substitute for the paper's pre-trained fastText
/// Common-Crawl vectors (§3.1.3): the corpus is synthesized from the OKB
/// triples themselves, so paraphrased NPs/RPs share contexts and end up
/// with high cosine similarity — the same distributional-semantics signal,
/// trained rather than downloaded.
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecOptions options = {});

  /// Trains on the corpus (one token sequence per sentence) and returns the
  /// learned input vectors. Fails on an empty corpus/vocabulary.
  Result<EmbeddingTable> Train(
      const std::vector<std::vector<std::string>>& corpus) const;

 private:
  Word2VecOptions options_;
};

}  // namespace jocl

#endif  // JOCL_EMBEDDING_WORD2VEC_H_
