#include "serve/response_cache.h"

#include <algorithm>
#include <cstring>

#include "serve/http_client.h"
#include "serve/http_util.h"
#include "serve/server.h"

namespace jocl {
namespace {

/// The arena entry layout shared with the fallback renderer: status
/// line + fixed headers + Content-Length + the store's generation,
/// stopping before the Connection line so the event loop can finish the
/// head per request.
void AppendResponseHead(std::string* arena, size_t body_len,
                        uint64_t generation) {
  arena->append("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                "Content-Length: ");
  arena->append(std::to_string(body_len));
  arena->append("\r\nX-Jocl-Generation: ");
  arena->append(std::to_string(generation));
  arena->append("\r\n");
}

const char* KindQuerySuffix(CanonKind kind) {
  return kind == CanonKind::kNp ? "&kind=np" : "&kind=rp";
}

}  // namespace

int64_t ResponseCache::FindSurfaceId(const KindCache& kind,
                                     std::string_view surface) const {
  const auto it = std::lower_bound(kind.surface_keys.begin(),
                                   kind.surface_keys.end(), surface, SvLess{});
  if (it == kind.surface_keys.end() || *it != surface) return -1;
  return kind.surface_ids[static_cast<size_t>(it - kind.surface_keys.begin())];
}

bool ResponseCache::Find(std::string_view method, std::string_view target,
                         char* scratch, size_t scratch_cap, Hit* hit) const {
  if (arena_.empty() || method != "GET") return false;
  std::string_view path = target;
  std::string_view query;
  const size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }
  enum class Role { kLookup, kLink, kCluster };
  Role role;
  if (path == "/lookup") {
    role = Role::kLookup;
  } else if (path == "/link") {
    role = Role::kLink;
  } else if (path == "/cluster") {
    role = Role::kCluster;
  } else {
    return false;  // /stats and unknown paths are never cached
  }

  std::string_view raw_kind;
  CanonKind kind = CanonKind::kNp;
  switch (FindQueryValue(query, "kind", &raw_kind)) {
    case QueryScan::kNeedsFallback:
      return false;
    case QueryScan::kMissing:
      break;
    case QueryScan::kFound: {
      char kind_buf[8];
      std::string_view decoded;
      if (!UrlDecodeInto(raw_kind, kind_buf, sizeof(kind_buf), &decoded)) {
        return false;
      }
      if (decoded == "np") {
        kind = CanonKind::kNp;
      } else if (decoded == "rp") {
        kind = CanonKind::kRp;
      } else {
        return false;  // fallback renders the 400
      }
      break;
    }
  }
  const KindCache& kc = kinds_[static_cast<size_t>(kind)];

  const Slice* slice = nullptr;
  if (role == Role::kCluster) {
    std::string_view raw_id;
    if (FindQueryValue(query, "id", &raw_id) != QueryScan::kFound ||
        raw_id.empty() ||
        raw_id.find_first_not_of("0123456789") != std::string_view::npos) {
      return false;
    }
    uint64_t id = 0;
    for (char c : raw_id) {
      id = id * 10 + static_cast<uint64_t>(c - '0');
      if (id > 0xffffffffull) return false;  // fallback renders the 404
    }
    // Targets carry global ids; on a shard the global map takes them to
    // the local slice index.
    const int64_t local =
        store_->FindClusterByGlobalId(kind, id);
    if (local < 0 || static_cast<size_t>(local) >= kc.cluster.size()) {
      return false;  // fallback renders the 404
    }
    slice = &kc.cluster[static_cast<size_t>(local)];
  } else {
    std::string_view raw_surface;
    if (FindQueryValue(query, "surface", &raw_surface) != QueryScan::kFound) {
      return false;
    }
    std::string_view surface;
    if (!UrlDecodeInto(raw_surface, scratch, scratch_cap, &surface)) {
      return false;
    }
    const int64_t id = FindSurfaceId(kc, surface);
    if (id < 0) return false;  // unknown surface: fallback renders the 404
    slice = role == Role::kLookup
                ? &kc.lookup[static_cast<size_t>(id)]
                : &kc.link[static_cast<size_t>(id)];
  }
  if (slice->header_len == 0) return false;
  *hit = Materialize(*slice);
  return true;
}

ResponseCache BuildResponseCache(const CanonStore& store) {
  ResponseCache cache;
  cache.store_ = &store;
  std::string& arena = cache.arena_;
  const ServeCounters no_counters;
  for (CanonKind kind : {CanonKind::kNp, CanonKind::kRp}) {
    const CanonSection& section = store.section(kind);
    ResponseCache::KindCache& kc =
        cache.kinds_[static_cast<size_t>(kind)];
    kc.surface_ids = section.surface_order;
    kc.surface_keys.reserve(kc.surface_ids.size());
    for (uint32_t surface : kc.surface_ids) {
      kc.surface_keys.push_back(store.SurfaceText(kind, surface));
    }
    kc.lookup.resize(section.surface_count());
    kc.link.resize(section.surface_count());
    kc.cluster.resize(section.cluster_count());

    auto render = [&](const std::string& target,
                      ResponseCache::Slice* slice) {
      int status = 0;
      const std::string body =
          HandleCanonRequest(&store, "GET", target, no_counters, &status);
      if (status != 200) return;  // leave the slice empty: always a miss
      slice->offset = arena.size();
      AppendResponseHead(&arena, body.size(), store.generation);
      slice->header_len = static_cast<uint32_t>(arena.size() - slice->offset);
      arena.append(body);
      slice->body_len = static_cast<uint32_t>(body.size());
    };

    for (size_t s = 0; s < section.surface_count(); ++s) {
      const std::string encoded =
          UrlEncode(store.SurfaceText(kind, s)) + KindQuerySuffix(kind);
      render("/lookup?surface=" + encoded, &kc.lookup[s]);
      render("/link?surface=" + encoded, &kc.link[s]);
    }
    for (size_t c = 0; c < section.cluster_count(); ++c) {
      // Targets speak global ids, matching what clients (and the
      // router) actually request against a shard.
      render("/cluster?id=" +
                 std::to_string(store.GlobalClusterId(kind, c)) +
                 KindQuerySuffix(kind),
             &kc.cluster[c]);
    }
  }
  return cache;
}

}  // namespace jocl
