#include "serve/server.h"

#include <cstdlib>
#include <utility>

#include "serve/http_util.h"
#include "serve/json.h"
#include "util/ids.h"

namespace jocl {
namespace {

const char* KindName(CanonKind kind) {
  return kind == CanonKind::kNp ? "np" : "rp";
}

/// Parses the `kind` parameter; defaults to NP. Returns false on an
/// unknown value.
bool ParseKind(const QueryParams& query, CanonKind* kind) {
  const std::string* value = query.Find("kind");
  if (value == nullptr || *value == "np") {
    *kind = CanonKind::kNp;
    return true;
  }
  if (*value == "rp") {
    *kind = CanonKind::kRp;
    return true;
  }
  return false;
}

void AppendLinkJson(std::string* out, const CanonStore& store, CanonKind kind,
                    size_t cluster) {
  const int64_t link = store.ClusterLink(kind, cluster);
  if (link == kNilId) {
    out->append("null");
    return;
  }
  out->append("{\"id\":");
  out->append(std::to_string(link));
  out->append(",\"name\":");
  AppendJsonString(out, store.ClusterLinkName(kind, cluster));
  out->append(",\"votes\":");
  out->append(
      std::to_string(store.section(kind).cluster_link_votes[cluster]));
  out->push_back('}');
}

void AppendClusterJson(std::string* out, const CanonStore& store,
                       CanonKind kind, size_t cluster) {
  ConstSpan<uint32_t> members = store.ClusterMembers(kind, cluster);
  out->append("{\"id\":");
  out->append(std::to_string(store.GlobalClusterId(kind, cluster)));
  out->append(",\"size\":");
  out->append(std::to_string(members.size()));
  out->append(",\"members\":[");
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonString(out, store.SurfaceText(kind, members[i]));
  }
  out->append("],\"link\":");
  AppendLinkJson(out, store, kind, cluster);
  out->push_back('}');
}

std::string HandleLookup(const CanonStore& store, const QueryParams& query,
                         bool link_only, int* http_status) {
  CanonKind kind = CanonKind::kNp;
  if (!ParseKind(query, &kind)) {
    *http_status = 400;
    return ErrorBody("unknown kind (expected np or rp)");
  }
  const std::string* surface = query.Find("surface");
  if (surface == nullptr) {
    *http_status = 400;
    return ErrorBody("missing required parameter 'surface'");
  }
  const int64_t id = store.FindSurface(kind, *surface);
  if (id < 0) {
    *http_status = 404;
    std::string out = "{\"error\":\"surface not found\",\"surface\":";
    AppendJsonString(&out, *surface);
    out.append(",\"kind\":\"");
    out.append(KindName(kind));
    out.append("\"}");
    return out;
  }
  const size_t s = static_cast<size_t>(id);
  *http_status = 200;
  std::string out = "{\"surface\":";
  AppendJsonString(&out, *surface);
  out.append(",\"kind\":\"");
  out.append(KindName(kind));
  out.append("\",\"surface_id\":");
  out.append(std::to_string(store.GlobalSurfaceId(kind, s)));
  ConstSpan<uint32_t> clusters = store.ClustersOf(kind, s);
  if (link_only) {
    out.append(",\"link\":");
    if (clusters.empty()) {
      out.append("null");
    } else {
      AppendLinkJson(&out, store, kind, clusters[0]);
    }
  } else {
    out.append(",\"mentions\":");
    out.append(std::to_string(store.MentionCount(kind, s)));
    out.append(",\"clusters\":[");
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendClusterJson(&out, store, kind, clusters[i]);
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

std::string HandleCluster(const CanonStore& store, const QueryParams& query,
                          int* http_status) {
  CanonKind kind = CanonKind::kNp;
  if (!ParseKind(query, &kind)) {
    *http_status = 400;
    return ErrorBody("unknown kind (expected np or rp)");
  }
  const std::string* id_text = query.Find("id");
  if (id_text == nullptr || id_text->empty() ||
      id_text->find_first_not_of("0123456789") != std::string::npos) {
    *http_status = 400;
    return ErrorBody("missing or non-numeric parameter 'id'");
  }
  const uint64_t id = std::strtoull(id_text->c_str(), nullptr, 10);
  // The id is a global (monolith) id; on a shard the global map takes it
  // to the local slot, and ids the shard does not carry 404 exactly like
  // an out-of-range id on the monolith.
  const int64_t local = store.FindClusterByGlobalId(kind, id);
  if (local < 0) {
    *http_status = 404;
    return ErrorBody("cluster id out of range");
  }
  *http_status = 200;
  std::string out = "{\"kind\":\"";
  out.append(KindName(kind));
  out.append("\",\"cluster\":");
  AppendClusterJson(&out, store, kind, static_cast<size_t>(local));
  out.push_back('}');
  return out;
}

std::string HandleStats(const CanonStore* store,
                        const ServeCounters& counters, int* http_status) {
  *http_status = 200;
  std::string out = "{\"published\":";
  out.append(store != nullptr ? "true" : "false");
  if (store != nullptr) {
    out.append(",\"generation\":");
    out.append(std::to_string(store->generation));
    out.append(",\"triples\":");
    out.append(std::to_string(store->triple_count));
    if (store->shard_count > 0) {
      out.append(",\"shard\":{\"index\":");
      out.append(std::to_string(store->shard_index));
      out.append(",\"count\":");
      out.append(std::to_string(store->shard_count));
      out.push_back('}');
    }
    out.append(",\"np\":{\"surfaces\":");
    out.append(std::to_string(store->np.surface_count()));
    out.append(",\"clusters\":");
    out.append(std::to_string(store->np.cluster_count()));
    out.append("},\"rp\":{\"surfaces\":");
    out.append(std::to_string(store->rp.surface_count()));
    out.append(",\"clusters\":");
    out.append(std::to_string(store->rp.cluster_count()));
    out.push_back('}');
  }
  out.append(",\"requests\":");
  out.append(std::to_string(counters.requests));
  out.append(",\"scrapes\":");
  out.append(std::to_string(counters.scrapes));
  out.append(",\"ok\":");
  out.append(std::to_string(counters.ok));
  out.append(",\"not_found\":");
  out.append(std::to_string(counters.not_found));
  out.append(",\"bad_request\":");
  out.append(std::to_string(counters.bad_request));
  out.append(",\"unavailable\":");
  out.append(std::to_string(counters.unavailable));
  out.append(",\"publishes\":");
  out.append(std::to_string(counters.publishes));
  out.append(",\"events\":{\"accepted\":");
  out.append(std::to_string(counters.connections_accepted));
  out.append(",\"reused\":");
  out.append(std::to_string(counters.connections_reused));
  out.append(",\"timed_out\":");
  out.append(std::to_string(counters.connections_timed_out));
  out.append(",\"cache_hits\":");
  out.append(std::to_string(counters.cache_hits));
  out.append(",\"cache_misses\":");
  out.append(std::to_string(counters.cache_misses));
  out.append(",\"writev_bytes\":");
  out.append(std::to_string(counters.writev_bytes));
  out.append("}}");
  return out;
}

}  // namespace

std::string HandleCanonRequest(const CanonStore* store,
                               std::string_view method,
                               std::string_view target,
                               const ServeCounters& counters,
                               int* http_status) {
  if (method != "GET") {
    *http_status = 405;
    return ErrorBody("method not allowed (GET only)");
  }
  std::string_view path = target;
  std::string_view query_text;
  const size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    path = target.substr(0, qmark);
    query_text = target.substr(qmark + 1);
  }
  if (path == "/stats") {
    return HandleStats(store, counters, http_status);
  }
  if (path != "/lookup" && path != "/cluster" && path != "/link") {
    *http_status = 404;
    std::string out = "{\"error\":\"unknown endpoint\",\"path\":";
    AppendJsonString(&out, path);
    out.push_back('}');
    return out;
  }
  if (store == nullptr) {
    *http_status = 503;
    return ErrorBody("no store published yet");
  }
  const QueryParams query = ParseQuery(query_text);
  if (path == "/cluster") return HandleCluster(*store, query, http_status);
  return HandleLookup(*store, query, /*link_only=*/path == "/link",
                      http_status);
}

CanonServer::CanonServer(ServeOptions options)
    : EventHttpServer(std::move(options)) {
  MetricsRegistry& registry = metrics_registry();
  publishes_ =
      registry.AddCounter("jocl_publishes_total", "", "Store swaps");
  cache_hits_ = registry.AddCounter("jocl_cache_hits_total", "",
                                    "Requests answered from the arena");
  cache_misses_ = registry.AddCounter(
      "jocl_cache_misses_total", "", "Requests rendered by the fallback path");
  published_ = registry.AddGauge("jocl_published", "",
                                 "1 when a store is being served");
  generation_ = registry.AddGauge(
      "jocl_generation", "", "Generation of the served store (-1 before "
                             "the first publish)");
  generation_->Set(-1);
}

CanonServer::~CanonServer() {
  // Must run here, not in the base destructor: event threads dispatch
  // into our virtual HandleRequest until they are joined.
  Stop();
}

void CanonServer::Publish(std::shared_ptr<const CanonStore> store) {
  std::shared_ptr<const ServingBundle> bundle;
  if (store != nullptr) {
    auto fresh = std::make_shared<ServingBundle>();
    fresh->store = std::move(store);
    if (options().prerender) {
      // Rendering happens here, on the publisher thread; readers only
      // ever see the finished bundle through the atomic swap below.
      fresh->cache = BuildResponseCache(*fresh->store);
      fresh->has_cache = true;
    }
    bundle = std::move(fresh);
  }
  const bool live = bundle != nullptr;
  const int64_t generation = live ? bundle->store->generation : -1;
  std::atomic_store(&bundle_, std::move(bundle));
  publishes_->Add();
  published_->Set(live ? 1 : 0);
  generation_->Set(generation);
}

std::shared_ptr<const CanonStore> CanonServer::store() const {
  const std::shared_ptr<const ServingBundle> bundle =
      std::atomic_load(&bundle_);
  return bundle == nullptr ? nullptr : bundle->store;
}

ServeCounters CanonServer::counters() const {
  ServeCounters counters = EventHttpServer::counters();
  counters.publishes = publishes_->Value();
  counters.cache_hits = cache_hits_->Value();
  counters.cache_misses = cache_misses_->Value();
  return counters;
}

void CanonServer::HandleRequest(const RequestHead& request,
                                ThreadContext* /*context*/,
                                HttpReply* reply) {
  // /metrics is routed before the cache probe: a scrape must never
  // count as a cache miss (it is not data-path traffic). The server's
  // own registry is followed by the process-global one so a jocl_serve
  // deployment (ingestion + serving in one process) exposes the
  // pipeline mirrors too; the family names are disjoint by
  // construction, so plain concatenation is valid exposition.
  if (ClassifyTarget(request.target) == Endpoint::kMetrics &&
      request.method == "GET") {
    reply->status = 200;
    reply->body = metrics_registry().RenderPrometheus();
    reply->body += MetricsRegistry::Global().RenderPrometheus();
    reply->content_type.assign(kPrometheusContentType);
    return;
  }
  // Pin one bundle for the whole request (RCU read side): body and
  // store generation always come from the same publication.
  const std::shared_ptr<const ServingBundle> bundle =
      std::atomic_load(&bundle_);
  if (bundle != nullptr && bundle->has_cache) {
    char scratch[2048];
    ResponseCache::Hit hit;
    if (bundle->cache.Find(request.method, request.target, scratch,
                           sizeof(scratch), &hit)) {
      cache_hits_->Add();
      reply->cached_header = hit.header;
      reply->cached_body = hit.body;
      reply->pin = bundle;  // arena views stay valid through the write
      return;
    }
  }
  cache_misses_->Add();
  const CanonStore* store = bundle == nullptr ? nullptr : bundle->store.get();
  reply->body = HandleCanonRequest(store, request.method, request.target,
                                   counters(), &reply->status);
  if (store != nullptr) {
    reply->extra_headers =
        "X-Jocl-Generation: " + std::to_string(store->generation) + "\r\n";
  }
}

}  // namespace jocl
