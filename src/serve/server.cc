#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "serve/http_util.h"
#include "serve/json.h"
#include "util/ids.h"

namespace jocl {
namespace {

/// Connection-header tails the event loop appends after a pre-rendered
/// (or rendered) head; the blank line that ends the head rides along.
constexpr std::string_view kKeepAliveTail = "Connection: keep-alive\r\n\r\n";
constexpr std::string_view kCloseTail = "Connection: close\r\n\r\n";

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ErrorBody(std::string_view message) {
  std::string out = "{\"error\":";
  AppendJsonString(&out, message);
  out.push_back('}');
  return out;
}

const char* KindName(CanonKind kind) {
  return kind == CanonKind::kNp ? "np" : "rp";
}

/// Parses the `kind` parameter; defaults to NP. Returns false on an
/// unknown value.
bool ParseKind(const QueryParams& query, CanonKind* kind) {
  const std::string* value = query.Find("kind");
  if (value == nullptr || *value == "np") {
    *kind = CanonKind::kNp;
    return true;
  }
  if (*value == "rp") {
    *kind = CanonKind::kRp;
    return true;
  }
  return false;
}

void AppendLinkJson(std::string* out, const CanonStore& store, CanonKind kind,
                    size_t cluster) {
  const int64_t link = store.ClusterLink(kind, cluster);
  if (link == kNilId) {
    out->append("null");
    return;
  }
  out->append("{\"id\":");
  out->append(std::to_string(link));
  out->append(",\"name\":");
  AppendJsonString(out, store.ClusterLinkName(kind, cluster));
  out->append(",\"votes\":");
  out->append(
      std::to_string(store.section(kind).cluster_link_votes[cluster]));
  out->push_back('}');
}

void AppendClusterJson(std::string* out, const CanonStore& store,
                       CanonKind kind, size_t cluster) {
  ConstSpan<uint32_t> members = store.ClusterMembers(kind, cluster);
  out->append("{\"id\":");
  out->append(std::to_string(cluster));
  out->append(",\"size\":");
  out->append(std::to_string(members.size()));
  out->append(",\"members\":[");
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonString(out, store.SurfaceText(kind, members[i]));
  }
  out->append("],\"link\":");
  AppendLinkJson(out, store, kind, cluster);
  out->push_back('}');
}

std::string HandleLookup(const CanonStore& store, const QueryParams& query,
                         bool link_only, int* http_status) {
  CanonKind kind = CanonKind::kNp;
  if (!ParseKind(query, &kind)) {
    *http_status = 400;
    return ErrorBody("unknown kind (expected np or rp)");
  }
  const std::string* surface = query.Find("surface");
  if (surface == nullptr) {
    *http_status = 400;
    return ErrorBody("missing required parameter 'surface'");
  }
  const int64_t id = store.FindSurface(kind, *surface);
  if (id < 0) {
    *http_status = 404;
    std::string out = "{\"error\":\"surface not found\",\"surface\":";
    AppendJsonString(&out, *surface);
    out.append(",\"kind\":\"");
    out.append(KindName(kind));
    out.append("\"}");
    return out;
  }
  const size_t s = static_cast<size_t>(id);
  *http_status = 200;
  std::string out = "{\"surface\":";
  AppendJsonString(&out, *surface);
  out.append(",\"kind\":\"");
  out.append(KindName(kind));
  out.append("\",\"surface_id\":");
  out.append(std::to_string(s));
  ConstSpan<uint32_t> clusters = store.ClustersOf(kind, s);
  if (link_only) {
    out.append(",\"link\":");
    if (clusters.empty()) {
      out.append("null");
    } else {
      AppendLinkJson(&out, store, kind, clusters[0]);
    }
  } else {
    out.append(",\"mentions\":");
    out.append(std::to_string(store.MentionCount(kind, s)));
    out.append(",\"clusters\":[");
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendClusterJson(&out, store, kind, clusters[i]);
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

std::string HandleCluster(const CanonStore& store, const QueryParams& query,
                          int* http_status) {
  CanonKind kind = CanonKind::kNp;
  if (!ParseKind(query, &kind)) {
    *http_status = 400;
    return ErrorBody("unknown kind (expected np or rp)");
  }
  const std::string* id_text = query.Find("id");
  if (id_text == nullptr || id_text->empty() ||
      id_text->find_first_not_of("0123456789") != std::string::npos) {
    *http_status = 400;
    return ErrorBody("missing or non-numeric parameter 'id'");
  }
  const uint64_t id = std::strtoull(id_text->c_str(), nullptr, 10);
  if (id >= store.section(kind).cluster_count()) {
    *http_status = 404;
    return ErrorBody("cluster id out of range");
  }
  *http_status = 200;
  std::string out = "{\"kind\":\"";
  out.append(KindName(kind));
  out.append("\",\"cluster\":");
  AppendClusterJson(&out, store, kind, static_cast<size_t>(id));
  out.push_back('}');
  return out;
}

std::string HandleStats(const CanonStore* store,
                        const ServeCounters& counters, int* http_status) {
  *http_status = 200;
  std::string out = "{\"published\":";
  out.append(store != nullptr ? "true" : "false");
  if (store != nullptr) {
    out.append(",\"generation\":");
    out.append(std::to_string(store->generation));
    out.append(",\"triples\":");
    out.append(std::to_string(store->triple_count));
    out.append(",\"np\":{\"surfaces\":");
    out.append(std::to_string(store->np.surface_count()));
    out.append(",\"clusters\":");
    out.append(std::to_string(store->np.cluster_count()));
    out.append("},\"rp\":{\"surfaces\":");
    out.append(std::to_string(store->rp.surface_count()));
    out.append(",\"clusters\":");
    out.append(std::to_string(store->rp.cluster_count()));
    out.push_back('}');
  }
  out.append(",\"requests\":");
  out.append(std::to_string(counters.requests));
  out.append(",\"ok\":");
  out.append(std::to_string(counters.ok));
  out.append(",\"not_found\":");
  out.append(std::to_string(counters.not_found));
  out.append(",\"bad_request\":");
  out.append(std::to_string(counters.bad_request));
  out.append(",\"unavailable\":");
  out.append(std::to_string(counters.unavailable));
  out.append(",\"publishes\":");
  out.append(std::to_string(counters.publishes));
  out.append(",\"events\":{\"accepted\":");
  out.append(std::to_string(counters.connections_accepted));
  out.append(",\"reused\":");
  out.append(std::to_string(counters.connections_reused));
  out.append(",\"timed_out\":");
  out.append(std::to_string(counters.connections_timed_out));
  out.append(",\"cache_hits\":");
  out.append(std::to_string(counters.cache_hits));
  out.append(",\"cache_misses\":");
  out.append(std::to_string(counters.cache_misses));
  out.append(",\"writev_bytes\":");
  out.append(std::to_string(counters.writev_bytes));
  out.append("}}");
  return out;
}

}  // namespace

std::string HandleCanonRequest(const CanonStore* store,
                               std::string_view method,
                               std::string_view target,
                               const ServeCounters& counters,
                               int* http_status) {
  if (method != "GET") {
    *http_status = 405;
    return ErrorBody("method not allowed (GET only)");
  }
  std::string_view path = target;
  std::string_view query_text;
  const size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    path = target.substr(0, qmark);
    query_text = target.substr(qmark + 1);
  }
  if (path == "/stats") {
    return HandleStats(store, counters, http_status);
  }
  if (path != "/lookup" && path != "/cluster" && path != "/link") {
    *http_status = 404;
    std::string out = "{\"error\":\"unknown endpoint\",\"path\":";
    AppendJsonString(&out, path);
    out.push_back('}');
    return out;
  }
  if (store == nullptr) {
    *http_status = 503;
    return ErrorBody("no store published yet");
  }
  const QueryParams query = ParseQuery(query_text);
  if (path == "/cluster") return HandleCluster(*store, query, http_status);
  return HandleLookup(*store, query, /*link_only=*/path == "/link",
                      http_status);
}

CanonServer::CanonServer(ServeOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.idle_timeout_ms <= 0) options_.idle_timeout_ms = 5000;
}

CanonServer::~CanonServer() { Stop(); }

Status CanonServer::OpenListener(int* out_fd) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // One listener per event thread on the same port: the kernel spreads
  // incoming connections across them, so accepted fds never cross
  // threads and the hot path runs lock-free.
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("setsockopt(SO_REUSEPORT) failed: " + error);
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind(127.0.0.1:" + std::to_string(port_) +
                           ") failed: " + error);
  }
  if (port_ == 0) {
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) <
        0) {
      const std::string error = std::strerror(errno);
      ::close(fd);
      return Status::IOError("getsockname() failed: " + error);
    }
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(fd, options_.backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen(127.0.0.1:" + std::to_string(port_) +
                           ") failed: " + error);
  }
  *out_fd = fd;
  return Status::OK();
}

Status CanonServer::Start() {
  if (!event_threads_.empty()) {
    return Status::FailedPrecondition("server already started");
  }
  port_ = options_.port;
  auto fail = [&](Status status) {
    for (auto& et : event_threads_) {
      if (et->listen_fd >= 0) ::close(et->listen_fd);
      if (et->wake_fd >= 0) ::close(et->wake_fd);
      if (et->epoll_fd >= 0) ::close(et->epoll_fd);
    }
    event_threads_.clear();
    port_ = 0;
    return status;
  };
  for (size_t w = 0; w < options_.num_workers; ++w) {
    auto et = std::make_unique<EventThread>();
    event_threads_.push_back(std::move(et));
    EventThread* slot = event_threads_.back().get();
    Status status = OpenListener(&slot->listen_fd);
    if (!status.ok()) return fail(std::move(status));
    slot->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (slot->epoll_fd < 0) {
      return fail(Status::IOError("epoll_create1() failed: " +
                                  std::string(std::strerror(errno))));
    }
    slot->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (slot->wake_fd < 0) {
      return fail(Status::IOError("eventfd() failed: " +
                                  std::string(std::strerror(errno))));
    }
    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN;
    event.data.fd = slot->listen_fd;
    if (::epoll_ctl(slot->epoll_fd, EPOLL_CTL_ADD, slot->listen_fd, &event) <
        0) {
      return fail(Status::IOError("epoll_ctl(listener) failed: " +
                                  std::string(std::strerror(errno))));
    }
    event.data.fd = slot->wake_fd;
    if (::epoll_ctl(slot->epoll_fd, EPOLL_CTL_ADD, slot->wake_fd, &event) <
        0) {
      return fail(Status::IOError("epoll_ctl(eventfd) failed: " +
                                  std::string(std::strerror(errno))));
    }
  }
  running_.store(true);
  for (auto& et : event_threads_) {
    et->thread = std::thread(&CanonServer::EventLoop, this, et.get());
  }
  return Status::OK();
}

void CanonServer::Stop() {
  if (event_threads_.empty()) return;
  running_.store(false);
  for (auto& et : event_threads_) {
    const uint64_t one = 1;
    // A failed wake write is unrecoverable but harmless: the loop also
    // polls `running_` on its timeout tick.
    (void)!::write(et->wake_fd, &one, sizeof(one));
  }
  for (auto& et : event_threads_) {
    if (et->thread.joinable()) et->thread.join();
  }
  event_threads_.clear();
  port_ = 0;
}

void CanonServer::Publish(std::shared_ptr<const CanonStore> store) {
  std::shared_ptr<const ServingBundle> bundle;
  if (store != nullptr) {
    auto fresh = std::make_shared<ServingBundle>();
    fresh->store = std::move(store);
    if (options_.prerender) {
      // Rendering happens here, on the publisher thread; readers only
      // ever see the finished bundle through the atomic swap below.
      fresh->cache = BuildResponseCache(*fresh->store);
      fresh->has_cache = true;
    }
    bundle = std::move(fresh);
  }
  std::atomic_store(&bundle_, std::move(bundle));
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const CanonStore> CanonServer::store() const {
  const std::shared_ptr<const ServingBundle> bundle =
      std::atomic_load(&bundle_);
  return bundle == nullptr ? nullptr : bundle->store;
}

ServeCounters CanonServer::counters() const {
  ServeCounters counters;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.ok = ok_.load(std::memory_order_relaxed);
  counters.not_found = not_found_.load(std::memory_order_relaxed);
  counters.bad_request = bad_request_.load(std::memory_order_relaxed);
  counters.unavailable = unavailable_.load(std::memory_order_relaxed);
  counters.publishes = publishes_.load(std::memory_order_relaxed);
  counters.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  counters.connections_reused =
      connections_reused_.load(std::memory_order_relaxed);
  counters.connections_timed_out =
      connections_timed_out_.load(std::memory_order_relaxed);
  counters.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  counters.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  counters.writev_bytes = writev_bytes_.load(std::memory_order_relaxed);
  return counters;
}

void CanonServer::CountStatus(int http_status) {
  switch (http_status) {
    case 200: ok_.fetch_add(1, std::memory_order_relaxed); break;
    case 404: not_found_.fetch_add(1, std::memory_order_relaxed); break;
    case 503: unavailable_.fetch_add(1, std::memory_order_relaxed); break;
    default: bad_request_.fetch_add(1, std::memory_order_relaxed); break;
  }
}

void CanonServer::EventLoop(EventThread* et) {
  // Timeout enforcement only needs ~idle/4 resolution; the tick also
  // doubles as the running_ fallback poll.
  const int tick_ms =
      std::max(10, std::min(250, options_.idle_timeout_ms / 4));
  int64_t last_sweep = NowMillis();
  epoll_event events[64];
  while (running_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(et->epoll_fd, events, 64, tick_ms);
    if (!running_.load(std::memory_order_relaxed)) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == et->listen_fd) {
        AcceptReady(et);
        continue;
      }
      if (fd == et->wake_fd) {
        uint64_t drained = 0;
        (void)!::read(et->wake_fd, &drained, sizeof(drained));
        continue;
      }
      auto it = et->conns.find(fd);
      if (it == et->conns.end()) continue;
      const uint32_t mask = events[i].events;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        CloseConn(et, fd);
        continue;
      }
      if (mask & EPOLLOUT) {
        FlushOut(et, fd, &it->second);
        it = et->conns.find(fd);  // FlushOut may close on drain/error
        if (it == et->conns.end()) continue;
      }
      if (mask & EPOLLIN) Readable(et, fd, &it->second);
    }
    const int64_t now = NowMillis();
    if (now - last_sweep >= tick_ms) {
      SweepTimeouts(et, now);
      last_sweep = now;
    }
  }
  for (auto& [fd, conn] : et->conns) ::close(fd);
  et->conns.clear();
  ::close(et->listen_fd);
  ::close(et->wake_fd);
  ::close(et->epoll_fd);
  et->listen_fd = et->wake_fd = et->epoll_fd = -1;
}

void CanonServer::AcceptReady(EventThread* et) {
  for (;;) {
    const int fd = ::accept4(et->listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN (drained) or a transient kernel error
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(et->epoll_fd, EPOLL_CTL_ADD, fd, &event) < 0) {
      ::close(fd);
      continue;
    }
    Conn& conn = et->conns[fd];
    conn.in.reserve(1024);  // one allocation per connection, amortized
                            // over its keep-alive lifetime
    conn.last_activity_ms = NowMillis();
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CanonServer::Readable(EventThread* et, int fd, Conn* conn) {
  bool peer_closed = false;
  for (;;) {
    char buffer[16384];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      conn->last_activity_ms = NowMillis();
      if (static_cast<size_t>(n) < sizeof(buffer)) break;  // drained
    } else if (n == 0) {
      peer_closed = true;
      break;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      CloseConn(et, fd);
      return;
    }
  }
  if (!ProcessBuffered(et, fd, conn)) return;  // connection closed
  if (peer_closed) {
    if (conn->out.empty()) {
      CloseConn(et, fd);
    } else {
      conn->close_after_drain = true;  // finish writing queued responses
    }
  }
}

bool CanonServer::ProcessBuffered(EventThread* et, int fd, Conn* conn) {
  for (;;) {
    if (conn->close_after_drain) return true;  // no more requests
    const size_t head_end = conn->in.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (conn->in.size() > options_.max_request_bytes) {
        requests_.fetch_add(1, std::memory_order_relaxed);
        CountStatus(431);
        SendRendered(et, fd, conn, 431, ErrorBody("request too large"),
                     /*keep_alive=*/false);
        if (conn->broken || conn->out.empty()) {
          CloseConn(et, fd);
          return false;
        }
        conn->close_after_drain = true;
      }
      return true;  // incomplete head: wait for more bytes
    }
    if (head_end + 4 > options_.max_request_bytes) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      CountStatus(431);
      SendRendered(et, fd, conn, 431, ErrorBody("request too large"),
                   /*keep_alive=*/false);
      if (conn->broken || conn->out.empty()) {
        CloseConn(et, fd);
        return false;
      }
      conn->close_after_drain = true;
      return true;
    }
    const std::string_view head(conn->in.data(), head_end + 4);
    const bool keep = ServeRequest(et, fd, conn, head);
    conn->in.erase(0, head_end + 4);  // keeps capacity: no allocation
    if (conn->broken) {
      CloseConn(et, fd);
      return false;
    }
    if (!keep) {
      if (conn->out.empty()) {
        CloseConn(et, fd);
        return false;
      }
      conn->close_after_drain = true;
      return true;
    }
  }
}

bool CanonServer::ServeRequest(EventThread* et, int fd, Conn* conn,
                               std::string_view head) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (conn->requests_served > 0) {
    connections_reused_.fetch_add(1, std::memory_order_relaxed);
  }
  ++conn->requests_served;

  const RequestHead request = ParseRequestHead(head);
  if (!request.valid) {
    CountStatus(400);
    SendRendered(et, fd, conn, 400, ErrorBody("malformed request line"),
                 /*keep_alive=*/false);
    return false;
  }
  if (request.content_length > 0) {
    CountStatus(400);
    SendRendered(et, fd, conn, 400,
                 ErrorBody("request bodies are not supported"),
                 /*keep_alive=*/false);
    return false;
  }

  // Pin one bundle for the whole request (RCU read side): body and
  // store generation always come from the same publication.
  const std::shared_ptr<const ServingBundle> bundle =
      std::atomic_load(&bundle_);
  if (bundle != nullptr && bundle->has_cache) {
    char scratch[2048];
    ResponseCache::Hit hit;
    if (bundle->cache.Find(request.method, request.target, scratch,
                           sizeof(scratch), &hit)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      CountStatus(200);
      SendCached(et, fd, conn, hit, request.keep_alive);
      return request.keep_alive;
    }
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  int http_status = 400;
  const CanonStore* store = bundle == nullptr ? nullptr : bundle->store.get();
  const std::string body = HandleCanonRequest(store, request.method,
                                              request.target, counters(),
                                              &http_status);
  CountStatus(http_status);
  SendRendered(et, fd, conn, http_status, body, request.keep_alive);
  return request.keep_alive;
}

namespace {

/// sendmsg == writev + MSG_NOSIGNAL: one gather write of the
/// precomputed pieces without risking SIGPIPE on a dead peer.
ssize_t GatherWrite(int fd, iovec* iov, int iovcnt) {
  msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
}

}  // namespace

void CanonServer::SendCached(EventThread* et, int fd, Conn* conn,
                             const ResponseCache::Hit& hit, bool keep_alive) {
  const std::string_view tail = keep_alive ? kKeepAliveTail : kCloseTail;
  iovec iov[3];
  iov[0].iov_base = const_cast<char*>(hit.header.data());
  iov[0].iov_len = hit.header.size();
  iov[1].iov_base = const_cast<char*>(tail.data());
  iov[1].iov_len = tail.size();
  iov[2].iov_base = const_cast<char*>(hit.body.data());
  iov[2].iov_len = hit.body.size();
  QueueOrSend(et, fd, conn, iov, 3);
}

void CanonServer::SendRendered(EventThread* et, int fd, Conn* conn,
                               int http_status, std::string_view body,
                               bool keep_alive) {
  std::string response = "HTTP/1.1 " + std::to_string(http_status) + " " +
                         HttpStatusText(http_status) +
                         "\r\nContent-Type: application/json\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) + "\r\n";
  response.append(keep_alive ? kKeepAliveTail : kCloseTail);
  response.append(body);
  iovec iov[1];
  iov[0].iov_base = const_cast<char*>(response.data());
  iov[0].iov_len = response.size();
  QueueOrSend(et, fd, conn, iov, 1);
}

void CanonServer::QueueOrSend(EventThread* et, int fd, Conn* conn, iovec* iov,
                              int iovcnt) {
  size_t total = 0;
  for (int i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
  size_t written = 0;
  if (conn->out.empty()) {
    // Hot path: the whole response usually fits the socket buffer in
    // one gather write and nothing is copied or queued.
    for (;;) {
      const ssize_t n = GatherWrite(fd, iov, iovcnt);
      if (n >= 0) {
        writev_bytes_.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
        written = static_cast<size_t>(n);
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        written = 0;
        break;
      }
      conn->broken = true;
      return;
    }
    if (written == total) return;
  }
  // Slow client: queue the unsent remainder and let EPOLLOUT drain it.
  size_t skip = written;
  for (int i = 0; i < iovcnt; ++i) {
    if (skip >= iov[i].iov_len) {
      skip -= iov[i].iov_len;
      continue;
    }
    conn->out.append(static_cast<const char*>(iov[i].iov_base) + skip,
                     iov[i].iov_len - skip);
    skip = 0;
  }
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN | EPOLLOUT;
  event.data.fd = fd;
  ::epoll_ctl(et->epoll_fd, EPOLL_CTL_MOD, fd, &event);
  conn->last_activity_ms = NowMillis();
}

void CanonServer::FlushOut(EventThread* et, int fd, Conn* conn) {
  while (!conn->out.empty()) {
    iovec iov;
    iov.iov_base = const_cast<char*>(conn->out.data());
    iov.iov_len = conn->out.size();
    const ssize_t n = GatherWrite(fd, &iov, 1);
    if (n > 0) {
      writev_bytes_.fetch_add(static_cast<uint64_t>(n),
                              std::memory_order_relaxed);
      conn->out.erase(0, static_cast<size_t>(n));
      conn->last_activity_ms = NowMillis();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConn(et, fd);
    return;
  }
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.fd = fd;
  ::epoll_ctl(et->epoll_fd, EPOLL_CTL_MOD, fd, &event);
  if (conn->close_after_drain) CloseConn(et, fd);
}

void CanonServer::CloseConn(EventThread* et, int fd) {
  ::epoll_ctl(et->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  et->conns.erase(fd);
}

void CanonServer::SweepTimeouts(EventThread* et, int64_t now_ms) {
  std::vector<int> expired;
  for (const auto& [fd, conn] : et->conns) {
    if (now_ms - conn.last_activity_ms >= options_.idle_timeout_ms) {
      expired.push_back(fd);
    }
  }
  for (const int fd : expired) {
    Conn& conn = et->conns[fd];
    connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
    if (!conn.in.empty()) {
      // Slow-loris: a request head has been trickling in past the
      // deadline. Best-effort 408, then drop the connection.
      requests_.fetch_add(1, std::memory_order_relaxed);
      CountStatus(408);
      const std::string body = ErrorBody("request timeout");
      std::string response =
          "HTTP/1.1 408 Request Timeout\r\n"
          "Content-Type: application/json\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n";
      response.append(kCloseTail);
      response.append(body);
      iovec iov;
      iov.iov_base = const_cast<char*>(response.data());
      iov.iov_len = response.size();
      const ssize_t n = GatherWrite(fd, &iov, 1);
      if (n > 0) {
        writev_bytes_.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      }
    }
    CloseConn(et, fd);
  }
}

}  // namespace jocl
