#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "serve/json.h"
#include "util/ids.h"

namespace jocl {
namespace {

constexpr size_t kMaxRequestBytes = 16 * 1024;

const char* StatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexValue(text[i + 1]) >= 0 && HexValue(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(text[i + 1]) * 16 +
                                      HexValue(text[i + 2])));
      i += 2;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

/// Decoded `key=value` pairs of a query string.
struct QueryParams {
  std::vector<std::pair<std::string, std::string>> params;

  const std::string* Find(std::string_view key) const {
    for (const auto& [k, v] : params) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

QueryParams ParseQuery(std::string_view query) {
  QueryParams out;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out.params.emplace_back(UrlDecode(pair), "");
      } else {
        out.params.emplace_back(UrlDecode(pair.substr(0, eq)),
                                UrlDecode(pair.substr(eq + 1)));
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return out;
}

std::string ErrorBody(std::string_view message) {
  std::string out = "{\"error\":";
  AppendJsonString(&out, message);
  out.push_back('}');
  return out;
}

const char* KindName(CanonKind kind) {
  return kind == CanonKind::kNp ? "np" : "rp";
}

/// Parses the `kind` parameter; defaults to NP. Returns false on an
/// unknown value.
bool ParseKind(const QueryParams& query, CanonKind* kind) {
  const std::string* value = query.Find("kind");
  if (value == nullptr || *value == "np") {
    *kind = CanonKind::kNp;
    return true;
  }
  if (*value == "rp") {
    *kind = CanonKind::kRp;
    return true;
  }
  return false;
}

void AppendLinkJson(std::string* out, const CanonStore& store, CanonKind kind,
                    size_t cluster) {
  const int64_t link = store.ClusterLink(kind, cluster);
  if (link == kNilId) {
    out->append("null");
    return;
  }
  out->append("{\"id\":");
  out->append(std::to_string(link));
  out->append(",\"name\":");
  AppendJsonString(out, store.ClusterLinkName(kind, cluster));
  out->append(",\"votes\":");
  out->append(
      std::to_string(store.section(kind).cluster_link_votes[cluster]));
  out->push_back('}');
}

void AppendClusterJson(std::string* out, const CanonStore& store,
                       CanonKind kind, size_t cluster) {
  ConstSpan<uint32_t> members = store.ClusterMembers(kind, cluster);
  out->append("{\"id\":");
  out->append(std::to_string(cluster));
  out->append(",\"size\":");
  out->append(std::to_string(members.size()));
  out->append(",\"members\":[");
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonString(out, store.SurfaceText(kind, members[i]));
  }
  out->append("],\"link\":");
  AppendLinkJson(out, store, kind, cluster);
  out->push_back('}');
}

std::string HandleLookup(const CanonStore& store, const QueryParams& query,
                         bool link_only, int* http_status) {
  CanonKind kind = CanonKind::kNp;
  if (!ParseKind(query, &kind)) {
    *http_status = 400;
    return ErrorBody("unknown kind (expected np or rp)");
  }
  const std::string* surface = query.Find("surface");
  if (surface == nullptr) {
    *http_status = 400;
    return ErrorBody("missing required parameter 'surface'");
  }
  const int64_t id = store.FindSurface(kind, *surface);
  if (id < 0) {
    *http_status = 404;
    std::string out = "{\"error\":\"surface not found\",\"surface\":";
    AppendJsonString(&out, *surface);
    out.append(",\"kind\":\"");
    out.append(KindName(kind));
    out.append("\"}");
    return out;
  }
  const size_t s = static_cast<size_t>(id);
  *http_status = 200;
  std::string out = "{\"surface\":";
  AppendJsonString(&out, *surface);
  out.append(",\"kind\":\"");
  out.append(KindName(kind));
  out.append("\",\"surface_id\":");
  out.append(std::to_string(s));
  ConstSpan<uint32_t> clusters = store.ClustersOf(kind, s);
  if (link_only) {
    out.append(",\"link\":");
    if (clusters.empty()) {
      out.append("null");
    } else {
      AppendLinkJson(&out, store, kind, clusters[0]);
    }
  } else {
    out.append(",\"mentions\":");
    out.append(std::to_string(store.MentionCount(kind, s)));
    out.append(",\"clusters\":[");
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendClusterJson(&out, store, kind, clusters[i]);
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

std::string HandleCluster(const CanonStore& store, const QueryParams& query,
                          int* http_status) {
  CanonKind kind = CanonKind::kNp;
  if (!ParseKind(query, &kind)) {
    *http_status = 400;
    return ErrorBody("unknown kind (expected np or rp)");
  }
  const std::string* id_text = query.Find("id");
  if (id_text == nullptr || id_text->empty() ||
      id_text->find_first_not_of("0123456789") != std::string::npos) {
    *http_status = 400;
    return ErrorBody("missing or non-numeric parameter 'id'");
  }
  const uint64_t id = std::strtoull(id_text->c_str(), nullptr, 10);
  if (id >= store.section(kind).cluster_count()) {
    *http_status = 404;
    return ErrorBody("cluster id out of range");
  }
  *http_status = 200;
  std::string out = "{\"kind\":\"";
  out.append(KindName(kind));
  out.append("\",\"cluster\":");
  AppendClusterJson(&out, store, kind, static_cast<size_t>(id));
  out.push_back('}');
  return out;
}

std::string HandleStats(const CanonStore* store,
                        const ServeCounters& counters, int* http_status) {
  *http_status = 200;
  std::string out = "{\"published\":";
  out.append(store != nullptr ? "true" : "false");
  if (store != nullptr) {
    out.append(",\"generation\":");
    out.append(std::to_string(store->generation));
    out.append(",\"triples\":");
    out.append(std::to_string(store->triple_count));
    out.append(",\"np\":{\"surfaces\":");
    out.append(std::to_string(store->np.surface_count()));
    out.append(",\"clusters\":");
    out.append(std::to_string(store->np.cluster_count()));
    out.append("},\"rp\":{\"surfaces\":");
    out.append(std::to_string(store->rp.surface_count()));
    out.append(",\"clusters\":");
    out.append(std::to_string(store->rp.cluster_count()));
    out.push_back('}');
  }
  out.append(",\"requests\":");
  out.append(std::to_string(counters.requests));
  out.append(",\"ok\":");
  out.append(std::to_string(counters.ok));
  out.append(",\"not_found\":");
  out.append(std::to_string(counters.not_found));
  out.append(",\"bad_request\":");
  out.append(std::to_string(counters.bad_request));
  out.append(",\"unavailable\":");
  out.append(std::to_string(counters.unavailable));
  out.append(",\"publishes\":");
  out.append(std::to_string(counters.publishes));
  out.push_back('}');
  return out;
}

}  // namespace

std::string HandleCanonRequest(const CanonStore* store,
                               std::string_view method,
                               std::string_view target,
                               const ServeCounters& counters,
                               int* http_status) {
  if (method != "GET") {
    *http_status = 405;
    return ErrorBody("method not allowed (GET only)");
  }
  std::string_view path = target;
  std::string_view query_text;
  const size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    path = target.substr(0, qmark);
    query_text = target.substr(qmark + 1);
  }
  if (path == "/stats") {
    return HandleStats(store, counters, http_status);
  }
  if (path != "/lookup" && path != "/cluster" && path != "/link") {
    *http_status = 404;
    std::string out = "{\"error\":\"unknown endpoint\",\"path\":";
    AppendJsonString(&out, path);
    out.push_back('}');
    return out;
  }
  if (store == nullptr) {
    *http_status = 503;
    return ErrorBody("no store published yet");
  }
  const QueryParams query = ParseQuery(query_text);
  if (path == "/cluster") return HandleCluster(*store, query, http_status);
  return HandleLookup(*store, query, /*link_only=*/path == "/link",
                      http_status);
}

CanonServer::CanonServer(ServeOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
}

CanonServer::~CanonServer() { Stop(); }

Status CanonServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind(127.0.0.1:" +
                           std::to_string(options_.port) +
                           ") failed: " + error);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen() failed: " + error);
  }
  running_.store(true);
  listener_ = std::thread(&CanonServer::AcceptLoop, this);
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back(&CanonServer::WorkerLoop, this);
  }
  return Status::OK();
}

void CanonServer::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock accept(); closing also releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    // Serialize with the workers' predicate check: a worker that saw
    // running_ == true must reach cv.wait() before the notify below, or
    // the wakeup would be lost and Stop() would join forever.
    std::lock_guard<std::mutex> lock(queue_mutex_);
  }
  queue_cv_.notify_all();
  if (listener_.joinable()) listener_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Close connections accepted but never picked up.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

void CanonServer::Publish(std::shared_ptr<const CanonStore> store) {
  std::atomic_store(&store_, std::move(store));
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const CanonStore> CanonServer::store() const {
  return std::atomic_load(&store_);
}

ServeCounters CanonServer::counters() const {
  ServeCounters counters;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.ok = ok_.load(std::memory_order_relaxed);
  counters.not_found = not_found_.load(std::memory_order_relaxed);
  counters.bad_request = bad_request_.load(std::memory_order_relaxed);
  counters.unavailable = unavailable_.load(std::memory_order_relaxed);
  counters.publishes = publishes_.load(std::memory_order_relaxed);
  return counters;
}

void CanonServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void CanonServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [&] { return !pending_.empty() || !running_.load(); });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    // Count before handling: the client holds its response (and may read
    // /stats or counters()) the instant HandleConnection sends it, so an
    // after-the-fact increment could lag an observed response.
    requests_.fetch_add(1, std::memory_order_relaxed);
    HandleConnection(fd);
  }
}

void CanonServer::HandleConnection(int fd) {
  // Bound the worker's exposure to slow or dead clients.
  timeval timeout;
  timeout.tv_sec = 5;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buffer[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<size_t>(n));
  }

  int http_status = 400;
  std::string body;
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    body = ErrorBody("malformed request line");
  } else {
    const std::string_view line(request.data(), line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      body = ErrorBody("malformed request line");
    } else {
      // Pin the store version for the whole request (RCU read side).
      const std::shared_ptr<const CanonStore> pinned = store();
      body = HandleCanonRequest(pinned.get(), line.substr(0, sp1),
                                line.substr(sp1 + 1, sp2 - sp1 - 1),
                                counters(), &http_status);
    }
  }
  switch (http_status) {
    case 200: ok_.fetch_add(1, std::memory_order_relaxed); break;
    case 404: not_found_.fetch_add(1, std::memory_order_relaxed); break;
    case 503: unavailable_.fetch_add(1, std::memory_order_relaxed); break;
    default: bad_request_.fetch_add(1, std::memory_order_relaxed); break;
  }

  std::string response = "HTTP/1.1 " + std::to_string(http_status) + " " +
                         StatusText(http_status) +
                         "\r\nContent-Type: application/json\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" +
                         body;
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  ::close(fd);
}

}  // namespace jocl
