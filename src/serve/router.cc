#include "serve/router.h"

#include <utility>

#include "serve/http_util.h"
#include "serve/json.h"
#include "serve/shard_store.h"

namespace jocl {

struct CanonRouter::RouterContext : ThreadContext {
  std::vector<HttpConnection> conns;  ///< by shard
  std::vector<int> ports;             ///< port each conn was opened to
};

CanonRouter::CanonRouter(std::vector<int> shard_ports, ServeOptions options)
    : EventHttpServer(std::move(options)) {
  MetricsRegistry& registry = metrics_registry();
  shards_.reserve(shard_ports.size());
  for (size_t k = 0; k < shard_ports.size(); ++k) {
    shards_.push_back(std::make_unique<ShardState>());
    ShardState& state = *shards_.back();
    state.port.store(shard_ports[k], std::memory_order_relaxed);
    const std::string label = "shard=\"" + std::to_string(k) + "\"";
    state.forwarded = registry.AddCounter(
        "jocl_shard_forwarded_total", label, "Backend requests per shard");
    state.retries = registry.AddCounter(
        "jocl_shard_retries_total", label,
        "Backend requests retried on a fresh connection");
    state.failures = registry.AddCounter(
        "jocl_shard_failures_total", label,
        "Backend requests answered 503 after the retry");
    state.port_gauge = registry.AddGauge(
        "jocl_shard_port", label, "Backend port per shard (0 = not up)");
    state.generation_gauge = registry.AddGauge(
        "jocl_shard_generation", label,
        "Last generation observed from the shard (-1 before its first "
        "data response)");
    state.port_gauge->Set(shard_ports[k]);
    state.generation_gauge->Set(-1);
  }
}

CanonRouter::~CanonRouter() {
  // Must run here, not in the base destructor: event threads dispatch
  // into our virtual HandleRequest until they are joined.
  Stop();
}

void CanonRouter::SetShardPort(size_t shard, int port) {
  shards_[shard]->port.store(port, std::memory_order_relaxed);
  shards_[shard]->port_gauge->Set(port);
}

int CanonRouter::shard_port(size_t shard) const {
  return shards_[shard]->port.load(std::memory_order_relaxed);
}

int64_t CanonRouter::shard_generation(size_t shard) const {
  return shards_[shard]->generation.load(std::memory_order_relaxed);
}

std::unique_ptr<EventHttpServer::ThreadContext>
CanonRouter::MakeThreadContext() {
  auto ctx = std::make_unique<RouterContext>();
  ctx->conns.resize(shards_.size());
  ctx->ports.assign(shards_.size(), -1);
  return ctx;
}

bool CanonRouter::Forward(RouterContext* ctx, size_t shard,
                          const std::string& target, HttpResponse* out) {
  ShardState& state = *shards_[shard];
  const int port = state.port.load(std::memory_order_relaxed);
  if (port <= 0) {
    state.failures->Add();
    return false;
  }
  HttpConnection& conn = ctx->conns[shard];
  // Reconnect when the backend moved (recovery publishes a fresh
  // ephemeral port) or the previous request broke the connection.
  if (!conn.connected() || ctx->ports[shard] != port) {
    Result<HttpConnection> fresh =
        HttpConnection::Connect(port, backend_timeout_ms_);
    if (!fresh.ok()) {
      state.failures->Add();
      return false;
    }
    conn = fresh.MoveValueOrDie();
    ctx->ports[shard] = port;
  }
  Result<HttpResponse> got = conn.Get(target);
  if (!got.ok()) {
    // Retry once on a fresh connection: a kept-alive socket dies with
    // its backend process, but the shard may already be back.
    state.retries->Add();
    const int retry_port = state.port.load(std::memory_order_relaxed);
    Result<HttpConnection> fresh =
        HttpConnection::Connect(retry_port, backend_timeout_ms_);
    if (!fresh.ok()) {
      state.failures->Add();
      return false;
    }
    conn = fresh.MoveValueOrDie();
    ctx->ports[shard] = retry_port;
    got = conn.Get(target);
    if (!got.ok()) {
      state.failures->Add();
      return false;
    }
  }
  *out = got.MoveValueOrDie();
  state.forwarded->Add();
  if (out->generation >= 0) {
    state.generation.store(out->generation, std::memory_order_relaxed);
    state.generation_gauge->Set(out->generation);
  }
  return true;
}

void CanonRouter::Relay(HttpResponse response, HttpReply* reply) {
  reply->status = response.status;
  reply->body = std::move(response.body);
  if (response.generation >= 0) {
    reply->extra_headers = "X-Jocl-Generation: " +
                           std::to_string(response.generation) + "\r\n";
  }
}

std::string CanonRouter::StatsJson() const {
  const ServeCounters c = counters();
  std::string out = "{\"router\":true,\"shards\":";
  out.append(std::to_string(shards_.size()));
  out.append(",\"per_shard\":[");
  for (size_t k = 0; k < shards_.size(); ++k) {
    const ShardState& s = *shards_[k];
    if (k > 0) out.push_back(',');
    out.append("{\"port\":");
    out.append(std::to_string(s.port.load(std::memory_order_relaxed)));
    out.append(",\"generation\":");
    out.append(
        std::to_string(s.generation.load(std::memory_order_relaxed)));
    out.append(",\"forwarded\":");
    out.append(std::to_string(s.forwarded->Value()));
    out.append(",\"retries\":");
    out.append(std::to_string(s.retries->Value()));
    out.append(",\"failures\":");
    out.append(std::to_string(s.failures->Value()));
    out.push_back('}');
  }
  out.append("],\"requests\":");
  out.append(std::to_string(c.requests));
  out.append(",\"scrapes\":");
  out.append(std::to_string(c.scrapes));
  out.append(",\"ok\":");
  out.append(std::to_string(c.ok));
  out.append(",\"not_found\":");
  out.append(std::to_string(c.not_found));
  out.append(",\"bad_request\":");
  out.append(std::to_string(c.bad_request));
  out.append(",\"unavailable\":");
  out.append(std::to_string(c.unavailable));
  out.append(",\"events\":{\"accepted\":");
  out.append(std::to_string(c.connections_accepted));
  out.append(",\"reused\":");
  out.append(std::to_string(c.connections_reused));
  out.append(",\"timed_out\":");
  out.append(std::to_string(c.connections_timed_out));
  out.append(",\"writev_bytes\":");
  out.append(std::to_string(c.writev_bytes));
  out.append("}}");
  return out;
}

void CanonRouter::AggregatedMetrics(RouterContext* ctx, HttpReply* reply) {
  PrometheusAggregator aggregator;
  aggregator.AddText(metrics_registry().RenderPrometheus(), "");
  for (size_t k = 0; k < shards_.size(); ++k) {
    HttpResponse response;
    // A down shard is skipped, not an error: the aggregate stays useful
    // through a republish, and jocl_shard_port{shard="k"} shows the gap.
    if (!Forward(ctx, k, "/metrics", &response)) continue;
    if (response.status != 200) continue;
    aggregator.AddText(response.body,
                       "shard=\"" + std::to_string(k) + "\"");
  }
  reply->status = 200;
  reply->body = aggregator.Render();
  reply->content_type.assign(kPrometheusContentType);
}

void CanonRouter::HandleRequest(const RequestHead& request,
                                ThreadContext* context, HttpReply* reply) {
  RouterContext* ctx = static_cast<RouterContext*>(context);
  if (request.method != "GET") {
    reply->status = 405;
    reply->body = ErrorBody("method not allowed (GET only)");
    return;
  }
  std::string_view path = request.target;
  std::string_view query_text;
  const size_t qmark = request.target.find('?');
  if (qmark != std::string_view::npos) {
    path = std::string_view(request.target).substr(0, qmark);
    query_text = std::string_view(request.target).substr(qmark + 1);
  }
  if (path == "/stats") {
    reply->status = 200;
    reply->body = StatsJson();
    return;
  }
  if (path == "/metrics") {
    AggregatedMetrics(ctx, reply);
    return;
  }
  const std::string target(request.target);
  if (path == "/cluster") {
    // Broadcast: the owner of any member carries the cluster, so the
    // first non-404 answer is authoritative; ids nobody carries 404
    // with the monolith's exact body on every shard. Each relayed body
    // comes from exactly one shard — never merged.
    HttpResponse last;
    bool have_last = false;
    bool any_down = false;
    for (size_t k = 0; k < shards_.size(); ++k) {
      HttpResponse response;
      if (!Forward(ctx, k, target, &response)) {
        any_down = true;
        continue;
      }
      if (response.status != 404) {
        Relay(std::move(response), reply);
        return;
      }
      last = std::move(response);
      have_last = true;
    }
    if (any_down || !have_last) {
      reply->status = 503;
      reply->body = ErrorBody("one or more shards unavailable");
      return;
    }
    Relay(std::move(last), reply);
    return;
  }
  if (path != "/lookup" && path != "/link") {
    reply->status = 404;
    reply->body = "{\"error\":\"unknown endpoint\",\"path\":";
    AppendJsonString(&reply->body, path);
    reply->body.push_back('}');
    return;
  }
  const QueryParams query = ParseQuery(query_text);
  const std::string* surface = query.Find("surface");
  if (surface == nullptr) {
    reply->status = 400;
    reply->body = ErrorBody("missing required parameter 'surface'");
    return;
  }
  const uint32_t shard =
      ShardOfSurface(*surface, static_cast<uint32_t>(shards_.size()));
  HttpResponse response;
  if (!Forward(ctx, shard, target, &response)) {
    reply->status = 503;
    reply->body =
        ErrorBody("shard " + std::to_string(shard) + " unavailable");
    return;
  }
  Relay(std::move(response), reply);
}

}  // namespace jocl
