#include "serve/http_util.h"

namespace jocl {
namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

char ToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLower(a[i]) != ToLower(b[i])) return false;
  }
  return true;
}

/// True when \p token appears as a (comma/space-delimited) element of the
/// header value — "keep-alive, Upgrade" contains "keep-alive".
bool ContainsToken(std::string_view value, std::string_view token) {
  size_t start = 0;
  while (start < value.size()) {
    size_t end = value.find(',', start);
    if (end == std::string_view::npos) end = value.size();
    std::string_view piece = value.substr(start, end - start);
    while (!piece.empty() && (piece.front() == ' ' || piece.front() == '\t')) {
      piece.remove_prefix(1);
    }
    while (!piece.empty() && (piece.back() == ' ' || piece.back() == '\t')) {
      piece.remove_suffix(1);
    }
    if (EqualsIgnoreCase(piece, token)) return true;
    if (end == value.size()) break;
    start = end + 1;
  }
  return false;
}

}  // namespace

const char* HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexValue(text[i + 1]) >= 0 && HexValue(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(text[i + 1]) * 16 +
                                      HexValue(text[i + 2])));
      i += 2;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

bool UrlDecodeInto(std::string_view text, char* scratch, size_t cap,
                   std::string_view* out) {
  // Fast path: nothing to decode — alias the input.
  if (text.find('%') == std::string_view::npos &&
      text.find('+') == std::string_view::npos) {
    *out = text;
    return true;
  }
  size_t n = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (n >= cap) return false;
    if (text[i] == '+') {
      scratch[n++] = ' ';
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexValue(text[i + 1]) >= 0 && HexValue(text[i + 2]) >= 0) {
      scratch[n++] = static_cast<char>(HexValue(text[i + 1]) * 16 +
                                       HexValue(text[i + 2]));
      i += 2;
    } else {
      scratch[n++] = text[i];
    }
  }
  *out = std::string_view(scratch, n);
  return true;
}

QueryParams ParseQuery(std::string_view query) {
  QueryParams out;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out.params.emplace_back(UrlDecode(pair), "");
      } else {
        out.params.emplace_back(UrlDecode(pair.substr(0, eq)),
                                UrlDecode(pair.substr(eq + 1)));
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return out;
}

QueryScan FindQueryValue(std::string_view query, std::string_view key,
                         std::string_view* raw_value) {
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      const std::string_view raw_key =
          eq == std::string_view::npos ? pair : pair.substr(0, eq);
      // An escaped key could decode to `key`; only the allocating parser
      // can tell — bail out so both paths always agree.
      if (raw_key.find('%') != std::string_view::npos ||
          raw_key.find('+') != std::string_view::npos) {
        return QueryScan::kNeedsFallback;
      }
      if (raw_key == key) {
        *raw_value =
            eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1);
        return QueryScan::kFound;
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return QueryScan::kMissing;
}

std::string_view FindHeaderValue(std::string_view headers,
                                 std::string_view name, bool* found) {
  *found = false;
  size_t start = 0;
  while (start < headers.size()) {
    size_t end = headers.find("\r\n", start);
    if (end == std::string_view::npos) end = headers.size();
    const std::string_view line = headers.substr(start, end - start);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos &&
        EqualsIgnoreCase(line.substr(0, colon), name)) {
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() &&
             (value.front() == ' ' || value.front() == '\t')) {
        value.remove_prefix(1);
      }
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
        value.remove_suffix(1);
      }
      *found = true;
      return value;
    }
    if (end == headers.size()) break;
    start = end + 2;
  }
  return {};
}

RequestHead ParseRequestHead(std::string_view head) {
  RequestHead out;
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) return out;
  const std::string_view line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return out;
  }
  out.valid = true;
  out.method = line.substr(0, sp1);
  out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.version = line.substr(sp2 + 1);

  const std::string_view headers = head.substr(line_end + 2);
  bool found = false;
  const std::string_view connection =
      FindHeaderValue(headers, "connection", &found);
  if (out.version == "HTTP/1.1") {
    out.keep_alive = !(found && ContainsToken(connection, "close"));
  } else {
    out.keep_alive = found && ContainsToken(connection, "keep-alive");
  }
  const std::string_view length =
      FindHeaderValue(headers, "content-length", &found);
  if (found) {
    size_t value = 0;
    for (char c : length) {
      if (c < '0' || c > '9') {
        value = 0;
        break;
      }
      value = value * 10 + static_cast<size_t>(c - '0');
    }
    out.content_length = value;
  }
  return out;
}

}  // namespace jocl
