#ifndef JOCL_SERVE_CANON_STORE_H_
#define JOCL_SERVE_CANON_STORE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/jocl.h"
#include "core/problem.h"
#include "kb/curated_kb.h"
#include "util/result.h"

namespace jocl {

/// \brief A borrowed contiguous view into a store arena (the serving
/// layer's zero-allocation answer type).
template <typename T>
struct ConstSpan {
  const T* ptr = nullptr;
  size_t count = 0;

  const T* begin() const { return ptr; }
  const T* end() const { return ptr + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  const T& operator[](size_t i) const { return ptr[i]; }
};

/// \brief Which of the store's two phrase spaces a query addresses.
enum class CanonKind : uint32_t { kNp = 0, kRp = 1 };

/// \brief One phrase space of a CanonStore (NP or RP): interned surfaces
/// with a sorted lookup index, cluster membership in CSR layout (the
/// `CompiledGraph` idiom), and one canonical link per cluster.
///
/// All ids are section-local and dense: surfaces `[0, surface_count)` in
/// first-appearance order, clusters `[0, cluster_count)` in
/// first-appearance order over surfaces. Every field is a flat vector of
/// POD — the snapshot format serializes them verbatim.
struct CanonSection {
  /// String id (into the store's text pool) per surface.
  std::vector<uint32_t> surface_text;
  /// Surface ids sorted by surface bytes — the binary-search index.
  std::vector<uint32_t> surface_order;
  /// Mentions of each surface in the covered triples.
  std::vector<uint64_t> surface_mentions;
  /// CSR surface -> cluster ids (one entry per surface in practice; the
  /// layout does not assume it).
  std::vector<uint64_t> surface_cluster_offset;  ///< [surface_count + 1]
  std::vector<uint32_t> surface_clusters;
  /// CSR cluster -> member surface ids, ascending.
  std::vector<uint64_t> cluster_member_offset;   ///< [cluster_count + 1]
  std::vector<uint32_t> cluster_members;
  /// Canonical CKB link per cluster (entity for NP, relation for RP;
  /// kNilId when every member mention decoded to NIL). Majority vote over
  /// member mentions, ties to the smaller id.
  std::vector<int64_t> cluster_link;
  /// String id of the linked entity/relation's canonical name; -1 for NIL.
  std::vector<int64_t> cluster_link_name;
  /// Member mentions that voted for the winning link.
  std::vector<uint64_t> cluster_link_votes;

  /// Shard stores only (`BuildShardedCanonStores`): the monolith surface
  /// id of each local surface, strictly ascending. Empty on a monolith
  /// store, which means the identity mapping — responses always speak
  /// global ids, so a shard's JSON is byte-identical to the monolith's.
  std::vector<uint32_t> surface_global;
  /// Monolith cluster id of each local cluster, strictly ascending;
  /// empty = identity (monolith store).
  std::vector<uint32_t> cluster_global;

  size_t surface_count() const { return surface_text.size(); }
  size_t cluster_count() const { return cluster_link.size(); }
};

/// \brief Immutable, flat-storage index over one `JoclResult` — the
/// serving layer's unit of publication.
///
/// Downstream consumers ask three questions of a canonicalized KB: which
/// cluster is this surface form in, who else is in it, and which curated
/// entity/relation does it link to. The store answers all three with
/// nothing but binary search and offset arithmetic: every lookup is
/// O(log n) or O(1) and allocation-free, so a snapshot can serve a hot
/// read path directly (`CanonServer`) or be queried in process
/// (`examples/kb_serving.cpp`).
///
/// Built once by `BuildCanonStore`; never mutated afterwards. Readers may
/// share a store across threads freely.
struct CanonStore {
  /// All interned strings, concatenated; string i is
  /// `text_pool[text_offset[i] .. text_offset[i+1])`.
  std::vector<char> text_pool;
  std::vector<uint64_t> text_offset;  ///< [string_count + 1]

  CanonSection np;
  CanonSection rp;

  /// Triples the underlying result covered.
  uint64_t triple_count = 0;
  /// Publication stamp (the session batch that produced the store).
  uint64_t generation = 0;
  /// Shard identity (`BuildShardedCanonStores`): this store holds the
  /// surfaces whose FNV-1a hash lands on `shard_index` of `shard_count`.
  /// A monolith store has shard_count == 0.
  uint32_t shard_index = 0;
  uint32_t shard_count = 0;

  size_t string_count() const {
    return text_offset.empty() ? 0 : text_offset.size() - 1;
  }

  /// String by id; empty view for negative ids (the NIL link name).
  std::string_view Text(int64_t string_id) const {
    if (string_id < 0) return {};
    const size_t i = static_cast<size_t>(string_id);
    return std::string_view(text_pool.data() + text_offset[i],
                            text_offset[i + 1] - text_offset[i]);
  }

  const CanonSection& section(CanonKind kind) const {
    return kind == CanonKind::kNp ? np : rp;
  }

  /// Surface id of the exact surface form, or -1. O(log n), zero
  /// allocation (byte-wise binary search over the sorted index).
  int64_t FindSurface(CanonKind kind, std::string_view surface) const;

  std::string_view SurfaceText(CanonKind kind, size_t surface) const {
    return Text(section(kind).surface_text[surface]);
  }

  uint64_t MentionCount(CanonKind kind, size_t surface) const {
    return section(kind).surface_mentions[surface];
  }

  /// Clusters the surface's mentions belong to (one in practice).
  ConstSpan<uint32_t> ClustersOf(CanonKind kind, size_t surface) const {
    const CanonSection& s = section(kind);
    const uint64_t begin = s.surface_cluster_offset[surface];
    const uint64_t end = s.surface_cluster_offset[surface + 1];
    return {s.surface_clusters.data() + begin, end - begin};
  }

  /// Member surface ids of a cluster, ascending.
  ConstSpan<uint32_t> ClusterMembers(CanonKind kind, size_t cluster) const {
    const CanonSection& s = section(kind);
    const uint64_t begin = s.cluster_member_offset[cluster];
    const uint64_t end = s.cluster_member_offset[cluster + 1];
    return {s.cluster_members.data() + begin, end - begin};
  }

  /// Canonical CKB id the cluster links to (kNilId possible).
  int64_t ClusterLink(CanonKind kind, size_t cluster) const {
    return section(kind).cluster_link[cluster];
  }

  /// Canonical name of the cluster's link; empty for NIL.
  std::string_view ClusterLinkName(CanonKind kind, size_t cluster) const {
    return Text(section(kind).cluster_link_name[cluster]);
  }

  /// Monolith id of a local surface (identity on a monolith store).
  /// Responses always print global ids, so shard and monolith stores
  /// render byte-identical JSON for the same surface.
  uint32_t GlobalSurfaceId(CanonKind kind, size_t surface) const {
    const CanonSection& s = section(kind);
    return s.surface_global.empty() ? static_cast<uint32_t>(surface)
                                    : s.surface_global[surface];
  }

  /// Monolith id of a local cluster (identity on a monolith store).
  uint32_t GlobalClusterId(CanonKind kind, size_t cluster) const {
    const CanonSection& s = section(kind);
    return s.cluster_global.empty() ? static_cast<uint32_t>(cluster)
                                    : s.cluster_global[cluster];
  }

  /// Local cluster id for a monolith cluster id, or -1 when this store
  /// does not carry the cluster. O(log n) (the global map is ascending).
  int64_t FindClusterByGlobalId(CanonKind kind, uint64_t global_id) const;
};

/// \brief Builds the immutable serving index over a decoded result.
///
/// \p problem and \p result must describe the same triple set (the
/// problem the result was decoded from — `JoclSession::problem()` /
/// `JoclSession::result()`, or a fresh `BuildProblem` over the same
/// subset for one-shot runs). \p ckb resolves link ids to canonical
/// names. Deterministic: the same inputs produce a byte-identical store.
CanonStore BuildCanonStore(const JoclProblem& problem,
                           const JoclResult& result, const CuratedKb& ckb,
                           uint64_t generation = 0);

/// \brief Structural invariants of a store (offset monotonicity, id
/// ranges, permutation of the sorted index). `LoadSnapshot` runs this so
/// a corrupted-but-checksummed file can never index out of bounds.
Status ValidateCanonStore(const CanonStore& store);

}  // namespace jocl

#endif  // JOCL_SERVE_CANON_STORE_H_
