#include "serve/canon_store.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

#include "util/ids.h"

namespace jocl {
namespace {

/// Interns strings into the store's shared text pool, first-appearance
/// order. Build-time only; the finished store carries no hash map.
class Interner {
 public:
  explicit Interner(CanonStore* store) : store_(store) {
    store_->text_offset.assign(1, 0);
  }

  int64_t Intern(std::string_view text) {
    auto it = ids_.find(std::string(text));
    if (it != ids_.end()) return it->second;
    const int64_t id = static_cast<int64_t>(store_->string_count());
    store_->text_pool.insert(store_->text_pool.end(), text.begin(),
                             text.end());
    store_->text_offset.push_back(store_->text_pool.size());
    ids_.emplace(std::string(text), id);
    return id;
  }

 private:
  CanonStore* store_;
  std::unordered_map<std::string, int64_t> ids_;
};

/// Per-section build state: mentions flattened to (surface, raw cluster
/// label, link) rows before the CSR arrays are laid out.
struct SectionBuilder {
  std::unordered_map<std::string, uint32_t> surface_id;
  std::vector<std::string_view> surface_text;        // by surface id
  std::vector<uint64_t> mentions;                    // by surface id
  std::vector<std::vector<size_t>> surface_labels;   // raw labels, deduped
  // raw label -> (link id -> votes); std::map for deterministic ties.
  std::unordered_map<size_t, std::map<int64_t, uint64_t>> label_votes;

  uint32_t SurfaceOf(const std::string& text) {
    auto [it, inserted] =
        surface_id.emplace(text, static_cast<uint32_t>(surface_text.size()));
    if (inserted) {
      surface_text.push_back(it->first);
      mentions.push_back(0);
      surface_labels.emplace_back();
    }
    return it->second;
  }

  void AddMention(uint32_t surface, size_t raw_label, int64_t link) {
    ++mentions[surface];
    std::vector<size_t>& labels = surface_labels[surface];
    if (std::find(labels.begin(), labels.end(), raw_label) == labels.end()) {
      labels.push_back(raw_label);
    }
    if (link != kNilId) ++label_votes[raw_label][link];
  }

  /// Lays out the CSR arrays. \p link_name resolves a CKB id to its
  /// canonical name for interning.
  template <typename NameFn>
  void Finish(CanonSection* out, Interner* intern, NameFn&& link_name) {
    const size_t ns = surface_text.size();
    out->surface_text.reserve(ns);
    for (std::string_view text : surface_text) {
      out->surface_text.push_back(
          static_cast<uint32_t>(intern->Intern(text)));
    }
    out->surface_mentions = mentions;
    out->surface_order.resize(ns);
    for (size_t s = 0; s < ns; ++s) {
      out->surface_order[s] = static_cast<uint32_t>(s);
    }
    std::sort(out->surface_order.begin(), out->surface_order.end(),
              [&](uint32_t a, uint32_t b) {
                if (surface_text[a] != surface_text[b]) {
                  return surface_text[a] < surface_text[b];
                }
                return a < b;
              });

    // Dense cluster ids: first appearance over surfaces in id order.
    std::unordered_map<size_t, uint32_t> dense_of;
    std::vector<std::vector<uint32_t>> members;
    out->surface_cluster_offset.assign(1, 0);
    for (size_t s = 0; s < ns; ++s) {
      std::vector<size_t> labels = surface_labels[s];
      std::sort(labels.begin(), labels.end());
      for (size_t raw : labels) {
        auto [it, inserted] =
            dense_of.emplace(raw, static_cast<uint32_t>(members.size()));
        if (inserted) members.emplace_back();
        members[it->second].push_back(static_cast<uint32_t>(s));
        out->surface_clusters.push_back(it->second);
      }
      out->surface_cluster_offset.push_back(out->surface_clusters.size());
    }

    const size_t nc = members.size();
    out->cluster_member_offset.assign(1, 0);
    out->cluster_link.reserve(nc);
    for (size_t c = 0; c < nc; ++c) {
      // Surfaces were visited in ascending id order, so members are
      // already ascending and distinct.
      out->cluster_members.insert(out->cluster_members.end(),
                                  members[c].begin(), members[c].end());
      out->cluster_member_offset.push_back(out->cluster_members.size());
    }
    // Raw label of each dense cluster (for the vote lookup).
    std::vector<size_t> raw_of(nc, 0);
    for (const auto& [raw, dense] : dense_of) raw_of[dense] = raw;
    for (size_t c = 0; c < nc; ++c) {
      int64_t winner = kNilId;
      uint64_t votes = 0;
      auto it = label_votes.find(raw_of[c]);
      if (it != label_votes.end()) {
        for (const auto& [link, count] : it->second) {
          if (count > votes) {  // ties keep the smaller id (map order)
            winner = link;
            votes = count;
          }
        }
      }
      out->cluster_link.push_back(winner);
      out->cluster_link_name.push_back(
          winner == kNilId ? -1 : intern->Intern(link_name(winner)));
      out->cluster_link_votes.push_back(votes);
    }
  }
};

Status Invalid(const char* what) {
  return Status::InvalidArgument(std::string("canon store: ") + what);
}

Status CheckOffsets(const std::vector<uint64_t>& offsets, size_t counts,
                    size_t pool_size, const char* what) {
  if (offsets.size() != counts + 1) return Invalid(what);
  if (offsets.front() != 0 || offsets.back() != pool_size) {
    return Invalid(what);
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return Invalid(what);
  }
  return Status::OK();
}

Status ValidateSection(const CanonStore& store, const CanonSection& s) {
  const size_t ns = s.surface_count();
  const size_t nc = s.cluster_count();
  if (s.surface_order.size() != ns || s.surface_mentions.size() != ns) {
    return Invalid("surface array sizes disagree");
  }
  if (s.cluster_link_name.size() != nc || s.cluster_link_votes.size() != nc) {
    return Invalid("cluster array sizes disagree");
  }
  for (uint32_t text : s.surface_text) {
    if (text >= store.string_count()) return Invalid("surface text id range");
  }
  std::vector<uint32_t> order = s.surface_order;
  std::sort(order.begin(), order.end());
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) return Invalid("surface order is not a permutation");
  }
  JOCL_RETURN_NOT_OK(CheckOffsets(s.surface_cluster_offset, ns,
                                  s.surface_clusters.size(),
                                  "surface->cluster offsets"));
  for (uint32_t c : s.surface_clusters) {
    if (c >= nc) return Invalid("surface cluster id range");
  }
  JOCL_RETURN_NOT_OK(CheckOffsets(s.cluster_member_offset, nc,
                                  s.cluster_members.size(),
                                  "cluster->member offsets"));
  for (uint32_t m : s.cluster_members) {
    if (m >= ns) return Invalid("cluster member id range");
  }
  for (int64_t name : s.cluster_link_name) {
    if (name != -1 &&
        (name < 0 || static_cast<size_t>(name) >= store.string_count())) {
      return Invalid("cluster link name id range");
    }
  }
  // Shard stores carry strictly-ascending global id maps; a monolith
  // leaves them empty (identity).
  if (!s.surface_global.empty()) {
    if (s.surface_global.size() != ns) {
      return Invalid("surface global map size disagrees");
    }
    for (size_t i = 1; i < ns; ++i) {
      if (s.surface_global[i] <= s.surface_global[i - 1]) {
        return Invalid("surface global map is not strictly ascending");
      }
    }
  }
  if (!s.cluster_global.empty()) {
    if (s.cluster_global.size() != nc) {
      return Invalid("cluster global map size disagrees");
    }
    for (size_t i = 1; i < nc; ++i) {
      if (s.cluster_global[i] <= s.cluster_global[i - 1]) {
        return Invalid("cluster global map is not strictly ascending");
      }
    }
  }
  return Status::OK();
}

}  // namespace

int64_t CanonStore::FindClusterByGlobalId(CanonKind kind,
                                          uint64_t global_id) const {
  const CanonSection& s = section(kind);
  if (s.cluster_global.empty()) {
    return global_id < s.cluster_count() ? static_cast<int64_t>(global_id)
                                         : -1;
  }
  const auto it = std::lower_bound(s.cluster_global.begin(),
                                   s.cluster_global.end(), global_id);
  if (it == s.cluster_global.end() || *it != global_id) return -1;
  return static_cast<int64_t>(it - s.cluster_global.begin());
}

int64_t CanonStore::FindSurface(CanonKind kind,
                                std::string_view surface) const {
  const CanonSection& s = section(kind);
  auto it = std::lower_bound(
      s.surface_order.begin(), s.surface_order.end(), surface,
      [&](uint32_t id, std::string_view target) {
        return Text(s.surface_text[id]) < target;
      });
  if (it == s.surface_order.end() || Text(s.surface_text[*it]) != surface) {
    return -1;
  }
  return static_cast<int64_t>(*it);
}

CanonStore BuildCanonStore(const JoclProblem& problem,
                           const JoclResult& result, const CuratedKb& ckb,
                           uint64_t generation) {
  CanonStore store;
  Interner intern(&store);
  store.triple_count = problem.triples.size();
  store.generation = generation;

  // NP surfaces collapse the subject and object roles onto distinct
  // strings: the decode pre-merges same-string surfaces across roles, so
  // a string carries one cluster no matter which slot it appeared in.
  SectionBuilder np;
  for (const std::string& text : problem.subject_surfaces) np.SurfaceOf(text);
  for (const std::string& text : problem.object_surfaces) np.SurfaceOf(text);
  SectionBuilder rp;
  for (const std::string& text : problem.predicate_surfaces) {
    rp.SurfaceOf(text);
  }
  const size_t n = problem.triples.size();
  for (size_t t = 0; t < n; ++t) {
    np.AddMention(
        np.SurfaceOf(problem.subject_surfaces[problem.subject_of[t]]),
        result.np_cluster[t * 2], result.np_link[t * 2]);
    np.AddMention(np.SurfaceOf(problem.object_surfaces[problem.object_of[t]]),
                  result.np_cluster[t * 2 + 1], result.np_link[t * 2 + 1]);
    rp.AddMention(
        rp.SurfaceOf(problem.predicate_surfaces[problem.predicate_of[t]]),
        result.rp_cluster[t], result.rp_link[t]);
  }
  np.Finish(&store.np, &intern,
            [&](int64_t id) -> std::string_view { return ckb.entity(id).name; });
  rp.Finish(&store.rp, &intern, [&](int64_t id) -> std::string_view {
    return ckb.relation(id).name;
  });
  return store;
}

Status ValidateCanonStore(const CanonStore& store) {
  JOCL_RETURN_NOT_OK(CheckOffsets(store.text_offset, store.string_count(),
                                  store.text_pool.size(), "text offsets"));
  JOCL_RETURN_NOT_OK(ValidateSection(store, store.np));
  JOCL_RETURN_NOT_OK(ValidateSection(store, store.rp));
  if (store.shard_count > 0 && store.shard_index >= store.shard_count) {
    return Invalid("shard index out of range");
  }
  return Status::OK();
}

}  // namespace jocl
