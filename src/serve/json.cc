#include "serve/json.h"

#include <cstdio>

namespace jocl {

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  AppendJsonString(&out, text);
  return out;
}

bool LooksLikeJson(std::string_view text) {
  size_t i = 0;
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\n' || text[i] == '\t' ||
          text[i] == '\r')) {
    ++i;
  }
  if (i == text.size() || (text[i] != '{' && text[i] != '[')) return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
      if (depth == 0) {
        // Only whitespace may follow the closing bracket.
        for (size_t j = i + 1; j < text.size(); ++j) {
          if (text[j] != ' ' && text[j] != '\n' && text[j] != '\t' &&
              text[j] != '\r') {
            return false;
          }
        }
        return true;
      }
    }
  }
  return false;
}

}  // namespace jocl
