#ifndef JOCL_SERVE_ROUTER_H_
#define JOCL_SERVE_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/event_server.h"
#include "serve/http_client.h"

namespace jocl {

/// \brief The distributed tier's thin front end: an `EventHttpServer`
/// that owns no store and fans `/lookup`, `/link` and `/cluster` out to
/// shard backends (`CanonServer` processes serving the stores of
/// `BuildShardedCanonStores`).
///
/// Routing is the same hash the partitioner used: `/lookup` and `/link`
/// go to `ShardOfSurface(surface, shard_count)`; `/cluster` is
/// broadcast in shard order and the first non-404 response wins (every
/// cluster lives on the shard owning each of its members, and ids the
/// shard set does not carry 404 on every shard with the monolith's
/// exact body). Each event thread keeps one keep-alive `HttpConnection`
/// per shard, reconnecting when the backend's port changes
/// (`SetShardPort`, the recovery rejoin path) or the socket dies.
///
/// **Generation consistency**: a response body is always relayed
/// verbatim from exactly one shard — the router never merges data from
/// two backends — so a client can never observe a mixed-generation
/// body. The backend's `X-Jocl-Generation` header is relayed and
/// recorded per shard (`/stats` exposes it), which is how the
/// distributed tests prove no torn generation is ever visible.
///
/// **Fault handling**: a failed backend request is retried once on a
/// fresh connection; if that also fails the router answers 503 and
/// counts a failure for the shard. A shard whose port is unset (0)
/// 503s immediately.
class CanonRouter : public EventHttpServer {
 public:
  /// \p shard_ports[k] is the port shard k's `CanonServer` listens on
  /// (0 = not up yet; requests for it answer 503 until `SetShardPort`).
  explicit CanonRouter(std::vector<int> shard_ports,
                       ServeOptions options = {});
  ~CanonRouter() override;

  size_t shard_count() const { return shards_.size(); }

  /// Points shard \p shard at a (possibly new) backend port — the
  /// recovery rejoin: a restarted shard comes back on a fresh ephemeral
  /// port and the router's event threads reconnect on their next
  /// request to it. Thread-safe.
  void SetShardPort(size_t shard, int port);

  int shard_port(size_t shard) const;

  /// Last generation observed from shard \p shard's responses; -1
  /// before its first data response.
  int64_t shard_generation(size_t shard) const;

 protected:
  std::unique_ptr<ThreadContext> MakeThreadContext() override;
  void HandleRequest(const RequestHead& request, ThreadContext* context,
                     HttpReply* reply) override;

 private:
  /// Health and telemetry of one backend, shared across event threads.
  /// The counters and gauges live on the router's registry under
  /// `shard="k"` labels (port/generation keep atomics for the cheap
  /// accessor reads; the gauges mirror them for `/metrics`).
  struct ShardState {
    std::atomic<int> port{0};
    std::atomic<int64_t> generation{-1};
    Counter* forwarded = nullptr;
    Counter* retries = nullptr;
    Counter* failures = nullptr;
    Gauge* port_gauge = nullptr;
    Gauge* generation_gauge = nullptr;
  };

  /// Per-event-thread backend connection pool.
  struct RouterContext;

  /// One backend request with the retry-once contract. Returns false
  /// when the shard is down (caller answers 503).
  bool Forward(RouterContext* ctx, size_t shard, const std::string& target,
               HttpResponse* out);
  void Relay(HttpResponse response, HttpReply* reply);
  std::string StatsJson() const;
  /// `/metrics`: the router's own registry plus every live shard's
  /// scrape, shard samples re-labeled with `shard="k"`.
  void AggregatedMetrics(RouterContext* ctx, HttpReply* reply);

  std::vector<std::unique_ptr<ShardState>> shards_;
  int backend_timeout_ms_ = 2000;
};

}  // namespace jocl

#endif  // JOCL_SERVE_ROUTER_H_
