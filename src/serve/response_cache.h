#ifndef JOCL_SERVE_RESPONSE_CACHE_H_
#define JOCL_SERVE_RESPONSE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/canon_store.h"

namespace jocl {

/// \brief Transparent `string_view` comparator — the flat-map idiom
/// (SNIPPETS.md §1): one ordering functor serves owned strings, views
/// and raw bytes alike, so lookups never materialize a key.
struct SvLess {
  using is_transparent = void;
  bool operator()(std::string_view lhs, std::string_view rhs) const noexcept {
    return lhs < rhs;
  }
};

/// \brief Pre-rendered HTTP responses for every hot endpoint of one
/// CanonStore generation — the serving hot path's answer arena.
///
/// Built alongside the store by `BuildResponseCache`: for every surface
/// of each kind the full `/lookup` and `/link` responses, and for every
/// cluster the `/cluster` response, rendered once into a flat arena.
/// Each entry stores the complete status line + headers (without the
/// final `Connection:` line, which the event loop injects per request)
/// followed by the body, so answering a request is
/// parse → binary-search → `writev` — zero JSON work, zero allocation.
///
/// Bodies are produced by the exact same renderer the fallback path
/// uses (`HandleCanonRequest`), so a cached response is byte-identical
/// to a freshly rendered one for the same store generation. The cache
/// references the store's text pool for its key index; it must not
/// outlive the store it was built from — `ServingBundle` couples the
/// two lifetimes and the server swaps the bundle under one RCU pointer
/// so a reader can never pair a cached body with a mismatched
/// generation.
class ResponseCache {
 public:
  /// A cache hit: views into the arena, valid as long as the cache.
  struct Hit {
    std::string_view header;  ///< status line + headers, through the
                              ///< CRLF after Content-Length (no blank line)
    std::string_view body;
  };

  /// Zero-allocation hot-path lookup. \p target is the raw request
  /// target (`/lookup?surface=...`); percent-escapes decode into
  /// \p scratch. Returns true and fills \p hit only for an exact,
  /// unambiguous cache hit; every other case (unknown surface, bad
  /// parameter, `/stats`, exotic encodings, scratch overflow) returns
  /// false and the caller renders through the fallback path.
  bool Find(std::string_view method, std::string_view target, char* scratch,
            size_t scratch_cap, Hit* hit) const;

  bool empty() const { return arena_.empty(); }
  size_t arena_bytes() const { return arena_.size(); }
  size_t entry_count() const {
    size_t n = 0;
    for (const KindCache& k : kinds_) {
      n += k.lookup.size() + k.link.size() + k.cluster.size();
    }
    return n;
  }

 private:
  friend ResponseCache BuildResponseCache(const CanonStore& store);

  /// Offsets of one pre-rendered response inside the arena.
  struct Slice {
    uint64_t offset = 0;
    uint32_t header_len = 0;
    uint32_t body_len = 0;
  };

  struct KindCache {
    /// Surface bytes (views into the store's text pool), sorted — the
    /// flat-map side of the SvLess idiom; parallel to surface_ids.
    std::vector<std::string_view> surface_keys;
    std::vector<uint32_t> surface_ids;
    std::vector<Slice> lookup;   ///< by surface id
    std::vector<Slice> link;     ///< by surface id
    std::vector<Slice> cluster;  ///< by cluster id
  };

  Hit Materialize(const Slice& slice) const {
    return Hit{std::string_view(arena_.data() + slice.offset,
                                slice.header_len),
               std::string_view(arena_.data() + slice.offset +
                                    slice.header_len,
                                slice.body_len)};
  }

  /// -1 when the surface is not in this generation.
  int64_t FindSurfaceId(const KindCache& kind, std::string_view surface) const;

  std::string arena_;
  KindCache kinds_[2];  ///< indexed by CanonKind
  /// The store the cache was rendered from (global→local cluster id
  /// mapping on the hot path). Same lifetime rule as the arena's key
  /// views: the bundle keeps store and cache together.
  const CanonStore* store_ = nullptr;
};

/// \brief Renders the hot-endpoint responses of \p store into a fresh
/// cache. Deterministic; cost is proportional to the store's JSON
/// volume and is paid on the publisher thread, never by readers.
ResponseCache BuildResponseCache(const CanonStore& store);

/// \brief One RCU publication unit: the store and the responses
/// pre-rendered from it. `CanonServer::Publish` swaps a whole bundle
/// atomically, which is what makes the cached path generation-safe.
struct ServingBundle {
  std::shared_ptr<const CanonStore> store;
  ResponseCache cache;       ///< empty when pre-rendering is disabled
  bool has_cache = false;
};

}  // namespace jocl

#endif  // JOCL_SERVE_RESPONSE_CACHE_H_
