#include "serve/event_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "serve/json.h"

namespace jocl {
namespace {

/// Connection-header tails the event loop appends after a pre-rendered
/// (or rendered) head; the blank line that ends the head rides along.
constexpr std::string_view kKeepAliveTail = "Connection: keep-alive\r\n\r\n";
constexpr std::string_view kCloseTail = "Connection: close\r\n\r\n";
constexpr std::string_view kJsonContentType = "application/json";

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// sendmsg == writev + MSG_NOSIGNAL: one gather write of the
/// precomputed pieces without risking SIGPIPE on a dead peer.
ssize_t GatherWrite(int fd, iovec* iov, int iovcnt) {
  msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
}

}  // namespace

std::string ErrorBody(std::string_view message) {
  std::string out = "{\"error\":";
  AppendJsonString(&out, message);
  out.push_back('}');
  return out;
}

EventHttpServer::EventHttpServer(ServeOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.idle_timeout_ms <= 0) options_.idle_timeout_ms = 5000;
  requests_ = registry_.AddCounter("jocl_requests_total", "",
                                   "Data-path requests handled");
  scrapes_ = registry_.AddCounter(
      "jocl_scrapes_total", "",
      "/stats and /metrics requests, counted apart from the data path");
  ok_ = registry_.AddCounter("jocl_responses_total", "code=\"200\"",
                             "Responses by status code class");
  not_found_ = registry_.AddCounter("jocl_responses_total", "code=\"404\"",
                                    "Responses by status code class");
  bad_request_ = registry_.AddCounter("jocl_responses_total", "code=\"4xx\"",
                                      "Responses by status code class");
  unavailable_ = registry_.AddCounter("jocl_responses_total", "code=\"503\"",
                                      "Responses by status code class");
  connections_accepted_ = registry_.AddCounter(
      "jocl_connections_accepted_total", "", "accept() successes");
  connections_reused_ = registry_.AddCounter(
      "jocl_connections_reused_total", "",
      "Requests served on a connection past its first request");
  connections_timed_out_ = registry_.AddCounter(
      "jocl_connections_timed_out_total", "",
      "Connections closed by the idle/slow-loris sweep");
  writev_bytes_ = registry_.AddCounter("jocl_writev_bytes_total", "",
                                       "Response bytes written");
  static constexpr std::string_view kEndpointLabels[kNumEndpoints] = {
      "endpoint=\"/lookup\"",  "endpoint=\"/link\"",
      "endpoint=\"/cluster\"", "endpoint=\"/stats\"",
      "endpoint=\"/metrics\"", "endpoint=\"other\"",
  };
  for (size_t e = 0; e < kNumEndpoints; ++e) {
    latency_[e] = registry_.AddHistogram(
        "jocl_request_latency_seconds", kEndpointLabels[e],
        "Server-side request latency, request parse to last byte queued");
  }
}

EventHttpServer::Endpoint EventHttpServer::ClassifyTarget(
    std::string_view target) {
  std::string_view path = target;
  const size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) path = target.substr(0, qmark);
  if (path == "/lookup") return Endpoint::kLookup;
  if (path == "/link") return Endpoint::kLink;
  if (path == "/cluster") return Endpoint::kCluster;
  if (path == "/stats") return Endpoint::kStats;
  if (path == "/metrics") return Endpoint::kMetrics;
  return Endpoint::kOther;
}

void EventHttpServer::FillMetricsReply(HttpReply* reply) const {
  reply->status = 200;
  reply->body = registry_.RenderPrometheus();
  reply->content_type.assign(kPrometheusContentType);
}

EventHttpServer::~EventHttpServer() { Stop(); }

Status EventHttpServer::OpenListener(int* out_fd) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // One listener per event thread on the same port: the kernel spreads
  // incoming connections across them, so accepted fds never cross
  // threads and the hot path runs lock-free.
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("setsockopt(SO_REUSEPORT) failed: " + error);
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind(127.0.0.1:" + std::to_string(port_) +
                           ") failed: " + error);
  }
  if (port_ == 0) {
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) <
        0) {
      const std::string error = std::strerror(errno);
      ::close(fd);
      return Status::IOError("getsockname() failed: " + error);
    }
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(fd, options_.backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen(127.0.0.1:" + std::to_string(port_) +
                           ") failed: " + error);
  }
  *out_fd = fd;
  return Status::OK();
}

Status EventHttpServer::Start() {
  if (!event_threads_.empty()) {
    return Status::FailedPrecondition("server already started");
  }
  port_ = options_.port;
  auto fail = [&](Status status) {
    for (auto& et : event_threads_) {
      if (et->listen_fd >= 0) ::close(et->listen_fd);
      if (et->wake_fd >= 0) ::close(et->wake_fd);
      if (et->epoll_fd >= 0) ::close(et->epoll_fd);
    }
    event_threads_.clear();
    port_ = 0;
    return status;
  };
  for (size_t w = 0; w < options_.num_workers; ++w) {
    auto et = std::make_unique<EventThread>();
    event_threads_.push_back(std::move(et));
    EventThread* slot = event_threads_.back().get();
    Status status = OpenListener(&slot->listen_fd);
    if (!status.ok()) return fail(std::move(status));
    slot->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (slot->epoll_fd < 0) {
      return fail(Status::IOError("epoll_create1() failed: " +
                                  std::string(std::strerror(errno))));
    }
    slot->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (slot->wake_fd < 0) {
      return fail(Status::IOError("eventfd() failed: " +
                                  std::string(std::strerror(errno))));
    }
    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN;
    event.data.fd = slot->listen_fd;
    if (::epoll_ctl(slot->epoll_fd, EPOLL_CTL_ADD, slot->listen_fd, &event) <
        0) {
      return fail(Status::IOError("epoll_ctl(listener) failed: " +
                                  std::string(std::strerror(errno))));
    }
    event.data.fd = slot->wake_fd;
    if (::epoll_ctl(slot->epoll_fd, EPOLL_CTL_ADD, slot->wake_fd, &event) <
        0) {
      return fail(Status::IOError("epoll_ctl(eventfd) failed: " +
                                  std::string(std::strerror(errno))));
    }
    // Built before the thread exists, so the thread-start happens-before
    // edge hands the context over without synchronization.
    slot->context = MakeThreadContext();
  }
  running_.store(true);
  for (auto& et : event_threads_) {
    et->thread = std::thread(&EventHttpServer::EventLoop, this, et.get());
  }
  return Status::OK();
}

void EventHttpServer::Stop() {
  if (event_threads_.empty()) return;
  running_.store(false);
  for (auto& et : event_threads_) {
    const uint64_t one = 1;
    // A failed wake write is unrecoverable but harmless: the loop also
    // polls `running_` on its timeout tick.
    (void)!::write(et->wake_fd, &one, sizeof(one));
  }
  for (auto& et : event_threads_) {
    if (et->thread.joinable()) et->thread.join();
  }
  event_threads_.clear();
  port_ = 0;
}

ServeCounters EventHttpServer::counters() const {
  ServeCounters counters;
  counters.requests = requests_->Value();
  counters.scrapes = scrapes_->Value();
  counters.ok = ok_->Value();
  counters.not_found = not_found_->Value();
  counters.bad_request = bad_request_->Value();
  counters.unavailable = unavailable_->Value();
  counters.connections_accepted = connections_accepted_->Value();
  counters.connections_reused = connections_reused_->Value();
  counters.connections_timed_out = connections_timed_out_->Value();
  counters.writev_bytes = writev_bytes_->Value();
  return counters;
}

void EventHttpServer::CountStatus(int http_status) {
  switch (http_status) {
    case 200: ok_->Add(); break;
    case 404: not_found_->Add(); break;
    case 503: unavailable_->Add(); break;
    default: bad_request_->Add(); break;
  }
}

void EventHttpServer::EventLoop(EventThread* et) {
  // Timeout enforcement only needs ~idle/4 resolution; the tick also
  // doubles as the running_ fallback poll.
  const int tick_ms =
      std::max(10, std::min(250, options_.idle_timeout_ms / 4));
  int64_t last_sweep = NowMillis();
  epoll_event events[64];
  while (running_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(et->epoll_fd, events, 64, tick_ms);
    if (!running_.load(std::memory_order_relaxed)) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == et->listen_fd) {
        AcceptReady(et);
        continue;
      }
      if (fd == et->wake_fd) {
        uint64_t drained = 0;
        (void)!::read(et->wake_fd, &drained, sizeof(drained));
        continue;
      }
      auto it = et->conns.find(fd);
      if (it == et->conns.end()) continue;
      const uint32_t mask = events[i].events;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        CloseConn(et, fd);
        continue;
      }
      if (mask & EPOLLOUT) {
        FlushOut(et, fd, &it->second);
        it = et->conns.find(fd);  // FlushOut may close on drain/error
        if (it == et->conns.end()) continue;
      }
      if (mask & EPOLLIN) Readable(et, fd, &it->second);
    }
    const int64_t now = NowMillis();
    if (now - last_sweep >= tick_ms) {
      SweepTimeouts(et, now);
      last_sweep = now;
    }
  }
  for (auto& [fd, conn] : et->conns) ::close(fd);
  et->conns.clear();
  ::close(et->listen_fd);
  ::close(et->wake_fd);
  ::close(et->epoll_fd);
  et->listen_fd = et->wake_fd = et->epoll_fd = -1;
}

void EventHttpServer::AcceptReady(EventThread* et) {
  for (;;) {
    const int fd = ::accept4(et->listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN (drained) or a transient kernel error
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(et->epoll_fd, EPOLL_CTL_ADD, fd, &event) < 0) {
      ::close(fd);
      continue;
    }
    Conn& conn = et->conns[fd];
    conn.in.reserve(1024);  // one allocation per connection, amortized
                            // over its keep-alive lifetime
    conn.last_activity_ms = NowMillis();
    connections_accepted_->Add();
  }
}

void EventHttpServer::Readable(EventThread* et, int fd, Conn* conn) {
  bool peer_closed = false;
  for (;;) {
    char buffer[16384];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      conn->last_activity_ms = NowMillis();
      if (static_cast<size_t>(n) < sizeof(buffer)) break;  // drained
    } else if (n == 0) {
      peer_closed = true;
      break;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      CloseConn(et, fd);
      return;
    }
  }
  if (!ProcessBuffered(et, fd, conn)) return;  // connection closed
  if (peer_closed) {
    if (conn->out.empty()) {
      CloseConn(et, fd);
    } else {
      conn->close_after_drain = true;  // finish writing queued responses
    }
  }
}

bool EventHttpServer::ProcessBuffered(EventThread* et, int fd, Conn* conn) {
  for (;;) {
    if (conn->close_after_drain) return true;  // no more requests
    const size_t head_end = conn->in.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (conn->in.size() > options_.max_request_bytes) {
        requests_->Add();
        CountStatus(431);
        SendRendered(et, fd, conn, 431, ErrorBody("request too large"), {},
                     kJsonContentType, /*keep_alive=*/false);
        if (conn->broken || conn->out.empty()) {
          CloseConn(et, fd);
          return false;
        }
        conn->close_after_drain = true;
      }
      return true;  // incomplete head: wait for more bytes
    }
    if (head_end + 4 > options_.max_request_bytes) {
      requests_->Add();
      CountStatus(431);
      SendRendered(et, fd, conn, 431, ErrorBody("request too large"), {},
                   kJsonContentType, /*keep_alive=*/false);
      if (conn->broken || conn->out.empty()) {
        CloseConn(et, fd);
        return false;
      }
      conn->close_after_drain = true;
      return true;
    }
    const std::string_view head(conn->in.data(), head_end + 4);
    const bool keep = ServeRequest(et, fd, conn, head);
    conn->in.erase(0, head_end + 4);  // keeps capacity: no allocation
    if (conn->broken) {
      CloseConn(et, fd);
      return false;
    }
    if (!keep) {
      if (conn->out.empty()) {
        CloseConn(et, fd);
        return false;
      }
      conn->close_after_drain = true;
      return true;
    }
  }
}

bool EventHttpServer::ServeRequest(EventThread* et, int fd, Conn* conn,
                                   std::string_view head) {
  // Latency is measured request-parse to last-byte-queued; the two
  // clock reads and the histogram add are the only cost the `metrics`
  // toggle gates (bench_serve holds the gap to >= 0.95x).
  const bool timed = options_.metrics;
  const uint64_t start_ns = timed ? MonotonicNanos() : 0;
  if (conn->requests_served > 0) {
    connections_reused_->Add();
  }
  ++conn->requests_served;

  const RequestHead request = ParseRequestHead(head);
  if (!request.valid) {
    requests_->Add();
    CountStatus(400);
    SendRendered(et, fd, conn, 400, ErrorBody("malformed request line"), {},
                 kJsonContentType, /*keep_alive=*/false);
    return false;
  }
  // Scrapes are counted apart from data-path requests so monitoring
  // traffic never skews QPS-facing numbers.
  const Endpoint endpoint = ClassifyTarget(request.target);
  if (endpoint == Endpoint::kStats || endpoint == Endpoint::kMetrics) {
    scrapes_->Add();
  } else {
    requests_->Add();
  }
  if (request.content_length > 0) {
    CountStatus(400);
    SendRendered(et, fd, conn, 400,
                 ErrorBody("request bodies are not supported"), {},
                 kJsonContentType, /*keep_alive=*/false);
    return false;
  }

  HttpReply reply;
  HandleRequest(request, et->context.get(), &reply);
  if (!reply.cached_header.empty()) {
    CountStatus(200);
    SendCached(et, fd, conn, reply.cached_header, reply.cached_body,
               request.keep_alive);
  } else {
    CountStatus(reply.status);
    SendRendered(et, fd, conn, reply.status, reply.body, reply.extra_headers,
                 reply.content_type.empty() ? kJsonContentType
                                            : reply.content_type,
                 request.keep_alive);
  }
  if (timed) {
    latency_[static_cast<size_t>(endpoint)]->Record(MonotonicNanos() -
                                                    start_ns);
  }
  return request.keep_alive;
}

void EventHttpServer::SendCached(EventThread* et, int fd, Conn* conn,
                                 std::string_view header,
                                 std::string_view body, bool keep_alive) {
  const std::string_view tail = keep_alive ? kKeepAliveTail : kCloseTail;
  iovec iov[3];
  iov[0].iov_base = const_cast<char*>(header.data());
  iov[0].iov_len = header.size();
  iov[1].iov_base = const_cast<char*>(tail.data());
  iov[1].iov_len = tail.size();
  iov[2].iov_base = const_cast<char*>(body.data());
  iov[2].iov_len = body.size();
  QueueOrSend(et, fd, conn, iov, 3);
}

void EventHttpServer::SendRendered(EventHttpServer::EventThread* et, int fd,
                                   Conn* conn, int http_status,
                                   std::string_view body,
                                   std::string_view extra_headers,
                                   std::string_view content_type,
                                   bool keep_alive) {
  std::string response = "HTTP/1.1 " + std::to_string(http_status) + " " +
                         HttpStatusText(http_status) + "\r\nContent-Type: ";
  response.append(content_type);
  response.append("\r\nContent-Length: " + std::to_string(body.size()) +
                  "\r\n");
  response.append(extra_headers);
  response.append(keep_alive ? kKeepAliveTail : kCloseTail);
  response.append(body);
  iovec iov[1];
  iov[0].iov_base = const_cast<char*>(response.data());
  iov[0].iov_len = response.size();
  QueueOrSend(et, fd, conn, iov, 1);
}

void EventHttpServer::QueueOrSend(EventThread* et, int fd, Conn* conn,
                                  iovec* iov, int iovcnt) {
  size_t total = 0;
  for (int i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
  size_t written = 0;
  if (conn->out.empty()) {
    // Hot path: the whole response usually fits the socket buffer in
    // one gather write and nothing is copied or queued.
    for (;;) {
      const ssize_t n = GatherWrite(fd, iov, iovcnt);
      if (n >= 0) {
        writev_bytes_->Add(static_cast<uint64_t>(n));
        written = static_cast<size_t>(n);
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        written = 0;
        break;
      }
      conn->broken = true;
      return;
    }
    if (written == total) return;
  }
  // Slow client: queue the unsent remainder and let EPOLLOUT drain it.
  size_t skip = written;
  for (int i = 0; i < iovcnt; ++i) {
    if (skip >= iov[i].iov_len) {
      skip -= iov[i].iov_len;
      continue;
    }
    conn->out.append(static_cast<const char*>(iov[i].iov_base) + skip,
                     iov[i].iov_len - skip);
    skip = 0;
  }
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN | EPOLLOUT;
  event.data.fd = fd;
  ::epoll_ctl(et->epoll_fd, EPOLL_CTL_MOD, fd, &event);
  conn->last_activity_ms = NowMillis();
}

void EventHttpServer::FlushOut(EventThread* et, int fd, Conn* conn) {
  while (!conn->out.empty()) {
    iovec iov;
    iov.iov_base = const_cast<char*>(conn->out.data());
    iov.iov_len = conn->out.size();
    const ssize_t n = GatherWrite(fd, &iov, 1);
    if (n > 0) {
      writev_bytes_->Add(static_cast<uint64_t>(n));
      conn->out.erase(0, static_cast<size_t>(n));
      conn->last_activity_ms = NowMillis();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConn(et, fd);
    return;
  }
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.fd = fd;
  ::epoll_ctl(et->epoll_fd, EPOLL_CTL_MOD, fd, &event);
  if (conn->close_after_drain) CloseConn(et, fd);
}

void EventHttpServer::CloseConn(EventThread* et, int fd) {
  ::epoll_ctl(et->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  et->conns.erase(fd);
}

void EventHttpServer::SweepTimeouts(EventThread* et, int64_t now_ms) {
  std::vector<int> expired;
  for (const auto& [fd, conn] : et->conns) {
    if (now_ms - conn.last_activity_ms >= options_.idle_timeout_ms) {
      expired.push_back(fd);
    }
  }
  for (const int fd : expired) {
    Conn& conn = et->conns[fd];
    connections_timed_out_->Add();
    if (!conn.in.empty()) {
      // Slow-loris: a request head has been trickling in past the
      // deadline. Best-effort 408, then drop the connection.
      requests_->Add();
      CountStatus(408);
      const std::string body = ErrorBody("request timeout");
      std::string response =
          "HTTP/1.1 408 Request Timeout\r\n"
          "Content-Type: application/json\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n";
      response.append(kCloseTail);
      response.append(body);
      iovec iov;
      iov.iov_base = const_cast<char*>(response.data());
      iov.iov_len = response.size();
      const ssize_t n = GatherWrite(fd, &iov, 1);
      if (n > 0) {
        writev_bytes_->Add(static_cast<uint64_t>(n));
      }
    }
    CloseConn(et, fd);
  }
}

}  // namespace jocl
