#ifndef JOCL_SERVE_SNAPSHOT_IO_H_
#define JOCL_SERVE_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/canon_store.h"
#include "util/result.h"

namespace jocl {

/// \brief The versioned, checksummed binary snapshot format of a
/// CanonStore (full field-by-field layout in docs/serving.md).
///
/// ```
/// offset  bytes  field
///      0      8  magic "JOCLSNAP"
///      8      4  format version (little-endian u32; currently 2)
///     12      4  reserved (0)
///     16      8  payload size in bytes (u64)
///     24      8  FNV-1a 64 checksum of the payload bytes (u64)
///     32      -  payload: the store's arrays in fixed order, each as a
///                u64 element count followed by little-endian elements
/// ```
///
/// Version 2 appends the shard fields of PR 8 to version 1's layout:
/// `surface_global` / `cluster_global` at the end of each section and
/// the `shard_index` / `shard_count` u32 scalars after `generation`.
///
/// Serialization is deterministic and loss-free: `Serialize(Deserialize(
/// Serialize(s)))` produces the same bytes (asserted in
/// tests/serve_test.cc). Loading validates magic, version, size and
/// checksum before touching the payload, and runs `ValidateCanonStore`
/// afterwards — a truncated, bit-flipped or future-version file yields a
/// descriptive error `Status`, never undefined behavior.
inline constexpr char kSnapshotMagic[8] = {'J', 'O', 'C', 'L',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr size_t kSnapshotHeaderBytes = 32;

/// \brief The delta snapshot: one generation expressed as a patch
/// against the previous one — the replication unit between publisher
/// and shard backends (recovery = base snapshot + delta replay).
///
/// Same 32-byte header shape as a full snapshot with its own magic and
/// version, so the two file kinds can never be confused:
///
/// ```
/// offset  bytes  field
///      0      8  magic "JOCLDELT"
///      8      4  delta format version (little-endian u32; currently 1)
///     12      4  reserved (0)
///     16      8  payload size in bytes (u64)
///     24      8  FNV-1a 64 checksum of the payload bytes (u64)
/// ```
///
/// The payload pins both endpoints, then patches the base payload
/// chunk-by-chunk (each store array contributes a u64-count chunk and a
/// data chunk, so append-only growth deltas to just the appended bytes;
/// the chunk list and order are fixed by the snapshot version):
///
/// ```
/// u64 base_generation        generation the delta applies to
/// u64 target_generation      generation the delta produces
/// u64 base_payload_checksum  FNV-1a of the base snapshot payload
/// u64 target_payload_checksum  FNV-1a of the rebuilt payload
/// u64 target_payload_size    size of the rebuilt payload
/// u64 chunk_count            chunks that follow (fixed per version)
/// per chunk:
///   u8 op                    0 = base chunk unchanged, copy verbatim
///                            1 = patch: u64 keep_prefix, u64
///                                keep_suffix, u64 insert_len, then
///                                insert_len replacement bytes
/// ```
///
/// `ApplyDeltaSnapshot` re-serializes the in-hand base store, verifies
/// the base generation and checksum, splices the patches, verifies the
/// rebuilt payload's size and checksum, and loads it through the same
/// hardened path as a full snapshot. Every defect — truncation, bit
/// flips, wrong base generation, wrong base store, a full snapshot
/// passed as a delta, a future version — is a descriptive `Status`,
/// never undefined behavior (tests/serve_test.cc).
inline constexpr char kDeltaMagic[8] = {'J', 'O', 'C', 'L',
                                        'D', 'E', 'L', 'T'};
inline constexpr uint32_t kDeltaVersion = 1;

/// FNV-1a 64-bit hash (the snapshot checksum).
uint64_t Fnv1a64(const void* data, size_t size);

/// Serializes the store to snapshot bytes (header + payload).
std::string SerializeSnapshot(const CanonStore& store);

/// Parses snapshot bytes back into a store.
Result<CanonStore> DeserializeSnapshot(std::string_view bytes);

/// Writes a snapshot file atomically enough for our purposes (single
/// write + flush); \p bytes_written, when non-null, receives the file
/// size.
Status SaveSnapshot(const CanonStore& store, const std::string& path,
                    size_t* bytes_written = nullptr);

/// Reads and validates a snapshot file.
Result<CanonStore> LoadSnapshot(const std::string& path);

/// Serializes the patch that rewrites \p base's snapshot into
/// \p target's. Typically far smaller than a full snapshot when the
/// generations share most of their text pool and clusters.
std::string SerializeDeltaSnapshot(const CanonStore& base,
                                   const CanonStore& target);

/// Replays a delta against \p base, returning the target store.
Result<CanonStore> ApplyDeltaSnapshot(const CanonStore& base,
                                      std::string_view delta_bytes);

/// Writes `SerializeDeltaSnapshot(base, target)` to \p path.
Status SaveDeltaSnapshot(const CanonStore& base, const CanonStore& target,
                         const std::string& path,
                         size_t* bytes_written = nullptr);

/// Reads a delta file and replays it against \p base.
Result<CanonStore> LoadAndApplyDeltaSnapshot(const CanonStore& base,
                                             const std::string& path);

}  // namespace jocl

#endif  // JOCL_SERVE_SNAPSHOT_IO_H_
