#ifndef JOCL_SERVE_SNAPSHOT_IO_H_
#define JOCL_SERVE_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/canon_store.h"
#include "util/result.h"

namespace jocl {

/// \brief The versioned, checksummed binary snapshot format of a
/// CanonStore (full field-by-field layout in docs/serving.md).
///
/// ```
/// offset  bytes  field
///      0      8  magic "JOCLSNAP"
///      8      4  format version (little-endian u32; currently 1)
///     12      4  reserved (0)
///     16      8  payload size in bytes (u64)
///     24      8  FNV-1a 64 checksum of the payload bytes (u64)
///     32      -  payload: the store's arrays in fixed order, each as a
///                u64 element count followed by little-endian elements
/// ```
///
/// Serialization is deterministic and loss-free: `Serialize(Deserialize(
/// Serialize(s)))` produces the same bytes (asserted in
/// tests/serve_test.cc). Loading validates magic, version, size and
/// checksum before touching the payload, and runs `ValidateCanonStore`
/// afterwards — a truncated, bit-flipped or future-version file yields a
/// descriptive error `Status`, never undefined behavior.
inline constexpr char kSnapshotMagic[8] = {'J', 'O', 'C', 'L',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr size_t kSnapshotHeaderBytes = 32;

/// FNV-1a 64-bit hash (the snapshot checksum).
uint64_t Fnv1a64(const void* data, size_t size);

/// Serializes the store to snapshot bytes (header + payload).
std::string SerializeSnapshot(const CanonStore& store);

/// Parses snapshot bytes back into a store.
Result<CanonStore> DeserializeSnapshot(std::string_view bytes);

/// Writes a snapshot file atomically enough for our purposes (single
/// write + flush); \p bytes_written, when non-null, receives the file
/// size.
Status SaveSnapshot(const CanonStore& store, const std::string& path,
                    size_t* bytes_written = nullptr);

/// Reads and validates a snapshot file.
Result<CanonStore> LoadSnapshot(const std::string& path);

}  // namespace jocl

#endif  // JOCL_SERVE_SNAPSHOT_IO_H_
