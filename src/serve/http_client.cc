#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "serve/http_util.h"

namespace jocl {
namespace {

/// Connects a blocking TCP socket to 127.0.0.1:\p port with send and
/// receive timeouts. Shared by the close-mode and keep-alive clients.
Result<int> ConnectLoopback(int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  timeval timeout;
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect(127.0.0.1:" + std::to_string(port) +
                           ") failed: " + error);
  }
  return fd;
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("send() failed: " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Parses "HTTP/1.1 <code> ..." out of \p head's first line.
bool ParseStatusLine(std::string_view head, int* status) {
  if (head.size() < 12 || head.compare(0, 5, "HTTP/") != 0) return false;
  const size_t sp = head.find(' ');
  const size_t line_end = head.find("\r\n");
  if (sp == std::string_view::npos || line_end == std::string_view::npos ||
      sp + 4 > line_end) {
    return false;
  }
  int value = 0;
  for (size_t i = sp + 1; i < sp + 4; ++i) {
    if (head[i] < '0' || head[i] > '9') return false;
    value = value * 10 + (head[i] - '0');
  }
  *status = value;
  return true;
}

/// Parses the serving tier's `X-Jocl-Generation` header out of a header
/// block; -1 when absent or malformed.
int64_t ParseGenerationHeader(std::string_view headers) {
  bool found = false;
  const std::string_view text =
      FindHeaderValue(headers, "x-jocl-generation", &found);
  if (!found || text.empty() ||
      text.find_first_not_of("0123456789") != std::string_view::npos) {
    return -1;
  }
  int64_t value = 0;
  for (char c : text) value = value * 10 + (c - '0');
  return value;
}

}  // namespace

std::string UrlEncode(std::string_view value) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    const bool unreserved =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
        c == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(hex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

Result<HttpResponse> HttpGet(int port, const std::string& target) {
  Result<int> connected = ConnectLoopback(port, /*timeout_ms=*/5000);
  if (!connected.ok()) return connected.status();
  const int fd = connected.ValueOrDie();
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  Status sent = SendAll(fd, request);
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string error = std::strerror(errno);
      ::close(fd);
      return Status::IOError("recv() failed: " + error);
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  HttpResponse response;
  if (!ParseStatusLine(raw, &response.status)) {
    return Status::IOError("malformed HTTP status line");
  }
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IOError("HTTP response missing header terminator");
  }
  const std::string_view head(raw.data(), header_end);
  const size_t line_end = head.find("\r\n");
  if (line_end != std::string_view::npos) {
    response.generation = ParseGenerationHeader(head.substr(line_end + 2));
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

HttpConnection& HttpConnection::operator=(HttpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    buffer_ = std::move(other.buffer_);
    requests_sent_ = other.requests_sent_;
    other.fd_ = -1;
    other.buffer_.clear();
    other.requests_sent_ = 0;
  }
  return *this;
}

Result<HttpConnection> HttpConnection::Connect(int port, int timeout_ms) {
  Result<int> connected = ConnectLoopback(port, timeout_ms);
  if (!connected.ok()) return connected.status();
  HttpConnection conn;
  conn.fd_ = connected.ValueOrDie();
  conn.port_ = port;
  return conn;
}

void HttpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<HttpResponse> HttpConnection::Get(const std::string& target) {
  if (fd_ < 0) {
    return Status::FailedPrecondition(
        "HttpConnection is closed (server sent Connection: close or a "
        "previous request failed)");
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: keep-alive\r\n\r\n";
  Status sent = SendAll(fd_, request);
  if (!sent.ok()) {
    Close();
    return sent;
  }

  auto fill = [&]() -> Status {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      const std::string error = std::strerror(errno);
      Close();
      return Status::IOError(
          (errno == EAGAIN || errno == EWOULDBLOCK)
              ? "recv() timed out waiting for response on 127.0.0.1:" +
                    std::to_string(port_)
              : "recv() failed: " + error);
    }
    if (n == 0) {
      Close();
      return Status::IOError(
          "server closed the connection mid-response (127.0.0.1:" +
          std::to_string(port_) + ")");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    return Status::OK();
  };

  // Head: everything through the blank line.
  size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    JOCL_RETURN_NOT_OK(fill());
  }
  const std::string_view head(buffer_.data(), head_end);
  HttpResponse response;
  if (!ParseStatusLine(head, &response.status)) {
    Close();
    return Status::IOError("malformed HTTP status line");
  }
  const size_t line_end = head.find("\r\n");
  const std::string_view headers = head.substr(line_end + 2);
  bool found = false;
  const std::string_view length_text =
      FindHeaderValue(headers, "content-length", &found);
  if (!found || length_text.empty() ||
      length_text.find_first_not_of("0123456789") != std::string_view::npos) {
    Close();
    return Status::IOError(
        "keep-alive response missing a numeric Content-Length");
  }
  size_t content_length = 0;
  for (char c : length_text) {
    content_length = content_length * 10 + static_cast<size_t>(c - '0');
  }
  const std::string_view connection =
      FindHeaderValue(headers, "connection", &found);
  const bool server_closes = found && connection == "close";
  response.generation = ParseGenerationHeader(headers);

  // Body: exactly Content-Length bytes; any surplus stays buffered for
  // the next response on this connection.
  const size_t body_start = head_end + 4;
  while (buffer_.size() < body_start + content_length) {
    JOCL_RETURN_NOT_OK(fill());
  }
  response.body = buffer_.substr(body_start, content_length);
  buffer_.erase(0, body_start + content_length);
  ++requests_sent_;
  if (server_closes) Close();
  return response;
}

}  // namespace jocl
