#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace jocl {

std::string UrlEncode(std::string_view value) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    const bool unreserved =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
        c == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(hex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

Result<HttpResponse> HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  timeval timeout;
  timeout.tv_sec = 5;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect(127.0.0.1:" + std::to_string(port) +
                           ") failed: " + error);
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return Status::IOError("send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      ::close(fd);
      return Status::IOError("recv() failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  HttpResponse response;
  // Status line: HTTP/1.1 <code> <text>\r\n
  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.size() < 12 ||
      raw.compare(0, 5, "HTTP/") != 0) {
    return Status::IOError("malformed HTTP response");
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    return Status::IOError("malformed HTTP status line");
  }
  response.status = std::atoi(raw.c_str() + sp + 1);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IOError("HTTP response missing header terminator");
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace jocl
