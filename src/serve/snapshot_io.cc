#include "serve/snapshot_io.h"

#include <cstring>
#include <fstream>

namespace jocl {
namespace {

// ---- little-endian writers --------------------------------------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutVec(std::string* out, const std::vector<char>& v) {
  PutU64(out, v.size());
  out->append(v.data(), v.size());
}

void PutVec(std::string* out, const std::vector<uint32_t>& v) {
  PutU64(out, v.size());
  for (uint32_t x : v) PutU32(out, x);
}

void PutVec(std::string* out, const std::vector<uint64_t>& v) {
  PutU64(out, v.size());
  for (uint64_t x : v) PutU64(out, x);
}

void PutVec(std::string* out, const std::vector<int64_t>& v) {
  PutU64(out, v.size());
  for (int64_t x : v) PutU64(out, static_cast<uint64_t>(x));
}

void PutSection(std::string* out, const CanonSection& s) {
  PutVec(out, s.surface_text);
  PutVec(out, s.surface_order);
  PutVec(out, s.surface_mentions);
  PutVec(out, s.surface_cluster_offset);
  PutVec(out, s.surface_clusters);
  PutVec(out, s.cluster_member_offset);
  PutVec(out, s.cluster_members);
  PutVec(out, s.cluster_link);
  PutVec(out, s.cluster_link_name);
  PutVec(out, s.cluster_link_votes);
}

// ---- bounds-checked reader --------------------------------------------------

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated();
    *out = 0;
    for (int i = 0; i < 4; ++i) {
      *out |= static_cast<uint32_t>(
                  static_cast<uint8_t>(bytes_[pos_ + i]))
              << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Truncated();
    *out = 0;
    for (int i = 0; i < 8; ++i) {
      *out |= static_cast<uint64_t>(
                  static_cast<uint8_t>(bytes_[pos_ + i]))
              << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  Status ReadVec(std::vector<char>* out) {
    uint64_t count = 0;
    JOCL_RETURN_NOT_OK(ReadCount(&count, 1));
    out->resize(count);
    if (count > 0) std::memcpy(out->data(), bytes_.data() + pos_, count);
    pos_ += count;
    return Status::OK();
  }

  Status ReadVec(std::vector<uint32_t>* out) {
    uint64_t count = 0;
    JOCL_RETURN_NOT_OK(ReadCount(&count, 4));
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      JOCL_RETURN_NOT_OK(ReadU32(&(*out)[i]));
    }
    return Status::OK();
  }

  Status ReadVec(std::vector<uint64_t>* out) {
    uint64_t count = 0;
    JOCL_RETURN_NOT_OK(ReadCount(&count, 8));
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      JOCL_RETURN_NOT_OK(ReadU64(&(*out)[i]));
    }
    return Status::OK();
  }

  Status ReadVec(std::vector<int64_t>* out) {
    uint64_t count = 0;
    JOCL_RETURN_NOT_OK(ReadCount(&count, 8));
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t raw = 0;
      JOCL_RETURN_NOT_OK(ReadU64(&raw));
      (*out)[i] = static_cast<int64_t>(raw);
    }
    return Status::OK();
  }

  Status ReadSection(CanonSection* s) {
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_text));
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_order));
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_mentions));
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_cluster_offset));
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_clusters));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_member_offset));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_members));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_link));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_link_name));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_link_votes));
    return Status::OK();
  }

 private:
  static Status Truncated() {
    return Status::IOError("truncated snapshot: payload ends mid-field");
  }

  Status ReadCount(uint64_t* count, size_t elem_size) {
    JOCL_RETURN_NOT_OK(ReadU64(count));
    if (*count > remaining() / elem_size) return Truncated();
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string SerializeSnapshot(const CanonStore& store) {
  std::string payload;
  PutVec(&payload, store.text_pool);
  PutVec(&payload, store.text_offset);
  PutSection(&payload, store.np);
  PutSection(&payload, store.rp);
  PutU64(&payload, store.triple_count);
  PutU64(&payload, store.generation);

  std::string out;
  out.reserve(kSnapshotHeaderBytes + payload.size());
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&out, kSnapshotVersion);
  PutU32(&out, 0);  // reserved
  PutU64(&out, payload.size());
  PutU64(&out, Fnv1a64(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

Result<CanonStore> DeserializeSnapshot(std::string_view bytes) {
  if (bytes.size() < kSnapshotHeaderBytes) {
    return Status::IOError("truncated snapshot: " +
                           std::to_string(bytes.size()) +
                           " bytes is smaller than the 32-byte header");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::InvalidArgument(
        "bad snapshot magic: not a JOCL snapshot file");
  }
  ByteReader header(bytes.substr(sizeof(kSnapshotMagic)));
  uint32_t version = 0;
  uint32_t reserved = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  JOCL_RETURN_NOT_OK(header.ReadU32(&version));
  JOCL_RETURN_NOT_OK(header.ReadU32(&reserved));
  JOCL_RETURN_NOT_OK(header.ReadU64(&payload_size));
  JOCL_RETURN_NOT_OK(header.ReadU64(&checksum));
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  std::string_view payload = bytes.substr(kSnapshotHeaderBytes);
  if (payload.size() != payload_size) {
    return Status::IOError(
        "truncated snapshot: header promises " +
        std::to_string(payload_size) + " payload bytes, file carries " +
        std::to_string(payload.size()));
  }
  const uint64_t actual = Fnv1a64(payload.data(), payload.size());
  if (actual != checksum) {
    return Status::IOError("snapshot checksum mismatch: payload corrupted");
  }

  CanonStore store;
  ByteReader reader(payload);
  JOCL_RETURN_NOT_OK(reader.ReadVec(&store.text_pool));
  JOCL_RETURN_NOT_OK(reader.ReadVec(&store.text_offset));
  JOCL_RETURN_NOT_OK(reader.ReadSection(&store.np));
  JOCL_RETURN_NOT_OK(reader.ReadSection(&store.rp));
  JOCL_RETURN_NOT_OK(reader.ReadU64(&store.triple_count));
  JOCL_RETURN_NOT_OK(reader.ReadU64(&store.generation));
  if (reader.remaining() != 0) {
    return Status::IOError("snapshot carries " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes after the last field");
  }
  JOCL_RETURN_NOT_OK(ValidateCanonStore(store));
  return store;
}

Status SaveSnapshot(const CanonStore& store, const std::string& path,
                    size_t* bytes_written) {
  const std::string bytes = SerializeSnapshot(store);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open snapshot for writing: " + path);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) return Status::IOError("snapshot write failed: " + path);
  if (bytes_written != nullptr) *bytes_written = bytes.size();
  return Status::OK();
}

Result<CanonStore> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open snapshot for reading: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("snapshot read failed: " + path);
  return DeserializeSnapshot(bytes);
}

}  // namespace jocl
