#include "serve/snapshot_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

namespace jocl {
namespace {

// ---- little-endian writers --------------------------------------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutVecData(std::string* out, const std::vector<char>& v) {
  out->append(v.data(), v.size());
}

void PutVecData(std::string* out, const std::vector<uint32_t>& v) {
  for (uint32_t x : v) PutU32(out, x);
}

void PutVecData(std::string* out, const std::vector<uint64_t>& v) {
  for (uint64_t x : v) PutU64(out, x);
}

void PutVecData(std::string* out, const std::vector<int64_t>& v) {
  for (int64_t x : v) PutU64(out, static_cast<uint64_t>(x));
}

/// The payload as a list of chunks: per store array a u64-count chunk
/// and a data chunk, plus one scalar tail. Concatenated they ARE the
/// snapshot payload; the delta format patches at chunk granularity, so
/// the list length and order are part of the format (bump
/// kSnapshotVersion when touching this). Counts are split from data so
/// an append-only generation step deltas to just the appended bytes —
/// with the count inline, the changed length at the chunk head would
/// kill the common-prefix match for the whole array.
std::vector<std::string> SerializePayloadChunks(const CanonStore& store) {
  std::vector<std::string> chunks;
  chunks.reserve(53);
  auto next = [&chunks]() -> std::string* {
    chunks.emplace_back();
    return &chunks.back();
  };
  auto put_split = [&](const auto& v) {
    PutU64(next(), v.size());
    PutVecData(next(), v);
  };
  put_split(store.text_pool);
  put_split(store.text_offset);
  for (const CanonSection* s : {&store.np, &store.rp}) {
    put_split(s->surface_text);
    put_split(s->surface_order);
    put_split(s->surface_mentions);
    put_split(s->surface_cluster_offset);
    put_split(s->surface_clusters);
    put_split(s->cluster_member_offset);
    put_split(s->cluster_members);
    put_split(s->cluster_link);
    put_split(s->cluster_link_name);
    put_split(s->cluster_link_votes);
    put_split(s->surface_global);
    put_split(s->cluster_global);
  }
  std::string* scalars = next();
  PutU64(scalars, store.triple_count);
  PutU64(scalars, store.generation);
  PutU32(scalars, store.shard_index);
  PutU32(scalars, store.shard_count);
  return chunks;
}

std::string ConcatChunks(const std::vector<std::string>& chunks) {
  size_t total = 0;
  for (const std::string& c : chunks) total += c.size();
  std::string out;
  out.reserve(total);
  for (const std::string& c : chunks) out.append(c);
  return out;
}

std::string MakeHeader(const char magic[8], uint32_t version,
                       std::string_view payload) {
  std::string out;
  out.reserve(kSnapshotHeaderBytes);
  out.append(magic, 8);
  PutU32(&out, version);
  PutU32(&out, 0);  // reserved
  PutU64(&out, payload.size());
  PutU64(&out, Fnv1a64(payload.data(), payload.size()));
  return out;
}

// ---- bounds-checked reader --------------------------------------------------

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Truncated();
    *out = static_cast<uint8_t>(bytes_[pos_]);
    pos_ += 1;
    return Status::OK();
  }

  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated();
    *out = 0;
    for (int i = 0; i < 4; ++i) {
      *out |= static_cast<uint32_t>(
                  static_cast<uint8_t>(bytes_[pos_ + i]))
              << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Truncated();
    *out = 0;
    for (int i = 0; i < 8; ++i) {
      *out |= static_cast<uint64_t>(
                  static_cast<uint8_t>(bytes_[pos_ + i]))
              << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  Status ReadBytes(uint64_t count, std::string_view* out) {
    if (count > remaining()) return Truncated();
    *out = bytes_.substr(pos_, count);
    pos_ += count;
    return Status::OK();
  }

  Status ReadVec(std::vector<char>* out) {
    uint64_t count = 0;
    JOCL_RETURN_NOT_OK(ReadCount(&count, 1));
    out->resize(count);
    if (count > 0) std::memcpy(out->data(), bytes_.data() + pos_, count);
    pos_ += count;
    return Status::OK();
  }

  Status ReadVec(std::vector<uint32_t>* out) {
    uint64_t count = 0;
    JOCL_RETURN_NOT_OK(ReadCount(&count, 4));
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      JOCL_RETURN_NOT_OK(ReadU32(&(*out)[i]));
    }
    return Status::OK();
  }

  Status ReadVec(std::vector<uint64_t>* out) {
    uint64_t count = 0;
    JOCL_RETURN_NOT_OK(ReadCount(&count, 8));
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      JOCL_RETURN_NOT_OK(ReadU64(&(*out)[i]));
    }
    return Status::OK();
  }

  Status ReadVec(std::vector<int64_t>* out) {
    uint64_t count = 0;
    JOCL_RETURN_NOT_OK(ReadCount(&count, 8));
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t raw = 0;
      JOCL_RETURN_NOT_OK(ReadU64(&raw));
      (*out)[i] = static_cast<int64_t>(raw);
    }
    return Status::OK();
  }

  Status ReadSection(CanonSection* s) {
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_text));
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_order));
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_mentions));
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_cluster_offset));
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_clusters));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_member_offset));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_members));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_link));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_link_name));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_link_votes));
    JOCL_RETURN_NOT_OK(ReadVec(&s->surface_global));
    JOCL_RETURN_NOT_OK(ReadVec(&s->cluster_global));
    return Status::OK();
  }

 private:
  static Status Truncated() {
    return Status::IOError("truncated snapshot: payload ends mid-field");
  }

  Status ReadCount(uint64_t* count, size_t elem_size) {
    JOCL_RETURN_NOT_OK(ReadU64(count));
    if (*count > remaining() / elem_size) return Truncated();
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// A checked and checksummed snapshot payload back into a store.
Result<CanonStore> DeserializePayload(std::string_view payload) {
  CanonStore store;
  ByteReader reader(payload);
  JOCL_RETURN_NOT_OK(reader.ReadVec(&store.text_pool));
  JOCL_RETURN_NOT_OK(reader.ReadVec(&store.text_offset));
  JOCL_RETURN_NOT_OK(reader.ReadSection(&store.np));
  JOCL_RETURN_NOT_OK(reader.ReadSection(&store.rp));
  JOCL_RETURN_NOT_OK(reader.ReadU64(&store.triple_count));
  JOCL_RETURN_NOT_OK(reader.ReadU64(&store.generation));
  JOCL_RETURN_NOT_OK(reader.ReadU32(&store.shard_index));
  JOCL_RETURN_NOT_OK(reader.ReadU32(&store.shard_count));
  if (reader.remaining() != 0) {
    return Status::IOError("snapshot carries " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes after the last field");
  }
  JOCL_RETURN_NOT_OK(ValidateCanonStore(store));
  return store;
}

Status WriteFile(const std::string& bytes, const std::string& path,
                 const char* what, size_t* bytes_written) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError(std::string("cannot open ") + what +
                           " for writing: " + path);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    return Status::IOError(std::string(what) + " write failed: " + path);
  }
  if (bytes_written != nullptr) *bytes_written = bytes.size();
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError(std::string("cannot open ") + what +
                           " for reading: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError(std::string(what) + " read failed: " + path);
  }
  return bytes;
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string SerializeSnapshot(const CanonStore& store) {
  const std::string payload = ConcatChunks(SerializePayloadChunks(store));
  std::string out = MakeHeader(kSnapshotMagic, kSnapshotVersion, payload);
  out.append(payload);
  return out;
}

Result<CanonStore> DeserializeSnapshot(std::string_view bytes) {
  if (bytes.size() < kSnapshotHeaderBytes) {
    return Status::IOError("truncated snapshot: " +
                           std::to_string(bytes.size()) +
                           " bytes is smaller than the 32-byte header");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    if (std::memcmp(bytes.data(), kDeltaMagic, sizeof(kDeltaMagic)) == 0) {
      return Status::InvalidArgument(
          "bad snapshot magic: this is a delta snapshot, apply it with "
          "ApplyDeltaSnapshot against its base");
    }
    return Status::InvalidArgument(
        "bad snapshot magic: not a JOCL snapshot file");
  }
  ByteReader header(bytes.substr(sizeof(kSnapshotMagic)));
  uint32_t version = 0;
  uint32_t reserved = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  JOCL_RETURN_NOT_OK(header.ReadU32(&version));
  JOCL_RETURN_NOT_OK(header.ReadU32(&reserved));
  JOCL_RETURN_NOT_OK(header.ReadU64(&payload_size));
  JOCL_RETURN_NOT_OK(header.ReadU64(&checksum));
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  std::string_view payload = bytes.substr(kSnapshotHeaderBytes);
  if (payload.size() != payload_size) {
    return Status::IOError(
        "truncated snapshot: header promises " +
        std::to_string(payload_size) + " payload bytes, file carries " +
        std::to_string(payload.size()));
  }
  const uint64_t actual = Fnv1a64(payload.data(), payload.size());
  if (actual != checksum) {
    return Status::IOError("snapshot checksum mismatch: payload corrupted");
  }
  return DeserializePayload(payload);
}

Status SaveSnapshot(const CanonStore& store, const std::string& path,
                    size_t* bytes_written) {
  return WriteFile(SerializeSnapshot(store), path, "snapshot",
                   bytes_written);
}

Result<CanonStore> LoadSnapshot(const std::string& path) {
  Result<std::string> bytes = ReadFile(path, "snapshot");
  JOCL_RETURN_NOT_OK(bytes.status());
  return DeserializeSnapshot(bytes.ValueOrDie());
}

std::string SerializeDeltaSnapshot(const CanonStore& base,
                                   const CanonStore& target) {
  const std::vector<std::string> base_chunks = SerializePayloadChunks(base);
  const std::vector<std::string> target_chunks =
      SerializePayloadChunks(target);
  const std::string base_payload = ConcatChunks(base_chunks);
  const std::string target_payload = ConcatChunks(target_chunks);

  std::string payload;
  PutU64(&payload, base.generation);
  PutU64(&payload, target.generation);
  PutU64(&payload, Fnv1a64(base_payload.data(), base_payload.size()));
  PutU64(&payload, Fnv1a64(target_payload.data(), target_payload.size()));
  PutU64(&payload, target_payload.size());
  PutU64(&payload, base_chunks.size());
  for (size_t i = 0; i < base_chunks.size(); ++i) {
    const std::string& from = base_chunks[i];
    const std::string& to = target_chunks[i];
    if (from == to) {
      payload.push_back(0);  // op: unchanged
      continue;
    }
    // Patch: keep the longest common prefix and suffix of the chunk,
    // carry only the differing middle.
    size_t prefix = 0;
    const size_t limit = std::min(from.size(), to.size());
    while (prefix < limit && from[prefix] == to[prefix]) ++prefix;
    size_t suffix = 0;
    while (suffix < limit - prefix &&
           from[from.size() - 1 - suffix] == to[to.size() - 1 - suffix]) {
      ++suffix;
    }
    payload.push_back(1);  // op: patch
    PutU64(&payload, prefix);
    PutU64(&payload, suffix);
    PutU64(&payload, to.size() - prefix - suffix);
    payload.append(to, prefix, to.size() - prefix - suffix);
  }

  std::string out = MakeHeader(kDeltaMagic, kDeltaVersion, payload);
  out.append(payload);
  return out;
}

Result<CanonStore> ApplyDeltaSnapshot(const CanonStore& base,
                                      std::string_view delta_bytes) {
  if (delta_bytes.size() < kSnapshotHeaderBytes) {
    return Status::IOError("truncated delta snapshot: " +
                           std::to_string(delta_bytes.size()) +
                           " bytes is smaller than the 32-byte header");
  }
  if (std::memcmp(delta_bytes.data(), kDeltaMagic, sizeof(kDeltaMagic)) !=
      0) {
    if (std::memcmp(delta_bytes.data(), kSnapshotMagic,
                    sizeof(kSnapshotMagic)) == 0) {
      return Status::InvalidArgument(
          "bad delta magic: this is a full snapshot, load it with "
          "DeserializeSnapshot instead");
    }
    return Status::InvalidArgument(
        "bad delta magic: not a JOCL delta snapshot file");
  }
  ByteReader header(delta_bytes.substr(sizeof(kDeltaMagic)));
  uint32_t version = 0;
  uint32_t reserved = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  JOCL_RETURN_NOT_OK(header.ReadU32(&version));
  JOCL_RETURN_NOT_OK(header.ReadU32(&reserved));
  JOCL_RETURN_NOT_OK(header.ReadU64(&payload_size));
  JOCL_RETURN_NOT_OK(header.ReadU64(&checksum));
  if (version != kDeltaVersion) {
    return Status::FailedPrecondition(
        "unsupported delta version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kDeltaVersion) + ")");
  }
  std::string_view payload = delta_bytes.substr(kSnapshotHeaderBytes);
  if (payload.size() != payload_size) {
    return Status::IOError(
        "truncated delta snapshot: header promises " +
        std::to_string(payload_size) + " payload bytes, file carries " +
        std::to_string(payload.size()));
  }
  if (Fnv1a64(payload.data(), payload.size()) != checksum) {
    return Status::IOError("delta checksum mismatch: payload corrupted");
  }

  ByteReader reader(payload);
  uint64_t base_generation = 0;
  uint64_t target_generation = 0;
  uint64_t base_checksum = 0;
  uint64_t target_checksum = 0;
  uint64_t target_size = 0;
  uint64_t chunk_count = 0;
  JOCL_RETURN_NOT_OK(reader.ReadU64(&base_generation));
  JOCL_RETURN_NOT_OK(reader.ReadU64(&target_generation));
  JOCL_RETURN_NOT_OK(reader.ReadU64(&base_checksum));
  JOCL_RETURN_NOT_OK(reader.ReadU64(&target_checksum));
  JOCL_RETURN_NOT_OK(reader.ReadU64(&target_size));
  JOCL_RETURN_NOT_OK(reader.ReadU64(&chunk_count));
  if (base_generation != base.generation) {
    return Status::FailedPrecondition(
        "delta expects base generation " + std::to_string(base_generation) +
        ", applied against generation " + std::to_string(base.generation));
  }
  const std::vector<std::string> base_chunks = SerializePayloadChunks(base);
  const std::string base_payload = ConcatChunks(base_chunks);
  if (Fnv1a64(base_payload.data(), base_payload.size()) != base_checksum) {
    return Status::FailedPrecondition(
        "delta does not match this base store (base payload checksum "
        "mismatch)");
  }
  if (chunk_count != base_chunks.size()) {
    return Status::IOError("delta carries " + std::to_string(chunk_count) +
                           " chunks, this build expects " +
                           std::to_string(base_chunks.size()));
  }

  std::string rebuilt;
  rebuilt.reserve(target_size);
  for (const std::string& from : base_chunks) {
    uint8_t op = 0;
    JOCL_RETURN_NOT_OK(reader.ReadU8(&op));
    if (op == 0) {
      rebuilt.append(from);
      continue;
    }
    if (op != 1) {
      return Status::IOError("bad delta chunk op " + std::to_string(op));
    }
    uint64_t prefix = 0;
    uint64_t suffix = 0;
    uint64_t insert_len = 0;
    JOCL_RETURN_NOT_OK(reader.ReadU64(&prefix));
    JOCL_RETURN_NOT_OK(reader.ReadU64(&suffix));
    JOCL_RETURN_NOT_OK(reader.ReadU64(&insert_len));
    if (prefix > from.size() || suffix > from.size() - prefix) {
      return Status::IOError("delta splice overflows its base chunk");
    }
    std::string_view insert;
    JOCL_RETURN_NOT_OK(reader.ReadBytes(insert_len, &insert));
    rebuilt.append(from, 0, prefix);
    rebuilt.append(insert);
    rebuilt.append(from, from.size() - suffix, suffix);
  }
  if (reader.remaining() != 0) {
    return Status::IOError("delta carries " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes after the last chunk");
  }
  if (rebuilt.size() != target_size) {
    return Status::IOError(
        "delta rebuilt " + std::to_string(rebuilt.size()) +
        " payload bytes, header promised " + std::to_string(target_size));
  }
  if (Fnv1a64(rebuilt.data(), rebuilt.size()) != target_checksum) {
    return Status::IOError(
        "delta rebuilt a corrupted payload: target checksum mismatch");
  }
  Result<CanonStore> store = DeserializePayload(rebuilt);
  JOCL_RETURN_NOT_OK(store.status());
  if (store.ValueOrDie().generation != target_generation) {
    return Status::IOError(
        "delta target generation disagrees with the rebuilt payload");
  }
  return store;
}

Status SaveDeltaSnapshot(const CanonStore& base, const CanonStore& target,
                         const std::string& path, size_t* bytes_written) {
  return WriteFile(SerializeDeltaSnapshot(base, target), path,
                   "delta snapshot", bytes_written);
}

Result<CanonStore> LoadAndApplyDeltaSnapshot(const CanonStore& base,
                                             const std::string& path) {
  Result<std::string> bytes = ReadFile(path, "delta snapshot");
  JOCL_RETURN_NOT_OK(bytes.status());
  return ApplyDeltaSnapshot(base, bytes.ValueOrDie());
}

}  // namespace jocl
