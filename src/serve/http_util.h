#ifndef JOCL_SERVE_HTTP_UTIL_H_
#define JOCL_SERVE_HTTP_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jocl {

/// \brief Reason phrase for the HTTP status codes the serving layer
/// emits.
const char* HttpStatusText(int code);

/// \brief Percent-decodes a query-string component ('+' becomes space;
/// malformed escapes pass through verbatim). Allocating — the fallback
/// (non-cached) request path.
std::string UrlDecode(std::string_view text);

/// \brief Percent-decodes \p text into \p scratch without allocating.
///
/// When \p text contains no escapes the returned view aliases \p text
/// and \p scratch is untouched. Returns false when the decoded form
/// would not fit \p cap bytes — callers fall back to the allocating
/// path. The hot-path half of the pre-rendered response cache.
bool UrlDecodeInto(std::string_view text, char* scratch, size_t cap,
                   std::string_view* out);

/// \brief Decoded `key=value` pairs of a query string (allocating;
/// fallback request path).
struct QueryParams {
  std::vector<std::pair<std::string, std::string>> params;

  const std::string* Find(std::string_view key) const {
    for (const auto& [k, v] : params) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

QueryParams ParseQuery(std::string_view query);

/// \brief Outcome of the zero-allocation query scan.
enum class QueryScan {
  kFound,          ///< key present; *raw_value holds its (undecoded) value
  kMissing,        ///< key absent from the query string
  kNeedsFallback,  ///< a key is percent-encoded; only full decoding can
                   ///< resolve the query — use ParseQuery instead
};

/// \brief Finds the first occurrence of \p key in \p query without
/// allocating. Mirrors ParseQuery's first-match-wins semantics; any
/// percent/plus escape inside a *key* forces kNeedsFallback so the fast
/// and slow paths can never disagree.
QueryScan FindQueryValue(std::string_view query, std::string_view key,
                         std::string_view* raw_value);

/// \brief Parsed head of one HTTP/1.1 request (request line + the
/// headers the server acts on). All views alias the input buffer.
struct RequestHead {
  bool valid = false;        ///< request line was well-formed
  std::string_view method;
  std::string_view target;   ///< path + optional ?query
  std::string_view version;  ///< e.g. "HTTP/1.1"
  bool keep_alive = true;    ///< after version + Connection header rules
  size_t content_length = 0; ///< declared body size (0 when absent)
};

/// \brief Parses \p head, the bytes of one request up to and including
/// the blank line. Keep-alive defaults: HTTP/1.1 keeps the connection
/// unless `Connection: close`; HTTP/1.0 (or anything else) closes
/// unless `Connection: keep-alive`.
RequestHead ParseRequestHead(std::string_view head);

/// \brief Case-insensitive header lookup over a raw header block
/// (everything after the request/status line). Returns the trimmed
/// value view, or an empty view with found=false.
std::string_view FindHeaderValue(std::string_view headers,
                                 std::string_view name, bool* found);

}  // namespace jocl

#endif  // JOCL_SERVE_HTTP_UTIL_H_
