#ifndef JOCL_SERVE_EVENT_SERVER_H_
#define JOCL_SERVE_EVENT_SERVER_H_

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "serve/http_util.h"
#include "util/result.h"

namespace jocl {

/// \brief Execution knobs of the serving front end.
struct ServeOptions {
  /// TCP port to bind on 127.0.0.1; 0 = any free (ephemeral) port, read
  /// back via `EventHttpServer::port()`.
  int port = 0;
  /// Event-loop threads. Each runs its own epoll instance over its own
  /// `SO_REUSEPORT` listener, so accepted connections are kernel-
  /// distributed and never migrate between threads (no cross-thread
  /// locks on the hot path). Kept under its historical name — before
  /// the event loop these were pool workers.
  size_t num_workers = 4;
  /// Listen backlog (per listener).
  int backlog = 64;
  /// A connection is closed when this long passes without progress —
  /// both the keep-alive idle case and the slow-loris partial-request
  /// case (the latter is answered with 408 best-effort first).
  int idle_timeout_ms = 5000;
  /// Requests whose head exceeds this are rejected with 431 and the
  /// connection is closed.
  size_t max_request_bytes = 16 * 1024;
  /// Pre-render hot-endpoint responses on every Publish (the
  /// parse → binary-search → writev path). Disable to serve through
  /// the allocating renderer only — bench_serve measures the gap.
  bool prerender = true;
  /// Record per-endpoint request-latency histograms (request parse to
  /// last byte queued). Counters always run (they replace the old
  /// atomics at the same cost); this gates only the two clock reads and
  /// the histogram add per request — bench_serve measures the gap and
  /// gates it at >= 0.95x.
  bool metrics = true;
};

/// \brief Monotonic request counters (one snapshot, not a live view).
struct ServeCounters {
  uint64_t requests = 0;     ///< data-path requests handled (not
                             ///< connections; excludes scrapes)
  uint64_t scrapes = 0;      ///< /stats + /metrics requests, counted
                             ///< apart so scraping never skews QPS math
  uint64_t ok = 0;           ///< 200 responses
  uint64_t not_found = 0;    ///< 404 responses
  uint64_t bad_request = 0;  ///< 400/405/408/431 responses
  uint64_t unavailable = 0;  ///< 503 (no store published / shard down)
  uint64_t publishes = 0;    ///< store swaps (CanonServer)
  // Event-loop counters (PR 7).
  uint64_t connections_accepted = 0;   ///< accept() successes
  uint64_t connections_reused = 0;     ///< requests served on a connection
                                       ///< past its first request
  uint64_t connections_timed_out = 0;  ///< idle/slow closes by the loop
  uint64_t cache_hits = 0;             ///< answered from the arena
  uint64_t cache_misses = 0;           ///< rendered by the fallback path
  uint64_t writev_bytes = 0;           ///< response bytes written
};

/// The uniform JSON error body: `{"error":"<message>"}`.
std::string ErrorBody(std::string_view message);

/// \brief One response from a request handler, in one of two shapes.
///
/// Rendered (the default): `status` + `body`, written with a freshly
/// built head; `extra_headers` carries additional `Key: value\r\n`
/// lines (e.g. `X-Jocl-Generation`). Cached: when `cached_header` is
/// non-empty the reply is pre-rendered header + body views written
/// zero-copy (the PR 7 writev path); `pin` keeps whatever arena they
/// point into alive until the write is queued, and `status` must stay
/// 200 (cached entries are only ever successful responses).
struct HttpReply {
  int status = 200;
  std::string body;
  std::string extra_headers;
  /// Content-Type of a rendered reply; empty = application/json (the
  /// default everywhere but `/metrics`, which is Prometheus text).
  std::string content_type;
  std::string_view cached_header;
  std::string_view cached_body;
  std::shared_ptr<const void> pin;
};

/// \brief The dependency-free event-driven HTTP/1.1 front end, request
/// handling left to subclasses (`CanonServer` serves a store,
/// `CanonRouter` fans out to shard backends).
///
/// `num_workers` event threads each own an epoll instance and an
/// `SO_REUSEPORT` listener on 127.0.0.1; a connection lives on the
/// thread that accepted it for its whole life. Connections are
/// keep-alive by default (HTTP/1.1 semantics), requests may be
/// pipelined, and per-connection state machines enforce idle /
/// slow-client timeouts and the request-size cap off the epoll timer.
///
/// Subclasses override `HandleRequest` (called on the event thread that
/// owns the connection) and may override `MakeThreadContext` to hang
/// per-thread state — e.g. backend connection pools — off each event
/// thread without any locking. **Subclass destructors must call
/// `Stop()` themselves**: the base destructor also stops, but by then
/// the derived object is gone and an event thread still dispatching
/// into the derived `HandleRequest` would be undefined behavior.
class EventHttpServer {
 public:
  explicit EventHttpServer(ServeOptions options = {});
  virtual ~EventHttpServer();

  EventHttpServer(const EventHttpServer&) = delete;
  EventHttpServer& operator=(const EventHttpServer&) = delete;

  /// Binds the listeners, spawns the event threads. Fails with a
  /// descriptive Status when the port is taken or epoll setup fails.
  Status Start();

  /// Closes every connection and listener, joins all event threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  virtual ServeCounters counters() const;

 protected:
  /// Per-event-thread state owned by the subclass; created once per
  /// event thread at Start and only ever touched by that thread.
  struct ThreadContext {
    virtual ~ThreadContext() = default;
  };

  virtual std::unique_ptr<ThreadContext> MakeThreadContext() {
    return nullptr;
  }

  /// Answers one parsed request. Runs on the owning event thread;
  /// \p context is that thread's `MakeThreadContext()` result (null by
  /// default). Protocol-level errors (malformed head, oversize, 408)
  /// never reach this.
  virtual void HandleRequest(const RequestHead& request,
                             ThreadContext* context, HttpReply* reply) = 0;

  const ServeOptions& options() const { return options_; }

  /// Request targets bucketed for per-endpoint latency histograms and
  /// the scrape/data-path request split.
  enum class Endpoint {
    kLookup = 0,
    kLink,
    kCluster,
    kStats,
    kMetrics,
    kOther,
  };
  static constexpr size_t kNumEndpoints = 6;
  static Endpoint ClassifyTarget(std::string_view target);

  /// The server-scoped registry `/metrics` renders. Subclasses register
  /// their own families here at construction time.
  MetricsRegistry& metrics_registry() { return registry_; }
  const MetricsRegistry& metrics_registry() const { return registry_; }

  /// Fills \p reply with this server's Prometheus exposition.
  void FillMetricsReply(HttpReply* reply) const;

 private:
  /// Per-connection state machine.
  struct Conn {
    std::string in;        ///< buffered unparsed request bytes
    std::string out;       ///< response bytes awaiting POLLOUT
    int64_t last_activity_ms = 0;
    uint64_t requests_served = 0;
    bool close_after_drain = false;  ///< close once `out` empties
    bool broken = false;             ///< fatal write error; owner closes
  };

  /// One event thread: epoll instance + SO_REUSEPORT listener + its
  /// connections. Only its own thread touches `conns` and `context`.
  struct EventThread {
    int epoll_fd = -1;
    int listen_fd = -1;
    int wake_fd = -1;  ///< eventfd; Stop() writes to break epoll_wait
    std::unordered_map<int, Conn> conns;
    std::unique_ptr<ThreadContext> context;
    std::thread thread;
  };

  Status OpenListener(int* out_fd);
  void EventLoop(EventThread* et);
  void AcceptReady(EventThread* et);
  void Readable(EventThread* et, int fd, Conn* conn);
  /// Drains complete pipelined requests out of `conn->in`. Returns
  /// false when it closed the connection.
  bool ProcessBuffered(EventThread* et, int fd, Conn* conn);
  /// Answers one parsed request; returns false when the connection must
  /// close (protocol error or Connection: close).
  bool ServeRequest(EventThread* et, int fd, Conn* conn,
                    std::string_view head);
  void SendCached(EventThread* et, int fd, Conn* conn,
                  std::string_view header, std::string_view body,
                  bool keep_alive);
  void SendRendered(EventThread* et, int fd, Conn* conn, int http_status,
                    std::string_view body, std::string_view extra_headers,
                    std::string_view content_type, bool keep_alive);
  /// One gather write of `iov`; the unsent remainder is queued on
  /// `conn->out` with EPOLLOUT armed. Sets `conn->broken` on error.
  void QueueOrSend(EventThread* et, int fd, Conn* conn, iovec* iov,
                   int iovcnt);
  void FlushOut(EventThread* et, int fd, Conn* conn);
  void CloseConn(EventThread* et, int fd);
  void SweepTimeouts(EventThread* et, int64_t now_ms);
  void CountStatus(int http_status);

  ServeOptions options_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<EventThread>> event_threads_;

  // Request counters live on the server-scoped registry (the single
  // source `/metrics`, `/stats` and counters() all read); the handles
  // are registered once in the constructor and recording through them
  // is lock-free and allocation-free on the event threads.
  MetricsRegistry registry_;
  Counter* requests_ = nullptr;
  Counter* scrapes_ = nullptr;
  Counter* ok_ = nullptr;
  Counter* not_found_ = nullptr;
  Counter* bad_request_ = nullptr;
  Counter* unavailable_ = nullptr;
  Counter* connections_accepted_ = nullptr;
  Counter* connections_reused_ = nullptr;
  Counter* connections_timed_out_ = nullptr;
  Counter* writev_bytes_ = nullptr;
  Histogram* latency_[kNumEndpoints] = {nullptr};
};

}  // namespace jocl

#endif  // JOCL_SERVE_EVENT_SERVER_H_
