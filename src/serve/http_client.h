#ifndef JOCL_SERVE_HTTP_CLIENT_H_
#define JOCL_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace jocl {

/// \brief A parsed HTTP response (status line + body; headers dropped,
/// except the serving tier's generation stamp).
struct HttpResponse {
  int status = 0;
  std::string body;
  /// Value of the `X-Jocl-Generation` response header; -1 when absent
  /// (errors rendered without a published store, non-JOCL servers).
  int64_t generation = -1;
};

/// \brief Minimal blocking HTTP/1.1 GET against 127.0.0.1:\p port in
/// `Connection: close` mode — one TCP connection per request, body
/// framed by EOF. Kept for backward compatibility and as the bench's
/// pre-keep-alive baseline; for repeated requests prefer
/// `HttpConnection`. \p target must start with '/'; percent-encode
/// query values with `UrlEncode` first.
Result<HttpResponse> HttpGet(int port, const std::string& target);

/// \brief A persistent (keep-alive) HTTP/1.1 connection to
/// 127.0.0.1: many sequential GETs over one TCP connection, responses
/// framed by Content-Length. The client side of the event loop's
/// keep-alive path — used by tests and `bench_serve`'s keep-alive
/// sweeps.
///
/// Not thread-safe; use one connection per thread. If the server
/// answers `Connection: close` (or the socket drops) the connection
/// transitions to closed and further `Get`s fail with
/// FailedPrecondition — callers reconnect explicitly.
class HttpConnection {
 public:
  /// Connects to 127.0.0.1:\p port with \p timeout_ms applied to
  /// connect, sends and receives.
  static Result<HttpConnection> Connect(int port, int timeout_ms = 5000);

  HttpConnection() = default;
  ~HttpConnection() { Close(); }

  HttpConnection(HttpConnection&& other) noexcept { *this = std::move(other); }
  HttpConnection& operator=(HttpConnection&& other) noexcept;
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Issues one GET and reads exactly one Content-Length-framed
  /// response, leaving any pipelined surplus buffered for the next
  /// call. On any framing or socket error the connection closes and a
  /// descriptive IOError is returned.
  Result<HttpResponse> Get(const std::string& target);

  void Close();
  bool connected() const { return fd_ >= 0; }
  /// Requests completed over this connection so far.
  uint64_t requests_sent() const { return requests_sent_; }

 private:
  int fd_ = -1;
  int port_ = 0;
  std::string buffer_;  ///< received bytes past the last consumed response
  uint64_t requests_sent_ = 0;
};

/// \brief Percent-encodes a query-string value (RFC 3986 unreserved
/// characters pass through).
std::string UrlEncode(std::string_view value);

}  // namespace jocl

#endif  // JOCL_SERVE_HTTP_CLIENT_H_
