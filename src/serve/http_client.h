#ifndef JOCL_SERVE_HTTP_CLIENT_H_
#define JOCL_SERVE_HTTP_CLIENT_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace jocl {

/// \brief A parsed HTTP response (status line + body; headers dropped).
struct HttpResponse {
  int status = 0;
  std::string body;
};

/// \brief Minimal blocking HTTP/1.1 GET against 127.0.0.1:\p port —
/// the client side of `CanonServer`, used by tests, `bench_serve` and
/// the smoke script's local fallback. \p target must start with '/';
/// percent-encode query values with `UrlEncode` first.
Result<HttpResponse> HttpGet(int port, const std::string& target);

/// \brief Percent-encodes a query-string value (RFC 3986 unreserved
/// characters pass through).
std::string UrlEncode(std::string_view value);

}  // namespace jocl

#endif  // JOCL_SERVE_HTTP_CLIENT_H_
