#ifndef JOCL_SERVE_SHARD_STORE_H_
#define JOCL_SERVE_SHARD_STORE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "serve/canon_store.h"
#include "util/result.h"

namespace jocl {

/// \brief The shard a surface form lives on: FNV-1a 64 of the surface
/// bytes modulo \p num_shards (0 when num_shards is 0). The one hash
/// every tier agrees on — `BuildShardedCanonStores` partitions with it,
/// `CanonRouter` routes with it, and smart clients may shard with it
/// directly.
uint32_t ShardOfSurface(std::string_view surface, uint32_t num_shards);

/// \brief Partitions a monolith store into \p num_shards shard stores.
///
/// Shard k owns every surface whose `ShardOfSurface` is k, and
/// additionally carries the full membership of every cluster an owned
/// surface belongs to (so `/lookup` can render complete member lists
/// without leaving the shard). Each shard is a fully valid store
/// (`ValidateCanonStore` passes, snapshots round-trip) whose sections
/// carry `surface_global` / `cluster_global` maps back to monolith ids —
/// responses always speak global ids, so the owner shard's rendered
/// JSON for a surface is byte-identical to the monolith's.
///
/// Deterministic: the same monolith and shard count always produce the
/// same shard stores, and `MergeShardedCanonStores` reconstructs the
/// monolith's exact snapshot bytes — the union is byte-equivalent to
/// the monolith (asserted in tests/serve_distributed_test.cc).
///
/// Fails only on bad arguments: zero shards, or a store that is itself
/// already a shard.
Result<std::vector<CanonStore>> BuildShardedCanonStores(
    const CanonStore& monolith, uint32_t num_shards);

/// \brief Reassembles the monolith from a complete shard set (any
/// order). The inverse of `BuildShardedCanonStores`:
/// `SerializeSnapshot(merge(split(m))) == SerializeSnapshot(m)`.
/// Fails with a descriptive Status on an incomplete, duplicated or
/// mixed-generation shard set.
Result<CanonStore> MergeShardedCanonStores(
    const std::vector<CanonStore>& shards);

}  // namespace jocl

#endif  // JOCL_SERVE_SHARD_STORE_H_
