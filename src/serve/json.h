#ifndef JOCL_SERVE_JSON_H_
#define JOCL_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace jocl {

/// \brief Appends \p text to \p out as a JSON string literal (quotes
/// included), escaping quotes, backslashes and control characters.
void AppendJsonString(std::string* out, std::string_view text);

/// \brief `AppendJsonString` into a fresh string — for tests and
/// call sites composing small documents.
std::string JsonQuote(std::string_view text);

/// \brief Shallow well-formedness check used by tests and the serve
/// smoke path: balanced quotes/braces/brackets outside strings, a
/// top-level object or array. Not a full parser — it rejects the broken
/// output a buggy writer produces, which is all the tests need.
bool LooksLikeJson(std::string_view text);

}  // namespace jocl

#endif  // JOCL_SERVE_JSON_H_
