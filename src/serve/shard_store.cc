#include "serve/shard_store.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <unordered_map>

#include "serve/snapshot_io.h"

namespace jocl {
namespace {

/// Build-time string interner (the BuildCanonStore idiom): first
/// appearance assigns the id, the finished store carries no hash map.
class PoolInterner {
 public:
  explicit PoolInterner(CanonStore* store) : store_(store) {
    store_->text_offset.assign(1, 0);
  }

  int64_t Intern(std::string_view text) {
    auto it = ids_.find(std::string(text));
    if (it != ids_.end()) return it->second;
    const int64_t id = static_cast<int64_t>(store_->string_count());
    store_->text_pool.insert(store_->text_pool.end(), text.begin(),
                             text.end());
    store_->text_offset.push_back(store_->text_pool.size());
    ids_.emplace(std::string(text), id);
    return id;
  }

 private:
  CanonStore* store_;
  std::unordered_map<std::string, int64_t> ids_;
};

Status MergeError(const std::string& what) {
  return Status::InvalidArgument("shard merge: " + what);
}

/// Extracts shard k of one section: owned surfaces (by hash) plus the
/// full membership of every cluster an owned surface touches, all in
/// ascending monolith-id order so the global maps stay sorted.
void BuildShardSection(const CanonStore& monolith, CanonKind kind,
                       uint32_t shard, uint32_t num_shards,
                       PoolInterner* intern, CanonSection* out) {
  const CanonSection& s = monolith.section(kind);
  const size_t ns = s.surface_count();
  const size_t nc = s.cluster_count();
  std::vector<char> needed(nc, 0);
  std::vector<char> included(ns, 0);
  for (size_t g = 0; g < ns; ++g) {
    if (ShardOfSurface(monolith.SurfaceText(kind, g), num_shards) != shard) {
      continue;
    }
    included[g] = 1;
    for (uint32_t c : monolith.ClustersOf(kind, g)) needed[c] = 1;
  }
  // Guests: members of needed clusters owned elsewhere, carried so
  // member lists render complete texts without leaving the shard.
  for (size_t c = 0; c < nc; ++c) {
    if (!needed[c]) continue;
    for (uint32_t m : monolith.ClusterMembers(kind, c)) included[m] = 1;
  }

  std::vector<uint32_t> local_surface(ns, 0);
  std::vector<uint32_t> local_cluster(nc, 0);
  for (size_t g = 0; g < ns; ++g) {
    if (!included[g]) continue;
    local_surface[g] = static_cast<uint32_t>(out->surface_global.size());
    out->surface_global.push_back(static_cast<uint32_t>(g));
  }
  for (size_t c = 0; c < nc; ++c) {
    if (!needed[c]) continue;
    local_cluster[c] = static_cast<uint32_t>(out->cluster_global.size());
    out->cluster_global.push_back(static_cast<uint32_t>(c));
  }

  const size_t lns = out->surface_global.size();
  out->surface_text.reserve(lns);
  out->surface_mentions.reserve(lns);
  out->surface_cluster_offset.assign(1, 0);
  for (uint32_t g : out->surface_global) {
    out->surface_text.push_back(
        static_cast<uint32_t>(intern->Intern(monolith.SurfaceText(kind, g))));
    out->surface_mentions.push_back(s.surface_mentions[g]);
    // Owned surfaces keep their full cluster list (everything they touch
    // is needed); a guest keeps the needed subset. Monolith order rides
    // along either way.
    for (uint32_t c : monolith.ClustersOf(kind, g)) {
      if (needed[c]) out->surface_clusters.push_back(local_cluster[c]);
    }
    out->surface_cluster_offset.push_back(out->surface_clusters.size());
  }
  out->surface_order.resize(lns);
  std::iota(out->surface_order.begin(), out->surface_order.end(), 0u);
  std::sort(out->surface_order.begin(), out->surface_order.end(),
            [&](uint32_t a, uint32_t b) {
              const std::string_view ta =
                  monolith.SurfaceText(kind, out->surface_global[a]);
              const std::string_view tb =
                  monolith.SurfaceText(kind, out->surface_global[b]);
              if (ta != tb) return ta < tb;
              return a < b;
            });

  out->cluster_member_offset.assign(1, 0);
  for (uint32_t c : out->cluster_global) {
    for (uint32_t m : monolith.ClusterMembers(kind, c)) {
      out->cluster_members.push_back(local_surface[m]);
    }
    out->cluster_member_offset.push_back(out->cluster_members.size());
    out->cluster_link.push_back(s.cluster_link[c]);
    const int64_t name = s.cluster_link_name[c];
    out->cluster_link_name.push_back(
        name < 0 ? -1 : intern->Intern(monolith.Text(name)));
    out->cluster_link_votes.push_back(s.cluster_link_votes[c]);
  }
}

/// One merged section: global tables rebuilt from owner shards
/// (surfaces) and first-carrier shards (clusters), laid out in the exact
/// order BuildCanonStore would have used.
Status MergeSection(const std::vector<const CanonStore*>& shards,
                    CanonKind kind, PoolInterner* intern, CanonSection* out) {
  const uint32_t n = static_cast<uint32_t>(shards.size());
  size_t ns = 0;
  size_t nc = 0;
  for (const CanonStore* shard : shards) {
    const CanonSection& s = shard->section(kind);
    for (size_t ls = 0; ls < s.surface_count(); ++ls) {
      ns = std::max<size_t>(ns, shard->GlobalSurfaceId(kind, ls) + 1);
    }
    for (size_t lc = 0; lc < s.cluster_count(); ++lc) {
      nc = std::max<size_t>(nc, shard->GlobalClusterId(kind, lc) + 1);
    }
  }

  struct Row {
    const CanonStore* from = nullptr;
    uint32_t local = 0;
  };
  std::vector<Row> surface(ns);
  std::vector<Row> cluster(nc);
  for (const CanonStore* shard : shards) {
    const CanonSection& s = shard->section(kind);
    for (size_t ls = 0; ls < s.surface_count(); ++ls) {
      // Only the hash owner speaks for a surface; guest copies carry
      // partial cluster lists.
      if (ShardOfSurface(shard->SurfaceText(kind, ls), n) !=
          shard->shard_index) {
        continue;
      }
      Row& row = surface[shard->GlobalSurfaceId(kind, ls)];
      if (row.from != nullptr) {
        return MergeError("surface owned by two shards");
      }
      row.from = shard;
      row.local = static_cast<uint32_t>(ls);
    }
    for (size_t lc = 0; lc < s.cluster_count(); ++lc) {
      Row& row = cluster[shard->GlobalClusterId(kind, lc)];
      if (row.from == nullptr) {
        row.from = shard;
        row.local = static_cast<uint32_t>(lc);
      }
    }
  }
  for (size_t g = 0; g < ns; ++g) {
    if (surface[g].from == nullptr) {
      return MergeError("incomplete shard set: surface " + std::to_string(g) +
                        " has no owner");
    }
  }
  for (size_t c = 0; c < nc; ++c) {
    if (cluster[c].from == nullptr) {
      return MergeError("incomplete shard set: cluster " + std::to_string(c) +
                        " has no carrier");
    }
  }

  std::vector<std::string_view> texts(ns);
  out->surface_cluster_offset.assign(1, 0);
  for (size_t g = 0; g < ns; ++g) {
    const Row& row = surface[g];
    texts[g] = row.from->SurfaceText(kind, row.local);
    out->surface_text.push_back(
        static_cast<uint32_t>(intern->Intern(texts[g])));
    out->surface_mentions.push_back(
        row.from->section(kind).surface_mentions[row.local]);
    for (uint32_t lc : row.from->ClustersOf(kind, row.local)) {
      out->surface_clusters.push_back(row.from->GlobalClusterId(kind, lc));
    }
    out->surface_cluster_offset.push_back(out->surface_clusters.size());
  }
  out->surface_order.resize(ns);
  std::iota(out->surface_order.begin(), out->surface_order.end(), 0u);
  std::sort(out->surface_order.begin(), out->surface_order.end(),
            [&](uint32_t a, uint32_t b) {
              if (texts[a] != texts[b]) return texts[a] < texts[b];
              return a < b;
            });

  out->cluster_member_offset.assign(1, 0);
  for (size_t c = 0; c < nc; ++c) {
    const Row& row = cluster[c];
    for (uint32_t lm : row.from->ClusterMembers(kind, row.local)) {
      out->cluster_members.push_back(row.from->GlobalSurfaceId(kind, lm));
    }
    out->cluster_member_offset.push_back(out->cluster_members.size());
    const CanonSection& s = row.from->section(kind);
    out->cluster_link.push_back(s.cluster_link[row.local]);
    const int64_t name = s.cluster_link_name[row.local];
    out->cluster_link_name.push_back(
        name < 0 ? -1 : intern->Intern(row.from->Text(name)));
    out->cluster_link_votes.push_back(s.cluster_link_votes[row.local]);
  }
  return Status::OK();
}

}  // namespace

uint32_t ShardOfSurface(std::string_view surface, uint32_t num_shards) {
  if (num_shards == 0) return 0;
  return static_cast<uint32_t>(Fnv1a64(surface.data(), surface.size()) %
                               num_shards);
}

Result<std::vector<CanonStore>> BuildShardedCanonStores(
    const CanonStore& monolith, uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("cannot shard a store into 0 shards");
  }
  if (monolith.shard_count != 0) {
    return Status::InvalidArgument(
        "store is already shard " + std::to_string(monolith.shard_index) +
        "/" + std::to_string(monolith.shard_count) +
        "; shard the monolith, not a shard");
  }
  std::vector<CanonStore> shards(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    CanonStore& shard = shards[k];
    shard.triple_count = monolith.triple_count;
    shard.generation = monolith.generation;
    shard.shard_index = k;
    shard.shard_count = num_shards;
    PoolInterner intern(&shard);
    BuildShardSection(monolith, CanonKind::kNp, k, num_shards, &intern,
                      &shard.np);
    BuildShardSection(monolith, CanonKind::kRp, k, num_shards, &intern,
                      &shard.rp);
  }
  return shards;
}

Result<CanonStore> MergeShardedCanonStores(
    const std::vector<CanonStore>& shards) {
  if (shards.empty()) return MergeError("empty shard set");
  const uint32_t n = shards[0].shard_count;
  if (n != shards.size()) {
    return MergeError("got " + std::to_string(shards.size()) +
                      " stores, each expecting a set of " +
                      std::to_string(n));
  }
  std::vector<const CanonStore*> by_index(n, nullptr);
  for (const CanonStore& shard : shards) {
    if (shard.shard_count != n) return MergeError("mixed shard counts");
    if (shard.generation != shards[0].generation) {
      return MergeError("mixed generations (" +
                        std::to_string(shard.generation) + " vs " +
                        std::to_string(shards[0].generation) + ")");
    }
    if (shard.triple_count != shards[0].triple_count) {
      return MergeError("mixed triple counts");
    }
    if (shard.shard_index >= n ||
        by_index[shard.shard_index] != nullptr) {
      return MergeError("duplicate or out-of-range shard index " +
                        std::to_string(shard.shard_index));
    }
    by_index[shard.shard_index] = &shard;
  }

  CanonStore out;
  out.triple_count = shards[0].triple_count;
  out.generation = shards[0].generation;
  PoolInterner intern(&out);
  JOCL_RETURN_NOT_OK(MergeSection(by_index, CanonKind::kNp, &intern, &out.np));
  JOCL_RETURN_NOT_OK(MergeSection(by_index, CanonKind::kRp, &intern, &out.rp));
  JOCL_RETURN_NOT_OK(ValidateCanonStore(out));
  return out;
}

}  // namespace jocl
