#ifndef JOCL_SERVE_SERVER_H_
#define JOCL_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/canon_store.h"
#include "util/result.h"

namespace jocl {

/// \brief Execution knobs of the serving front end.
struct ServeOptions {
  /// TCP port to bind on 127.0.0.1; 0 = any free (ephemeral) port, read
  /// back via `CanonServer::port()`.
  int port = 0;
  /// Worker threads answering requests.
  size_t num_workers = 4;
  /// Listen backlog.
  int backlog = 64;
};

/// \brief Monotonic request counters (one snapshot, not a live view).
struct ServeCounters {
  uint64_t requests = 0;     ///< connections fully handled
  uint64_t ok = 0;           ///< 200 responses
  uint64_t not_found = 0;    ///< 404 responses
  uint64_t bad_request = 0;  ///< 400/405 responses
  uint64_t unavailable = 0;  ///< 503 (no store published yet)
  uint64_t publishes = 0;    ///< store swaps
};

/// \brief Pure request dispatcher behind the socket loop: routes a
/// request target (`/lookup?surface=...`, `/cluster?id=...`,
/// `/link?surface=...`, `/stats`) against an immutable store and returns
/// the JSON body. \p store may be null (not published yet — 503 for data
/// endpoints, zeroed `/stats`). Sets \p http_status to the response
/// code. Exposed separately so tests can drive routing without sockets.
std::string HandleCanonRequest(const CanonStore* store,
                               std::string_view method,
                               std::string_view target,
                               const ServeCounters& counters,
                               int* http_status);

/// \brief Dependency-free concurrent HTTP/1.1 front end over an
/// RCU-style store pointer (the tentpole's layer 3).
///
/// One listener thread accepts connections on 127.0.0.1 and queues them;
/// `num_workers` worker threads parse one GET request per connection and
/// answer JSON. The served store is a `std::shared_ptr<const CanonStore>`
/// read with `std::atomic_load` at the start of every request and
/// swapped by `Publish` with `std::atomic_store`: readers pin whichever
/// version they loaded for the duration of the request and **never block
/// on a publication** — the classic read-copy-update discipline. Old
/// stores are freed by the last reader's shared_ptr release.
///
/// Endpoints (reference + worked curl examples in docs/serving.md):
///   GET /lookup?surface=S[&kind=np|rp]   cluster + members + link of S
///   GET /cluster?id=N[&kind=np|rp]       members + link of cluster N
///   GET /link?surface=S[&kind=np|rp]     canonical CKB link of S
///   GET /stats                           store + request counters
class CanonServer {
 public:
  explicit CanonServer(ServeOptions options = {});
  ~CanonServer();

  CanonServer(const CanonServer&) = delete;
  CanonServer& operator=(const CanonServer&) = delete;

  /// Binds, listens and spawns the listener + workers. Fails with a
  /// descriptive status when the port is taken.
  Status Start();

  /// Stops accepting, drains queued connections, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  /// Atomically swaps the served store. Thread-safe against concurrent
  /// readers and other publishers; null resets to "not published".
  void Publish(std::shared_ptr<const CanonStore> store);

  /// The currently served store (atomic load; may be null).
  std::shared_ptr<const CanonStore> store() const;

  ServeCounters counters() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  ServeOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};

  /// Accessed only through std::atomic_load / std::atomic_store.
  std::shared_ptr<const CanonStore> store_;

  std::thread listener_;
  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> not_found_{0};
  std::atomic<uint64_t> bad_request_{0};
  std::atomic<uint64_t> unavailable_{0};
  std::atomic<uint64_t> publishes_{0};
};

}  // namespace jocl

#endif  // JOCL_SERVE_SERVER_H_
