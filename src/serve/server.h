#ifndef JOCL_SERVE_SERVER_H_
#define JOCL_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "serve/canon_store.h"
#include "serve/event_server.h"
#include "serve/response_cache.h"
#include "util/result.h"

namespace jocl {

/// \brief Pure request dispatcher behind the event loop: routes a
/// request target (`/lookup?surface=...`, `/cluster?id=...`,
/// `/link?surface=...`, `/stats`) against an immutable store and returns
/// the JSON body. \p store may be null (not published yet — 503 for data
/// endpoints, zeroed `/stats`). Sets \p http_status to the response
/// code. Exposed separately so tests can drive routing without sockets
/// and `BuildResponseCache` can pre-render byte-identical bodies.
///
/// Surface and cluster ids in responses are always **global** (monolith)
/// ids — on a shard store they go through the section's global maps —
/// so the owner shard's body is byte-identical to the monolith's for
/// the same request.
std::string HandleCanonRequest(const CanonStore* store,
                               std::string_view method,
                               std::string_view target,
                               const ServeCounters& counters,
                               int* http_status);

/// \brief The single-store serving front end: an `EventHttpServer`
/// over an RCU-swapped (store + pre-rendered cache) bundle.
///
/// The served state is a `std::shared_ptr<const ServingBundle>` — the
/// CanonStore plus the responses pre-rendered from it — read with
/// `std::atomic_load` per request and swapped whole by `Publish`:
/// readers pin whichever bundle they loaded and **never block on a
/// publication** (read-copy-update), and because body arena and store
/// travel together a reader can never pair a cached body with a
/// mismatched generation. The steady-state hot path is
/// parse → binary-search → `writev` of precomputed header + body —
/// zero allocation, zero JSON work.
///
/// Every response rendered from a published store carries an
/// `X-Jocl-Generation` header — the router and the distributed tests
/// use it to prove generation consistency end to end.
///
/// Endpoints (reference + worked curl examples in docs/serving.md):
///   GET /lookup?surface=S[&kind=np|rp]   cluster + members + link of S
///   GET /cluster?id=N[&kind=np|rp]       members + link of cluster N
///   GET /link?surface=S[&kind=np|rp]     canonical CKB link of S
///   GET /stats                           store + request counters
///   GET /metrics                         Prometheus text exposition
class CanonServer : public EventHttpServer {
 public:
  explicit CanonServer(ServeOptions options = {});
  ~CanonServer() override;

  /// Atomically swaps the served store; when pre-rendering is enabled
  /// the response cache is built here (publisher's cost, never the
  /// readers') and swapped under the same pointer. Thread-safe against
  /// concurrent readers and other publishers; null resets to "not
  /// published".
  void Publish(std::shared_ptr<const CanonStore> store);

  /// The currently served store (atomic load; may be null).
  std::shared_ptr<const CanonStore> store() const;

  ServeCounters counters() const override;

 protected:
  void HandleRequest(const RequestHead& request, ThreadContext* context,
                     HttpReply* reply) override;

 private:
  /// Accessed only through std::atomic_load / std::atomic_store.
  std::shared_ptr<const ServingBundle> bundle_;

  // Store-serving families on the server-scoped registry (the event
  // loop's request counters live in the base class).
  Counter* publishes_ = nullptr;
  Counter* cache_hits_ = nullptr;
  Counter* cache_misses_ = nullptr;
  Gauge* published_ = nullptr;
  Gauge* generation_ = nullptr;
};

}  // namespace jocl

#endif  // JOCL_SERVE_SERVER_H_
