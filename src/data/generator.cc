#include "data/generator.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

#include "data/lexicon.h"
#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jocl {
namespace {

// World-side records. World ids are gold canonicalization groups; ckb ids
// are kNilId for novel (out-of-CKB) entities/relations.
struct WorldEntity {
  int64_t world_id = 0;
  EntityId ckb_id = kNilId;
  std::string canonical;
  std::vector<std::string> aliases;   // includes canonical
  std::unordered_set<std::string> typo_aliases;  // noise variants
  std::vector<std::string> context;   // topic words for aux sentences
  double popularity = 0.0;
};

struct WorldRelation {
  int64_t world_id = 0;
  RelationId ckb_id = kNilId;
  std::string canonical;
  std::vector<std::string> paraphrases;
  std::vector<std::string> context;
};

struct GoldFact {
  size_t subject;  // world entity index
  size_t relation; // world relation index
  size_t object;   // world entity index
};

std::string InjectTypo(const std::string& phrase, Rng* rng) {
  // Drop one interior character of the longest token.
  std::vector<std::string> tokens = SplitWhitespace(phrase);
  size_t longest = 0;
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i].size() > tokens[longest].size()) longest = i;
  }
  if (tokens.empty() || tokens[longest].size() < 4) return phrase;
  std::string& word = tokens[longest];
  size_t pos = 1 + rng->UniformUint64(word.size() - 2);
  word.erase(pos, 1);
  return Join(tokens, " ");
}

std::string Acronym(const std::string& phrase) {
  std::string out;
  for (const auto& token : Tokenize(phrase)) {
    out += token.front();
  }
  return out;
}

// Inserts a modifier before the last token ("be a member of" ->
// "be a early member of" is avoided by inserting before the content word).
std::string InsertModifier(const std::string& phrase,
                           const std::string& modifier) {
  std::vector<std::string> tokens = SplitWhitespace(phrase);
  if (tokens.size() < 2) return modifier + " " + phrase;
  // Insert before the second-to-last token's successor: i.e. before the
  // final content word when the phrase ends "... <content> <prep>".
  size_t pos = tokens.size() - 1;
  const auto& stop = StopWords();
  if (stop.count(tokens.back()) > 0 && tokens.size() >= 2) {
    pos = tokens.size() - 2;  // "... member of" -> before "member"
  }
  tokens.insert(tokens.begin() + static_cast<ptrdiff_t>(pos), modifier);
  return Join(tokens, " ");
}

class GeneratorImpl {
 public:
  GeneratorImpl(const GeneratorOptions& options, std::string name)
      : options_(options),
        name_(std::move(name)),
        rng_(options.seed),
        lexicon_(std::max<size_t>(64, options.num_entities), &rng_) {}

  Result<Dataset> Run() {
    if (options_.num_entities < 8 || options_.num_relations < 2 ||
        options_.num_triples < 4) {
      return Status::InvalidArgument(
          "generator needs >= 8 entities, >= 2 relations, >= 4 triples");
    }
    BuildEntities();
    BuildRelations();
    BuildFacts();
    RenderTriples();
    BuildCkbFacts();
    BuildPpdb();
    BuildAuxSentences();
    BuildSplits();
    dataset_.name = name_;
    JOCL_LOG(kDebug) << "generated " << dataset_.okb.size() << " triples, "
                     << dataset_.ckb.entity_count() << " CKB entities, "
                     << dataset_.ckb.fact_count() << " CKB facts";
    return std::move(dataset_);
  }

 private:
  // ---- entities -----------------------------------------------------------

  void BuildEntities() {
    Rng rng = rng_.Split(1);
    ZipfSampler word_zipf(lexicon_.distinct_words().size(),
                          options_.popularity_zipf);
    std::unordered_set<std::string> used_names;
    entities_.reserve(options_.num_entities);

    for (size_t i = 0; i < options_.num_entities; ++i) {
      WorldEntity entity;
      entity.world_id = static_cast<int64_t>(i);
      bool is_person = rng.Bernoulli(0.4);
      // Retry until the canonical name is globally unique.
      for (int attempt = 0;; ++attempt) {
        if (is_person) {
          const auto& firsts = lexicon_.first_names();
          const auto& lasts = lexicon_.last_names();
          std::string first = firsts[rng.UniformUint64(firsts.size())];
          std::string last = lasts[rng.UniformUint64(lasts.size())];
          if (attempt > 2) last += " " + Lexicon::MakeSyntheticWord(&rng);
          entity.canonical = first + " " + last;
        } else {
          const auto& types = lexicon_.type_words();
          std::string type = types[rng.UniformUint64(types.size())];
          std::string distinct =
              lexicon_.distinct_words()[word_zipf.Sample(&rng)];
          if (attempt > 2) distinct += " " + Lexicon::MakeSyntheticWord(&rng);
          entity.canonical = rng.Bernoulli(0.5)
                                 ? type + " of " + distinct
                                 : distinct + " " + type;
        }
        if (used_names.insert(entity.canonical).second) break;
      }
      // Alias inventory.
      std::vector<std::string> pool;
      pool.push_back(entity.canonical);
      if (rng.Bernoulli(options_.nickname_probability)) {
        // Token-disjoint nickname; string similarity is blind to it.
        pool.push_back(Lexicon::MakeSyntheticWord(&rng));
      }
      std::vector<std::string> tokens = Tokenize(entity.canonical);
      if (is_person) {
        if (tokens.size() >= 2) {
          pool.push_back(tokens.back());                        // "buffett"
          pool.push_back(tokens.front().substr(0, 1) + " " +
                         tokens.back());                        // "w buffett"
          pool.push_back(tokens.front());                       // "warren"
        }
      } else {
        std::vector<std::string> content = ContentTokens(entity.canonical);
        if (content.size() >= 2) {
          // Distinct-words-only form ("maryland") and reordered form.
          pool.push_back(content.back() == tokens.back()
                             ? content.front()
                             : content.back());
          pool.push_back(content.back() + " " + content.front());
        }
        if (tokens.size() >= 2) pool.push_back(Acronym(entity.canonical));
        pool.push_back("the " + entity.canonical);
      }
      // Select the alias count and apply typos.
      size_t target = options_.min_aliases +
                      rng.UniformUint64(options_.max_aliases -
                                        options_.min_aliases + 1);
      std::unordered_set<std::string> chosen;
      chosen.insert(entity.canonical);
      size_t pool_pos = 1;
      while (chosen.size() < target && pool_pos < pool.size()) {
        std::string alias = pool[pool_pos++];
        if (rng.Bernoulli(options_.typo_probability)) {
          std::string corrupted = InjectTypo(alias, &rng);
          if (corrupted != alias) entity.typo_aliases.insert(corrupted);
          alias = std::move(corrupted);
        }
        chosen.insert(alias);
      }
      entity.aliases.assign(chosen.begin(), chosen.end());
      std::sort(entity.aliases.begin(), entity.aliases.end());

      // Topic context words for the synthetic source text.
      for (int k = 0; k < 3; ++k) {
        entity.context.push_back(
            lexicon_.distinct_words()[word_zipf.Sample(&rng)]);
      }
      entities_.push_back(std::move(entity));
    }

    // Popularity ranks (entity 0 need not be the most popular).
    std::vector<size_t> order(entities_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);
    ZipfSampler pop_zipf(entities_.size(), options_.popularity_zipf);
    for (size_t rank = 0; rank < order.size(); ++rank) {
      entities_[order[rank]].popularity = pop_zipf.Pmf(rank);
    }

    // CKB registration + anchors for the non-novel entities.
    Rng anchor_rng = rng_.Split(2);
    for (auto& entity : entities_) {
      if (anchor_rng.Bernoulli(options_.novel_entity_fraction)) {
        continue;  // novel entity: stays out of the CKB, gold link NIL
      }
      entity.ckb_id = dataset_.ckb.AddEntity(entity.canonical);
    }
    for (auto& entity : entities_) {
      if (entity.ckb_id == kNilId) continue;
      for (const auto& alias : entity.aliases) {
        double pref = anchor_rng.UniformDouble(0.5, 1.5);
        int64_t count = std::max<int64_t>(
            1, static_cast<int64_t>(entity.popularity * 200000.0 * pref));
        double coverage = options_.anchor_coverage;
        if (entity.typo_aliases.count(alias) > 0) {
          coverage *= options_.typo_anchor_coverage;
        }
        if (anchor_rng.Bernoulli(coverage)) {
          (void)dataset_.ckb.AddAnchor(alias, entity.ckb_id, count);
        }
        // Ambiguous surface form: also points at an unrelated entity,
        // sometimes with MORE anchor mass than the true reading — and
        // independently of whether the true reading made it into the
        // dictionary (the hardest case: the only anchor is wrong).
        if (anchor_rng.Bernoulli(options_.ambiguous_alias_probability)) {
          const WorldEntity& other =
              entities_[anchor_rng.UniformUint64(entities_.size())];
          if (other.ckb_id != kNilId && other.ckb_id != entity.ckb_id) {
            int64_t side = std::max<int64_t>(
                1, static_cast<int64_t>(
                       static_cast<double>(count) *
                       anchor_rng.UniformDouble(
                           options_.ambiguous_strength_min,
                           options_.ambiguous_strength_max)));
            (void)dataset_.ckb.AddAnchor(alias, other.ckb_id, side);
          }
        }
      }
    }
  }

  // ---- relations -----------------------------------------------------------

  void BuildRelations() {
    Rng rng = rng_.Split(3);
    const auto& synsets = lexicon_.verb_synsets();
    const auto& types = lexicon_.type_words();
    std::unordered_set<std::string> used_names;
    relations_.reserve(options_.num_relations);

    for (size_t i = 0; i < options_.num_relations; ++i) {
      WorldRelation relation;
      relation.world_id = static_cast<int64_t>(i);
      // One synset per relation: two relations must never share a verb, or
      // their rendered RP surfaces would collide and the canonicalization
      // gold would contradict itself. When more relations than synsets are
      // requested, reused synsets get a type-word suffix in every
      // paraphrase so surfaces stay relation-specific.
      const VerbSynset& synset = synsets[i % synsets.size()];
      const size_t reuse_round = i / synsets.size();
      const std::string& type = types[(i / synsets.size()) % types.size()];
      std::string suffix = reuse_round > 0 ? " the " + type : "";
      relation.canonical = synset.noun + "_" + type;
      if (!used_names.insert(relation.canonical).second) {
        relation.canonical += "_" + std::to_string(i);
        used_names.insert(relation.canonical);
      }

      // Paraphrase inventory: inflections of one verb (string-similar) plus
      // synonym verbs and a nominal form (string-dissimilar).
      std::vector<std::string> pool;
      const auto& preps = lexicon_.prepositions();
      const std::string prep = preps[rng.UniformUint64(preps.size())];
      for (const VerbForms& verb : synset.verbs) {
        pool.push_back(verb.past + " " + prep + suffix);     // "founded by"
        pool.push_back("be " + verb.past + " " + prep + suffix);
        pool.push_back(verb.third + " " + prep + suffix);    // "founds by"
        pool.push_back("have " + verb.past + suffix);        // "have founded"
      }
      pool.push_back("be a " + synset.noun + " of" + suffix);
      pool.push_back("be the " + synset.noun + " of" + suffix);
      rng.Shuffle(&pool);
      size_t target = options_.min_paraphrases +
                      rng.UniformUint64(options_.max_paraphrases -
                                        options_.min_paraphrases + 1);
      std::unordered_set<std::string> chosen;
      for (const auto& p : pool) {
        if (chosen.size() >= target) break;
        chosen.insert(p);
      }
      relation.paraphrases.assign(chosen.begin(), chosen.end());
      std::sort(relation.paraphrases.begin(), relation.paraphrases.end());

      for (int k = 0; k < 2; ++k) {
        relation.context.push_back(Lexicon::MakeSyntheticWord(&rng));
      }

      if (!rng.Bernoulli(options_.novel_relation_fraction)) {
        relation.ckb_id = dataset_.ckb.AddRelation(relation.canonical);
        // Relation aliases mirror rdfs:label-style metadata: verb form,
        // noun, and a readable name. Paraphrase inventories stay private.
        (void)dataset_.ckb.AddRelationAlias(relation.ckb_id,
                                            synset.verbs.front().past);
        (void)dataset_.ckb.AddRelationAlias(relation.ckb_id, synset.noun);
        (void)dataset_.ckb.AddRelationAlias(
            relation.ckb_id, synset.noun + " of " + type);
      }
      relations_.push_back(std::move(relation));
    }
  }

  // ---- facts and triples ----------------------------------------------------

  void BuildFacts() {
    Rng rng = rng_.Split(4);
    // Repeated rendering of the same fact with different paraphrases is
    // what feeds AMIE, so aim for ~1.8 renderings per fact.
    size_t num_facts = std::max<size_t>(2, options_.num_triples * 5 / 9);
    std::vector<double> entity_weights(entities_.size());
    for (size_t i = 0; i < entities_.size(); ++i) {
      entity_weights[i] = entities_[i].popularity;
    }
    std::unordered_set<std::string> seen;
    facts_.reserve(num_facts);
    while (facts_.size() < num_facts) {
      size_t s = rng.Discrete(entity_weights);
      size_t o = rng.Discrete(entity_weights);
      if (s == o) continue;
      size_t r = rng.UniformUint64(relations_.size());
      std::string key = std::to_string(s) + ":" + std::to_string(r) + ":" +
                        std::to_string(o);
      if (!seen.insert(key).second) continue;
      facts_.push_back(GoldFact{s, r, o});
    }
  }

  const std::string& SampleAlias(const WorldEntity& entity, Rng* rng) {
    // The canonical form dominates but variants are common, mirroring the
    // long tail of surface forms in web extractions.
    size_t n = entity.aliases.size();
    if (n == 1 || rng->Bernoulli(options_.canonical_alias_preference)) {
      // Prefer canonical when present.
      for (const auto& alias : entity.aliases) {
        if (alias == entity.canonical) return alias;
      }
    }
    return entity.aliases[rng->UniformUint64(n)];
  }

  void RenderTriples() {
    Rng rng = rng_.Split(5);
    ZipfSampler fact_zipf(facts_.size(), 0.8);
    const auto& modifiers = lexicon_.modifiers();

    for (size_t t = 0; t < options_.num_triples; ++t) {
      const GoldFact& fact = facts_[fact_zipf.Sample(&rng)];
      const WorldEntity& subject = entities_[fact.subject];
      const WorldEntity& object = entities_[fact.object];
      const WorldRelation& relation = relations_[fact.relation];

      std::string s_surface = SampleAlias(subject, &rng);
      std::string o_surface = SampleAlias(object, &rng);
      std::string p_surface =
          relation.paraphrases[rng.UniformUint64(relation.paraphrases.size())];
      if (rng.Bernoulli(options_.modifier_probability)) {
        p_surface = InsertModifier(
            p_surface, modifiers[rng.UniformUint64(modifiers.size())]);
      }

      (void)dataset_.okb.AddTriple(s_surface, p_surface, o_surface);
      dataset_.gold_subject_entity.push_back(subject.ckb_id);
      dataset_.gold_relation.push_back(relation.ckb_id);
      dataset_.gold_object_entity.push_back(object.ckb_id);
      dataset_.gold_np_group.push_back(subject.world_id);
      dataset_.gold_np_group.push_back(object.world_id);
      dataset_.gold_rp_group.push_back(relation.world_id);
      triple_facts_.push_back(fact);
    }
  }

  void BuildCkbFacts() {
    Rng rng = rng_.Split(6);
    std::unordered_set<std::string> done;
    for (const GoldFact& fact : triple_facts_) {
      const WorldEntity& s = entities_[fact.subject];
      const WorldEntity& o = entities_[fact.object];
      const WorldRelation& r = relations_[fact.relation];
      if (s.ckb_id == kNilId || o.ckb_id == kNilId || r.ckb_id == kNilId) {
        continue;
      }
      std::string key = std::to_string(s.ckb_id) + ":" +
                        std::to_string(r.ckb_id) + ":" +
                        std::to_string(o.ckb_id);
      if (!done.insert(key).second) continue;
      if (rng.Bernoulli(options_.fact_coverage)) {
        (void)dataset_.ckb.AddFact(s.ckb_id, r.ckb_id, o.ckb_id);
      }
    }
  }

  // ---- side resources ---------------------------------------------------------

  void BuildPpdb() {
    Rng rng = rng_.Split(7);
    auto add_noisy_cluster = [&](const std::vector<std::string>& members) {
      if (!rng.Bernoulli(options_.ppdb_cluster_coverage)) return;
      std::vector<std::string> kept;
      for (const auto& member : members) {
        if (rng.Bernoulli(options_.ppdb_member_keep)) kept.push_back(member);
      }
      if (kept.size() < 2) return;
      if (rng.Bernoulli(options_.ppdb_error_rate) && !entities_.empty()) {
        // Inject a wrong phrase from a random other entity.
        const WorldEntity& wrong =
            entities_[rng.UniformUint64(entities_.size())];
        kept.push_back(wrong.canonical);
      }
      dataset_.ppdb.AddCluster(kept);
    };
    for (const auto& entity : entities_) {
      add_noisy_cluster(entity.aliases);
    }
    for (const auto& relation : relations_) {
      add_noisy_cluster(relation.paraphrases);
    }
  }

  void BuildAuxSentences() {
    Rng rng = rng_.Split(8);
    auto emit = [&](const std::string& phrase,
                    const std::vector<std::string>& context) {
      for (size_t k = 0; k < options_.aux_sentences_per_phrase; ++k) {
        std::vector<std::string> sentence = Tokenize(phrase);
        // Two topic words in random positions bind the cluster together.
        for (int c = 0; c < 2 && !context.empty(); ++c) {
          sentence.push_back(context[rng.UniformUint64(context.size())]);
        }
        rng.Shuffle(&sentence);
        dataset_.aux_sentences.push_back(std::move(sentence));
      }
    };
    for (const auto& entity : entities_) {
      for (const auto& alias : entity.aliases) emit(alias, entity.context);
    }
    for (const auto& relation : relations_) {
      for (const auto& paraphrase : relation.paraphrases) {
        emit(paraphrase, relation.context);
      }
    }
  }

  // ---- splits -------------------------------------------------------------------

  void BuildSplits() {
    Rng rng = rng_.Split(9);
    std::unordered_set<int64_t> validation_entities;
    if (options_.validation_entity_fraction > 0.0) {
      for (const auto& entity : entities_) {
        if (entity.ckb_id == kNilId) continue;
        if (rng.Bernoulli(options_.validation_entity_fraction)) {
          validation_entities.insert(entity.world_id);
        }
      }
    }
    for (size_t t = 0; t < dataset_.okb.size(); ++t) {
      int64_t subject_world = dataset_.gold_np_group[t * 2];
      if (validation_entities.count(subject_world) > 0) {
        dataset_.validation_triples.push_back(t);
      } else {
        dataset_.test_triples.push_back(t);
      }
    }
  }

  GeneratorOptions options_;
  std::string name_;
  Rng rng_;
  Lexicon lexicon_;
  Dataset dataset_;
  std::vector<WorldEntity> entities_;
  std::vector<WorldRelation> relations_;
  std::vector<GoldFact> facts_;
  std::vector<GoldFact> triple_facts_;  // aligned with okb triples
};

}  // namespace

Result<Dataset> GenerateDataset(const GeneratorOptions& options,
                                std::string name) {
  return GeneratorImpl(options, std::move(name)).Run();
}

Result<Dataset> GenerateReVerb45K(double scale, uint64_t seed) {
  GeneratorOptions options;
  options.num_entities = static_cast<size_t>(600 * scale);
  options.num_relations = static_cast<size_t>(40 * std::max(0.5, scale));
  options.num_triples = static_cast<size_t>(3000 * scale);
  options.novel_entity_fraction = 0.0;
  options.novel_relation_fraction = 0.0;
  options.anchor_coverage = 0.95;
  options.validation_entity_fraction = 0.2;
  options.seed = seed;
  return GenerateDataset(options, "ReVerb45K-like");
}

Result<Dataset> GenerateNYTimes2018(double scale, uint64_t seed) {
  GeneratorOptions options;
  options.num_entities = static_cast<size_t>(500 * scale);
  options.num_relations = static_cast<size_t>(36 * std::max(0.5, scale));
  options.num_triples = static_cast<size_t>(2300 * scale);
  // News extraction: many entities/relations missing from the CKB, sparse
  // anchors, noisier surfaces, no training labels.
  options.novel_entity_fraction = 0.35;
  options.novel_relation_fraction = 0.30;
  options.anchor_coverage = 0.45;
  options.typo_probability = 0.14;
  options.ambiguous_alias_probability = 0.5;
  options.ambiguous_strength_max = 1.9;
  options.fact_coverage = 0.12;
  options.canonical_alias_preference = 0.2;
  options.ppdb_cluster_coverage = 0.7;  // PPDB is domain-general
  options.fact_coverage = 0.35;
  options.validation_entity_fraction = 0.0;
  options.seed = seed;
  return GenerateDataset(options, "NYTimes2018-like");
}

}  // namespace jocl
