#ifndef JOCL_DATA_GENERATOR_H_
#define JOCL_DATA_GENERATOR_H_

#include <cstdint>
#include <cstddef>

#include "data/dataset.h"
#include "util/result.h"

namespace jocl {

/// \brief Knobs of the synthetic benchmark generator.
///
/// Defaults are tuned so the generated sets mirror the statistical regime
/// of the real benchmarks at roughly 1/10 scale (benchmarks accept a scale
/// multiplier). See DESIGN.md §4 for the substitution rationale.
struct GeneratorOptions {
  /// Entities in the synthetic world (some may stay out of the CKB).
  size_t num_entities = 600;
  /// Relations in the synthetic world.
  size_t num_relations = 40;
  /// OIE triples to emit.
  size_t num_triples = 3000;

  /// Fraction of world entities absent from the CKB (their mentions have
  /// gold link NIL). ReVerb45K-like: 0 (every NP is annotated);
  /// NYTimes2018-like: substantial.
  double novel_entity_fraction = 0.0;
  /// Fraction of world relations absent from the CKB.
  double novel_relation_fraction = 0.0;

  /// Aliases generated per entity, uniform in [min, max]. The paper's
  /// ReVerb45K keeps only entities with >= 2 aliases.
  size_t min_aliases = 2;
  size_t max_aliases = 5;

  /// Probability that an alias also gets attached to a second, unrelated
  /// entity — ambiguous surface forms. The side reading's anchor count is
  /// drawn from `ambiguous_strength` below and can exceed the true
  /// reading's, which is what defeats popularity-only linkers.
  double ambiguous_alias_probability = 0.38;
  /// Relative anchor mass of the wrong reading, uniform in
  /// [min, max] times the true reading's count.
  double ambiguous_strength_min = 0.2;
  double ambiguous_strength_max = 1.7;
  /// Probability an alias is corrupted by a one-character typo.
  double typo_probability = 0.08;
  /// Anchor-coverage multiplier for typo'd aliases: extraction noise is
  /// rarely a Wikipedia surface form, so typo variants mostly miss the
  /// anchor dictionary (which is what defeats dictionary-only linkers).
  double typo_anchor_coverage = 0.25;
  /// Fraction of entity aliases registered in the anchor table. Lower
  /// values starve `f_pop` (NYTimes2018-like regime).
  double anchor_coverage = 0.95;

  /// Probability a rendered mention uses the entity's canonical surface
  /// (otherwise a uniformly drawn alias). Web extractions are
  /// canonical-heavy; news text references entities in varied ways.
  double canonical_alias_preference = 0.45;

  /// RP paraphrase variants per relation, uniform in [min, max].
  size_t min_paraphrases = 3;
  size_t max_paraphrases = 5;
  /// Probability a rendered RP gains an inserted modifier
  /// ("be an early member of").
  double modifier_probability = 0.12;

  /// Probability an entity additionally carries a "nickname" alias with no
  /// token overlap with its canonical name ("Big Blue" for IBM). Only
  /// popularity, PPDB and embeddings can recover these.
  double nickname_probability = 0.25;

  /// Fraction of rendered gold facts also stored in the CKB fact table.
  /// Deliberately low: OIE triples mostly express facts the CKB does NOT
  /// have (that is the enrichment motivation), so fact inclusion is a
  /// helpful but far-from-oracle signal.
  double fact_coverage = 0.2;

  /// PPDB noise model: probability a paraphrase cluster is covered, the
  /// per-member keep probability within a covered cluster, and the
  /// probability of a wrong phrase being injected into a cluster.
  double ppdb_cluster_coverage = 0.7;
  double ppdb_member_keep = 0.85;
  double ppdb_error_rate = 0.04;

  /// Synthetic source-text sentences per alias/paraphrase for embedding
  /// training.
  size_t aux_sentences_per_phrase = 6;

  /// Fraction of CKB entities assigned to the validation split (labels
  /// usable for training). 0 disables the split (NYTimes2018 protocol).
  double validation_entity_fraction = 0.2;

  /// Zipf exponent of entity popularity (anchor mass, fact participation).
  double popularity_zipf = 1.05;

  uint64_t seed = 7;
};

/// \brief Generates a ReVerb45K-like data set: every NP annotated with a
/// CKB entity, >= 2 aliases per entity, 20% validation split.
/// \p scale multiplies entity/relation/triple counts (1.0 = defaults).
Result<Dataset> GenerateReVerb45K(double scale = 1.0, uint64_t seed = 7);

/// \brief Generates a NYTimes2018-like data set: noisier news extraction —
/// many NIL entities/relations, sparse anchors, no training labels.
Result<Dataset> GenerateNYTimes2018(double scale = 1.0, uint64_t seed = 13);

/// \brief Fully custom generation.
Result<Dataset> GenerateDataset(const GeneratorOptions& options,
                                std::string name);

}  // namespace jocl

#endif  // JOCL_DATA_GENERATOR_H_
