#include "data/lexicon.h"

#include <unordered_set>
#include <cstddef>

namespace jocl {
namespace {

// Regular inflection good enough for the template verbs below (irregulars
// are listed explicitly where they matter).
VerbForms Regular(const std::string& base) {
  std::string stem = base;
  bool ends_e = !stem.empty() && stem.back() == 'e';
  std::string past = ends_e ? stem + "d" : stem + "ed";
  std::string gerund =
      ends_e ? stem.substr(0, stem.size() - 1) + "ing" : stem + "ing";
  std::string third = stem + "s";
  return VerbForms{base, past, gerund, third};
}

}  // namespace

Lexicon::Lexicon(size_t distinct_word_count, Rng* rng) {
  type_words_ = {
      "university", "institute", "company",  "city",    "college",
      "museum",     "river",     "bank",     "group",   "party",
      "club",       "council",   "agency",   "center",  "school",
      "hospital",   "church",    "theater",  "library", "foundation",
      "county",     "island",    "valley",   "festival", "union",
  };
  first_names_ = {
      "warren", "maria",  "david",  "elena",  "james",  "sofia",
      "robert", "laura",  "daniel", "teresa", "martin", "helena",
      "victor", "paula",  "oscar",  "irene",  "hector", "nadia",
      "felix",  "clara",  "ramon",  "alice",  "bruno",  "diana",
  };
  last_names_ = {
      "buffett",  "kovach",   "marlowe", "santoro", "whitfield",
      "drummond", "castellan", "verago",  "linwood", "bramford",
      "ostrek",   "manzini",  "harlock", "devereux", "quintana",
      "ashford",  "belmonte", "corwin",  "delgado",  "everhart",
      "falkner",  "giradel",  "holloway", "iverson", "jarmusch",
  };

  verb_synsets_ = {
      {{Regular("found"), Regular("establish"), Regular("create")},
       "founder"},
      {{Regular("locate"), Regular("situate"), Regular("base")}, "location"},
      {{Regular("join"), Regular("enter"),
        VerbForms{"become part of", "became part of", "becoming part of",
                  "becomes part of"}},
       "member"},
      {{Regular("lead"), Regular("head"), Regular("direct")}, "leader"},
      {{Regular("own"), Regular("control"), Regular("acquire")}, "owner"},
      {{Regular("produce"), Regular("manufacture"), Regular("release")},
       "producer"},
      {{Regular("study"), Regular("attend"), Regular("visit")}, "student"},
      {{Regular("marry"), Regular("wed")}, "spouse"},
      {{Regular("employ"), Regular("hire"), Regular("recruit")}, "employer"},
      {{Regular("fund"), Regular("finance"), Regular("sponsor")}, "sponsor"},
      {{Regular("teach"), Regular("instruct"), Regular("train")}, "teacher"},
      {{Regular("publish"), Regular("print"), Regular("issue")}, "publisher"},
      {{Regular("design"), Regular("plan"), Regular("develop")}, "designer"},
      {{Regular("manage"), Regular("operate"), Regular("run")}, "manager"},
      {{Regular("advise"), Regular("counsel"), Regular("guide")}, "advisor"},
      {{Regular("support"), Regular("back"), Regular("endorse")},
       "supporter"},
      {{Regular("compete"), Regular("play"), Regular("participate")},
       "competitor"},
      {{Regular("represent"), Regular("serve")}, "representative"},
      {{Regular("border"), Regular("neighbor"), Regular("adjoin")},
       "neighbor"},
      {{Regular("host"), Regular("organize"), Regular("stage")}, "host"},
      {{Regular("write"), Regular("author"), Regular("compose")}, "writer"},
      {{Regular("win"), Regular("secure"), Regular("claim")}, "winner"},
      {{Regular("buy"), Regular("purchase")}, "buyer"},
      {{Regular("sell"), Regular("trade"), Regular("offer")}, "seller"},
      {{Regular("build"), Regular("construct"), Regular("erect")},
       "builder"},
      {{Regular("open"), Regular("launch"), Regular("start")}, "opener"},
      {{Regular("sign"), Regular("contract"), Regular("engage")}, "signee"},
      {{Regular("coach"), Regular("mentor")}, "coach"},
      {{Regular("edit"), Regular("revise"), Regular("curate")}, "editor"},
      {{Regular("translate"), Regular("render"), Regular("adapt")},
       "translator"},
      {{Regular("record"), Regular("tape"), Regular("register")}, "recorder"},
      {{Regular("perform"), Regular("present"), Regular("deliver")},
       "performer"},
      {{Regular("tour"), Regular("travel"), Regular("journey")}, "tourist"},
      {{Regular("merge"), Regular("combine"), Regular("unite")}, "merger"},
      {{Regular("chair"), Regular("preside"), Regular("moderate")},
       "chairman"},
      {{Regular("donate"), Regular("gift"), Regular("contribute")}, "donor"},
      {{Regular("invest"), Regular("stake")}, "investor"},
      {{Regular("rent"), Regular("lease"), Regular("let")}, "tenant"},
      {{Regular("protect"), Regular("defend"), Regular("guard")},
       "protector"},
      {{Regular("discover"), Regular("detect"), Regular("identify")},
       "discoverer"},
  };

  modifiers_ = {"early",  "new",    "former", "senior", "major",
                "active", "famous", "local",  "young",  "leading"};
  prepositions_ = {"of", "in", "at", "for", "with", "by", "to"};

  // Procedural distinctive words; dedupe so frequencies depend only on the
  // generator's Zipf draws, not on collisions.
  std::unordered_set<std::string> seen(type_words_.begin(), type_words_.end());
  seen.insert(first_names_.begin(), first_names_.end());
  seen.insert(last_names_.begin(), last_names_.end());
  distinct_words_.reserve(distinct_word_count);
  while (distinct_words_.size() < distinct_word_count) {
    std::string word = MakeSyntheticWord(rng);
    if (seen.insert(word).second) distinct_words_.push_back(std::move(word));
  }
}

std::string Lexicon::MakeSyntheticWord(Rng* rng) {
  static const char* kOnsets[] = {"b",  "d",  "f",  "g",  "k",  "l",
                                  "m",  "n",  "p",  "r",  "s",  "t",
                                  "v",  "br", "dr", "gr", "kr", "st",
                                  "tr", "sl", "pl", "ch", "sh", "th"};
  static const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
  static const char* kCodas[] = {"",  "",  "n", "r", "l", "s",
                                 "t", "m", "k", "nd", "rt", "x"};
  size_t syllables = 2 + rng->UniformUint64(2);  // 2..3
  std::string word;
  for (size_t i = 0; i < syllables; ++i) {
    word += kOnsets[rng->UniformUint64(std::size(kOnsets))];
    word += kVowels[rng->UniformUint64(std::size(kVowels))];
    if (i + 1 == syllables) {
      word += kCodas[rng->UniformUint64(std::size(kCodas))];
    }
  }
  return word;
}

}  // namespace jocl
