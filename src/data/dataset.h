#ifndef JOCL_DATA_DATASET_H_
#define JOCL_DATA_DATASET_H_

#include <string>
#include <cstddef>
#include <vector>

#include "kb/curated_kb.h"
#include "kb/open_kb.h"
#include "sideinfo/paraphrase_store.h"

namespace jocl {

/// \brief A benchmark instance: OKB + CKB + gold labels + side resources.
///
/// Gold labels are aligned with the OKB: triple i has gold subject/object
/// entities and a gold relation (kNilId when the referent is absent from
/// the CKB — NYTimes2018-style noise). Canonicalization gold is carried
/// separately as group ids so that NIL mentions still have a gold
/// clustering (two mentions of the same unseen entity share a group).
struct Dataset {
  std::string name;
  CuratedKb ckb;
  OpenKb okb;

  // --- gold linking (per triple) ----------------------------------------
  std::vector<int64_t> gold_subject_entity;
  std::vector<int64_t> gold_relation;
  std::vector<int64_t> gold_object_entity;

  // --- gold canonicalization --------------------------------------------
  /// Group id per NP mention in OpenKb::NounPhraseMentions() order
  /// (2 per triple: subject then object).
  std::vector<int64_t> gold_np_group;
  /// Group id per RP mention (1 per triple).
  std::vector<int64_t> gold_rp_group;

  // --- splits -------------------------------------------------------------
  /// Triple indices whose labels may be used for training (the paper's
  /// 20%-of-entities validation split). Empty for NYTimes2018-style data.
  std::vector<size_t> validation_triples;
  /// The remaining triple indices (evaluation set).
  std::vector<size_t> test_triples;

  // --- side resources -------------------------------------------------------
  /// Noisy PPDB-style paraphrase clusters over NPs, RPs and entity names.
  ParaphraseStore ppdb;
  /// Synthetic "source text" sentences for embedding training.
  std::vector<std::vector<std::string>> aux_sentences;

  // --- convenience accessors ------------------------------------------------

  /// Gold entity of an NP-mention index (mention order: 2 per triple).
  int64_t GoldEntityOfMention(size_t mention_index) const {
    size_t triple = mention_index / 2;
    return (mention_index % 2 == 0) ? gold_subject_entity[triple]
                                    : gold_object_entity[triple];
  }

  /// NP-mention indices of the given triples (2 each, in order).
  static std::vector<size_t> NpMentionsOfTriples(
      const std::vector<size_t>& triples);

  /// Gold NP-group labels as size_t for the clustering metrics; NIL groups
  /// are already distinct ids by construction.
  std::vector<size_t> GoldNpLabels() const;

  /// Gold RP-group labels as size_t.
  std::vector<size_t> GoldRpLabels() const;
};

}  // namespace jocl

#endif  // JOCL_DATA_DATASET_H_
