#ifndef JOCL_DATA_DATASET_IO_H_
#define JOCL_DATA_DATASET_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/result.h"

namespace jocl {

/// \brief Persists the OKB portion of a data set as TSV:
/// `subject \t predicate \t object \t gold_s \t gold_r \t gold_o \t
///  np_group_s \t np_group_o \t rp_group \t split`.
/// One row per triple, `split` in {validation, test}. Intended for
/// inspection and for exchanging generated workloads between runs.
Status SaveTriplesTsv(const Dataset& dataset, const std::string& path);

/// \brief Loads triples + gold labels saved by SaveTriplesTsv into a fresh
/// Dataset (CKB and side resources are not round-tripped; use the
/// generator to rebuild those, or carry them separately).
Result<Dataset> LoadTriplesTsv(const std::string& path);

}  // namespace jocl

#endif  // JOCL_DATA_DATASET_IO_H_
