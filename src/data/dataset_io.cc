#include "data/dataset_io.h"

#include <fstream>
#include <cstddef>
#include <unordered_set>

#include "util/string_util.h"

namespace jocl {

Status SaveTriplesTsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  std::unordered_set<size_t> validation(dataset.validation_triples.begin(),
                                        dataset.validation_triples.end());
  for (size_t t = 0; t < dataset.okb.size(); ++t) {
    const OieTriple& triple = dataset.okb.triple(t);
    out << triple.subject << '\t' << triple.predicate << '\t'
        << triple.object << '\t' << dataset.gold_subject_entity[t] << '\t'
        << dataset.gold_relation[t] << '\t' << dataset.gold_object_entity[t]
        << '\t' << dataset.gold_np_group[t * 2] << '\t'
        << dataset.gold_np_group[t * 2 + 1] << '\t'
        << dataset.gold_rp_group[t] << '\t'
        << (validation.count(t) > 0 ? "validation" : "test") << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> LoadTriplesTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  Dataset dataset;
  dataset.name = path;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> cells = Split(line, '\t');
    if (cells.size() != 10) {
      return Status::IOError("malformed TSV at line " +
                             std::to_string(line_number) + ": expected 10 "
                             "columns, got " + std::to_string(cells.size()));
    }
    Status st = dataset.okb.AddTriple(cells[0], cells[1], cells[2]);
    if (!st.ok()) return st;
    try {
      dataset.gold_subject_entity.push_back(std::stoll(cells[3]));
      dataset.gold_relation.push_back(std::stoll(cells[4]));
      dataset.gold_object_entity.push_back(std::stoll(cells[5]));
      dataset.gold_np_group.push_back(std::stoll(cells[6]));
      dataset.gold_np_group.push_back(std::stoll(cells[7]));
      dataset.gold_rp_group.push_back(std::stoll(cells[8]));
    } catch (const std::exception&) {
      return Status::IOError("non-numeric gold label at line " +
                             std::to_string(line_number));
    }
    size_t triple_index = dataset.okb.size() - 1;
    if (cells[9] == "validation") {
      dataset.validation_triples.push_back(triple_index);
    } else {
      dataset.test_triples.push_back(triple_index);
    }
  }
  return dataset;
}

}  // namespace jocl
