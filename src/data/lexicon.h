#ifndef JOCL_DATA_LEXICON_H_
#define JOCL_DATA_LEXICON_H_

#include <string>
#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace jocl {

/// \brief A verb with the inflected forms the paraphrase templates need.
struct VerbForms {
  std::string base;    ///< "found"
  std::string past;    ///< "founded"
  std::string gerund;  ///< "founding"
  std::string third;   ///< "founds"
};

/// \brief A group of interchangeable verbs (synonyms) plus the noun used by
/// nominal paraphrases ("be a member of").
struct VerbSynset {
  std::vector<VerbForms> verbs;
  std::string noun;  ///< "member", "founder", ...
};

/// \brief Word pools for the synthetic benchmark generators.
///
/// The lexicon mixes a fixed inventory of real English head words (entity
/// type words, relation verbs with synonym sets, modifiers) with
/// procedurally generated distinctive words ("salvor", "kandoma") so that:
///  * IDF token overlap is informative — type words are frequent, and
///    distinctive words rare;
///  * string-based signals fail exactly where the paper's do — synonym
///    verbs and acronyms share no tokens, so only PPDB / embeddings /
///    AMIE / popularity can recover them.
class Lexicon {
 public:
  /// Builds a lexicon with \p distinct_word_count procedural words.
  Lexicon(size_t distinct_word_count, Rng* rng);

  /// Common entity "type" head words (university, company, city, ...).
  const std::vector<std::string>& type_words() const { return type_words_; }

  /// Rare distinctive words, procedurally generated.
  const std::vector<std::string>& distinct_words() const {
    return distinct_words_;
  }

  /// Synthetic person first names.
  const std::vector<std::string>& first_names() const { return first_names_; }

  /// Synthetic person family names.
  const std::vector<std::string>& last_names() const { return last_names_; }

  /// Relation verb synonym sets.
  const std::vector<VerbSynset>& verb_synsets() const { return verb_synsets_; }

  /// Modifier adjectives inserted into RP variants ("be an early member
  /// of") — the paper's Figure 1 example.
  const std::vector<std::string>& modifiers() const { return modifiers_; }

  /// Prepositions for paraphrase templates.
  const std::vector<std::string>& prepositions() const {
    return prepositions_;
  }

  /// Generates one pronounceable synthetic word of 2-3 syllables.
  static std::string MakeSyntheticWord(Rng* rng);

 private:
  std::vector<std::string> type_words_;
  std::vector<std::string> distinct_words_;
  std::vector<std::string> first_names_;
  std::vector<std::string> last_names_;
  std::vector<VerbSynset> verb_synsets_;
  std::vector<std::string> modifiers_;
  std::vector<std::string> prepositions_;
};

}  // namespace jocl

#endif  // JOCL_DATA_LEXICON_H_
