#include "data/dataset.h"

namespace jocl {

std::vector<size_t> Dataset::NpMentionsOfTriples(
    const std::vector<size_t>& triples) {
  std::vector<size_t> mentions;
  mentions.reserve(triples.size() * 2);
  for (size_t t : triples) {
    mentions.push_back(t * 2);
    mentions.push_back(t * 2 + 1);
  }
  return mentions;
}

std::vector<size_t> Dataset::GoldNpLabels() const {
  std::vector<size_t> labels(gold_np_group.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<size_t>(gold_np_group[i]);
  }
  return labels;
}

std::vector<size_t> Dataset::GoldRpLabels() const {
  std::vector<size_t> labels(gold_rp_group.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<size_t>(gold_rp_group[i]);
  }
  return labels;
}

}  // namespace jocl
