#ifndef JOCL_KB_KB_IO_H_
#define JOCL_KB_KB_IO_H_

#include <string>

#include "kb/curated_kb.h"
#include "util/result.h"

namespace jocl {

/// \brief Persists a curated KB as four TSV files under `prefix`:
/// `<prefix>.entities.tsv`   — `id \t name`
/// `<prefix>.relations.tsv`  — `id \t name \t alias1 \t alias2 ...`
/// `<prefix>.facts.tsv`      — `subject \t relation \t object`
/// `<prefix>.anchors.tsv`    — `surface \t entity \t count`
/// Together with SaveTriplesTsv this makes a full workload reproducible
/// from disk without rerunning the generator.
Status SaveCuratedKb(const CuratedKb& kb, const std::string& prefix);

/// \brief Loads a KB saved by SaveCuratedKb. Entity/relation ids are
/// reassigned densely in file order; facts and anchors are remapped
/// through the names, so the result is equivalent (same names, facts,
/// anchor statistics) even if ids differ.
Result<CuratedKb> LoadCuratedKb(const std::string& prefix);

}  // namespace jocl

#endif  // JOCL_KB_KB_IO_H_
