#include "kb/curated_kb.h"

#include <algorithm>
#include <cstddef>
#include <cassert>

#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace jocl {
namespace {

// Fuzzy-match scores are scaled into (0, kFuzzyCeiling) so that any exact
// anchor match (score in (0, 1]) can outrank them at equal footing but a
// confident fuzzy match still beats a rare anchor reading.
constexpr double kFuzzyCeiling = 0.6;

}  // namespace

EntityId CuratedKb::AddEntity(std::string_view name) {
  std::string canonical = ToLower(Trim(name));
  auto it = entity_by_name_.find(canonical);
  if (it != entity_by_name_.end()) return it->second;
  EntityId id = static_cast<EntityId>(entities_.size());
  entities_.push_back(Entity{id, canonical});
  entity_by_name_.emplace(canonical, id);
  for (const auto& token : ContentTokens(canonical)) {
    token_index_[token].push_back(id);
  }
  return id;
}

RelationId CuratedKb::AddRelation(std::string_view name) {
  std::string canonical = ToLower(Trim(name));
  auto it = relation_by_name_.find(canonical);
  if (it != relation_by_name_.end()) return it->second;
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back(Relation{id, canonical});
  relation_by_name_.emplace(canonical, id);
  return id;
}

Status CuratedKb::AddRelationAlias(RelationId id, std::string_view alias) {
  if (id < 0 || static_cast<size_t>(id) >= relations_.size()) {
    return Status::InvalidArgument("relation id out of range");
  }
  relation_aliases_[id].push_back(ToLower(Trim(alias)));
  return Status::OK();
}

Status CuratedKb::AddFact(EntityId subject, RelationId relation,
                          EntityId object) {
  if (subject < 0 || static_cast<size_t>(subject) >= entities_.size() ||
      object < 0 || static_cast<size_t>(object) >= entities_.size()) {
    return Status::InvalidArgument("fact entity id out of range");
  }
  if (relation < 0 || static_cast<size_t>(relation) >= relations_.size()) {
    return Status::InvalidArgument("fact relation id out of range");
  }
  FactKey key{subject, relation, object};
  if (fact_set_.count(key) > 0) return Status::OK();  // idempotent
  fact_set_.insert(key);
  facts_by_entity_[subject].push_back(facts_.size());
  if (object != subject) facts_by_entity_[object].push_back(facts_.size());
  facts_.push_back(Fact{subject, relation, object});
  return Status::OK();
}

Status CuratedKb::AddAnchor(std::string_view surface, EntityId entity,
                            int64_t count) {
  if (entity < 0 || static_cast<size_t>(entity) >= entities_.size()) {
    return Status::InvalidArgument("anchor entity id out of range");
  }
  if (count <= 0) return Status::InvalidArgument("anchor count must be > 0");
  std::string key = ToLower(Trim(surface));
  anchors_[key][entity] += count;
  anchor_totals_[key] += count;
  return Status::OK();
}

const Entity& CuratedKb::entity(EntityId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < entities_.size());
  return entities_[static_cast<size_t>(id)];
}

const Relation& CuratedKb::relation(RelationId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < relations_.size());
  return relations_[static_cast<size_t>(id)];
}

EntityId CuratedKb::FindEntityByName(std::string_view name) const {
  auto it = entity_by_name_.find(ToLower(Trim(name)));
  return it == entity_by_name_.end() ? kNilId : it->second;
}

RelationId CuratedKb::FindRelationByName(std::string_view name) const {
  auto it = relation_by_name_.find(ToLower(Trim(name)));
  return it == relation_by_name_.end() ? kNilId : it->second;
}

const std::vector<std::string>& CuratedKb::RelationAliases(
    RelationId id) const {
  static const std::vector<std::string>* const kEmpty =
      new std::vector<std::string>();
  auto it = relation_aliases_.find(id);
  return it == relation_aliases_.end() ? *kEmpty : it->second;
}

bool CuratedKb::HasFact(EntityId subject, RelationId relation,
                        EntityId object) const {
  return fact_set_.count(FactKey{subject, relation, object}) > 0;
}

std::vector<Fact> CuratedKb::FactsInvolving(EntityId entity) const {
  std::vector<Fact> out;
  auto it = facts_by_entity_.find(entity);
  if (it == facts_by_entity_.end()) return out;
  out.reserve(it->second.size());
  for (size_t index : it->second) out.push_back(facts_[index]);
  return out;
}

int64_t CuratedKb::AnchorCount(std::string_view surface) const {
  auto it = anchor_totals_.find(ToLower(Trim(surface)));
  return it == anchor_totals_.end() ? 0 : it->second;
}

int64_t CuratedKb::AnchorCount(std::string_view surface,
                               EntityId entity) const {
  auto it = anchors_.find(ToLower(Trim(surface)));
  if (it == anchors_.end()) return 0;
  auto jt = it->second.find(entity);
  return jt == it->second.end() ? 0 : jt->second;
}

double CuratedKb::Popularity(std::string_view surface,
                             EntityId entity) const {
  int64_t total = AnchorCount(surface);
  if (total <= 0) return 0.0;
  return static_cast<double>(AnchorCount(surface, entity)) /
         static_cast<double>(total);
}

std::vector<std::tuple<std::string, EntityId, int64_t>>
CuratedKb::AnchorRows() const {
  std::vector<std::tuple<std::string, EntityId, int64_t>> rows;
  for (const auto& [surface, by_entity] : anchors_) {
    for (const auto& [entity, count] : by_entity) {
      rows.emplace_back(surface, entity, count);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<EntityCandidate> CuratedKb::ExactAnchorCandidates(
    std::string_view phrase, size_t max_candidates) const {
  std::string key = ToLower(Trim(phrase));
  std::vector<EntityCandidate> candidates;
  auto it = anchors_.find(key);
  if (it == anchors_.end()) return candidates;
  double total = static_cast<double>(anchor_totals_.at(key));
  candidates.reserve(it->second.size());
  for (const auto& [entity_id, count] : it->second) {
    candidates.push_back(
        EntityCandidate{entity_id, static_cast<double>(count) / total});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const EntityCandidate& a, const EntityCandidate& b) {
              if (a.popularity != b.popularity) {
                return a.popularity > b.popularity;
              }
              return a.id < b.id;
            });
  if (candidates.size() > max_candidates) candidates.resize(max_candidates);
  return candidates;
}

std::vector<EntityCandidate> CuratedKb::LabelCandidates(
    std::string_view phrase, size_t max_candidates) const {
  std::string key = ToLower(Trim(phrase));
  std::unordered_set<EntityId> pool;
  for (const auto& token : ContentTokens(key)) {
    auto it = token_index_.find(token);
    if (it == token_index_.end()) continue;
    pool.insert(it->second.begin(), it->second.end());
  }
  std::vector<EntityCandidate> candidates;
  candidates.reserve(pool.size());
  for (EntityId id : pool) {
    double sim = NgramSimilarity(key, entities_[static_cast<size_t>(id)].name);
    if (sim > 0.0) candidates.push_back(EntityCandidate{id, sim});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const EntityCandidate& a, const EntityCandidate& b) {
              if (a.popularity != b.popularity) {
                return a.popularity > b.popularity;
              }
              return a.id < b.id;
            });
  if (candidates.size() > max_candidates) candidates.resize(max_candidates);
  return candidates;
}

std::vector<EntityCandidate> CuratedKb::EntityCandidates(
    std::string_view phrase, size_t max_candidates) const {
  std::string key = ToLower(Trim(phrase));
  std::vector<EntityCandidate> candidates;
  std::unordered_set<EntityId> seen;

  auto it = anchors_.find(key);
  if (it != anchors_.end()) {
    double total = static_cast<double>(anchor_totals_.at(key));
    for (const auto& [entity_id, count] : it->second) {
      candidates.push_back(
          EntityCandidate{entity_id, static_cast<double>(count) / total});
      seen.insert(entity_id);
    }
  }

  // Fuzzy fallback: entities sharing a content token with the phrase,
  // scored by trigram similarity of the canonical name.
  if (candidates.size() < max_candidates) {
    std::unordered_set<EntityId> pool;
    for (const auto& token : ContentTokens(key)) {
      auto tok_it = token_index_.find(token);
      if (tok_it == token_index_.end()) continue;
      for (EntityId id : tok_it->second) {
        if (seen.count(id) == 0) pool.insert(id);
      }
    }
    std::vector<EntityCandidate> fuzzy;
    fuzzy.reserve(pool.size());
    for (EntityId id : pool) {
      double sim = NgramSimilarity(key, entities_[static_cast<size_t>(id)].name);
      if (sim > 0.0) fuzzy.push_back(EntityCandidate{id, sim * kFuzzyCeiling});
    }
    std::sort(fuzzy.begin(), fuzzy.end(),
              [](const EntityCandidate& a, const EntityCandidate& b) {
                if (a.popularity != b.popularity) {
                  return a.popularity > b.popularity;
                }
                return a.id < b.id;
              });
    for (const auto& c : fuzzy) {
      if (candidates.size() >= max_candidates * 2) break;
      candidates.push_back(c);
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const EntityCandidate& a, const EntityCandidate& b) {
              if (a.popularity != b.popularity) {
                return a.popularity > b.popularity;
              }
              return a.id < b.id;
            });
  if (candidates.size() > max_candidates) candidates.resize(max_candidates);
  return candidates;
}

std::vector<RelationCandidate> CuratedKb::RelationCandidates(
    std::string_view phrase, size_t max_candidates) const {
  std::string key = ToLower(Trim(phrase));
  std::vector<RelationCandidate> candidates;
  candidates.reserve(relations_.size());
  for (const auto& rel : relations_) {
    double best = std::max(NgramSimilarity(key, rel.name),
                           LevenshteinSimilarity(key, rel.name));
    auto alias_it = relation_aliases_.find(rel.id);
    if (alias_it != relation_aliases_.end()) {
      for (const auto& alias : alias_it->second) {
        best = std::max({best, NgramSimilarity(key, alias),
                         LevenshteinSimilarity(key, alias)});
      }
    }
    if (best > 0.0) candidates.push_back(RelationCandidate{rel.id, best});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const RelationCandidate& a, const RelationCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (candidates.size() > max_candidates) candidates.resize(max_candidates);
  return candidates;
}

}  // namespace jocl
