#include "kb/open_kb.h"

#include <unordered_set>
#include <cstddef>

#include "util/string_util.h"

namespace jocl {

Status OpenKb::AddTriple(std::string_view subject, std::string_view predicate,
                         std::string_view object) {
  std::string s = Trim(subject);
  std::string p = Trim(predicate);
  std::string o = Trim(object);
  if (s.empty() || p.empty() || o.empty()) {
    return Status::InvalidArgument("OIE triple has an empty slot");
  }
  triples_.push_back(OieTriple{std::move(s), std::move(p), std::move(o)});
  return Status::OK();
}

std::vector<NpMention> OpenKb::NounPhraseMentions() const {
  std::vector<NpMention> mentions;
  mentions.reserve(triples_.size() * 2);
  for (size_t i = 0; i < triples_.size(); ++i) {
    mentions.push_back(NpMention{i, true, triples_[i].subject});
    mentions.push_back(NpMention{i, false, triples_[i].object});
  }
  return mentions;
}

std::vector<RpMention> OpenKb::RelationPhraseMentions() const {
  std::vector<RpMention> mentions;
  mentions.reserve(triples_.size());
  for (size_t i = 0; i < triples_.size(); ++i) {
    mentions.push_back(RpMention{i, triples_[i].predicate});
  }
  return mentions;
}

std::vector<std::string> OpenKb::DistinctNounPhrases() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& t : triples_) {
    if (seen.insert(t.subject).second) out.push_back(t.subject);
    if (seen.insert(t.object).second) out.push_back(t.object);
  }
  return out;
}

std::vector<std::string> OpenKb::DistinctRelationPhrases() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& t : triples_) {
    if (seen.insert(t.predicate).second) out.push_back(t.predicate);
  }
  return out;
}

}  // namespace jocl
