#include "kb/kb_io.h"

#include <fstream>
#include <unordered_map>

#include "util/string_util.h"

namespace jocl {
namespace {

Status WriteFailed(const std::string& path) {
  return Status::IOError("write failed: " + path);
}

}  // namespace

Status SaveCuratedKb(const CuratedKb& kb, const std::string& prefix) {
  {
    std::ofstream out(prefix + ".entities.tsv");
    if (!out.is_open()) return WriteFailed(prefix + ".entities.tsv");
    for (size_t id = 0; id < kb.entity_count(); ++id) {
      out << id << '\t' << kb.entity(static_cast<EntityId>(id)).name << '\n';
    }
    if (!out.good()) return WriteFailed(prefix + ".entities.tsv");
  }
  {
    std::ofstream out(prefix + ".relations.tsv");
    if (!out.is_open()) return WriteFailed(prefix + ".relations.tsv");
    for (size_t id = 0; id < kb.relation_count(); ++id) {
      out << id << '\t' << kb.relation(static_cast<RelationId>(id)).name;
      for (const auto& alias :
           kb.RelationAliases(static_cast<RelationId>(id))) {
        out << '\t' << alias;
      }
      out << '\n';
    }
    if (!out.good()) return WriteFailed(prefix + ".relations.tsv");
  }
  {
    std::ofstream out(prefix + ".facts.tsv");
    if (!out.is_open()) return WriteFailed(prefix + ".facts.tsv");
    for (const Fact& fact : kb.facts()) {
      out << fact.subject << '\t' << fact.relation << '\t' << fact.object
          << '\n';
    }
    if (!out.good()) return WriteFailed(prefix + ".facts.tsv");
  }
  {
    std::ofstream out(prefix + ".anchors.tsv");
    if (!out.is_open()) return WriteFailed(prefix + ".anchors.tsv");
    for (const auto& [surface, entity, count] : kb.AnchorRows()) {
      out << surface << '\t' << entity << '\t' << count << '\n';
    }
    if (!out.good()) return WriteFailed(prefix + ".anchors.tsv");
  }
  return Status::OK();
}

Result<CuratedKb> LoadCuratedKb(const std::string& prefix) {
  CuratedKb kb;
  std::unordered_map<int64_t, EntityId> entity_map;
  std::unordered_map<int64_t, RelationId> relation_map;
  {
    std::ifstream in(prefix + ".entities.tsv");
    if (!in.is_open()) {
      return Status::IOError("cannot open " + prefix + ".entities.tsv");
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::vector<std::string> cells = Split(line, '\t');
      if (cells.size() != 2) {
        return Status::IOError("malformed entity row: " + line);
      }
      entity_map[std::stoll(cells[0])] = kb.AddEntity(cells[1]);
    }
  }
  {
    std::ifstream in(prefix + ".relations.tsv");
    if (!in.is_open()) {
      return Status::IOError("cannot open " + prefix + ".relations.tsv");
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::vector<std::string> cells = Split(line, '\t');
      if (cells.size() < 2) {
        return Status::IOError("malformed relation row: " + line);
      }
      RelationId id = kb.AddRelation(cells[1]);
      relation_map[std::stoll(cells[0])] = id;
      for (size_t c = 2; c < cells.size(); ++c) {
        JOCL_RETURN_NOT_OK(kb.AddRelationAlias(id, cells[c]));
      }
    }
  }
  {
    std::ifstream in(prefix + ".facts.tsv");
    if (!in.is_open()) {
      return Status::IOError("cannot open " + prefix + ".facts.tsv");
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::vector<std::string> cells = Split(line, '\t');
      if (cells.size() != 3) {
        return Status::IOError("malformed fact row: " + line);
      }
      auto s = entity_map.find(std::stoll(cells[0]));
      auto r = relation_map.find(std::stoll(cells[1]));
      auto o = entity_map.find(std::stoll(cells[2]));
      if (s == entity_map.end() || r == relation_map.end() ||
          o == entity_map.end()) {
        return Status::IOError("fact references unknown id: " + line);
      }
      JOCL_RETURN_NOT_OK(kb.AddFact(s->second, r->second, o->second));
    }
  }
  {
    std::ifstream in(prefix + ".anchors.tsv");
    if (!in.is_open()) {
      return Status::IOError("cannot open " + prefix + ".anchors.tsv");
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::vector<std::string> cells = Split(line, '\t');
      if (cells.size() != 3) {
        return Status::IOError("malformed anchor row: " + line);
      }
      auto e = entity_map.find(std::stoll(cells[1]));
      if (e == entity_map.end()) {
        return Status::IOError("anchor references unknown entity: " + line);
      }
      JOCL_RETURN_NOT_OK(
          kb.AddAnchor(cells[0], e->second, std::stoll(cells[2])));
    }
  }
  return kb;
}

}  // namespace jocl
