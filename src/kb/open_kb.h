#ifndef JOCL_KB_OPEN_KB_H_
#define JOCL_KB_OPEN_KB_H_

#include <string>
#include <cstddef>
#include <string_view>
#include <vector>

#include "kb/types.h"
#include "util/result.h"

namespace jocl {

/// \brief A mention of a noun phrase inside an OIE triple.
///
/// JOCL reasons about *mentions*, not distinct strings: the same surface
/// form in two triples is two mentions (each gets its own linking variable).
struct NpMention {
  size_t triple_index = 0;
  /// true => the triple's subject slot, false => the object slot.
  bool is_subject = true;
  std::string phrase;
};

/// \brief A mention of a relation phrase inside an OIE triple.
struct RpMention {
  size_t triple_index = 0;
  std::string phrase;
};

/// \brief The open KB: an append-only store of OIE triples plus the mention
/// views the canonicalization/linking machinery consumes (paper §2: a set
/// of OIE triples `T = {t_1, t_2, ...}`).
class OpenKb {
 public:
  OpenKb() = default;

  /// Appends a triple; empty phrases are rejected.
  Status AddTriple(std::string_view subject, std::string_view predicate,
                   std::string_view object);

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }
  const OieTriple& triple(size_t index) const { return triples_[index]; }
  const std::vector<OieTriple>& triples() const { return triples_; }

  /// All NP mentions in triple order: subject of t0, object of t0,
  /// subject of t1, ... (2 per triple).
  std::vector<NpMention> NounPhraseMentions() const;

  /// All RP mentions in triple order (1 per triple).
  std::vector<RpMention> RelationPhraseMentions() const;

  /// Distinct NP surface forms (first-appearance order).
  std::vector<std::string> DistinctNounPhrases() const;

  /// Distinct RP surface forms (first-appearance order).
  std::vector<std::string> DistinctRelationPhrases() const;

 private:
  std::vector<OieTriple> triples_;
};

}  // namespace jocl

#endif  // JOCL_KB_OPEN_KB_H_
