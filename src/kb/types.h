#ifndef JOCL_KB_TYPES_H_
#define JOCL_KB_TYPES_H_

#include <cstdint>
#include <string>

#include "util/ids.h"

namespace jocl {

/// Dense id of an entity in a curated KB; `kNilId` (-1) means "no entity".
using EntityId = int64_t;
/// Dense id of a relation in a curated KB; `kNilId` (-1) means "no relation".
using RelationId = int64_t;

/// \brief A canonical entity in the curated KB (paper: `e ∈ E`).
struct Entity {
  EntityId id = -1;
  /// Canonicalized human-readable name, e.g. "university of maryland".
  std::string name;
};

/// \brief A canonical relation in the curated KB (paper: `r ∈ R`).
struct Relation {
  RelationId id = -1;
  /// Canonicalized name, e.g. "organizations_founded".
  std::string name;
};

/// \brief A curated-KB fact `<e_i, r_k, e_j>`.
struct Fact {
  EntityId subject = -1;
  RelationId relation = -1;
  EntityId object = -1;

  bool operator==(const Fact& other) const {
    return subject == other.subject && relation == other.relation &&
           object == other.object;
  }
};

/// \brief An OIE triple `<s_i, p_i, o_i>`: two noun phrases and a relation
/// phrase, uncanonicalized (paper §2).
struct OieTriple {
  std::string subject;
  std::string predicate;
  std::string object;
};

}  // namespace jocl

#endif  // JOCL_KB_TYPES_H_
