#ifndef JOCL_KB_CURATED_KB_H_
#define JOCL_KB_CURATED_KB_H_

#include <string>
#include <cstddef>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/types.h"
#include "util/result.h"

namespace jocl {

/// \brief A candidate entity (relation) for a phrase with its prior score.
struct EntityCandidate {
  EntityId id = -1;
  /// `count(s, e) / count(s)` anchor popularity when produced by the exact
  /// alias index; a fuzzy-match similarity in [0, 1] otherwise.
  double popularity = 0.0;
};

/// \brief A candidate relation with its surface-similarity prior.
struct RelationCandidate {
  RelationId id = -1;
  double score = 0.0;
};

/// \brief In-memory curated knowledge base (the paper's CKB).
///
/// Holds canonical entities, relations, facts, and the alias statistics the
/// linking signals need: an anchor table mirroring Wikipedia anchor links
/// (surface form -> entity with counts, ambiguity included) powering
/// `f_pop`, a token inverted index for fuzzy candidate generation, and a
/// fact-inclusion set powering the `U4` factor.
///
/// Writes (AddEntity/AddRelation/AddFact/AddAnchor) are expected to be done
/// before reads; the class is not thread-safe for mixed read/write.
class CuratedKb {
 public:
  CuratedKb() = default;

  // --- construction ------------------------------------------------------

  /// Adds an entity with the given canonical name; returns its id.
  EntityId AddEntity(std::string_view name);

  /// Adds a relation with the given canonical name; returns its id.
  RelationId AddRelation(std::string_view name);

  /// Adds an alias surface form for a relation (used by candidate
  /// generation; e.g. "founded" for "organizations_founded").
  Status AddRelationAlias(RelationId id, std::string_view alias);

  /// Records a fact; ids must exist.
  Status AddFact(EntityId subject, RelationId relation, EntityId object);

  /// Records \p count anchor-link occurrences of \p surface pointing at
  /// \p entity (the Wikipedia-anchor statistics of §3.2.3).
  Status AddAnchor(std::string_view surface, EntityId entity, int64_t count);

  // --- lookup -------------------------------------------------------------

  size_t entity_count() const { return entities_.size(); }
  size_t relation_count() const { return relations_.size(); }
  size_t fact_count() const { return facts_.size(); }

  /// Entity by id; requires a valid id.
  const Entity& entity(EntityId id) const;

  /// Relation by id; requires a valid id.
  const Relation& relation(RelationId id) const;

  const std::vector<Fact>& facts() const { return facts_; }

  /// Entity id by exact canonical name, or kNilId.
  EntityId FindEntityByName(std::string_view name) const;

  /// Relation id by exact canonical name, or kNilId.
  RelationId FindRelationByName(std::string_view name) const;

  /// Alias surface forms registered for a relation (possibly empty).
  const std::vector<std::string>& RelationAliases(RelationId id) const;

  /// True iff `<subject, relation, object>` is a known fact (U4 signal).
  bool HasFact(EntityId subject, RelationId relation, EntityId object) const;

  /// Facts with the given subject or object entity.
  std::vector<Fact> FactsInvolving(EntityId entity) const;

  // --- anchor statistics (f_pop) ------------------------------------------

  /// Total anchor occurrences of the surface form, `count(s)`.
  int64_t AnchorCount(std::string_view surface) const;

  /// Anchor occurrences of the surface pointing at the entity,
  /// `count(s, e)`.
  int64_t AnchorCount(std::string_view surface, EntityId entity) const;

  /// The popularity prior `count(s, e) / count(s)`; 0 when unseen.
  double Popularity(std::string_view surface, EntityId entity) const;

  /// Snapshot of the full anchor table as (surface, entity, count) rows,
  /// deterministically ordered. For serialization and diagnostics.
  std::vector<std::tuple<std::string, EntityId, int64_t>> AnchorRows() const;

  // --- candidate generation ------------------------------------------------

  /// Candidate entities for a noun phrase: exact anchor matches ranked by
  /// popularity, topped up with fuzzy matches from the token index (scored
  /// by character-trigram similarity, scaled below any exact match).
  /// At most \p max_candidates, sorted by score descending.
  std::vector<EntityCandidate> EntityCandidates(std::string_view phrase,
                                                size_t max_candidates) const;

  /// Candidates from the exact anchor index only (no fuzzy fallback) —
  /// what a dictionary-based linker sees. Sorted by popularity.
  std::vector<EntityCandidate> ExactAnchorCandidates(
      std::string_view phrase, size_t max_candidates) const;

  /// Candidates by label similarity only (token index + trigram score over
  /// canonical names; no anchor statistics) — what a label-search linker
  /// like EARL sees. `popularity` carries the similarity score.
  std::vector<EntityCandidate> LabelCandidates(std::string_view phrase,
                                               size_t max_candidates) const;

  /// Candidate relations for a relation phrase, scored by the best of
  /// trigram and normalized-Levenshtein similarity over the canonical name
  /// and all aliases. At most \p max_candidates, sorted descending.
  std::vector<RelationCandidate> RelationCandidates(
      std::string_view phrase, size_t max_candidates) const;

 private:
  struct FactKey {
    EntityId s;
    RelationId r;
    EntityId o;
    bool operator==(const FactKey& other) const {
      return s == other.s && r == other.r && o == other.o;
    }
  };
  struct FactKeyHash {
    size_t operator()(const FactKey& k) const {
      size_t h = std::hash<int64_t>()(k.s);
      h = h * 1315423911u ^ std::hash<int64_t>()(k.r);
      h = h * 1315423911u ^ std::hash<int64_t>()(k.o);
      return h;
    }
  };

  std::vector<Entity> entities_;
  std::vector<Relation> relations_;
  std::vector<Fact> facts_;
  std::unordered_set<FactKey, FactKeyHash> fact_set_;
  std::unordered_map<std::string, EntityId> entity_by_name_;
  std::unordered_map<std::string, RelationId> relation_by_name_;
  std::unordered_map<RelationId, std::vector<std::string>> relation_aliases_;
  // surface (lower-cased) -> entity -> count
  std::unordered_map<std::string, std::unordered_map<EntityId, int64_t>>
      anchors_;
  std::unordered_map<std::string, int64_t> anchor_totals_;
  // content token -> entity ids whose canonical name contains the token
  std::unordered_map<std::string, std::vector<EntityId>> token_index_;
  // entity -> facts index for FactsInvolving
  std::unordered_map<EntityId, std::vector<size_t>> facts_by_entity_;
};

}  // namespace jocl

#endif  // JOCL_KB_CURATED_KB_H_
