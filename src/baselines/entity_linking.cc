#include "baselines/entity_linking.h"

#include <algorithm>

#include "baselines/np_common.h"
#include "core/signal_cache.h"

namespace jocl {
namespace {

constexpr size_t kCandidateFanout = 6;

// Shared per-surface candidate cache for one baseline run.
struct CandidateCache {
  NpSurfaceView view;
  std::vector<std::vector<EntityCandidate>> candidates;

  CandidateCache(const Dataset& dataset, const std::vector<size_t>& subset) {
    view = BuildNpSurfaceView(dataset, subset);
    candidates.reserve(view.surfaces.size());
    for (const auto& surface : view.surfaces) {
      candidates.push_back(
          dataset.ckb.EntityCandidates(surface, kCandidateFanout));
    }
  }
};

}  // namespace

std::vector<int64_t> SpotlightLink(const Dataset& dataset,
                                   const SignalBundle& signals,
                                   const std::vector<size_t>& subset,
                                   double confidence) {
  CandidateCache cache(dataset, subset);
  // Per-surface and per-candidate-name phrase vectors are computed once
  // (surface s gets id s; candidate names registered after, deduplicated).
  SignalCache sig;
  for (const auto& surface : cache.view.surfaces) sig.Add(surface);
  std::vector<std::vector<size_t>> name_ids(cache.view.surfaces.size());
  for (size_t s = 0; s < cache.view.surfaces.size(); ++s) {
    for (const auto& candidate : cache.candidates[s]) {
      name_ids[s].push_back(sig.Add(dataset.ckb.entity(candidate.id).name));
    }
  }
  SignalCacheFamilies families;  // Spotlight only scores Sim_emb
  families.ppdb = false;
  families.amie = false;
  families.kbp = false;
  sig.Finalize(signals, families);
  std::vector<int64_t> surface_link(cache.view.surfaces.size(), kNilId);
  for (size_t s = 0; s < cache.view.surfaces.size(); ++s) {
    double best_score = confidence;
    for (size_t c = 0; c < cache.candidates[s].size(); ++c) {
      const auto& candidate = cache.candidates[s][c];
      double score = 0.7 * candidate.popularity +
                     0.3 * sig.Emb(s, name_ids[s][c]);
      if (score > best_score) {
        best_score = score;
        surface_link[s] = candidate.id;
      }
    }
  }
  std::vector<int64_t> links(cache.view.mention_surface.size());
  for (size_t m = 0; m < links.size(); ++m) {
    links[m] = surface_link[cache.view.mention_surface[m]];
  }
  return links;
}

std::vector<int64_t> TagMeLink(const Dataset& dataset,
                               const SignalBundle& signals,
                               const std::vector<size_t>& subset,
                               double epsilon, int64_t min_spot_count) {
  (void)signals;
  CandidateCache cache(dataset, subset);
  // Spot filter + commonness pruning: only frequent anchor surfaces are
  // "spots"; candidates below ε of the spot's anchor mass are discarded. A
  // surface with no surviving candidate is NIL.
  std::vector<int64_t> surface_link(cache.view.surfaces.size(), kNilId);
  for (size_t s = 0; s < cache.view.surfaces.size(); ++s) {
    if (dataset.ckb.AnchorCount(cache.view.surfaces[s]) < min_spot_count) {
      continue;  // not in the spot dictionary
    }
    double best = epsilon;
    for (const auto& candidate : cache.candidates[s]) {
      if (candidate.popularity > best) {
        best = candidate.popularity;
        surface_link[s] = candidate.id;
      }
    }
  }
  // One-triple "collective agreement": a pruned mention is rescued only
  // when exactly one candidate pair of the triple is connected by a CKB
  // fact — TagMe's coherence vote needs an unambiguous signal.
  std::vector<int64_t> links(cache.view.mention_surface.size());
  for (size_t local = 0; local < cache.view.triples.size(); ++local) {
    size_t s_surf = cache.view.mention_surface[local * 2];
    size_t o_surf = cache.view.mention_surface[local * 2 + 1];
    int64_t s_link = surface_link[s_surf];
    int64_t o_link = surface_link[o_surf];
    if (s_link == kNilId || o_link == kNilId) {
      int related_pairs = 0;
      int64_t rescue_s = kNilId;
      int64_t rescue_o = kNilId;
      for (const auto& sc : cache.candidates[s_surf]) {
        for (const auto& oc : cache.candidates[o_surf]) {
          for (const auto& fact : dataset.ckb.FactsInvolving(sc.id)) {
            if (fact.subject == oc.id || fact.object == oc.id) {
              ++related_pairs;
              rescue_s = sc.id;
              rescue_o = oc.id;
              break;
            }
          }
        }
      }
      if (related_pairs == 1) {
        if (s_link == kNilId) s_link = rescue_s;
        if (o_link == kNilId) o_link = rescue_o;
      }
    }
    links[local * 2] = s_link;
    links[local * 2 + 1] = o_link;
  }
  return links;
}

std::vector<int64_t> FalconLink(const Dataset& dataset,
                                const SignalBundle& signals,
                                const std::vector<size_t>& subset,
                                double min_similarity) {
  (void)signals;
  CandidateCache cache(dataset, subset);
  std::vector<int64_t> surface_link(cache.view.surfaces.size(), kNilId);
  for (size_t s = 0; s < cache.view.surfaces.size(); ++s) {
    const auto& surface = cache.view.surfaces[s];
    // Morphological exact match against the extended KG (canonical names).
    EntityId exact = dataset.ckb.FindEntityByName(surface);
    if (exact != kNilId) {
      surface_link[s] = exact;
      continue;
    }
    double best = min_similarity;
    for (const auto& candidate : cache.candidates[s]) {
      double sim = SignalBundle::Ngram(
          surface, dataset.ckb.entity(candidate.id).name);
      if (sim > best) {
        best = sim;
        surface_link[s] = candidate.id;
      }
    }
  }
  std::vector<int64_t> links(cache.view.mention_surface.size());
  for (size_t m = 0; m < links.size(); ++m) {
    links[m] = surface_link[cache.view.mention_surface[m]];
  }
  return links;
}

std::vector<int64_t> EarlLink(const Dataset& dataset,
                              const SignalBundle& signals,
                              const std::vector<size_t>& subset) {
  (void)signals;
  // EARL generates candidates by label search (no Wikipedia-anchor
  // statistics), then solves a GTSP over the triple: the (subject, object)
  // candidate pair with the highest connection density through the
  // triple's candidate relations wins; ties are broken by label
  // similarity. Both choices are faithful to the original and are exactly
  // why it underperforms popularity-aware linkers on alias-heavy OIE data.
  NpSurfaceView view = BuildNpSurfaceView(dataset, subset);
  std::vector<std::vector<EntityCandidate>> label_candidates;
  label_candidates.reserve(view.surfaces.size());
  for (const auto& surface : view.surfaces) {
    label_candidates.push_back(
        dataset.ckb.LabelCandidates(surface, kCandidateFanout));
  }
  std::vector<int64_t> links(view.mention_surface.size(), kNilId);
  for (size_t local = 0; local < view.triples.size(); ++local) {
    size_t s_surf = view.mention_surface[local * 2];
    size_t o_surf = view.mention_surface[local * 2 + 1];
    const auto& s_cands = label_candidates[s_surf];
    const auto& o_cands = label_candidates[o_surf];
    auto r_cands = dataset.ckb.RelationCandidates(
        dataset.okb.triple(view.triples[local]).predicate, 4);
    auto relation_matches = [&](RelationId relation) {
      for (const auto& rc : r_cands) {
        if (rc.id == relation) return true;
      }
      return false;
    };
    double best = -1.0;
    int64_t best_s = kNilId;
    int64_t best_o = kNilId;
    for (const auto& sc : s_cands) {
      for (const auto& oc : o_cands) {
        double density = 0.0;
        for (const auto& fact : dataset.ckb.FactsInvolving(sc.id)) {
          if ((fact.subject == oc.id || fact.object == oc.id) &&
              relation_matches(fact.relation)) {
            density += 1.0;
          }
        }
        double label_sim =
            NgramSimilarity(view.surfaces[s_surf],
                            dataset.ckb.entity(sc.id).name) +
            NgramSimilarity(view.surfaces[o_surf],
                            dataset.ckb.entity(oc.id).name);
        double score = density + 0.1 * label_sim;
        if (score > best) {
          best = score;
          best_s = sc.id;
          best_o = oc.id;
        }
      }
    }
    links[local * 2] = best_s;
    links[local * 2 + 1] = best_o;
  }
  return links;
}

std::vector<int64_t> KbpearlLink(const Dataset& dataset,
                                 const SignalBundle& signals,
                                 const std::vector<size_t>& subset) {
  CandidateCache cache(dataset, subset);
  std::vector<int64_t> links(cache.view.mention_surface.size(), kNilId);
  constexpr size_t kRelationFanout = 4;
  for (size_t local = 0; local < cache.view.triples.size(); ++local) {
    const OieTriple& triple = dataset.okb.triple(cache.view.triples[local]);
    const auto& s_cands = cache.candidates[cache.view.mention_surface[local * 2]];
    const auto& o_cands =
        cache.candidates[cache.view.mention_surface[local * 2 + 1]];
    auto r_cands =
        dataset.ckb.RelationCandidates(triple.predicate, kRelationFanout);
    double best = 0.0;
    int64_t best_s = kNilId;
    int64_t best_o = kNilId;
    for (const auto& sc : s_cands) {
      for (const auto& oc : o_cands) {
        double base = 0.5 * (sc.popularity + oc.popularity);
        double fact_bonus = 0.0;
        for (const auto& rc : r_cands) {
          if (dataset.ckb.HasFact(sc.id, rc.id, oc.id)) {
            fact_bonus = std::max(fact_bonus, 1.0 + rc.score);
          }
        }
        double score = base + fact_bonus;
        if (score > best) {
          best = score;
          best_s = sc.id;
          best_o = oc.id;
        }
      }
    }
    // Abstain when even the best joint reading is weak (KBPearl links
    // selectively; that caution is what keeps it competitive on noisy news
    // extractions).
    if (best >= 0.3) {
      links[local * 2] = best_s;
      links[local * 2 + 1] = best_o;
    }
  }
  (void)signals;
  return links;
}

}  // namespace jocl
