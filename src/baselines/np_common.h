#ifndef JOCL_BASELINES_NP_COMMON_H_
#define JOCL_BASELINES_NP_COMMON_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace jocl {

/// \brief Distinct-NP-surface view of a triple subset, shared by the
/// canonicalization baselines (which, like CESI/SIST, cluster surface
/// strings rather than individual mentions).
struct NpSurfaceView {
  /// Triples covered, ascending.
  std::vector<size_t> triples;
  /// Distinct NP surfaces across both roles, first-appearance order.
  std::vector<std::string> surfaces;
  /// Surface index per NP mention (2 per triple: subject then object).
  std::vector<size_t> mention_surface;
};

/// \brief Builds the surface view for a subset of triples.
NpSurfaceView BuildNpSurfaceView(const Dataset& dataset,
                                 const std::vector<size_t>& subset);

/// \brief Distinct-RP-surface view (1 mention per triple).
struct RpSurfaceView {
  std::vector<size_t> triples;
  std::vector<std::string> surfaces;
  std::vector<size_t> mention_surface;
};

/// \brief Builds the RP surface view for a subset of triples.
RpSurfaceView BuildRpSurfaceView(const Dataset& dataset,
                                 const std::vector<size_t>& subset);

/// \brief Maps surface-level cluster labels back to mention-level labels.
std::vector<size_t> SurfaceToMentionLabels(
    const std::vector<size_t>& mention_surface,
    const std::vector<size_t>& surface_labels);

}  // namespace jocl

#endif  // JOCL_BASELINES_NP_COMMON_H_
