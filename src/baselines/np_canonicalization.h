#ifndef JOCL_BASELINES_NP_CANONICALIZATION_H_
#define JOCL_BASELINES_NP_CANONICALIZATION_H_

#include <cstddef>
#include <vector>

#include "baselines/np_common.h"
#include "core/signals.h"
#include "data/dataset.h"

namespace jocl {

/// All baselines return cluster labels per NP mention (2 per triple of the
/// subset, subject then object), directly comparable with
/// `Dataset::GoldNpLabels()` restricted to the same mentions.

/// \brief Morph Norm (Fader et al. 2011): NPs sharing a morphologically
/// normalized form are one group. High precision, poor recall (aliases and
/// acronyms never merge).
std::vector<size_t> MorphNormCanonicalize(const Dataset& dataset,
                                          const std::vector<size_t>& subset);

/// \brief Wikidata-Integrator-style: link each NP with an off-the-shelf
/// entity linker (popularity-prior argmax over the anchor index) and group
/// NPs that landed on the same entity; unlinked NPs stay singletons.
std::vector<size_t> WikidataIntegratorCanonicalize(
    const Dataset& dataset, const std::vector<size_t>& subset);

/// \brief Text Similarity (Galárraga et al. 2014): HAC over Jaro-Winkler
/// similarity of the surface strings.
std::vector<size_t> TextSimilarityCanonicalize(
    const Dataset& dataset, const std::vector<size_t>& subset,
    double threshold = 0.82);

/// \brief IDF Token Overlap (Galárraga et al. 2014): HAC over the IDF
/// token-overlap similarity.
std::vector<size_t> IdfTokenOverlapCanonicalize(
    const Dataset& dataset, const SignalBundle& signals,
    const std::vector<size_t>& subset, double threshold = 0.5);

/// \brief Attribute Overlap (Galárraga et al. 2014): Jaccard similarity of
/// the NPs' attribute sets (the normalized RPs they occur with).
std::vector<size_t> AttributeOverlapCanonicalize(
    const Dataset& dataset, const std::vector<size_t>& subset,
    double threshold = 0.35);

/// \brief CESI-style (Vashishth et al. 2018): HAC over learned phrase
/// embeddings blended with side information (PPDB short-circuit, IDF
/// token overlap).
std::vector<size_t> CesiCanonicalize(const Dataset& dataset,
                                     const SignalBundle& signals,
                                     const std::vector<size_t>& subset,
                                     double threshold = 0.64);

/// \brief SIST-style (Lin & Chen 2019): CESI's blend plus side information
/// from the source text, approximated by candidate-entity agreement from
/// the anchor index (SIST's candidate/type side info).
std::vector<size_t> SistCanonicalize(const Dataset& dataset,
                                     const SignalBundle& signals,
                                     const std::vector<size_t>& subset,
                                     double threshold = 0.62);

}  // namespace jocl

#endif  // JOCL_BASELINES_NP_CANONICALIZATION_H_
