#include "baselines/relation_linking.h"

#include <algorithm>

#include "baselines/np_common.h"
#include "text/morph_normalizer.h"
#include "text/tokenizer.h"

namespace jocl {
namespace {

constexpr size_t kRelationFanout = 5;
constexpr size_t kEntityFanout = 4;

}  // namespace

std::vector<int64_t> FalconRelationLink(const Dataset& dataset,
                                        const SignalBundle& signals,
                                        const std::vector<size_t>& subset,
                                        double min_similarity) {
  (void)signals;
  RpSurfaceView view = BuildRpSurfaceView(dataset, subset);
  MorphNormalizer normalizer;
  std::vector<int64_t> surface_link(view.surfaces.size(), kNilId);
  for (size_t s = 0; s < view.surfaces.size(); ++s) {
    const std::string& surface = view.surfaces[s];
    std::string normalized = normalizer.Normalize(surface);
    auto candidates = dataset.ckb.RelationCandidates(surface, kRelationFanout);
    double best = min_similarity;
    for (const auto& candidate : candidates) {
      // Morphological token match against the relation's aliases.
      double score = candidate.score;
      for (const auto& alias : dataset.ckb.RelationAliases(candidate.id)) {
        if (normalizer.Normalize(alias) == normalized) score = 1.0;
      }
      if (score > best) {
        best = score;
        surface_link[s] = candidate.id;
      }
    }
  }
  std::vector<int64_t> links(view.mention_surface.size());
  for (size_t m = 0; m < links.size(); ++m) {
    links[m] = surface_link[view.mention_surface[m]];
  }
  return links;
}

std::vector<int64_t> EarlRelationLink(const Dataset& dataset,
                                      const SignalBundle& signals,
                                      const std::vector<size_t>& subset) {
  (void)signals;
  RpSurfaceView view = BuildRpSurfaceView(dataset, subset);
  std::vector<int64_t> links(view.mention_surface.size(), kNilId);
  for (size_t local = 0; local < view.triples.size(); ++local) {
    const OieTriple& triple = dataset.okb.triple(view.triples[local]);
    auto r_cands =
        dataset.ckb.RelationCandidates(triple.predicate, kRelationFanout);
    auto s_cands = dataset.ckb.EntityCandidates(triple.subject, kEntityFanout);
    auto o_cands = dataset.ckb.EntityCandidates(triple.object, kEntityFanout);
    double best = 0.0;
    for (const auto& rc : r_cands) {
      double density = 0.0;
      for (const auto& sc : s_cands) {
        for (const auto& oc : o_cands) {
          if (dataset.ckb.HasFact(sc.id, rc.id, oc.id)) density += 1.0;
        }
      }
      double score = density + 0.2 * rc.score;
      if (score > best) {
        best = score;
        links[local] = rc.id;
      }
    }
  }
  return links;
}

std::vector<int64_t> KbpearlRelationLink(const Dataset& dataset,
                                         const SignalBundle& signals,
                                         const std::vector<size_t>& subset) {
  (void)signals;
  RpSurfaceView view = BuildRpSurfaceView(dataset, subset);
  std::vector<int64_t> links(view.mention_surface.size(), kNilId);
  for (size_t local = 0; local < view.triples.size(); ++local) {
    const OieTriple& triple = dataset.okb.triple(view.triples[local]);
    auto r_cands =
        dataset.ckb.RelationCandidates(triple.predicate, kRelationFanout);
    auto s_cands = dataset.ckb.EntityCandidates(triple.subject, kEntityFanout);
    auto o_cands = dataset.ckb.EntityCandidates(triple.object, kEntityFanout);
    double best = 0.25;  // abstain threshold
    for (const auto& rc : r_cands) {
      double score = 0.5 * rc.score;
      for (const auto& sc : s_cands) {
        for (const auto& oc : o_cands) {
          if (dataset.ckb.HasFact(sc.id, rc.id, oc.id)) {
            score += 0.5 * (sc.popularity + oc.popularity) + 0.5;
          }
        }
      }
      if (score > best) {
        best = score;
        links[local] = rc.id;
      }
    }
  }
  return links;
}

std::vector<int64_t> RematchRelationLink(const Dataset& dataset,
                                         const SignalBundle& signals,
                                         const std::vector<size_t>& subset,
                                         double min_similarity) {
  (void)signals;
  RpSurfaceView view = BuildRpSurfaceView(dataset, subset);
  std::vector<int64_t> surface_link(view.surfaces.size(), kNilId);
  for (size_t s = 0; s < view.surfaces.size(); ++s) {
    const std::string& surface = view.surfaces[s];
    auto candidates = dataset.ckb.RelationCandidates(surface, kRelationFanout);
    double best = min_similarity;
    for (const auto& candidate : candidates) {
      const std::string& name = dataset.ckb.relation(candidate.id).name;
      double score = 0.5 * SignalBundle::Ngram(surface, name) +
                     0.5 * SignalBundle::Ld(surface, name);
      for (const auto& alias : dataset.ckb.RelationAliases(candidate.id)) {
        score = std::max(score, 0.5 * SignalBundle::Ngram(surface, alias) +
                                    0.5 * SignalBundle::Ld(surface, alias));
      }
      if (score > best) {
        best = score;
        surface_link[s] = candidate.id;
      }
    }
  }
  std::vector<int64_t> links(view.mention_surface.size());
  for (size_t m = 0; m < links.size(); ++m) {
    links[m] = surface_link[view.mention_surface[m]];
  }
  return links;
}

}  // namespace jocl
