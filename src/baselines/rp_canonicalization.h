#ifndef JOCL_BASELINES_RP_CANONICALIZATION_H_
#define JOCL_BASELINES_RP_CANONICALIZATION_H_

#include <cstddef>
#include <vector>

#include "baselines/np_common.h"
#include "core/signals.h"
#include "data/dataset.h"

namespace jocl {

/// All baselines return cluster labels per RP mention (1 per triple of the
/// subset), comparable with `Dataset::GoldRpLabels()` on those mentions.

/// \brief AMIE (Galárraga et al. 2013): RPs connected by bidirectional
/// Horn rules (support & confidence thresholds) form one group. Coverage
/// is sparse — most RPs never reach the support threshold (paper §4.2.2).
std::vector<size_t> AmieCanonicalize(const Dataset& dataset,
                                     const SignalBundle& signals,
                                     const std::vector<size_t>& subset);

/// \brief PATTY-style (Nakashole et al. 2012): RPs sharing enough NP
/// argument pairs (the SOL-pattern support sets) merge, as do RPs equal
/// after morphological normalization (synset membership).
std::vector<size_t> PattyCanonicalize(const Dataset& dataset,
                                      const std::vector<size_t>& subset,
                                      size_t min_shared_pairs = 2);

/// \brief SIST-style RP canonicalization: HAC over a blend of IDF overlap,
/// embeddings, PPDB and the KBP relation-category signal.
std::vector<size_t> SistRpCanonicalize(const Dataset& dataset,
                                       const SignalBundle& signals,
                                       const std::vector<size_t>& subset,
                                       double threshold = 0.6);

}  // namespace jocl

#endif  // JOCL_BASELINES_RP_CANONICALIZATION_H_
