#include "baselines/rp_canonicalization.h"

#include <unordered_map>
#include <unordered_set>

#include "cluster/hac.h"
#include "cluster/union_find.h"
#include "core/signal_cache.h"
#include "text/morph_normalizer.h"

namespace jocl {

std::vector<size_t> AmieCanonicalize(const Dataset& dataset,
                                     const SignalBundle& signals,
                                     const std::vector<size_t>& subset) {
  RpSurfaceView view = BuildRpSurfaceView(dataset, subset);
  // The cache morph-normalizes each RP once; the O(n^2) loop then skips
  // re-normalization entirely (surface ids are positional).
  SignalCacheFamilies families;
  families.embeddings = false;
  families.ppdb = false;
  families.kbp = false;
  SignalCache cache =
      SignalCache::ForPhrases(view.surfaces, signals, families);
  UnionFind uf(view.surfaces.size());
  for (size_t i = 0; i < view.surfaces.size(); ++i) {
    for (size_t j = i + 1; j < view.surfaces.size(); ++j) {
      if (cache.Amie(i, j) > 0.5) uf.Union(i, j);
    }
  }
  return SurfaceToMentionLabels(view.mention_surface, uf.Labels());
}

std::vector<size_t> PattyCanonicalize(const Dataset& dataset,
                                      const std::vector<size_t>& subset,
                                      size_t min_shared_pairs) {
  RpSurfaceView view = BuildRpSurfaceView(dataset, subset);
  MorphNormalizer normalizer;
  UnionFind uf(view.surfaces.size());

  // Synset membership: equal after morphological normalization.
  std::unordered_map<std::string, size_t> norm_first;
  for (size_t s = 0; s < view.surfaces.size(); ++s) {
    std::string norm = normalizer.Normalize(view.surfaces[s]);
    auto [it, inserted] = norm_first.emplace(norm, s);
    if (!inserted) uf.Union(it->second, s);
  }

  // SOL-pattern support sets: normalized (subject, object) pairs per RP.
  std::vector<std::unordered_set<std::string>> support(view.surfaces.size());
  for (size_t local = 0; local < view.triples.size(); ++local) {
    const OieTriple& triple = dataset.okb.triple(view.triples[local]);
    std::string key = normalizer.Normalize(triple.subject) + "\x1f" +
                      normalizer.Normalize(triple.object);
    support[view.mention_surface[local]].insert(key);
  }
  // Invert: argument pair -> RPs; merge RPs sharing enough pairs.
  std::unordered_map<std::string, std::vector<size_t>> by_pair;
  for (size_t s = 0; s < view.surfaces.size(); ++s) {
    for (const auto& key : support[s]) by_pair[key].push_back(s);
  }
  std::unordered_map<uint64_t, size_t> shared_counts;
  for (const auto& [key, members] : by_pair) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        uint64_t pk = (static_cast<uint64_t>(members[i]) << 32) | members[j];
        if (++shared_counts[pk] >= min_shared_pairs) {
          uf.Union(members[i], members[j]);
        }
      }
    }
  }
  return SurfaceToMentionLabels(view.mention_surface, uf.Labels());
}

std::vector<size_t> SistRpCanonicalize(const Dataset& dataset,
                                       const SignalBundle& signals,
                                       const std::vector<size_t>& subset,
                                       double threshold) {
  RpSurfaceView view = BuildRpSurfaceView(dataset, subset);
  SignalCacheFamilies families;
  families.amie = false;
  SignalCache cache =
      SignalCache::ForPhrases(view.surfaces, signals, families);
  HacOptions options;
  options.threshold = threshold;
  options.linkage = Linkage::kAverage;
  Hac hac(options);
  std::vector<size_t> labels =
      hac.Cluster(view.surfaces.size(), [&](size_t i, size_t j) {
        if (cache.Ppdb(i, j) > 0.5) return 1.0;
        if (cache.Kbp(i, j) > 0.5) return 1.0;
        return 0.5 * cache.Emb(i, j) +
               0.5 * signals.rp_idf.Similarity(view.surfaces[i],
                                               view.surfaces[j]);
      });
  return SurfaceToMentionLabels(view.mention_surface, labels);
}

}  // namespace jocl
