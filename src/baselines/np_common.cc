#include "baselines/np_common.h"

#include <algorithm>
#include <unordered_map>

namespace jocl {

NpSurfaceView BuildNpSurfaceView(const Dataset& dataset,
                                 const std::vector<size_t>& subset) {
  NpSurfaceView view;
  view.triples = subset;
  std::sort(view.triples.begin(), view.triples.end());
  view.triples.erase(std::unique(view.triples.begin(), view.triples.end()),
                     view.triples.end());
  std::unordered_map<std::string, size_t> index;
  auto intern = [&](const std::string& phrase) {
    auto [it, inserted] = index.emplace(phrase, view.surfaces.size());
    if (inserted) view.surfaces.push_back(phrase);
    return it->second;
  };
  for (size_t t : view.triples) {
    const OieTriple& triple = dataset.okb.triple(t);
    view.mention_surface.push_back(intern(triple.subject));
    view.mention_surface.push_back(intern(triple.object));
  }
  return view;
}

RpSurfaceView BuildRpSurfaceView(const Dataset& dataset,
                                 const std::vector<size_t>& subset) {
  RpSurfaceView view;
  view.triples = subset;
  std::sort(view.triples.begin(), view.triples.end());
  view.triples.erase(std::unique(view.triples.begin(), view.triples.end()),
                     view.triples.end());
  std::unordered_map<std::string, size_t> index;
  for (size_t t : view.triples) {
    const std::string& phrase = dataset.okb.triple(t).predicate;
    auto [it, inserted] = index.emplace(phrase, view.surfaces.size());
    if (inserted) view.surfaces.push_back(phrase);
    view.mention_surface.push_back(it->second);
  }
  return view;
}

std::vector<size_t> SurfaceToMentionLabels(
    const std::vector<size_t>& mention_surface,
    const std::vector<size_t>& surface_labels) {
  std::vector<size_t> labels(mention_surface.size());
  for (size_t m = 0; m < mention_surface.size(); ++m) {
    labels[m] = surface_labels[mention_surface[m]];
  }
  return labels;
}

}  // namespace jocl
