#ifndef JOCL_BASELINES_RELATION_LINKING_H_
#define JOCL_BASELINES_RELATION_LINKING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/signals.h"
#include "data/dataset.h"

namespace jocl {

/// All relation-linking baselines return a CKB relation id (or kNilId) per
/// RP mention (1 per triple of the subset).

/// \brief Falcon-style relation linking: morphology-normalized token match
/// against relation names/aliases, n-gram fallback.
std::vector<int64_t> FalconRelationLink(const Dataset& dataset,
                                        const SignalBundle& signals,
                                        const std::vector<size_t>& subset,
                                        double min_similarity = 0.55);

/// \brief EARL-style relation linking: candidates re-ranked by how well the
/// relation connects the top entity candidates of the triple's NPs.
std::vector<int64_t> EarlRelationLink(const Dataset& dataset,
                                      const SignalBundle& signals,
                                      const std::vector<size_t>& subset);

/// \brief KBPearl-style relation linking: the relation chosen by the joint
/// triple assignment (fact inclusion first, surface similarity second).
std::vector<int64_t> KbpearlRelationLink(const Dataset& dataset,
                                         const SignalBundle& signals,
                                         const std::vector<size_t>& subset);

/// \brief Rematch-style: pure surface matching of the RP against relation
/// names and aliases with n-gram + Levenshtein blend.
std::vector<int64_t> RematchRelationLink(const Dataset& dataset,
                                         const SignalBundle& signals,
                                         const std::vector<size_t>& subset,
                                         double min_similarity = 0.35);

}  // namespace jocl

#endif  // JOCL_BASELINES_RELATION_LINKING_H_
