#include "baselines/np_canonicalization.h"

#include <unordered_map>
#include <unordered_set>

#include "cluster/hac.h"
#include "cluster/union_find.h"
#include "core/signal_cache.h"
#include "text/morph_normalizer.h"
#include "text/similarity.h"

namespace jocl {
namespace {

// Clusters surfaces with HAC over an index-based similarity and maps back
// to mentions.
std::vector<size_t> HacOverSurfaceIds(
    const NpSurfaceView& view, double threshold, Linkage linkage,
    const std::function<double(size_t, size_t)>& similarity) {
  HacOptions options;
  options.threshold = threshold;
  options.linkage = linkage;
  Hac hac(options);
  return SurfaceToMentionLabels(
      view.mention_surface, hac.Cluster(view.surfaces.size(), similarity));
}

// Same, over surface strings.
std::vector<size_t> HacOverSurfaces(
    const NpSurfaceView& view, double threshold, Linkage linkage,
    const std::function<double(const std::string&, const std::string&)>&
        similarity) {
  return HacOverSurfaceIds(view, threshold, linkage,
                           [&](size_t i, size_t j) {
                             return similarity(view.surfaces[i],
                                               view.surfaces[j]);
                           });
}

}  // namespace

std::vector<size_t> MorphNormCanonicalize(const Dataset& dataset,
                                          const std::vector<size_t>& subset) {
  NpSurfaceView view = BuildNpSurfaceView(dataset, subset);
  MorphNormalizer normalizer;
  std::unordered_map<std::string, size_t> groups;
  std::vector<size_t> surface_labels(view.surfaces.size());
  for (size_t s = 0; s < view.surfaces.size(); ++s) {
    std::string norm = normalizer.Normalize(view.surfaces[s]);
    auto [it, inserted] = groups.emplace(norm, groups.size());
    surface_labels[s] = it->second;
  }
  return SurfaceToMentionLabels(view.mention_surface, surface_labels);
}

std::vector<size_t> WikidataIntegratorCanonicalize(
    const Dataset& dataset, const std::vector<size_t>& subset) {
  NpSurfaceView view = BuildNpSurfaceView(dataset, subset);
  std::vector<size_t> surface_labels(view.surfaces.size());
  std::unordered_map<int64_t, size_t> entity_groups;
  size_t next_label = 0;
  for (size_t s = 0; s < view.surfaces.size(); ++s) {
    // A dictionary-based linker resolves against the label/alias tables
    // only — no fuzzy search (that generosity is not in the real tool).
    auto candidates = dataset.ckb.ExactAnchorCandidates(view.surfaces[s], 1);
    if (candidates.empty()) {
      surface_labels[s] = next_label++;  // unlinked -> singleton
      continue;
    }
    auto [it, inserted] =
        entity_groups.emplace(candidates.front().id, next_label);
    if (inserted) ++next_label;
    surface_labels[s] = it->second;
  }
  return SurfaceToMentionLabels(view.mention_surface, surface_labels);
}

std::vector<size_t> TextSimilarityCanonicalize(
    const Dataset& dataset, const std::vector<size_t>& subset,
    double threshold) {
  NpSurfaceView view = BuildNpSurfaceView(dataset, subset);
  return HacOverSurfaces(view, threshold, Linkage::kAverage,
                         [](const std::string& a, const std::string& b) {
                           return JaroWinklerSimilarity(a, b);
                         });
}

std::vector<size_t> IdfTokenOverlapCanonicalize(
    const Dataset& dataset, const SignalBundle& signals,
    const std::vector<size_t>& subset, double threshold) {
  NpSurfaceView view = BuildNpSurfaceView(dataset, subset);
  return HacOverSurfaces(view, threshold, Linkage::kAverage,
                         [&](const std::string& a, const std::string& b) {
                           return signals.np_idf.Similarity(a, b);
                         });
}

std::vector<size_t> AttributeOverlapCanonicalize(
    const Dataset& dataset, const std::vector<size_t>& subset,
    double threshold) {
  NpSurfaceView view = BuildNpSurfaceView(dataset, subset);
  // Attribute set of an NP surface: the normalized RPs it occurs with.
  MorphNormalizer normalizer;
  std::vector<std::unordered_set<std::string>> attributes(
      view.surfaces.size());
  for (size_t local = 0; local < view.triples.size(); ++local) {
    const OieTriple& triple = dataset.okb.triple(view.triples[local]);
    std::string rp = normalizer.Normalize(triple.predicate);
    attributes[view.mention_surface[local * 2]].insert(rp);
    attributes[view.mention_surface[local * 2 + 1]].insert("inv " + rp);
  }
  std::unordered_map<std::string, size_t> surface_index;
  for (size_t s = 0; s < view.surfaces.size(); ++s) {
    surface_index.emplace(view.surfaces[s], s);
  }
  return HacOverSurfaces(
      view, threshold, Linkage::kAverage,
      [&](const std::string& a, const std::string& b) {
        return JaccardSimilarity(attributes[surface_index.at(a)],
                                 attributes[surface_index.at(b)]);
      });
}

std::vector<size_t> CesiCanonicalize(const Dataset& dataset,
                                     const SignalBundle& signals,
                                     const std::vector<size_t>& subset,
                                     double threshold) {
  NpSurfaceView view = BuildNpSurfaceView(dataset, subset);
  // HAC evaluates O(n^2) pairs; the cache reduces each to a dot product
  // (surface ids are positional: view.surfaces is distinct).
  SignalCacheFamilies families;
  families.embeddings = false;
  families.triple_embeddings = true;
  families.amie = false;
  families.kbp = false;
  SignalCache cache =
      SignalCache::ForPhrases(view.surfaces, signals, families);
  return HacOverSurfaceIds(
      view, threshold, Linkage::kAverage, [&](size_t i, size_t j) {
        // PPDB is a hard side-information short-circuit in CESI's
        // embedding objective; otherwise blend embeddings with IDF
        // overlap. CESI's embeddings are trained on the OKB triples only —
        // it has no access to the source text (that is SIST's edge).
        if (cache.Ppdb(i, j) > 0.5) return 1.0;
        return 0.6 * cache.TripleEmb(i, j) +
               0.4 * signals.np_idf.Similarity(view.surfaces[i],
                                               view.surfaces[j]);
      });
}

std::vector<size_t> SistCanonicalize(const Dataset& dataset,
                                     const SignalBundle& signals,
                                     const std::vector<size_t>& subset,
                                     double threshold) {
  NpSurfaceView view = BuildNpSurfaceView(dataset, subset);
  // SIST's source-text side info: candidate entities of each NP. Agreement
  // on the top candidate boosts the pair proportionally to how confident
  // both readings are (an unconfident agreement must not force a merge).
  std::vector<int64_t> top_candidate(view.surfaces.size(), kNilId);
  std::vector<double> top_confidence(view.surfaces.size(), 0.0);
  for (size_t s = 0; s < view.surfaces.size(); ++s) {
    auto candidates = dataset.ckb.EntityCandidates(view.surfaces[s], 1);
    if (!candidates.empty()) {
      top_candidate[s] = candidates.front().id;
      top_confidence[s] = candidates.front().popularity;
    }
  }
  SignalCacheFamilies families;
  families.amie = false;
  families.kbp = false;
  SignalCache cache =
      SignalCache::ForPhrases(view.surfaces, signals, families);
  return HacOverSurfaceIds(
      view, threshold, Linkage::kAverage, [&](size_t ia, size_t ib) {
        if (cache.Ppdb(ia, ib) > 0.5) return 1.0;
        double base = 0.6 * cache.Emb(ia, ib) +
                      0.4 * signals.np_idf.Similarity(view.surfaces[ia],
                                                      view.surfaces[ib]);
        if (top_candidate[ia] != kNilId &&
            top_candidate[ia] == top_candidate[ib]) {
          double agreement = std::min(top_confidence[ia], top_confidence[ib]);
          // Agreement merges only when confident AND the pair is at least
          // weakly plausible on its own (blocks confidently-wrong shared
          // readings between unrelated phrases).
          if (agreement >= 0.65 && base >= 0.33) {
            base = std::max(base, 0.62 + 0.38 * agreement);
          }
        }
        return base;
      });
}

}  // namespace jocl
