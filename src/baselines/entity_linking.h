#ifndef JOCL_BASELINES_ENTITY_LINKING_H_
#define JOCL_BASELINES_ENTITY_LINKING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/signals.h"
#include "data/dataset.h"

namespace jocl {

/// All entity-linking baselines return a CKB entity id (or kNilId) per NP
/// mention (2 per triple of the subset, subject then object), comparable
/// against the gold entity of each mention.

/// \brief DBpedia-Spotlight-style: per-mention argmax of the anchor
/// popularity prior blended with surface similarity; abstains below a
/// confidence threshold.
std::vector<int64_t> SpotlightLink(const Dataset& dataset,
                                   const SignalBundle& signals,
                                   const std::vector<size_t>& subset,
                                   double confidence = 0.25);

/// \brief TagMe-style: a Wikipedia-anchor "spot" dictionary (surfaces with
/// at least `min_spot_count` anchor occurrences), a commonness prior with
/// aggressive low-commonness pruning (ε), and a one-triple collective
/// agreement vote. Spot pruning + ε are what make TagMe precise on short
/// text but low-recall on OIE triples (paper Table 3: 0.316 on ReVerb45K).
std::vector<int64_t> TagMeLink(const Dataset& dataset,
                               const SignalBundle& signals,
                               const std::vector<size_t>& subset,
                               double epsilon = 0.8,
                               int64_t min_spot_count = 500);

/// \brief Falcon-style: English-morphology-driven — exact match of the
/// normalized surface against the extended alias KG wins; otherwise the
/// n-gram-closest candidate above a tight threshold.
std::vector<int64_t> FalconLink(const Dataset& dataset,
                                const SignalBundle& signals,
                                const std::vector<size_t>& subset,
                                double min_similarity = 0.8);

/// \brief EARL-style: a GTSP over the candidate sets of one triple's
/// mentions, solved greedily over connection density (facts between the
/// chosen subject/object candidates).
std::vector<int64_t> EarlLink(const Dataset& dataset,
                              const SignalBundle& signals,
                              const std::vector<size_t>& subset);

/// \brief KBPearl-style: joint triple-level assignment maximizing
/// popularity + surface similarity + fact inclusion over the candidate
/// cross product.
std::vector<int64_t> KbpearlLink(const Dataset& dataset,
                                 const SignalBundle& signals,
                                 const std::vector<size_t>& subset);

}  // namespace jocl

#endif  // JOCL_BASELINES_ENTITY_LINKING_H_
