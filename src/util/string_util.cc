#include "util/string_util.h"

#include <cctype>
#include <cstddef>

namespace jocl {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      pieces.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) pieces.emplace_back(input.substr(start, i - start));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view input, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(input);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = input.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(input.substr(pos));
      return out;
    }
    out.append(input.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

}  // namespace jocl
