#ifndef JOCL_UTIL_IDS_H_
#define JOCL_UTIL_IDS_H_

#include <cstdint>

namespace jocl {

/// \brief Sentinel id meaning "no entity / no relation / NIL".
///
/// Used as the NIL state of linking variables, as the gold label of
/// unlinkable mentions, and as the not-found return of KB lookups.
inline constexpr int64_t kNilId = -1;

}  // namespace jocl

#endif  // JOCL_UTIL_IDS_H_
