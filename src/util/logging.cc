#include "util/logging.h"

#include <cstdio>

namespace jocl {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

Logger& Logger::Global() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(threshold_)) return;
  std::fprintf(stderr, "[jocl %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace jocl
