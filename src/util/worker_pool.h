#ifndef JOCL_UTIL_WORKER_POOL_H_
#define JOCL_UTIL_WORKER_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

namespace jocl {

/// \brief Runs `task(i)` for every i in [0, count) on \p num_threads
/// workers, heaviest first per \p weight_of — the shared work-queue of
/// the sharded runtime, session and learner.
///
/// Tasks are drained from one atomic queue sorted by descending
/// weight_of(i) (ties to the lower index) so stragglers start early;
/// num_threads <= 1 degenerates to a plain sequential loop in queue
/// order. Execution order and thread assignment are scheduling-only:
/// callers' tasks must write to disjoint state (as shard scatters and
/// per-component learners do), which is what keeps every runtime's
/// output byte-identical for any thread count.
template <typename Weight, typename Task>
void RunOnPool(size_t count, size_t num_threads, Weight&& weight_of,
               Task&& task) {
  std::vector<size_t> queue(count);
  std::iota(queue.begin(), queue.end(), 0);
  std::sort(queue.begin(), queue.end(), [&](size_t a, size_t b) {
    const size_t wa = weight_of(a);
    const size_t wb = weight_of(b);
    if (wa != wb) return wa > wb;
    return a < b;
  });
  num_threads = std::min(num_threads, std::max<size_t>(1, count));
  if (num_threads <= 1) {
    for (size_t i : queue) task(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i; (i = next.fetch_add(1)) < queue.size();) {
      task(queue[i]);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();
}

}  // namespace jocl

#endif  // JOCL_UTIL_WORKER_POOL_H_
