#ifndef JOCL_UTIL_LOGGING_H_
#define JOCL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace jocl {

/// \brief Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Minimal leveled logger writing to stderr.
///
/// Benchmarks and long-running training loops use this for progress
/// reporting; tests silence it by raising the threshold. Not thread-safe by
/// design (the library is single-threaded per pipeline instance).
class Logger {
 public:
  /// Returns the process-wide logger.
  static Logger& Global();

  /// Messages below this level are discarded. Default: kInfo.
  void set_threshold(LogLevel level) { threshold_ = level; }
  LogLevel threshold() const { return threshold_; }

  /// Emits one line at the given level (no-op below threshold).
  void Log(LogLevel level, const std::string& message);

 private:
  LogLevel threshold_ = LogLevel::kInfo;
};

namespace internal {

/// RAII line builder backing the JOCL_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Global().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Streams one log line: `JOCL_LOG(kInfo) << "built " << n << " factors";`
#define JOCL_LOG(level) \
  ::jocl::internal::LogMessage(::jocl::LogLevel::level)

}  // namespace jocl

#endif  // JOCL_UTIL_LOGGING_H_
