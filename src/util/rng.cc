#include "util/rng.h"

#include <algorithm>
#include <cstddef>
#include <cmath>

namespace jocl {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(0.0, weights[i]);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split(uint64_t tag) {
  uint64_t mixed = NextUint64() ^ (tag * 0xD1B54A32D192ED03ULL);
  return Rng(mixed);
}

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  if (n == 0) n = 1;
  cumulative_.resize(n);
  double acc = 0.0;
  for (size_t rank = 0; rank < n; ++rank) {
    acc += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cumulative_[rank] = acc;
  }
  for (double& c : cumulative_) c /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) return cumulative_.size() - 1;
  return static_cast<size_t>(it - cumulative_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  if (rank >= cumulative_.size()) return 0.0;
  if (rank == 0) return cumulative_[0];
  return cumulative_[rank] - cumulative_[rank - 1];
}

}  // namespace jocl
