#ifndef JOCL_UTIL_STOPWATCH_H_
#define JOCL_UTIL_STOPWATCH_H_

#include <chrono>

namespace jocl {

/// \brief Wall-clock stopwatch used by benches for coarse phase timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace jocl

#endif  // JOCL_UTIL_STOPWATCH_H_
