#ifndef JOCL_UTIL_STATUS_H_
#define JOCL_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace jocl {

/// \brief Machine-readable category of a Status.
///
/// Mirrors the error taxonomy used by Arrow / RocksDB style databases code:
/// a small closed set of codes plus a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kInternal = 7,
};

/// \brief Returns the canonical lowercase name of a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail but returns no value.
///
/// The library does not use exceptions for control flow; fallible operations
/// return `Status` (or `Result<T>` when they produce a value). A default
/// constructed Status is OK and carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers, one per code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// @}

  /// Returns true iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// Returns the status code.
  StatusCode code() const { return code_; }

  /// Returns the attached message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Returns early with the given status if it is not OK.
#define JOCL_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::jocl::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace jocl

#endif  // JOCL_UTIL_STATUS_H_
