#ifndef JOCL_UTIL_RNG_H_
#define JOCL_UTIL_RNG_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace jocl {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every randomized component in the library (data generators, embedding
/// trainer, negative sampling, baselines that break ties randomly) takes an
/// `Rng` seeded explicitly so that experiments are exactly reproducible.
/// The generator is seeded through splitmix64, which whitens poor seeds.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (any value is fine).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a uniform integer in `[0, bound)`; requires `bound > 0`.
  /// Uses rejection sampling, so the distribution is exactly uniform.
  uint64_t UniformUint64(uint64_t bound);

  /// Returns a uniform integer in `[lo, hi]` inclusive; requires `lo <= hi`.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in `[0, 1)`.
  double UniformDouble();

  /// Returns a uniform double in `[lo, hi)`.
  double UniformDouble(double lo, double hi);

  /// Returns true with probability \p p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a standard normal sample (Box-Muller, cached spare).
  double Normal();

  /// Returns a normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns an index in `[0, weights.size())` sampled proportionally to
  /// the (non-negative) weights. Returns 0 when all weights are zero.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffles \p items in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Splits off an independently-seeded child generator. Children derived
  /// with distinct tags have decorrelated streams.
  Rng Split(uint64_t tag);

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// \brief Samples ranks from a Zipf(s) distribution over `{0, .., n-1}`.
///
/// Used to model Wikipedia-anchor popularity: a handful of surface forms and
/// entities dominate the mass. Sampling is inverse-CDF over precomputed
/// cumulative weights, O(log n) per draw.
class ZipfSampler {
 public:
  /// \param n number of ranks; must be >= 1.
  /// \param exponent the Zipf exponent `s` (1.0 is the classic law).
  ZipfSampler(size_t n, double exponent);

  /// Draws one rank in `[0, n)`; rank 0 is the most popular.
  size_t Sample(Rng* rng) const;

  /// Probability mass of the given rank.
  double Pmf(size_t rank) const;

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized inclusive prefix sums
};

}  // namespace jocl

#endif  // JOCL_UTIL_RNG_H_
