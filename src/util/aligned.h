#ifndef JOCL_UTIL_ALIGNED_H_
#define JOCL_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace jocl {

/// \brief Cache-line alignment of the LBP arena base pointers (bytes).
inline constexpr size_t kArenaAlignment = 64;

/// \brief Alignment of an individual message lane within an arena (bytes).
///
/// 32 bytes = one AVX2 vector = four doubles. Per-edge and per-variable
/// lanes are padded to a multiple of this (CompiledGraph lane offsets), so
/// every lane starts on a vector boundary the auto-vectorizer can use
/// without peeling. The quantum is deliberately smaller than a cache line:
/// most JOCL edges are binary, and padding each to 64 bytes would
/// quadruple arena traffic for no vector win.
inline constexpr size_t kLaneAlignment = 32;

/// \brief Doubles per arena lane quantum (kLaneAlignment / sizeof(double)).
inline constexpr size_t kLaneDoubles = kLaneAlignment / sizeof(double);

/// \brief Rounds \p n up to a multiple of \p quantum (quantum > 0).
inline constexpr size_t RoundUpTo(size_t n, size_t quantum) {
  return (n + quantum - 1) / quantum * quantum;
}

/// \brief Minimal std::allocator drop-in with guaranteed over-alignment.
///
/// std::vector<double> only guarantees alignof(double); the vectorized
/// LBP kernels want cache-line-aligned arena bases. C++17 aligned
/// operator new handles the allocation; the allocator is stateless, so
/// all instances compare equal.
template <typename T, size_t Alignment = kArenaAlignment>
struct AlignedAllocator {
  using value_type = T;

  static_assert(Alignment >= alignof(T), "alignment under-aligns T");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, size_t n) {
    (void)n;
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// \brief A std::vector whose storage starts on a cache-line boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// \brief Tells the compiler \p p is kLaneAlignment-aligned (no-op at
/// runtime; unlocks unpeeled vector loads in the kernels).
inline double* AssumeLaneAligned(double* p) {
  return static_cast<double*>(__builtin_assume_aligned(p, kLaneAlignment));
}
inline const double* AssumeLaneAligned(const double* p) {
  return static_cast<const double*>(
      __builtin_assume_aligned(p, kLaneAlignment));
}

}  // namespace jocl

#endif  // JOCL_UTIL_ALIGNED_H_
