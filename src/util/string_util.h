#ifndef JOCL_UTIL_STRING_UTIL_H_
#define JOCL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace jocl {

/// \brief Splits \p input on the single-character delimiter; empty pieces are
/// kept so that round-tripping with Join is lossless.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// \brief Splits \p input on runs of ASCII whitespace; empty pieces dropped.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// \brief Joins \p pieces with \p separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// \brief Returns \p input with leading/trailing ASCII whitespace removed.
std::string Trim(std::string_view input);

/// \brief ASCII lower-cases \p input.
std::string ToLower(std::string_view input);

/// \brief Returns true if \p text starts with \p prefix.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief Returns true if \p text ends with \p suffix.
bool EndsWith(std::string_view text, std::string_view suffix);

/// \brief Replaces every occurrence of \p from with \p to.
std::string ReplaceAll(std::string_view input, std::string_view from,
                       std::string_view to);

}  // namespace jocl

#endif  // JOCL_UTIL_STRING_UTIL_H_
