#ifndef JOCL_UTIL_RESULT_H_
#define JOCL_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace jocl {

/// \brief Either a value of type T or a non-OK Status.
///
/// The database-library analogue of `arrow::Result`: fallible producers
/// return `Result<T>`; callers test `ok()` and then take the value. Accessing
/// the value of an errored result is a programming error (asserts in debug).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// Returns true iff a value is present.
  bool ok() const { return status_.ok(); }

  /// Returns the status (OK when a value is present).
  const Status& status() const { return status_; }

  /// Returns the contained value; requires `ok()`.
  const T& ValueOrDie() const {
    assert(ok() && "ValueOrDie() on errored Result");
    return *value_;
  }

  /// Returns the contained value; requires `ok()`.
  T& ValueOrDie() {
    assert(ok() && "ValueOrDie() on errored Result");
    return *value_;
  }

  /// Moves the contained value out; requires `ok()`.
  T MoveValueOrDie() {
    assert(ok() && "MoveValueOrDie() on errored Result");
    return std::move(*value_);
  }

  /// Returns the value if present, else \p fallback.
  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// \brief Assigns the value of a Result expression to `lhs`, or returns its
/// error status from the enclosing function.
#define JOCL_ASSIGN_OR_RETURN(lhs, rexpr)        \
  auto _result_##__LINE__ = (rexpr);             \
  if (!_result_##__LINE__.ok()) {                \
    return _result_##__LINE__.status();          \
  }                                              \
  lhs = _result_##__LINE__.MoveValueOrDie()

}  // namespace jocl

#endif  // JOCL_UTIL_RESULT_H_
