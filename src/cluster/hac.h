#ifndef JOCL_CLUSTER_HAC_H_
#define JOCL_CLUSTER_HAC_H_

#include <functional>
#include <cstddef>
#include <vector>

namespace jocl {

/// \brief Linkage criteria for hierarchical agglomerative clustering.
enum class Linkage {
  kSingle,    ///< cluster similarity = max pairwise similarity
  kComplete,  ///< cluster similarity = min pairwise similarity
  kAverage,   ///< cluster similarity = mean pairwise similarity
};

/// \brief Options for a HAC run.
struct HacOptions {
  Linkage linkage = Linkage::kComplete;
  /// Merging stops when the best available cluster similarity drops below
  /// this threshold (similarities, not distances — higher is closer).
  double threshold = 0.5;
};

/// \brief Hierarchical agglomerative clustering over a user similarity.
///
/// The canonicalization baselines (Text Similarity, IDF Token Overlap, CESI,
/// SIST — Galárraga et al. 2014; Vashishth et al. 2018; Lin & Chen 2019) all
/// cluster with HAC over different similarity functions; this is the shared
/// engine. Runs on a dense n×n similarity matrix via the Lance-Williams
/// style iterative merge, O(n^2 log n) with a candidate heap.
class Hac {
 public:
  explicit Hac(HacOptions options = {}) : options_(options) {}

  /// Clusters items `0..n-1` given a symmetric pairwise similarity callback.
  /// Returns cluster labels in `[0, k)`. \p similarity must be symmetric;
  /// only the upper triangle is evaluated.
  std::vector<size_t> Cluster(
      size_t n, const std::function<double(size_t, size_t)>& similarity) const;

  /// As above but with a precomputed dense matrix (row-major, n×n).
  std::vector<size_t> ClusterMatrix(size_t n,
                                    const std::vector<double>& matrix) const;

 private:
  HacOptions options_;
};

}  // namespace jocl

#endif  // JOCL_CLUSTER_HAC_H_
