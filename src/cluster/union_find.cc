#include "cluster/union_find.h"

#include <unordered_map>
#include <cstddef>

namespace jocl {

UnionFind::UnionFind(size_t n)
    : parent_(n), rank_(n, 0), set_count_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = i;
}

size_t UnionFind::Find(size_t id) {
  size_t root = id;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[id] != root) {
    size_t next = parent_[id];
    parent_[id] = root;
    id = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --set_count_;
  return true;
}

bool UnionFind::Connected(size_t a, size_t b) { return Find(a) == Find(b); }

std::vector<size_t> UnionFind::Labels() {
  std::vector<size_t> labels(parent_.size());
  std::unordered_map<size_t, size_t> root_to_label;
  root_to_label.reserve(set_count_);
  for (size_t i = 0; i < parent_.size(); ++i) {
    size_t root = Find(i);
    auto [it, inserted] = root_to_label.emplace(root, root_to_label.size());
    labels[i] = it->second;
  }
  return labels;
}

std::vector<std::vector<size_t>> UnionFind::Groups() {
  std::vector<size_t> labels = Labels();
  std::vector<std::vector<size_t>> groups(set_count_);
  for (size_t i = 0; i < labels.size(); ++i) {
    groups[labels[i]].push_back(i);
  }
  return groups;
}

}  // namespace jocl
