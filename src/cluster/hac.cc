#include "cluster/hac.h"

#include <limits>
#include <cstddef>
#include <queue>

#include "cluster/union_find.h"

namespace jocl {
namespace {

struct Candidate {
  double similarity;
  size_t a;  // cluster ids at push time
  size_t b;
  bool operator<(const Candidate& other) const {
    // max-heap on similarity; tie-break on ids for determinism
    if (similarity != other.similarity) return similarity < other.similarity;
    if (a != other.a) return a > other.a;
    return b > other.b;
  }
};

}  // namespace

std::vector<size_t> Hac::Cluster(
    size_t n, const std::function<double(size_t, size_t)>& similarity) const {
  if (n == 0) return {};
  std::vector<double> matrix(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    matrix[i * n + i] = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      double s = similarity(i, j);
      matrix[i * n + j] = s;
      matrix[j * n + i] = s;
    }
  }
  return ClusterMatrix(n, matrix);
}

std::vector<size_t> Hac::ClusterMatrix(
    size_t n, const std::vector<double>& matrix) const {
  if (n == 0) return {};
  // Working similarity between current clusters; entry [i][j] is only valid
  // while both i and j are alive. Cluster ids are reused from members: the
  // merged cluster keeps the smaller id, the other dies.
  std::vector<double> sim(matrix);
  std::vector<bool> alive(n, true);
  std::vector<size_t> cluster_size(n, 1);
  UnionFind uf(n);

  std::priority_queue<Candidate> heap;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (sim[i * n + j] >= options_.threshold) {
        heap.push({sim[i * n + j], i, j});
      }
    }
  }

  while (!heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (!alive[top.a] || !alive[top.b]) continue;
    // Stale entry: the stored similarity must match the current value.
    if (sim[top.a * n + top.b] != top.similarity) continue;
    if (top.similarity < options_.threshold) break;

    size_t keep = top.a < top.b ? top.a : top.b;
    size_t drop = top.a < top.b ? top.b : top.a;
    uf.Union(keep, drop);
    alive[drop] = false;

    // Lance-Williams update of similarities to the merged cluster.
    for (size_t k = 0; k < n; ++k) {
      if (!alive[k] || k == keep) continue;
      double s_keep = sim[keep * n + k];
      double s_drop = sim[drop * n + k];
      double merged = 0.0;
      switch (options_.linkage) {
        case Linkage::kSingle:
          merged = std::max(s_keep, s_drop);
          break;
        case Linkage::kComplete:
          merged = std::min(s_keep, s_drop);
          break;
        case Linkage::kAverage: {
          double wa = static_cast<double>(cluster_size[keep]);
          double wb = static_cast<double>(cluster_size[drop]);
          merged = (wa * s_keep + wb * s_drop) / (wa + wb);
          break;
        }
      }
      sim[keep * n + k] = merged;
      sim[k * n + keep] = merged;
      if (merged >= options_.threshold) {
        heap.push({merged, std::min(keep, k), std::max(keep, k)});
      }
    }
    cluster_size[keep] += cluster_size[drop];
  }
  return uf.Labels();
}

}  // namespace jocl
