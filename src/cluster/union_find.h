#ifndef JOCL_CLUSTER_UNION_FIND_H_
#define JOCL_CLUSTER_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jocl {

/// \brief Disjoint-set forest with union-by-rank and path compression.
///
/// Used to materialize canonicalization groups from pairwise same-meaning
/// decisions (the transitive closure of `x_ij = 1` edges) and inside the
/// baselines that group by a shared key.
class UnionFind {
 public:
  /// Creates \p n singleton sets, ids `0..n-1`.
  explicit UnionFind(size_t n);

  /// Returns the representative of \p id's set.
  size_t Find(size_t id);

  /// Merges the sets containing \p a and \p b; returns true if they were
  /// previously distinct.
  bool Union(size_t a, size_t b);

  /// Returns true iff \p a and \p b are in the same set.
  bool Connected(size_t a, size_t b);

  /// Number of elements.
  size_t size() const { return parent_.size(); }

  /// Number of distinct sets.
  size_t set_count() const { return set_count_; }

  /// Materializes the current partition as cluster-id labels in
  /// `[0, set_count)`, in first-appearance order (deterministic).
  std::vector<size_t> Labels();

  /// Materializes the partition as explicit member lists.
  std::vector<std::vector<size_t>> Groups();

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  size_t set_count_;
};

}  // namespace jocl

#endif  // JOCL_CLUSTER_UNION_FIND_H_
