#ifndef JOCL_SIDEINFO_KBP_MAPPER_H_
#define JOCL_SIDEINFO_KBP_MAPPER_H_

#include <string>
#include <cstddef>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/types.h"

namespace jocl {

/// \brief A labeled training example for the relation mapper: a relation
/// phrase whose CKB relation is known.
struct KbpExample {
  std::string phrase;
  RelationId relation = kNilId;
};

/// \brief Options for the KBP-style relation mapper.
struct KbpMapperOptions {
  /// Minimum share of token votes the winning relation needs; below this
  /// the phrase is classified NIL (abstain), which keeps the signal
  /// high-precision like the real system.
  double min_vote_share = 0.65;
  /// Additive smoothing applied to token-vote counts.
  double smoothing = 0.1;
};

/// \brief Stanford-KBP-style relation linker (§3.1.4 "KBP").
///
/// The original is a supervised slot-filling system; the algorithmic core
/// the signal needs is "map an RP to a CKB relation category". We reproduce
/// it as a token-evidence classifier: stemmed content tokens vote for the
/// relations they co-occurred with in the (small, noisy) training set.
/// `Sim_KBP(p_i, p_j) = 1` iff both phrases map to the same non-NIL
/// relation, else 0 — the paper's binary feature.
class KbpMapper {
 public:
  explicit KbpMapper(KbpMapperOptions options = {});

  /// Fits token-vote statistics from labeled examples (the validation
  /// split only; no test labels are ever seen).
  void Train(const std::vector<KbpExample>& examples);

  /// Maps a phrase to a relation id, or kNilId when evidence is weak.
  RelationId Classify(std::string_view phrase) const;

  /// The paper's binary similarity between two RPs.
  double Similarity(std::string_view a, std::string_view b) const;

  size_t vocabulary_size() const { return token_votes_.size(); }

 private:
  KbpMapperOptions options_;
  // stemmed token -> relation -> vote count
  std::unordered_map<std::string, std::unordered_map<RelationId, double>>
      token_votes_;
};

}  // namespace jocl

#endif  // JOCL_SIDEINFO_KBP_MAPPER_H_
