#ifndef JOCL_SIDEINFO_PARAPHRASE_STORE_H_
#define JOCL_SIDEINFO_PARAPHRASE_STORE_H_

#include <optional>
#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace jocl {

/// \brief PPDB-style paraphrase collection (§3.1.3 "PPDB").
///
/// Equivalent phrases are grouped into clusters; each cluster has a
/// representative ("each group is randomly assigned a representative").
/// `Sim_PPDB(a, b)` is 1 iff both phrases resolve to the same
/// representative, else 0 — exactly the paper's binary signal. The library
/// populates this store from a noisy synthetic paraphrase model (see
/// `data/`), standing in for the real PPDB 2.0 resource.
class ParaphraseStore {
 public:
  ParaphraseStore() = default;

  /// Registers one paraphrase cluster; the first phrase becomes the
  /// representative. Phrases are matched case-insensitively. A phrase that
  /// already belongs to another cluster keeps its first assignment (PPDB
  /// entries are not merged transitively), so insertion order matters and
  /// callers should insert deterministically.
  void AddCluster(const std::vector<std::string>& phrases);

  /// The cluster representative of \p phrase, if known.
  std::optional<std::string> Representative(std::string_view phrase) const;

  /// The paper's binary similarity: 1.0 when both phrases share a cluster
  /// representative, 0.0 otherwise (including unknown phrases).
  double Similarity(std::string_view a, std::string_view b) const;

  size_t cluster_count() const { return cluster_count_; }
  size_t phrase_count() const { return representative_.size(); }

 private:
  std::unordered_map<std::string, std::string> representative_;
  size_t cluster_count_ = 0;
};

}  // namespace jocl

#endif  // JOCL_SIDEINFO_PARAPHRASE_STORE_H_
