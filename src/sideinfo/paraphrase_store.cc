#include "sideinfo/paraphrase_store.h"

#include "util/string_util.h"

namespace jocl {

void ParaphraseStore::AddCluster(const std::vector<std::string>& phrases) {
  if (phrases.empty()) return;
  std::string rep = ToLower(Trim(phrases.front()));
  bool added_any = false;
  for (const auto& phrase : phrases) {
    std::string key = ToLower(Trim(phrase));
    if (key.empty()) continue;
    added_any |= representative_.emplace(key, rep).second;
  }
  if (added_any) ++cluster_count_;
}

std::optional<std::string> ParaphraseStore::Representative(
    std::string_view phrase) const {
  auto it = representative_.find(ToLower(Trim(phrase)));
  if (it == representative_.end()) return std::nullopt;
  return it->second;
}

double ParaphraseStore::Similarity(std::string_view a,
                                   std::string_view b) const {
  auto rep_a = Representative(a);
  if (!rep_a.has_value()) return 0.0;
  auto rep_b = Representative(b);
  if (!rep_b.has_value()) return 0.0;
  return *rep_a == *rep_b ? 1.0 : 0.0;
}

}  // namespace jocl
