#include "sideinfo/kbp_mapper.h"

#include "text/morph_normalizer.h"

namespace jocl {
namespace {

const MorphNormalizer& SharedNormalizer() {
  static const MorphNormalizer* const kNormalizer = new MorphNormalizer();
  return *kNormalizer;
}

}  // namespace

KbpMapper::KbpMapper(KbpMapperOptions options) : options_(options) {}

void KbpMapper::Train(const std::vector<KbpExample>& examples) {
  token_votes_.clear();
  for (const auto& example : examples) {
    if (example.relation == kNilId) continue;
    for (const auto& token :
         SharedNormalizer().NormalizeTokens(example.phrase)) {
      token_votes_[token][example.relation] += 1.0;
    }
  }
}

RelationId KbpMapper::Classify(std::string_view phrase) const {
  std::unordered_map<RelationId, double> votes;
  double total = 0.0;
  for (const auto& token : SharedNormalizer().NormalizeTokens(phrase)) {
    auto it = token_votes_.find(token);
    if (it == token_votes_.end()) continue;
    for (const auto& [relation, count] : it->second) {
      double vote = count + options_.smoothing;
      votes[relation] += vote;
      total += vote;
    }
  }
  if (votes.empty() || total <= 0.0) return kNilId;
  RelationId best = kNilId;
  double best_votes = -1.0;
  for (const auto& [relation, v] : votes) {
    if (v > best_votes || (v == best_votes && relation < best)) {
      best = relation;
      best_votes = v;
    }
  }
  if (best_votes / total < options_.min_vote_share) return kNilId;
  return best;
}

double KbpMapper::Similarity(std::string_view a, std::string_view b) const {
  RelationId ra = Classify(a);
  if (ra == kNilId) return 0.0;
  return ra == Classify(b) ? 1.0 : 0.0;
}

}  // namespace jocl
