#ifndef JOCL_SIDEINFO_AMIE_MINER_H_
#define JOCL_SIDEINFO_AMIE_MINER_H_

#include <string>
#include <cstddef>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/open_kb.h"
#include "text/morph_normalizer.h"

namespace jocl {

/// \brief One mined Horn rule `antecedent(x, y) => consequent(x, y)` over
/// normalized relation phrases.
struct AmieRule {
  std::string antecedent;
  std::string consequent;
  size_t support = 0;      ///< #(x, y) pairs satisfying both sides
  double confidence = 0.0; ///< support / #(x, y) pairs of the antecedent
};

/// \brief Thresholds for rule acceptance (AMIE; Galárraga et al. 2013).
struct AmieOptions {
  size_t min_support = 2;
  double min_confidence = 0.5;
};

/// \brief Statistical Horn-rule miner over morphologically normalized OIE
/// triples — the library's from-scratch stand-in for the external AMIE
/// system the paper calls (§3.1.4).
///
/// Two RPs have `Sim_AMIE = 1` iff both implications `p_i => p_j` and
/// `p_j => p_i` pass the support and confidence thresholds; otherwise 0.
/// As in the paper, most RPs appear fewer times than the support threshold,
/// so coverage is intentionally sparse (§4.2.2 discusses exactly this).
class AmieMiner {
 public:
  explicit AmieMiner(AmieOptions options = {});

  /// Mines rules from the OKB. Normalization (tense/plural/auxiliary
  /// stripping) happens internally so that surface variants share argument
  /// pairs. Must be called before Similarity().
  void Mine(const OpenKb& okb);

  /// All accepted unidirectional rules, deterministically ordered.
  const std::vector<AmieRule>& rules() const { return rules_; }

  /// The paper's binary signal: 1.0 iff rules exist in both directions
  /// between the normalized forms of the two phrases.
  double Similarity(std::string_view rp_a, std::string_view rp_b) const;

  /// True iff the phrase's normalized predicate occurred with at least
  /// `min_support` distinct argument pairs — i.e. mining had enough data
  /// to say anything about it at all.
  bool HasEvidence(std::string_view rp) const;

  /// The normalized form Similarity()/HasEvidence() key on. Callers that
  /// evaluate many pairs (SignalCache) normalize each phrase once and use
  /// the *Normalized variants below.
  std::string NormalizedForm(std::string_view rp) const;

  /// Similarity over pre-normalized forms (no re-normalization).
  double SimilarityNormalized(std::string_view norm_a,
                              std::string_view norm_b) const;

  /// HasEvidence over a pre-normalized form.
  bool HasEvidenceNormalized(std::string_view norm) const;

  /// Number of distinct normalized predicates observed while mining.
  size_t predicate_count() const { return pair_sets_.size(); }

 private:
  AmieOptions options_;
  MorphNormalizer normalizer_;
  // normalized predicate -> set of "subject\x1fobject" argument keys
  std::unordered_map<std::string, std::unordered_set<std::string>> pair_sets_;
  std::vector<AmieRule> rules_;
  // unordered pair key "a\x1fb" (a < b) -> bidirectionally equivalent
  std::unordered_set<std::string> equivalent_pairs_;
};

}  // namespace jocl

#endif  // JOCL_SIDEINFO_AMIE_MINER_H_
