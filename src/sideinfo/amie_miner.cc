#include "sideinfo/amie_miner.h"

#include <algorithm>
#include <cstddef>
#include <map>

namespace jocl {
namespace {

constexpr char kSep = '\x1f';

std::string PairKey(const std::string& a, const std::string& b) {
  return a <= b ? a + kSep + b : b + kSep + a;
}

}  // namespace

AmieMiner::AmieMiner(AmieOptions options) : options_(options) {}

void AmieMiner::Mine(const OpenKb& okb) {
  pair_sets_.clear();
  rules_.clear();
  equivalent_pairs_.clear();

  // Index argument pairs per normalized predicate.
  for (const auto& triple : okb.triples()) {
    std::string predicate = normalizer_.Normalize(triple.predicate);
    std::string subject = normalizer_.Normalize(triple.subject);
    std::string object = normalizer_.Normalize(triple.object);
    pair_sets_[predicate].insert(subject + kSep + object);
  }

  // Joint-support counting: argument key -> predicates containing it.
  std::unordered_map<std::string, std::vector<const std::string*>> by_args;
  for (const auto& [predicate, args] : pair_sets_) {
    for (const auto& arg_key : args) {
      by_args[arg_key].push_back(&predicate);
    }
  }
  // co_support[(p_i, p_j)] with p_i < p_j lexicographically.
  std::map<std::pair<std::string, std::string>, size_t> co_support;
  for (const auto& [arg_key, predicates] : by_args) {
    for (size_t i = 0; i < predicates.size(); ++i) {
      for (size_t j = i + 1; j < predicates.size(); ++j) {
        const std::string* a = predicates[i];
        const std::string* b = predicates[j];
        if (*a == *b) continue;
        auto key = *a < *b ? std::make_pair(*a, *b) : std::make_pair(*b, *a);
        ++co_support[key];
      }
    }
  }

  // Emit unidirectional rules that pass thresholds; record bidirectional
  // equivalences. std::map iteration gives deterministic rule order.
  for (const auto& [pair, support] : co_support) {
    if (support < options_.min_support) continue;
    const auto& [p_a, p_b] = pair;
    double conf_ab = static_cast<double>(support) /
                     static_cast<double>(pair_sets_[p_a].size());
    double conf_ba = static_cast<double>(support) /
                     static_cast<double>(pair_sets_[p_b].size());
    bool ab = conf_ab >= options_.min_confidence;
    bool ba = conf_ba >= options_.min_confidence;
    if (ab) rules_.push_back(AmieRule{p_a, p_b, support, conf_ab});
    if (ba) rules_.push_back(AmieRule{p_b, p_a, support, conf_ba});
    if (ab && ba) equivalent_pairs_.insert(PairKey(p_a, p_b));
  }
}

std::string AmieMiner::NormalizedForm(std::string_view rp) const {
  return normalizer_.Normalize(rp);
}

bool AmieMiner::HasEvidence(std::string_view rp) const {
  return HasEvidenceNormalized(normalizer_.Normalize(rp));
}

bool AmieMiner::HasEvidenceNormalized(std::string_view norm) const {
  auto it = pair_sets_.find(std::string(norm));
  return it != pair_sets_.end() && it->second.size() >= options_.min_support;
}

double AmieMiner::Similarity(std::string_view rp_a,
                             std::string_view rp_b) const {
  return SimilarityNormalized(normalizer_.Normalize(rp_a),
                              normalizer_.Normalize(rp_b));
}

double AmieMiner::SimilarityNormalized(std::string_view norm_a,
                                       std::string_view norm_b) const {
  if (norm_a == norm_b) return 1.0;  // identical after normalization
  return equivalent_pairs_.count(PairKey(std::string(norm_a),
                                         std::string(norm_b))) > 0
             ? 1.0
             : 0.0;
}

}  // namespace jocl
