#ifndef JOCL_EVAL_TABLE_PRINTER_H_
#define JOCL_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace jocl {

/// \brief Fixed-width ASCII table renderer shared by the benchmark
/// harnesses so every reproduced table/figure prints in one format.
///
/// Usage:
///   TablePrinter t({"Method", "Macro F1", "Micro F1"});
///   t.AddRow({"CESI", "0.618", "0.845"});
///   std::cout << t.Render();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Formats a double with the given precision (helper for callers).
  static std::string Num(double value, int precision = 3);

  /// Renders the full table including borders.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  // Each row is either cells, or empty vector == separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace jocl

#endif  // JOCL_EVAL_TABLE_PRINTER_H_
