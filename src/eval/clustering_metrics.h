#ifndef JOCL_EVAL_CLUSTERING_METRICS_H_
#define JOCL_EVAL_CLUSTERING_METRICS_H_

#include <cstddef>
#include <vector>

namespace jocl {

/// \brief Precision / recall / F1 triple for one clustering metric.
struct PrecisionRecallF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// \brief The canonicalization evaluation bundle the paper reports
/// (Tables 1, 2, 4): macro, micro and pairwise F1 plus their average.
///
/// Definitions follow Galárraga et al., CIKM 2014 (adopted unchanged by
/// CESI, SIST and JOCL):
///  * macro precision — fraction of predicted clusters that are *pure*
///    (every element shares one gold cluster); macro recall is the same
///    with predicted and gold swapped.
///  * micro precision — purity: sum over predicted clusters of the largest
///    gold overlap, divided by the number of elements; micro recall is
///    symmetric.
///  * pairwise precision — fraction of co-clustered element pairs ("hits")
///    that are also co-clustered in gold; pairwise recall is symmetric.
/// Conventions: an empty clustering scores precision 1 (vacuous), and a
/// clustering with no same-cluster pairs scores pairwise precision 1.
struct ClusteringScore {
  PrecisionRecallF1 macro;
  PrecisionRecallF1 micro;
  PrecisionRecallF1 pairwise;
  /// Mean of the three F1 scores ("average F1" in the paper).
  double average_f1 = 0.0;
};

/// \brief Scores a predicted partition against gold.
///
/// \param predicted cluster label per element.
/// \param gold gold cluster label per element; must be the same length.
/// Labels are opaque ids; only co-membership matters.
ClusteringScore EvaluateClustering(const std::vector<size_t>& predicted,
                                   const std::vector<size_t>& gold);

/// \brief Scores only the elements listed in \p subset (indices into the
/// label vectors). Mirrors the paper's protocol of evaluating NYTimes2018 on
/// a manually labeled sample of non-singleton gold groups.
ClusteringScore EvaluateClusteringSubset(const std::vector<size_t>& predicted,
                                         const std::vector<size_t>& gold,
                                         const std::vector<size_t>& subset);

/// \brief Harmonic mean helper; 0 when both inputs are 0.
double F1(double precision, double recall);

}  // namespace jocl

#endif  // JOCL_EVAL_CLUSTERING_METRICS_H_
