#include "eval/linking_metrics.h"

namespace jocl {

double LinkingAccuracySubset(const std::vector<int64_t>& predicted,
                             const std::vector<int64_t>& gold,
                             const std::vector<size_t>& subset) {
  if (subset.empty()) return 0.0;
  size_t correct = 0;
  for (size_t index : subset) {
    if (predicted[index] == gold[index]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(subset.size());
}

double LinkingAccuracy(const std::vector<int64_t>& predicted,
                       const std::vector<int64_t>& gold) {
  std::vector<size_t> all(predicted.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return LinkingAccuracySubset(predicted, gold, all);
}

LinkingBreakdown EvaluateLinking(const std::vector<int64_t>& predicted,
                                 const std::vector<int64_t>& gold) {
  LinkingBreakdown out;
  out.total = predicted.size();
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == gold[i]) {
      ++out.correct;
      if (gold[i] == kNilId) ++out.correct_nil;
    } else if (predicted[i] == kNilId) {
      ++out.spurious_nil;
    } else if (gold[i] == kNilId) {
      ++out.missed_nil;
    } else {
      ++out.wrong_entity;
    }
  }
  out.accuracy = out.total == 0
                     ? 0.0
                     : static_cast<double>(out.correct) /
                           static_cast<double>(out.total);
  return out;
}

}  // namespace jocl
