#ifndef JOCL_EVAL_LINKING_METRICS_H_
#define JOCL_EVAL_LINKING_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace jocl {

/// \brief Accuracy of a linking assignment: correctly linked mentions over
/// all mentions (paper §4.1). A NIL prediction is correct iff gold is NIL.
double LinkingAccuracy(const std::vector<int64_t>& predicted,
                       const std::vector<int64_t>& gold);

/// \brief Accuracy restricted to the mentions listed in \p subset, mirroring
/// the paper's manually-labeled 100-triple samples.
double LinkingAccuracySubset(const std::vector<int64_t>& predicted,
                             const std::vector<int64_t>& gold,
                             const std::vector<size_t>& subset);

/// \brief Breakdown used by the extra diagnostics benches.
struct LinkingBreakdown {
  size_t total = 0;
  size_t correct = 0;
  size_t correct_nil = 0;       ///< predicted NIL, gold NIL
  size_t wrong_entity = 0;      ///< predicted a wrong non-NIL id
  size_t missed_nil = 0;        ///< predicted non-NIL, gold NIL
  size_t spurious_nil = 0;      ///< predicted NIL, gold non-NIL
  double accuracy = 0.0;
};

/// \brief Computes the detailed breakdown over all mentions.
LinkingBreakdown EvaluateLinking(const std::vector<int64_t>& predicted,
                                 const std::vector<int64_t>& gold);

}  // namespace jocl

#endif  // JOCL_EVAL_LINKING_METRICS_H_
