#include "eval/table_printer.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>

namespace jocl {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_separator = [&]() {
    std::string line = "+";
    for (size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out = render_separator();
  out += render_row(header_);
  out += render_separator();
  for (const auto& row : rows_) {
    out += row.empty() ? render_separator() : render_row(row);
  }
  out += render_separator();
  return out;
}

}  // namespace jocl
