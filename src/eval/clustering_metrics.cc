#include "eval/clustering_metrics.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>

namespace jocl {
namespace {

using LabelMap = std::unordered_map<size_t, std::vector<size_t>>;

// Groups element indices by label.
LabelMap GroupByLabel(const std::vector<size_t>& labels,
                      const std::vector<size_t>& subset) {
  LabelMap groups;
  for (size_t element : subset) {
    groups[labels[element]].push_back(element);
  }
  return groups;
}

// Macro precision of `a` against `b`: fraction of a-clusters whose members
// all share one b-label.
double MacroPrecision(const LabelMap& a, const std::vector<size_t>& b) {
  if (a.empty()) return 1.0;
  size_t pure = 0;
  for (const auto& [label, members] : a) {
    bool is_pure = true;
    size_t first = b[members.front()];
    for (size_t member : members) {
      if (b[member] != first) {
        is_pure = false;
        break;
      }
    }
    if (is_pure) ++pure;
  }
  return static_cast<double>(pure) / static_cast<double>(a.size());
}

// Micro precision of `a` against `b`: purity.
double MicroPrecision(const LabelMap& a, const std::vector<size_t>& b,
                      size_t total) {
  if (total == 0) return 1.0;
  size_t hits = 0;
  for (const auto& [label, members] : a) {
    std::unordered_map<size_t, size_t> counts;
    size_t best = 0;
    for (size_t member : members) {
      size_t c = ++counts[b[member]];
      best = std::max(best, c);
    }
    hits += best;
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

// Pairwise precision of `a` against `b`: co-clustered pairs that agree.
double PairwisePrecision(const LabelMap& a, const std::vector<size_t>& b) {
  size_t total_pairs = 0;
  size_t hit_pairs = 0;
  for (const auto& [label, members] : a) {
    // Count same-b pairs inside this a-cluster via label histogram.
    std::unordered_map<size_t, size_t> counts;
    for (size_t member : members) ++counts[b[member]];
    size_t m = members.size();
    total_pairs += m * (m - 1) / 2;
    for (const auto& [blabel, c] : counts) {
      hit_pairs += c * (c - 1) / 2;
    }
  }
  if (total_pairs == 0) return 1.0;
  return static_cast<double>(hit_pairs) / static_cast<double>(total_pairs);
}

}  // namespace

double F1(double precision, double recall) {
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

ClusteringScore EvaluateClusteringSubset(const std::vector<size_t>& predicted,
                                         const std::vector<size_t>& gold,
                                         const std::vector<size_t>& subset) {
  ClusteringScore score;
  LabelMap pred_groups = GroupByLabel(predicted, subset);
  LabelMap gold_groups = GroupByLabel(gold, subset);

  score.macro.precision = MacroPrecision(pred_groups, gold);
  score.macro.recall = MacroPrecision(gold_groups, predicted);
  score.macro.f1 = F1(score.macro.precision, score.macro.recall);

  score.micro.precision = MicroPrecision(pred_groups, gold, subset.size());
  score.micro.recall = MicroPrecision(gold_groups, predicted, subset.size());
  score.micro.f1 = F1(score.micro.precision, score.micro.recall);

  score.pairwise.precision = PairwisePrecision(pred_groups, gold);
  score.pairwise.recall = PairwisePrecision(gold_groups, predicted);
  score.pairwise.f1 = F1(score.pairwise.precision, score.pairwise.recall);

  score.average_f1 =
      (score.macro.f1 + score.micro.f1 + score.pairwise.f1) / 3.0;
  return score;
}

ClusteringScore EvaluateClustering(const std::vector<size_t>& predicted,
                                   const std::vector<size_t>& gold) {
  std::vector<size_t> all(predicted.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return EvaluateClusteringSubset(predicted, gold, all);
}

}  // namespace jocl
