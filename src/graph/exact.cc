#include "graph/exact.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <string>

#include "graph/compiled_graph.h"

namespace jocl {

namespace {

// Row-major assignment index of factor f under the global `states`.
size_t AssignmentOf(const FactorGraph& graph, FactorId f,
                    const std::vector<size_t>& states) {
  const auto& scope = graph.factor(f).scope;
  size_t assignment = 0;
  for (size_t slot = 0; slot < scope.size(); ++slot) {
    assignment = assignment * graph.variable(scope[slot]).cardinality +
                 states[scope[slot]];
  }
  return assignment;
}

}  // namespace

std::vector<size_t> ExactMap(const FactorGraph& graph,
                             const std::vector<double>& weights) {
  const size_t nv = graph.variable_count();
  std::vector<size_t> states(nv, 0);
  for (VariableId v = 0; v < nv; ++v) {
    if (graph.IsClamped(v)) {
      states[v] = static_cast<size_t>(graph.variable(v).clamped_state);
    }
  }
  std::vector<size_t> free_vars;
  for (VariableId v = 0; v < nv; ++v) {
    if (!graph.IsClamped(v)) free_vars.push_back(v);
  }
  std::vector<size_t> best = states;
  double best_score = -std::numeric_limits<double>::infinity();
  for (;;) {
    double log_score = 0.0;
    for (FactorId f = 0; f < graph.factor_count(); ++f) {
      log_score += graph.factor(f).features.LogPotential(
          AssignmentOf(graph, f, states), weights);
    }
    if (log_score > best_score) {
      best_score = log_score;
      best = states;
    }
    size_t k = 0;
    for (; k < free_vars.size(); ++k) {
      VariableId v = free_vars[k];
      if (++states[v] < graph.variable(v).cardinality) break;
      states[v] = 0;
    }
    if (k == free_vars.size()) break;
  }
  return best;
}

ExactResult ExactInference(const FactorGraph& graph,
                           const std::vector<double>& weights) {
  ExactResult result;
  const size_t nv = graph.variable_count();
  result.marginals.resize(nv);
  for (VariableId v = 0; v < nv; ++v) {
    result.marginals[v].assign(graph.variable(v).cardinality, 0.0);
  }
  result.expected_features.assign(graph.weight_count(), 0.0);

  // Enumerate the full joint (respecting clamps).
  std::vector<size_t> states(nv, 0);
  for (VariableId v = 0; v < nv; ++v) {
    if (graph.IsClamped(v)) {
      states[v] = static_cast<size_t>(graph.variable(v).clamped_state);
    }
  }
  std::vector<double> log_scores;
  std::vector<std::vector<size_t>> all_states;

  std::vector<size_t> free_vars;
  for (VariableId v = 0; v < nv; ++v) {
    if (!graph.IsClamped(v)) free_vars.push_back(v);
  }

  for (;;) {
    double log_score = 0.0;
    for (FactorId f = 0; f < graph.factor_count(); ++f) {
      log_score += graph.factor(f).features.LogPotential(
          AssignmentOf(graph, f, states), weights);
    }
    log_scores.push_back(log_score);
    all_states.push_back(states);

    // Advance mixed-radix counter over free variables.
    size_t k = 0;
    for (; k < free_vars.size(); ++k) {
      VariableId v = free_vars[k];
      if (++states[v] < graph.variable(v).cardinality) break;
      states[v] = 0;
    }
    if (k == free_vars.size()) break;
  }

  result.log_partition = LogSumExp(log_scores);
  for (size_t i = 0; i < log_scores.size(); ++i) {
    double p = std::exp(log_scores[i] - result.log_partition);
    for (VariableId v = 0; v < nv; ++v) {
      result.marginals[v][all_states[i][v]] += p;
    }
    for (FactorId f = 0; f < graph.factor_count(); ++f) {
      graph.factor(f).features.ForEachFeature(
          AssignmentOf(graph, f, all_states[i]),
          [&](WeightId weight, double value) {
            result.expected_features[weight] += p * value;
          });
    }
  }
  return result;
}

ExactEngine::ExactEngine(const FactorGraph* graph,
                         const std::vector<double>* weights,
                         LbpOptions options)
    : graph_(graph), weights_(weights) {
  (void)options;
}

Status ExactEngine::Validate() const {
  if (weights_ == nullptr) {
    return Status::InvalidArgument("no weight vector bound");
  }
  JOCL_RETURN_NOT_OK(CompiledGraph::ValidateSource(*graph_));
  if (weights_->size() < graph_->weight_count()) {
    return Status::FailedPrecondition(
        "weight vector holds " + std::to_string(weights_->size()) +
        " weights, graph references " +
        std::to_string(graph_->weight_count()));
  }
  return Status::OK();
}

LbpResult ExactEngine::Run() {
  exact_ = ExactInference(*graph_, *weights_);
  LbpResult result;
  result.marginals = exact_.marginals;
  result.iterations = 1;
  result.converged = true;
  result.final_residual = 0.0;
  result.residual_history = {0.0};
  return result;
}

std::vector<double> ExactEngine::FactorBelief(FactorId id) const {
  // Exact per-factor belief: marginalize the joint onto the factor's
  // assignments by one more enumeration pass.
  const FactorGraph& graph = *graph_;
  const size_t nv = graph.variable_count();
  std::vector<double> log_belief(graph.AssignmentCount(id),
                                 -std::numeric_limits<double>::infinity());
  std::vector<size_t> states(nv, 0);
  std::vector<size_t> free_vars;
  for (VariableId v = 0; v < nv; ++v) {
    if (graph.IsClamped(v)) {
      states[v] = static_cast<size_t>(graph.variable(v).clamped_state);
    } else {
      free_vars.push_back(v);
    }
  }
  for (;;) {
    double log_score = 0.0;
    for (FactorId f = 0; f < graph.factor_count(); ++f) {
      log_score += graph.factor(f).features.LogPotential(
          AssignmentOf(graph, f, states), *weights_);
    }
    double& cell = log_belief[AssignmentOf(graph, id, states)];
    if (cell == -std::numeric_limits<double>::infinity()) {
      cell = log_score;
    } else if (log_score > cell) {
      cell = log_score + std::log1p(std::exp(cell - log_score));
    } else {
      cell = cell + std::log1p(std::exp(log_score - cell));
    }
    size_t k = 0;
    for (; k < free_vars.size(); ++k) {
      VariableId v = free_vars[k];
      if (++states[v] < graph.variable(v).cardinality) break;
      states[v] = 0;
    }
    if (k == free_vars.size()) break;
  }
  const double lse = LogSumExp(log_belief);
  std::vector<double> belief(log_belief.size(), 0.0);
  for (size_t a = 0; a < log_belief.size(); ++a) {
    belief[a] = std::exp(log_belief[a] - lse);
  }
  return belief;
}

void ExactEngine::AccumulateExpectedFeatures(
    std::vector<double>* expectations) const {
  assert(expectations->size() == exact_.expected_features.size());
  for (size_t k = 0; k < exact_.expected_features.size(); ++k) {
    (*expectations)[k] += exact_.expected_features[k];
  }
}

std::vector<size_t> ExactEngine::Decode() const {
  return ExactMap(*graph_, *weights_);
}

}  // namespace jocl
