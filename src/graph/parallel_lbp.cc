#include "graph/parallel_lbp.h"

#include <atomic>
#include <thread>
#include <unordered_map>

#include "cluster/union_find.h"

namespace jocl {

std::vector<size_t> FactorGraphComponents(const FactorGraph& graph) {
  UnionFind uf(graph.variable_count());
  for (FactorId f = 0; f < graph.factor_count(); ++f) {
    const auto& scope = graph.factor(f).scope;
    for (size_t slot = 1; slot < scope.size(); ++slot) {
      uf.Union(scope[0], scope[slot]);
    }
  }
  return uf.Labels();
}

ParallelLbpResult RunParallelLbp(const FactorGraph& graph,
                                 const std::vector<double>& weights,
                                 const LbpOptions& options,
                                 size_t num_threads) {
  ParallelLbpResult result;
  const size_t nv = graph.variable_count();
  result.marginals.resize(nv);

  std::vector<size_t> component_of = FactorGraphComponents(graph);
  size_t component_count = 0;
  for (size_t c : component_of) {
    component_count = std::max(component_count, c + 1);
  }
  result.components = component_count;
  if (component_count == 0) {
    result.converged = true;
    return result;
  }

  // Build one subgraph per component with local variable ids.
  std::vector<FactorGraph> subgraphs(component_count);
  // global variable id -> local id within its component
  std::vector<size_t> local_id(nv);
  std::vector<std::vector<VariableId>> globals_of(component_count);
  for (VariableId v = 0; v < nv; ++v) {
    size_t c = component_of[v];
    local_id[v] = subgraphs[c].AddVariable(graph.variable(v).cardinality);
    if (graph.IsClamped(v)) {
      (void)subgraphs[c].Clamp(
          local_id[v],
          static_cast<size_t>(graph.variable(v).clamped_state));
    }
    globals_of[c].push_back(v);
  }
  for (auto& sub : subgraphs) sub.set_weight_count(graph.weight_count());
  for (FactorId f = 0; f < graph.factor_count(); ++f) {
    const FactorNode& node = graph.factor(f);
    if (node.scope.empty()) continue;
    size_t c = component_of[node.scope[0]];
    std::vector<VariableId> scope;
    scope.reserve(node.scope.size());
    for (VariableId v : node.scope) scope.push_back(local_id[v]);
    (void)subgraphs[c].AddFactor(std::move(scope), node.features, node.name);
  }

  // Run the components across a thread pool.
  LbpOptions local_options = options;
  local_options.factor_schedule.clear();  // schedules are graph-specific
  std::atomic<size_t> next(0);
  std::atomic<bool> all_converged(true);
  std::atomic<size_t> max_iterations(0);
  std::vector<std::vector<std::vector<double>>> component_marginals(
      component_count);

  auto worker = [&]() {
    for (;;) {
      size_t c = next.fetch_add(1);
      if (c >= component_count) return;
      LbpEngine engine(&subgraphs[c], &weights, local_options);
      LbpResult local = engine.Run();
      if (!local.converged) all_converged = false;
      size_t seen = max_iterations.load();
      while (seen < local.iterations &&
             !max_iterations.compare_exchange_weak(seen, local.iterations)) {
      }
      component_marginals[c] = std::move(local.marginals);
    }
  };
  size_t threads = std::max<size_t>(1, num_threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();

  for (size_t c = 0; c < component_count; ++c) {
    for (size_t local = 0; local < globals_of[c].size(); ++local) {
      result.marginals[globals_of[c][local]] =
          std::move(component_marginals[c][local]);
    }
  }
  result.converged = all_converged.load();
  result.iterations = max_iterations.load();
  return result;
}

}  // namespace jocl
