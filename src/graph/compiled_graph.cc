#include "graph/compiled_graph.h"

#include <algorithm>
#include <string>

#include "cluster/union_find.h"

namespace jocl {

std::vector<size_t> FactorGraphComponents(const FactorGraph& graph) {
  UnionFind uf(graph.variable_count());
  for (FactorId f = 0; f < graph.factor_count(); ++f) {
    const auto& scope = graph.factor(f).scope;
    for (size_t slot = 1; slot < scope.size(); ++slot) {
      uf.Union(scope[0], scope[slot]);
    }
  }
  return uf.Labels();
}

void CompiledGraph::ComputeLogPotentials(const std::vector<double>& weights,
                                         std::vector<double>* out) const {
  out->assign(total_assignments(), 0.0);
  double* lp = out->data();
  for (FactorId f = 0; f < factor_count(); ++f) {
    const size_t base = assignment_offset[f];
    const size_t count = assignment_offset[f + 1] - base;
    if (factor_uniform[f]) {
      const double w = weights[uniform_weight[f]];
      const double* values = uniform_pool.data() + uniform_offset[f];
      for (size_t a = 0; a < count; ++a) lp[base + a] = w * values[a];
    } else {
      for (size_t a = 0; a < count; ++a) {
        double total = 0.0;
        for (size_t i = entry_offset[base + a]; i < entry_offset[base + a + 1];
             ++i) {
          total += weights[entry_pool[i].weight] * entry_pool[i].value;
        }
        lp[base + a] = total;
      }
    }
  }
}

CompiledGraph CompiledGraph::Compile(const FactorGraph& graph) {
  CompiledGraph c;
  c.source = &graph;
  const size_t nv = graph.variable_count();
  const size_t nf = graph.factor_count();

  // ---- variables ----
  c.cardinality.resize(nv);
  c.var_state_offset.resize(nv + 1);
  size_t state_total = 0;
  for (VariableId v = 0; v < nv; ++v) {
    c.var_state_offset[v] = state_total;
    c.cardinality[v] = static_cast<uint32_t>(graph.variable(v).cardinality);
    state_total += c.cardinality[v];
  }
  c.var_state_offset[nv] = state_total;

  // ---- scopes -> edges ----
  c.scope_offset.resize(nf + 1);
  c.assignment_offset.resize(nf + 1);
  size_t edge_total = 0;
  size_t assignment_total = 0;
  for (FactorId f = 0; f < nf; ++f) {
    c.scope_offset[f] = edge_total;
    c.assignment_offset[f] = assignment_total;
    edge_total += graph.factor(f).scope.size();
    assignment_total += graph.AssignmentCount(f);
  }
  c.scope_offset[nf] = edge_total;
  c.assignment_offset[nf] = assignment_total;

  c.scope_var.resize(edge_total);
  c.edge_factor.resize(edge_total);
  c.slot_stride.resize(edge_total);
  c.edge_state_offset.resize(edge_total + 1);
  c.edge_lane_offset.resize(edge_total + 1);
  size_t edge_state_total = 0;
  size_t edge_lane_total = 0;
  for (FactorId f = 0; f < nf; ++f) {
    const auto& scope = graph.factor(f).scope;
    const size_t base = c.scope_offset[f];
    // Row-major strides, last slot fastest (FeatureTable convention).
    size_t stride = 1;
    for (size_t slot = scope.size(); slot-- > 0;) {
      c.slot_stride[base + slot] = stride;
      stride *= graph.variable(scope[slot]).cardinality;
    }
    size_t factor_states = 0;
    size_t factor_lane_states = 0;
    for (size_t slot = 0; slot < scope.size(); ++slot) {
      const size_t e = base + slot;
      const size_t card = graph.variable(scope[slot]).cardinality;
      c.scope_var[e] = static_cast<uint32_t>(scope[slot]);
      c.edge_factor[e] = static_cast<uint32_t>(f);
      c.edge_state_offset[e] = edge_state_total;
      c.edge_lane_offset[e] = edge_lane_total;
      edge_state_total += card;
      edge_lane_total += RoundUpTo(card, kLaneDoubles);
      factor_states += card;
      factor_lane_states += RoundUpTo(card, kLaneDoubles);
    }
    c.max_arity = std::max(c.max_arity, scope.size());
    c.max_factor_states = std::max(c.max_factor_states, factor_states);
    c.max_factor_lane_states =
        std::max(c.max_factor_lane_states, factor_lane_states);
  }
  c.edge_state_offset[edge_total] = edge_state_total;
  c.edge_lane_offset[edge_total] = edge_lane_total;

  // ---- padded per-variable belief lanes ----
  c.var_lane_offset.resize(nv + 1);
  size_t var_lane_total = 0;
  for (VariableId v = 0; v < nv; ++v) {
    c.var_lane_offset[v] = var_lane_total;
    var_lane_total += RoundUpTo(c.cardinality[v], kLaneDoubles);
  }
  c.var_lane_offset[nv] = var_lane_total;

  // ---- attachments (counting sort of edges by variable) ----
  c.attach_offset.assign(nv + 1, 0);
  for (size_t e = 0; e < edge_total; ++e) ++c.attach_offset[c.scope_var[e] + 1];
  for (size_t v = 0; v < nv; ++v) c.attach_offset[v + 1] += c.attach_offset[v];
  c.attach_edge.resize(edge_total);
  {
    std::vector<size_t> cursor(c.attach_offset.begin(),
                               c.attach_offset.end() - 1);
    for (size_t e = 0; e < edge_total; ++e) {
      c.attach_edge[cursor[c.scope_var[e]]++] = static_cast<uint32_t>(e);
    }
  }

  // ---- features: one shared flat pool ----
  c.factor_uniform.resize(nf);
  c.uniform_weight.assign(nf, 0);
  c.uniform_offset.assign(nf, kNoOffset);
  c.entry_offset.assign(assignment_total + 1, 0);
  size_t entry_total = 0;
  size_t uniform_total = 0;
  for (FactorId f = 0; f < nf; ++f) {
    const FeatureTable& table = graph.factor(f).features;
    c.factor_uniform[f] = table.is_uniform() ? 1 : 0;
    const size_t count = table.assignment_count();
    if (table.is_uniform()) {
      uniform_total += count;
    } else {
      for (size_t a = 0; a < count; ++a) {
        entry_total += table.entries(a).size();
        c.entry_offset[c.assignment_offset[f] + a + 1] =
            table.entries(a).size();
      }
    }
  }
  for (size_t g = 0; g < assignment_total; ++g) {
    c.entry_offset[g + 1] += c.entry_offset[g];
  }
  c.entry_pool.reserve(entry_total);
  c.uniform_pool.reserve(uniform_total);
  for (FactorId f = 0; f < nf; ++f) {
    const FeatureTable& table = graph.factor(f).features;
    if (table.is_uniform()) {
      c.uniform_weight[f] = table.uniform_weight();
      c.uniform_offset[f] = c.uniform_pool.size();
      c.uniform_pool.insert(c.uniform_pool.end(),
                            table.uniform_values().begin(),
                            table.uniform_values().end());
    } else {
      for (size_t a = 0; a < table.assignment_count(); ++a) {
        const auto& entries = table.entries(a);
        c.entry_pool.insert(c.entry_pool.end(), entries.begin(),
                            entries.end());
      }
    }
  }

  // ---- connected components ----
  c.component_of_var = FactorGraphComponents(graph);
  for (size_t label : c.component_of_var) {
    c.component_count = std::max(c.component_count, label + 1);
  }
  const size_t nc = c.component_count;
  c.comp_var_offset.assign(nc + 1, 0);
  for (size_t label : c.component_of_var) ++c.comp_var_offset[label + 1];
  for (size_t k = 0; k < nc; ++k) {
    c.comp_var_offset[k + 1] += c.comp_var_offset[k];
  }
  c.comp_vars.resize(nv);
  {
    std::vector<size_t> cursor(c.comp_var_offset.begin(),
                               c.comp_var_offset.end() - 1);
    for (VariableId v = 0; v < nv; ++v) {
      c.comp_vars[cursor[c.component_of_var[v]]++] = static_cast<uint32_t>(v);
    }
  }
  c.comp_factor_offset.assign(nc + 1, 0);
  for (FactorId f = 0; f < nf; ++f) {
    const auto& scope = graph.factor(f).scope;
    if (scope.empty()) {
      c.constant_factors.push_back(static_cast<uint32_t>(f));
    } else {
      ++c.comp_factor_offset[c.component_of_var[scope[0]] + 1];
    }
  }
  for (size_t k = 0; k < nc; ++k) {
    c.comp_factor_offset[k + 1] += c.comp_factor_offset[k];
  }
  c.comp_factors.resize(nf - c.constant_factors.size());
  {
    std::vector<size_t> cursor(c.comp_factor_offset.begin(),
                               c.comp_factor_offset.end() - 1);
    for (FactorId f = 0; f < nf; ++f) {
      const auto& scope = graph.factor(f).scope;
      if (scope.empty()) continue;
      c.comp_factors[cursor[c.component_of_var[scope[0]]]++] =
          static_cast<uint32_t>(f);
    }
  }
  return c;
}

Status CompiledGraph::ValidateSource(const FactorGraph& graph) {
  const size_t nv = graph.variable_count();
  for (VariableId v = 0; v < nv; ++v) {
    const VariableNode& node = graph.variable(v);
    if (node.cardinality == 0) {
      return Status::InvalidArgument("variable " + std::to_string(v) +
                                     " has cardinality 0");
    }
    if (node.clamped_state >= 0 &&
        static_cast<size_t>(node.clamped_state) >= node.cardinality) {
      return Status::FailedPrecondition(
          "variable " + std::to_string(v) + " clamped to state " +
          std::to_string(node.clamped_state) + " >= cardinality " +
          std::to_string(node.cardinality));
    }
  }
  for (FactorId f = 0; f < graph.factor_count(); ++f) {
    const FactorNode& factor = graph.factor(f);
    size_t assignments = 1;
    for (VariableId v : factor.scope) {
      if (v >= nv) {
        return Status::InvalidArgument(
            "factor " + std::to_string(f) + " references variable " +
            std::to_string(v) + " >= variable count " + std::to_string(nv));
      }
      assignments *= graph.variable(v).cardinality;
    }
    if (factor.features.assignment_count() != assignments) {
      return Status::InvalidArgument(
          "factor " + std::to_string(f) + " feature table covers " +
          std::to_string(factor.features.assignment_count()) +
          " assignments, scope has " + std::to_string(assignments));
    }
    const size_t weight_count = graph.weight_count();
    Status weight_status;  // set by the feature scan below
    for (size_t a = 0; a < assignments && weight_status.ok(); ++a) {
      factor.features.ForEachFeature(a, [&](WeightId weight, double value) {
        (void)value;
        if (weight >= weight_count && weight_status.ok()) {
          weight_status = Status::InvalidArgument(
              "factor " + std::to_string(f) + " references weight " +
              std::to_string(weight) + " >= weight count " +
              std::to_string(weight_count));
        }
      });
      if (factor.features.is_uniform()) break;  // one shared weight
    }
    if (!weight_status.ok()) return weight_status;
  }
  return Status::OK();
}

Result<CompiledGraph> CompiledGraph::CompileChecked(const FactorGraph& graph) {
  JOCL_RETURN_NOT_OK(ValidateSource(graph));
  return Compile(graph);
}

}  // namespace jocl
