#ifndef JOCL_GRAPH_INFERENCE_H_
#define JOCL_GRAPH_INFERENCE_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "graph/factor_graph.h"
#include "util/status.h"

namespace jocl {

struct CompiledGraph;

/// \brief Message semiring: sum-product computes marginals (the paper's
/// inference, §3.4–3.5); max-product computes max-marginals for MAP
/// decoding.
enum class LbpMode { kSumProduct, kMaxProduct };

/// \brief Message-update scheduling policy.
enum class LbpSchedule {
  /// Exact mode (default): staged full sweeps — every factor updated each
  /// sweep, group by group. Deterministic fixed-point iteration; the
  /// byte-identity contract across threads/shards holds here.
  kStaged,
  /// Opt-in approximate mode (residual belief propagation, Elidan et al.):
  /// a bucketed priority queue orders factors by message residual and the
  /// highest-residual factor is updated first, stopping when every
  /// residual falls below tolerance or the update budget (max_iterations
  /// sweeps' worth of factor updates) is spent. Converges in far fewer
  /// updates on skewed graphs (the head-component shape), is still
  /// deterministic for every thread/shard count, but follows a different
  /// update order than kStaged — marginals agree within tolerance, not
  /// byte-for-byte. The run reports a convergence certificate
  /// (LbpResult::final_residual at stop + update counters) so the
  /// exact/approximate contract stays explicit.
  kResidual,
};

/// \brief Which message-update kernel executes the sweep.
enum class LbpKernel {
  /// Default: arity-specialized, SIMD-friendly updates over the padded,
  /// aligned message lanes. Byte-identical to kScalarReference — every
  /// cross-message reduction keeps the reference's operation order — just
  /// faster.
  kVectorized,
  /// The pre-vectorization scalar reference kernel (generic mixed-radix
  /// assignment enumeration). Kept as the byte-identity oracle for tests
  /// and the baseline for bench_kernel's speedup guard.
  kScalarReference,
};

/// \brief Options for a Loopy Belief Propagation run.
struct LbpOptions {
  /// Sum-product (marginals) or max-product (MAP decoding).
  LbpMode mode = LbpMode::kSumProduct;
  /// Maximum message-passing sweeps per connected component. The paper
  /// reports convergence within twenty iterations (§3.4).
  size_t max_iterations = 20;
  /// A component's sweeps stop early when the max absolute change of any
  /// of its factor->variable log-messages falls below this.
  double tolerance = 1e-4;
  /// Damping `d`: new = (1-d)*computed + d*old. 0 disables damping.
  double damping = 0.0;
  /// Optional staged factor schedule: groups of factor ids updated in
  /// order within each sweep (the paper's working procedure, §3.4). Factors
  /// missing from every group are appended as a final group. Empty =
  /// single group in insertion order. Engines restrict the schedule to
  /// each connected component, which leaves the message math unchanged
  /// (messages never cross components).
  std::vector<std::vector<FactorId>> factor_schedule;
  /// Worker threads for component-parallel execution: 1 = sequential,
  /// 0 = one per hardware thread, n = n workers. Components are
  /// independent sub-problems over disjoint arena slices, so marginals
  /// are bit-for-bit identical for every thread count.
  size_t num_threads = 1;
  /// Update scheduling: exact staged sweeps (default) or the opt-in
  /// approximate residual-priority schedule. See LbpSchedule.
  LbpSchedule schedule = LbpSchedule::kStaged;
  /// Message-update kernel. kVectorized is byte-identical to
  /// kScalarReference; the reference exists as the identity oracle.
  LbpKernel kernel = LbpKernel::kVectorized;
};

/// \brief Marginals and convergence diagnostics produced by inference.
struct LbpResult {
  /// Per-variable marginal distribution (clamped variables get a delta).
  std::vector<std::vector<double>> marginals;
  /// Max sweeps executed by any connected component.
  size_t iterations = 0;
  /// True when every component met the tolerance before max_iterations.
  bool converged = false;
  /// Max message residual across components after their final sweep. For
  /// LbpSchedule::kResidual this is the convergence certificate: an upper
  /// bound on how much any factor's next message update could still move,
  /// measured at the moment the run stopped.
  double final_residual = 0.0;
  /// Per-sweep max residual across components still running that sweep
  /// (for convergence diagnostics).
  std::vector<double> residual_history;

  // ---- kernel counters (summed across components/shards) ----
  /// Factor message updates executed (one per UpdateFactorMessages call;
  /// each recomputes all of the factor's outgoing messages).
  size_t message_updates = 0;
  /// Residual-priority queue pops (kResidual only; includes stale pops).
  size_t residual_pops = 0;
  /// Full sweeps' worth of factor updates *not* spent: early convergence
  /// under kStaged, budget left over under kResidual. The "iterations
  /// saved" half of the residual certificate.
  size_t sweeps_skipped = 0;
};

/// \brief Marginals of a component-partitioned LBP run (compatibility
/// shape; produced by RunParallelLbp in graph/flat_lbp.h).
struct ParallelLbpResult {
  /// Per-variable marginals, aligned with the input graph's variable ids.
  std::vector<std::vector<double>> marginals;
  /// Number of connected components found.
  size_t components = 0;
  /// True iff every component converged within the iteration budget.
  bool converged = false;
  /// Max sweeps used by any component.
  size_t iterations = 0;
};

/// \brief Common interface of the inference backends.
///
/// One engine instance binds a factor graph and a weight vector; Run()
/// computes marginals, after which the query methods are valid. All
/// backends honor clamped variables (delta messages and delta marginals),
/// which is how the learner's conditioned pass `p(Y | Y^L)` is realized.
///
/// Backends:
///  * FlatLbpEngine (graph/flat_lbp.h) — arena-backed loopy BP, sequential
///    or component-parallel (identical marginals either way);
///  * ExactEngine (graph/exact.h) — brute-force enumeration for tiny
///    graphs, the ground truth the tests compare against.
class InferenceEngine {
 public:
  virtual ~InferenceEngine() = default;

  /// Checks the engine's Run() preconditions — the bound weight vector
  /// sized to the graph's weight count, clamps within cardinality, a
  /// structurally valid graph — returning a descriptive Status instead of
  /// the undefined behavior a malformed binding would produce. Cheap
  /// relative to a Run; callers on untrusted inputs check once before the
  /// first Run (graphs built by core/graph_builder are valid by
  /// construction). Default: OK.
  virtual Status Validate() const { return Status::OK(); }

  /// Executes inference; query methods below are valid afterwards.
  virtual LbpResult Run() = 0;

  /// Optional warm start: prior marginals for a subset of variables,
  /// supplied before Run(). Backends may seed their initial messages from
  /// the priors so convergence needs fewer sweeps (the streaming session
  /// feeds a dirty shard its previous beliefs this way); the default
  /// implementation ignores the hint. A warm-started run approaches the
  /// same fixed point within tolerance but is NOT bit-identical to a
  /// cold run — callers needing exact restart semantics must not warm
  /// start. Entries whose cardinality does not match the variable are
  /// ignored.
  virtual void WarmStart(const std::vector<VariableId>& variables,
                         const std::vector<std::vector<double>>& priors) {
    (void)variables;
    (void)priors;
  }

  /// Marginal of one variable (valid after Run()).
  virtual const std::vector<double>& Marginal(VariableId id) const = 0;

  /// Belief over a factor's assignments (normalized; valid after Run()).
  virtual std::vector<double> FactorBelief(FactorId id) const = 0;

  /// Accumulates `sum_a b_f(a) * h_f(a)` over every factor into
  /// \p expectations (size must be weight_count). Used by the learner for
  /// `E[h]` under the current (clamped or free) distribution.
  virtual void AccumulateExpectedFeatures(
      std::vector<double>* expectations) const = 0;

  /// Estimate of `log Z` of the current distribution (valid after Run(),
  /// honoring clamps). FlatLbpEngine returns the Bethe approximation from
  /// its beliefs (exact on trees); ExactEngine returns the exact value.
  /// The learner's per-iteration objective is
  /// `log p(Y^L) ≈ logZ_clamped − logZ_free`. Backends without an
  /// estimate return NaN (the default).
  virtual double LogPartitionEstimate() const {
    return std::numeric_limits<double>::quiet_NaN();
  }

  /// Per-variable decoding (argmax of marginals / max-marginals).
  virtual std::vector<size_t> Decode() const = 0;
};

/// \brief Which InferenceEngine implementation to instantiate.
enum class InferenceBackend {
  /// FlatLbpEngine, sequential execution (num_threads forced to 1).
  kLbp,
  /// FlatLbpEngine, component-parallel execution. num_threads is honored
  /// as documented on LbpOptions (1 = sequential, 0 = auto-size) —
  /// callers wanting parallelism set it alongside this backend, as
  /// JoclOptions does.
  kParallelLbp,
  /// ExactEngine — joint enumeration, tiny graphs only.
  kExact,
};

/// Instantiates an engine over \p graph. \p graph and \p weights must
/// outlive the engine. LBP backends compile the graph internally; prefer
/// the CompiledGraph overload when running many times on one structure.
std::unique_ptr<InferenceEngine> CreateInferenceEngine(
    InferenceBackend backend, const FactorGraph* graph,
    const std::vector<double>* weights, LbpOptions options = {});

/// Engine over a pre-compiled graph (LBP backends reuse it as-is; the
/// exact backend runs on its source). \p compiled and \p weights must
/// outlive the engine.
std::unique_ptr<InferenceEngine> CreateInferenceEngine(
    InferenceBackend backend, const CompiledGraph* compiled,
    const std::vector<double>* weights, LbpOptions options = {});

/// \brief Numerically stable log(sum(exp(values))).
double LogSumExp(const std::vector<double>& values);

}  // namespace jocl

#endif  // JOCL_GRAPH_INFERENCE_H_
