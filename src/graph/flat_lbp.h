#ifndef JOCL_GRAPH_FLAT_LBP_H_
#define JOCL_GRAPH_FLAT_LBP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/compiled_graph.h"
#include "graph/inference.h"

namespace jocl {

/// \brief Log-space Loopy Belief Propagation over flat arenas.
///
/// All state lives in contiguous arrays indexed by the CompiledGraph's
/// precomputed offsets: factor->variable and variable->factor messages in
/// per-edge-state arenas, belief sums and marginals in per-variable-state
/// arenas, and a per-assignment log-potential table computed once per Run
/// (weights are fixed within a run, so no message update ever walks a
/// feature list). There is no per-factor or per-sweep allocation.
///
/// Execution is component-at-a-time: messages never cross connected
/// components, so each component runs its own staged schedule —
/// factor->variable updates group by group with variable->factor messages
/// refreshed between groups, damping and clamped-delta semantics as
/// before — to *its own* convergence within max_iterations. Components
/// touch disjoint arena slices, which makes the component loop trivially
/// parallel: `options.num_threads > 1` distributes components across a
/// thread pool and produces bit-for-bit identical marginals (the paper's
/// §3.4 segmentation remark, folded into the engine instead of copying
/// subgraphs).
class FlatLbpEngine : public InferenceEngine {
 public:
  /// Compiles \p graph internally. \p graph and \p weights must outlive
  /// the engine.
  FlatLbpEngine(const FactorGraph* graph, const std::vector<double>* weights,
                LbpOptions options = {});

  /// Runs over an existing compiled form (no recompilation — the learner
  /// uses this to share one CompiledGraph across all its passes).
  /// \p compiled and \p weights must outlive the engine.
  FlatLbpEngine(const CompiledGraph* compiled,
                const std::vector<double>* weights, LbpOptions options = {});

  FlatLbpEngine(const FlatLbpEngine&) = delete;
  FlatLbpEngine& operator=(const FlatLbpEngine&) = delete;

  LbpResult Run() override;

  /// Seeds each hinted variable's factor->variable messages with
  /// `log(prior) / degree` at the start of Run(), so the first
  /// variable->factor refresh reproduces the prior belief instead of the
  /// uniform one. See InferenceEngine::WarmStart for the (approximate)
  /// semantics.
  void WarmStart(const std::vector<VariableId>& variables,
                 const std::vector<std::vector<double>>& priors) override;

  const std::vector<double>& Marginal(VariableId id) const override {
    return marginals_[id];
  }

  std::vector<double> FactorBelief(FactorId id) const override;

  void AccumulateExpectedFeatures(
      std::vector<double>* expectations) const override;

  /// Bethe approximation of log Z from the run's beliefs:
  ///   `sum_f sum_a b_f(a)(log psi_f(a) - log b_f(a))
  ///    + sum_v (d_v - 1) sum_x b_v(x) log b_v(x)`.
  /// Exact on trees; honors clamps (a clamped variable's delta belief has
  /// zero entropy and restricts its factors' belief support).
  double LogPartitionEstimate() const override;

  std::vector<size_t> Decode() const override;

  /// Number of connected components (independent LBP sub-problems).
  size_t component_count() const { return compiled_->component_count; }

 private:
  /// Per-component convergence record, merged into the LbpResult.
  struct ComponentStats {
    size_t iterations = 0;
    bool converged = false;
    double final_residual = 0.0;
    std::vector<double> residuals;
  };

  /// Thread-local scratch for one factor update (sized once per worker).
  struct Scratch {
    std::vector<double> fresh;    // max_factor_states accumulators
    std::vector<size_t> states;   // max_arity mixed-radix counter
    std::vector<uint8_t> pinned;  // max_arity clamped-slot flags
  };

  void BuildSchedule();
  void InitArenas();
  ComponentStats RunComponent(size_t component, Scratch* scratch);
  void UpdateFactorMessages(FactorId f, double* residual, Scratch* scratch);
  void RefreshComponentVariables(size_t component);
  void MaterializeComponentMarginals(size_t component);

  const CompiledGraph* compiled_;
  CompiledGraph owned_;  // backing storage for the compiling constructor
  const std::vector<double>* weights_;
  LbpOptions options_;

  // Schedule flattened per component: factors of component c occupy
  // sched_factor_[sched_offset_[c] .. sched_offset_[c+1]), ordered by
  // schedule group then occurrence; sched_group_ marks group boundaries.
  std::vector<uint32_t> sched_factor_;
  std::vector<uint32_t> sched_group_;
  std::vector<size_t> sched_offset_;

  // Flat arenas (log space), indexed via CompiledGraph offsets.
  std::vector<double> log_potential_;  // [total_assignments]
  std::vector<double> msg_f2v_;        // [total_edge_states]
  std::vector<double> msg_v2f_;        // [total_edge_states]
  std::vector<double> belief_;         // [total_var_states]
  std::vector<double> marginal_;       // [total_var_states], probabilities

  // Materialized per-variable marginals (LbpResult-compatible shape).
  std::vector<std::vector<double>> marginals_;

  // Warm-start hints, applied after Run()'s message reset.
  std::vector<std::pair<VariableId, std::vector<double>>> warm_;
};

/// \brief Compatibility wrapper: component-parallel LBP over \p graph.
///
/// Runs a FlatLbpEngine with `num_threads` workers (0 upgrades to one
/// worker per hardware thread) and repackages the result. Marginals are
/// identical for every thread count. Unlike the old standalone
/// implementation this copies no subgraphs — components are arena slices —
/// and honors \p options.factor_schedule, restricted per component.
ParallelLbpResult RunParallelLbp(const FactorGraph& graph,
                                 const std::vector<double>& weights,
                                 const LbpOptions& options = {},
                                 size_t num_threads = 4);

}  // namespace jocl

#endif  // JOCL_GRAPH_FLAT_LBP_H_
