#ifndef JOCL_GRAPH_FLAT_LBP_H_
#define JOCL_GRAPH_FLAT_LBP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/compiled_graph.h"
#include "graph/inference.h"
#include "util/aligned.h"

namespace jocl {

/// \brief Log-space Loopy Belief Propagation over flat, aligned arenas.
///
/// All state lives in contiguous arrays indexed by the CompiledGraph's
/// precomputed offsets: factor->variable and variable->factor messages in
/// per-edge *lane* arenas (each lane padded to a vector boundary — see
/// util/aligned.h), belief sums and marginals in per-variable lane arenas,
/// and a per-assignment log-potential table computed once per Run (weights
/// are fixed within a run, so no message update ever walks a feature
/// list). There is no per-factor or per-sweep allocation.
///
/// Two message-update kernels share this layout (LbpOptions::kernel):
///
///  * **kVectorized** (default) — arity-specialized updates (unary,
///    binary, ternary factors; the generic path covers higher arities)
///    whose per-state inner loops run straight over the padded lanes so
///    the compiler can vectorize them. Every floating-point operation
///    happens in exactly the reference kernel's order — the message total
///    is accumulated `((lp + m0) + m1) + m2`, the cavity is `total -
///    m_slot`, log-sum-exp accumulates cell-sequentially in row-major
///    assignment order — so marginals are *byte-identical* to the
///    reference; the speedup comes from eliminating the mixed-radix
///    counter, per-assignment feasibility re-checks, and per-state offset
///    chasing, plus vectorized belief/cavity/normalize lane loops.
///  * **kScalarReference** — the pre-vectorization kernel (generic
///    mixed-radix assignment enumeration), kept as the byte-identity
///    oracle for tests and the baseline the kernel benchmarks guard
///    against.
///
/// Execution is component-at-a-time: messages never cross connected
/// components, so each component runs its own schedule to *its own*
/// convergence within max_iterations. Components touch disjoint arena
/// slices, which makes the component loop trivially parallel:
/// `options.num_threads > 1` distributes components across a thread pool
/// and produces bit-for-bit identical marginals.
///
/// Per component, LbpOptions::schedule selects between the exact staged
/// sweep (factor->variable updates group by group with variable->factor
/// messages refreshed between groups — the paper's §3.4 procedure) and
/// the opt-in residual-priority schedule (kResidual): a bucketed priority
/// queue keyed by how much each factor's inputs moved since its last
/// update, highest residual first, with an update budget of
/// `max_iterations * component factor count`. Residual runs report their
/// convergence certificate through LbpResult (final_residual = max
/// residual at stop, sweeps_skipped = unspent budget in sweeps).
class FlatLbpEngine : public InferenceEngine {
 public:
  /// Compiles \p graph internally. \p graph and \p weights must outlive
  /// the engine.
  FlatLbpEngine(const FactorGraph* graph, const std::vector<double>* weights,
                LbpOptions options = {});

  /// Runs over an existing compiled form (no recompilation — the learner
  /// uses this to share one CompiledGraph across all its passes).
  /// \p compiled and \p weights must outlive the engine.
  FlatLbpEngine(const CompiledGraph* compiled,
                const std::vector<double>* weights, LbpOptions options = {});

  FlatLbpEngine(const FlatLbpEngine&) = delete;
  FlatLbpEngine& operator=(const FlatLbpEngine&) = delete;

  Status Validate() const override;

  LbpResult Run() override;

  /// Seeds each hinted variable's factor->variable messages with
  /// `log(prior) / degree` at the start of Run(), so the first
  /// variable->factor refresh reproduces the prior belief instead of the
  /// uniform one. See InferenceEngine::WarmStart for the (approximate)
  /// semantics.
  void WarmStart(const std::vector<VariableId>& variables,
                 const std::vector<std::vector<double>>& priors) override;

  const std::vector<double>& Marginal(VariableId id) const override {
    return marginals_[id];
  }

  std::vector<double> FactorBelief(FactorId id) const override;

  void AccumulateExpectedFeatures(
      std::vector<double>* expectations) const override;

  /// Bethe approximation of log Z from the run's beliefs:
  ///   `sum_f sum_a b_f(a)(log psi_f(a) - log b_f(a))
  ///    + sum_v (d_v - 1) sum_x b_v(x) log b_v(x)`.
  /// Exact on trees; honors clamps (a clamped variable's delta belief has
  /// zero entropy and restricts its factors' belief support).
  double LogPartitionEstimate() const override;

  std::vector<size_t> Decode() const override;

  /// Number of connected components (independent LBP sub-problems).
  size_t component_count() const { return compiled_->component_count; }

 private:
  /// Per-component convergence record, merged into the LbpResult.
  struct ComponentStats {
    size_t iterations = 0;
    bool converged = false;
    double final_residual = 0.0;
    std::vector<double> residuals;
    size_t message_updates = 0;
    size_t residual_pops = 0;
    size_t sweeps_skipped = 0;
  };

  /// Thread-local scratch for one worker (sized once per worker; the
  /// residual-queue arrays are factor-indexed but each component only
  /// touches — and resets — its own factors' entries).
  struct Scratch {
    AlignedVector<double> fresh;   // max_factor_lane_states accumulators
    std::vector<size_t> states;    // max_arity mixed-radix counter
    std::vector<uint8_t> pinned;   // max_arity clamped-slot flags
    std::vector<size_t> cards;     // max_arity hoisted cardinalities
    std::vector<size_t> strides;   // max_arity hoisted assignment strides
    std::vector<size_t> lanes;     // max_arity hoisted lane offsets
    AlignedVector<double> lane;    // one padded lane (residual deltas)
    // ---- residual-schedule state (sized on first kResidual component) --
    std::vector<double> priority;  // [nf] pending residual per factor
    std::vector<int32_t> bucket_of;  // [nf] queued bucket, -1 = not queued
    std::vector<uint32_t> stamp;   // [nf] push generation (stale detection)
    std::vector<std::vector<uint64_t>> buckets;  // FIFO entries per bucket
    std::vector<size_t> bucket_head;  // consumed prefix per bucket
  };

  void BuildSchedule();
  void InitArenas();
  ComponentStats RunComponent(size_t component, Scratch* scratch);
  ComponentStats RunComponentResidual(size_t component, Scratch* scratch);

  /// Dispatches one factor update to the selected kernel and finishes
  /// with the shared normalize/damp/residual epilogue.
  void UpdateFactorMessages(FactorId f, double* residual, Scratch* scratch);
  template <bool kMaxProduct>
  void UpdateFactorGeneric(FactorId f, Scratch* scratch);
  template <bool kMaxProduct>
  void UpdateFactorUnary(FactorId f, Scratch* scratch);
  template <bool kMaxProduct>
  void UpdateFactorBinary(FactorId f, Scratch* scratch);
  template <bool kMaxProduct>
  void UpdateFactorTernary(FactorId f, Scratch* scratch);
  void FinishFactorUpdate(FactorId f, double* residual, Scratch* scratch);

  /// Recomputes variable \p v's belief sums and outgoing v->f cavity
  /// messages from the current f->v messages (normalized, clamp-aware).
  void RefreshVariable(uint32_t v);
  void RefreshComponentVariables(size_t component);
  /// Residual-schedule variant: same message math as RefreshVariable, but
  /// measures each outgoing message's change and raises the receiving
  /// factor's queue priority accordingly.
  void RefreshVariableTrackDeltas(uint32_t v, Scratch* scratch);
  void BumpFactorPriority(uint32_t f, double delta, Scratch* scratch);

  void MaterializeComponentMarginals(size_t component);

  const CompiledGraph* compiled_;
  CompiledGraph owned_;  // backing storage for the compiling constructor
  const std::vector<double>* weights_;
  LbpOptions options_;

  // Schedule flattened per component: factors of component c occupy
  // sched_factor_[sched_offset_[c] .. sched_offset_[c+1]), ordered by
  // schedule group then occurrence; sched_group_ marks group boundaries.
  std::vector<uint32_t> sched_factor_;
  std::vector<uint32_t> sched_group_;
  std::vector<size_t> sched_offset_;

  // Flat arenas (log space). Message and belief arenas use the compiled
  // graph's *lane* offsets — per-edge / per-variable spans padded to
  // kLaneAlignment — so arena bases and every lane are vector-aligned.
  // The padding tails are initialized but never read.
  std::vector<double> log_potential_;    // [total_assignments]
  AlignedVector<double> msg_f2v_;        // [total_edge_lane_states]
  AlignedVector<double> msg_v2f_;        // [total_edge_lane_states]
  AlignedVector<double> belief_;         // [total_var_lane_states]
  AlignedVector<double> marginal_;       // [total_var_lane_states], probs

  // Materialized per-variable marginals (LbpResult-compatible shape).
  std::vector<std::vector<double>> marginals_;

  // Warm-start hints, applied after Run()'s message reset.
  std::vector<std::pair<VariableId, std::vector<double>>> warm_;
};

/// \brief Compatibility wrapper: component-parallel LBP over \p graph.
///
/// Runs a FlatLbpEngine with `num_threads` workers (0 upgrades to one
/// worker per hardware thread) and repackages the result. Marginals are
/// identical for every thread count. Unlike the old standalone
/// implementation this copies no subgraphs — components are arena slices —
/// and honors \p options.factor_schedule, restricted per component.
ParallelLbpResult RunParallelLbp(const FactorGraph& graph,
                                 const std::vector<double>& weights,
                                 const LbpOptions& options = {},
                                 size_t num_threads = 4);

}  // namespace jocl

#endif  // JOCL_GRAPH_FLAT_LBP_H_
