#ifndef JOCL_GRAPH_PARALLEL_LBP_H_
#define JOCL_GRAPH_PARALLEL_LBP_H_

#include <cstddef>
#include <vector>

#include "graph/lbp.h"

namespace jocl {

/// \brief Result of a partitioned LBP run.
struct ParallelLbpResult {
  /// Per-variable marginals, aligned with the input graph's variable ids.
  std::vector<std::vector<double>> marginals;
  /// Number of connected components found.
  size_t components = 0;
  /// True iff every component converged within the iteration budget.
  bool converged = false;
  /// Max sweeps used by any component.
  size_t iterations = 0;
};

/// \brief Connected-component-parallel Loopy Belief Propagation.
///
/// The paper notes its learning algorithm "can be extended to a
/// distributed learning version with a graph segmentation algorithm"
/// (§3.4). The natural exact segmentation is by connected components:
/// messages never cross components, so running one LbpEngine per component
/// — here across a thread pool — produces marginals identical to a single
/// sequential engine, with wall-clock scaling by the largest component.
/// JOCL's joint graphs fragment heavily (each blocking cluster plus its
/// triples forms an island), making this an effective segmentation.
///
/// Caller-provided factor schedules are component-local concepts and are
/// ignored here; each component runs the default (insertion-order)
/// schedule. Clamped variables are honored.
ParallelLbpResult RunParallelLbp(const FactorGraph& graph,
                                 const std::vector<double>& weights,
                                 const LbpOptions& options = {},
                                 size_t num_threads = 4);

/// \brief Computes the connected-component label of every variable
/// (variables sharing a factor are connected). Exposed for testing and
/// for diagnostics about graph fragmentation.
std::vector<size_t> FactorGraphComponents(const FactorGraph& graph);

}  // namespace jocl

#endif  // JOCL_GRAPH_PARALLEL_LBP_H_
