#ifndef JOCL_GRAPH_EXACT_H_
#define JOCL_GRAPH_EXACT_H_

#include <cstddef>
#include <vector>

#include "graph/inference.h"

namespace jocl {

/// \brief Exact inference by joint enumeration — O(prod cardinalities).
///
/// Only usable on tiny graphs; exists so tests can verify LBP (exact on
/// trees, close on small loopy graphs) and the learner's gradients.
struct ExactResult {
  std::vector<std::vector<double>> marginals;
  double log_partition = 0.0;
  /// Expected features under the exact joint.
  std::vector<double> expected_features;
};

/// Computes exact marginals, log Z and expected features. Respects clamps.
ExactResult ExactInference(const FactorGraph& graph,
                           const std::vector<double>& weights);

/// \brief Exact MAP assignment by joint enumeration (tiny graphs only).
/// Respects clamps; deterministic tie-break on the assignment order.
std::vector<size_t> ExactMap(const FactorGraph& graph,
                             const std::vector<double>& weights);

/// \brief The exact enumerator behind the InferenceEngine interface.
///
/// Run() computes exact marginals and expected features; Decode() returns
/// the exact MAP assignment (regardless of LbpOptions::mode — enumeration
/// needs no message semiring). Drop-in ground truth for any consumer of
/// the interface, on graphs small enough to enumerate.
class ExactEngine : public InferenceEngine {
 public:
  /// \p graph and \p weights must outlive the engine. Only the
  /// diagnostics-shape fields of \p options are meaningful here.
  ExactEngine(const FactorGraph* graph, const std::vector<double>* weights,
              LbpOptions options = {});

  Status Validate() const override;

  LbpResult Run() override;

  const std::vector<double>& Marginal(VariableId id) const override {
    return exact_.marginals[id];
  }

  std::vector<double> FactorBelief(FactorId id) const override;

  void AccumulateExpectedFeatures(
      std::vector<double>* expectations) const override;

  /// The exact log Z of the enumerated joint (valid after Run()).
  double LogPartitionEstimate() const override {
    return exact_.log_partition;
  }

  std::vector<size_t> Decode() const override;

 private:
  const FactorGraph* graph_;
  const std::vector<double>* weights_;
  ExactResult exact_;
};

}  // namespace jocl

#endif  // JOCL_GRAPH_EXACT_H_
