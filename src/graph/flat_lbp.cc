#include "graph/flat_lbp.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>
#include <thread>

namespace jocl {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Residual-queue bucket count: bucket b holds residuals in
// [tolerance * 2^(b-1), tolerance * 2^b); the top bucket also absorbs
// +inf (the "never updated" seed priority).
constexpr int kResidualBuckets = 48;

// Normalizes a log-space message span so its max entry is 0 (avoids
// drift). The subtract loop is a pure element-wise lane operation — it
// auto-vectorizes on the padded lanes.
void NormalizeLog(double* message, size_t n) {
  double mx = kNegInf;
  for (size_t i = 0; i < n; ++i) mx = std::max(mx, message[i]);
  if (mx == kNegInf) return;
  for (size_t i = 0; i < n; ++i) message[i] -= mx;
}

// One running log-sum-exp accumulation step, branch-for-branch identical
// to the reference kernel's in-place form: the first touch of a fresh
// (-inf) cell yields the cavity, ties take the `cell` branch, and both
// operands are finite otherwise (infeasible assignments are skipped
// before cavities are formed).
inline double LseStep(double cell, double cavity) {
  if (cell == kNegInf) return cavity;
  if (cavity > cell) return cavity + std::log1p(std::exp(cell - cavity));
  return cell + std::log1p(std::exp(cavity - cell));
}

size_t ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Bucket for a residual r >= tolerance: floor(log2(r / tolerance)),
// clamped to the table. +inf and non-positive tolerances land in the top
// bucket.
int ResidualBucket(double r, double tolerance) {
  if (tolerance <= 0.0 || !(r < std::numeric_limits<double>::infinity())) {
    return kResidualBuckets - 1;
  }
  int exponent = 0;
  std::frexp(r / tolerance, &exponent);  // ratio >= 1 -> exponent >= 1
  return std::min(exponent - 1, kResidualBuckets - 1);
}
}  // namespace

double LogSumExp(const std::vector<double>& values) {
  double mx = kNegInf;
  for (double v : values) mx = std::max(mx, v);
  if (mx == kNegInf) return kNegInf;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - mx);
  return mx + std::log(sum);
}

FlatLbpEngine::FlatLbpEngine(const FactorGraph* graph,
                             const std::vector<double>* weights,
                             LbpOptions options)
    : compiled_(nullptr),
      owned_(CompiledGraph::Compile(*graph)),
      weights_(weights),
      options_(std::move(options)) {
  compiled_ = &owned_;
  BuildSchedule();
  InitArenas();
}

FlatLbpEngine::FlatLbpEngine(const CompiledGraph* compiled,
                             const std::vector<double>* weights,
                             LbpOptions options)
    : compiled_(compiled), weights_(weights), options_(std::move(options)) {
  BuildSchedule();
  InitArenas();
}

Status FlatLbpEngine::Validate() const {
  if (weights_ == nullptr) {
    return Status::InvalidArgument("no weight vector bound");
  }
  JOCL_RETURN_NOT_OK(CompiledGraph::ValidateSource(*compiled_->source));
  if (weights_->size() < compiled_->source->weight_count()) {
    return Status::FailedPrecondition(
        "weight vector holds " + std::to_string(weights_->size()) +
        " weights, graph references " +
        std::to_string(compiled_->source->weight_count()));
  }
  return Status::OK();
}

void FlatLbpEngine::InitArenas() {
  // Size everything up front so interface queries are defined (if dull)
  // even before Run(), matching the old engine's constructor-allocated
  // storage; Run()'s assign() calls reuse this capacity. Message and
  // belief arenas are lane-padded (tails never read).
  const CompiledGraph& c = *compiled_;
  log_potential_.assign(c.total_assignments(), 0.0);
  msg_f2v_.assign(c.total_edge_lane_states(), 0.0);
  msg_v2f_.assign(c.total_edge_lane_states(), 0.0);
  belief_.assign(c.total_var_lane_states(), 0.0);
  marginal_.assign(c.total_var_lane_states(), 0.0);
  marginals_.resize(c.variable_count());
  for (VariableId v = 0; v < c.variable_count(); ++v) {
    marginals_[v].assign(c.cardinality[v], 0.0);
  }
}

void FlatLbpEngine::BuildSchedule() {
  const CompiledGraph& c = *compiled_;
  const size_t nf = c.factor_count();
  const size_t groups = options_.factor_schedule.size();

  // Emit (factor, group) in schedule order — caller groups first, then the
  // leftover factors as a final group — and counting-sort by component.
  // The sort is stable, so each component sees its factors in the same
  // group-by-group order the old global engine used.
  std::vector<uint32_t> order_factor;
  std::vector<uint32_t> order_group;
  std::vector<uint8_t> scheduled(nf, 0);
  for (size_t g = 0; g < groups; ++g) {
    for (FactorId f : options_.factor_schedule[g]) {
      if (f >= nf || c.scope_offset[f] == c.scope_offset[f + 1]) continue;
      order_factor.push_back(static_cast<uint32_t>(f));
      order_group.push_back(static_cast<uint32_t>(g));
      scheduled[f] = 1;
    }
  }
  for (FactorId f = 0; f < nf; ++f) {
    if (scheduled[f] || c.scope_offset[f] == c.scope_offset[f + 1]) continue;
    order_factor.push_back(static_cast<uint32_t>(f));
    order_group.push_back(static_cast<uint32_t>(groups));
  }

  const size_t nc = c.component_count;
  sched_offset_.assign(nc + 1, 0);
  auto component_of_factor = [&](uint32_t f) {
    return c.component_of_var[c.scope_var[c.scope_offset[f]]];
  };
  for (uint32_t f : order_factor) ++sched_offset_[component_of_factor(f) + 1];
  for (size_t k = 0; k < nc; ++k) sched_offset_[k + 1] += sched_offset_[k];
  sched_factor_.resize(order_factor.size());
  sched_group_.resize(order_factor.size());
  std::vector<size_t> cursor(sched_offset_.begin(), sched_offset_.end() - 1);
  for (size_t i = 0; i < order_factor.size(); ++i) {
    const size_t pos = cursor[component_of_factor(order_factor[i])]++;
    sched_factor_[pos] = order_factor[i];
    sched_group_[pos] = order_group[i];
  }
}

void FlatLbpEngine::RefreshVariable(uint32_t v) {
  const CompiledGraph& c = *compiled_;
  const FactorGraph& g = *c.source;
  const size_t card = c.cardinality[v];
  double* sums = AssumeLaneAligned(belief_.data() + c.var_lane_offset[v]);
  if (g.IsClamped(v)) {
    const size_t observed = static_cast<size_t>(g.variable(v).clamped_state);
    for (size_t x = 0; x < card; ++x) {
      sums[x] = (x == observed) ? 0.0 : kNegInf;
    }
    for (size_t k = c.attach_offset[v]; k < c.attach_offset[v + 1]; ++k) {
      double* outgoing = AssumeLaneAligned(
          msg_v2f_.data() + c.edge_lane_offset[c.attach_edge[k]]);
      for (size_t x = 0; x < card; ++x) {
        outgoing[x] = (x == observed) ? 0.0 : kNegInf;
      }
    }
    return;
  }
  // belief_sums[v][x] = sum over attached edges of msg_f2v. Each += pass
  // is an independent-lane loop over the padded span — vectorizable.
  std::fill(sums, sums + card, 0.0);
  for (size_t k = c.attach_offset[v]; k < c.attach_offset[v + 1]; ++k) {
    const double* incoming = AssumeLaneAligned(
        msg_f2v_.data() + c.edge_lane_offset[c.attach_edge[k]]);
    for (size_t x = 0; x < card; ++x) sums[x] += incoming[x];
  }
  NormalizeLog(sums, card);
  // Variable -> factor messages: cavity sums (subtract own incoming),
  // with the normalize max fused into the subtraction pass (one pass
  // fewer than subtract + NormalizeLog; same operations, same order).
  for (size_t k = c.attach_offset[v]; k < c.attach_offset[v + 1]; ++k) {
    const size_t base = c.edge_lane_offset[c.attach_edge[k]];
    double* outgoing = AssumeLaneAligned(msg_v2f_.data() + base);
    const double* incoming = AssumeLaneAligned(msg_f2v_.data() + base);
    double mx = kNegInf;
    for (size_t x = 0; x < card; ++x) {
      const double value = sums[x] - incoming[x];
      outgoing[x] = value;
      mx = std::max(mx, value);
    }
    if (mx == kNegInf) continue;
    for (size_t x = 0; x < card; ++x) outgoing[x] -= mx;
  }
}

void FlatLbpEngine::RefreshComponentVariables(size_t component) {
  const CompiledGraph& c = *compiled_;
  for (size_t i = c.comp_var_offset[component];
       i < c.comp_var_offset[component + 1]; ++i) {
    RefreshVariable(c.comp_vars[i]);
  }
}

void FlatLbpEngine::BumpFactorPriority(uint32_t f, double delta,
                                       Scratch* scratch) {
  if (!(delta > scratch->priority[f])) return;
  scratch->priority[f] = delta;
  if (delta < options_.tolerance) return;  // below-certificate: no entry
  const int bucket = ResidualBucket(delta, options_.tolerance);
  if (bucket <= scratch->bucket_of[f]) return;  // queued at least this high
  scratch->bucket_of[f] = bucket;
  const uint32_t stamp = ++scratch->stamp[f];
  scratch->buckets[bucket].push_back((static_cast<uint64_t>(f) << 32) |
                                     stamp);
}

void FlatLbpEngine::RefreshVariableTrackDeltas(uint32_t v, Scratch* scratch) {
  const CompiledGraph& c = *compiled_;
  const FactorGraph& g = *c.source;
  if (g.IsClamped(v)) return;  // delta messages never change after init
  const size_t card = c.cardinality[v];
  double* sums = AssumeLaneAligned(belief_.data() + c.var_lane_offset[v]);
  std::fill(sums, sums + card, 0.0);
  for (size_t k = c.attach_offset[v]; k < c.attach_offset[v + 1]; ++k) {
    const double* incoming = AssumeLaneAligned(
        msg_f2v_.data() + c.edge_lane_offset[c.attach_edge[k]]);
    for (size_t x = 0; x < card; ++x) sums[x] += incoming[x];
  }
  NormalizeLog(sums, card);
  double* lane = scratch->lane.data();
  for (size_t k = c.attach_offset[v]; k < c.attach_offset[v + 1]; ++k) {
    const uint32_t e = c.attach_edge[k];
    const size_t base = c.edge_lane_offset[e];
    double* outgoing = AssumeLaneAligned(msg_v2f_.data() + base);
    const double* incoming = AssumeLaneAligned(msg_f2v_.data() + base);
    double mx = kNegInf;
    for (size_t x = 0; x < card; ++x) {
      const double value = sums[x] - incoming[x];
      lane[x] = value;
      mx = std::max(mx, value);
    }
    const double shift = (mx == kNegInf) ? 0.0 : mx;
    double delta = 0.0;
    for (size_t x = 0; x < card; ++x) {
      const double value = lane[x] - shift;
      const double diff = std::abs(value - outgoing[x]);
      // NaN here means both sides are -inf (no change); an infinite diff
      // is a genuine support change and must reach the queue.
      if (!std::isnan(diff)) delta = std::max(delta, diff);
      outgoing[x] = value;
    }
    BumpFactorPriority(c.edge_factor[e], delta, scratch);
  }
}

// ---------------------------------------------------------------------------
// Factor -> variable kernels.
//
// All kernels share the floating-point contract of the original scalar
// implementation: assignments are visited in row-major order (last scope
// slot fastest), an assignment is skipped the moment any incoming message
// is -inf, the feasible total accumulates as `((lp + m0) + m1) + m2`, the
// per-slot cavity is `total - m_slot`, and each fresh cell accumulates
// cavities with LseStep (sum-product) or std::max (max-product) in visit
// order. The specialized kernels below change only *bookkeeping* — no
// mixed-radix counter, no per-assignment feasibility re-scan, hoisted
// message-lane pointers — so their outputs are byte-identical.
// ---------------------------------------------------------------------------

template <bool kMaxProduct>
void FlatLbpEngine::UpdateFactorGeneric(FactorId f, Scratch* scratch) {
  const CompiledGraph& c = *compiled_;
  const FactorGraph& g = *c.source;
  const size_t edge_begin = c.scope_offset[f];
  const size_t edge_end = c.scope_offset[f + 1];
  const size_t arity = edge_end - edge_begin;
  const double* log_potential = log_potential_.data() + c.assignment_offset[f];

  // Fresh outgoing accumulators for all slots, contiguous per factor:
  // slot's states live at edge_lane_offset[e] - lane_base.
  const size_t lane_base = c.edge_lane_offset[edge_begin];
  const size_t factor_lanes = c.edge_lane_offset[edge_end] - lane_base;
  double* fresh = scratch->fresh.data();
  std::fill(fresh, fresh + factor_lanes, kNegInf);
  size_t* states = scratch->states.data();
  uint8_t* pinned = scratch->pinned.data();
  // Hoist the per-slot cardinality / stride / lane lookups out of the
  // enumeration (the stride walk used to chase cardinality[scope_var[e]]
  // and edge offsets on every increment).
  size_t* cards = scratch->cards.data();
  size_t* strides = scratch->strides.data();
  size_t* lanes = scratch->lanes.data();

  // Clamped scope variables pin their slot: only assignments consistent
  // with the observations are enumerated (the precomputed strides keep
  // the assignment index in sync while the pinned slots are skipped).
  // The skipped assignments were infeasible anyway — clamped variables
  // send -inf for every unobserved state — so the result is unchanged;
  // the learner's clamped pass just stops paying for them.
  size_t a = 0;
  size_t reduced = 1;
  for (size_t slot = 0; slot < arity; ++slot) {
    const size_t e = edge_begin + slot;
    const uint32_t v = c.scope_var[e];
    cards[slot] = c.cardinality[v];
    strides[slot] = c.slot_stride[e];
    lanes[slot] = c.edge_lane_offset[e];
    if (g.IsClamped(v)) {
      const size_t observed = static_cast<size_t>(g.variable(v).clamped_state);
      states[slot] = observed;
      a += observed * strides[slot];
      pinned[slot] = 1;
    } else {
      states[slot] = 0;
      reduced *= cards[slot];
      pinned[slot] = 0;
    }
  }

  // Enumerate assignments once; for each, distribute the cavity total to
  // every slot. Row-major decode is done incrementally for speed.
  for (size_t r = 0; r < reduced; ++r) {
    double total = log_potential[a];
    bool feasible = true;
    for (size_t slot = 0; slot < arity; ++slot) {
      const double m = msg_v2f_[lanes[slot] + states[slot]];
      if (m == kNegInf) {
        feasible = false;
        break;
      }
      total += m;
    }
    if (feasible) {
      for (size_t slot = 0; slot < arity; ++slot) {
        const double cavity = total - msg_v2f_[lanes[slot] + states[slot]];
        double& cell = fresh[lanes[slot] - lane_base + states[slot]];
        if (kMaxProduct) {
          cell = std::max(cell, cavity);
        } else {
          cell = LseStep(cell, cavity);
        }
      }
    }
    // Increment the mixed-radix counter over free slots (last fastest),
    // keeping the assignment index in sync via the strides.
    for (size_t slot = arity; slot-- > 0;) {
      if (pinned[slot]) continue;
      const size_t stride = strides[slot];
      if (++states[slot] < cards[slot]) {
        a += stride;
        break;
      }
      a -= stride * (states[slot] - 1);
      states[slot] = 0;
    }
  }
}

template <bool kMaxProduct>
void FlatLbpEngine::UpdateFactorUnary(FactorId f, Scratch* scratch) {
  const CompiledGraph& c = *compiled_;
  const size_t e0 = c.scope_offset[f];
  const size_t card = c.cardinality[c.scope_var[e0]];
  const double* log_potential = log_potential_.data() + c.assignment_offset[f];
  const double* m0 =
      AssumeLaneAligned(msg_v2f_.data() + c.edge_lane_offset[e0]);
  double* fresh = scratch->fresh.data();
  // Each cell is touched exactly once: the first LseStep / max on a fresh
  // -inf cell yields the cavity itself, so no fill pass is needed.
  for (size_t s = 0; s < card; ++s) {
    const double m = m0[s];
    if (m == kNegInf) {
      fresh[s] = kNegInf;
      continue;
    }
    const double total = log_potential[s] + m;
    fresh[s] = total - m;  // NOT lp[s]: (lp + m) - m must match reference
  }
}

template <bool kMaxProduct>
void FlatLbpEngine::UpdateFactorBinary(FactorId f, Scratch* scratch) {
  const CompiledGraph& c = *compiled_;
  const size_t e0 = c.scope_offset[f];
  const size_t e1 = e0 + 1;
  const size_t c0 = c.cardinality[c.scope_var[e0]];
  const size_t c1 = c.cardinality[c.scope_var[e1]];
  const double* log_potential = log_potential_.data() + c.assignment_offset[f];
  const double* m0 =
      AssumeLaneAligned(msg_v2f_.data() + c.edge_lane_offset[e0]);
  const double* m1 =
      AssumeLaneAligned(msg_v2f_.data() + c.edge_lane_offset[e1]);
  const size_t lane_base = c.edge_lane_offset[e0];
  double* fresh0 = scratch->fresh.data();
  double* fresh1 = fresh0 + (c.edge_lane_offset[e1] - lane_base);
  const size_t factor_lanes = c.edge_lane_offset[e1 + 1] - lane_base;
  std::fill(fresh0, fresh0 + factor_lanes, kNegInf);

  const double* lp_row = log_potential;
  for (size_t s0 = 0; s0 < c0; ++s0, lp_row += c1) {
    const double m0v = m0[s0];
    // Row skip == the reference's slot-0 feasibility break: every
    // assignment in this row is infeasible and writes nothing.
    if (m0v == kNegInf) continue;
    double acc0 = kNegInf;  // fresh0[s0] chain, kept in a register
    for (size_t s1 = 0; s1 < c1; ++s1) {
      const double m1v = m1[s1];
      if (m1v == kNegInf) continue;
      const double total = (lp_row[s1] + m0v) + m1v;
      if (kMaxProduct) {
        acc0 = std::max(acc0, total - m0v);
        fresh1[s1] = std::max(fresh1[s1], total - m1v);
      } else {
        acc0 = LseStep(acc0, total - m0v);
        fresh1[s1] = LseStep(fresh1[s1], total - m1v);
      }
    }
    fresh0[s0] = acc0;
  }
}

template <bool kMaxProduct>
void FlatLbpEngine::UpdateFactorTernary(FactorId f, Scratch* scratch) {
  const CompiledGraph& c = *compiled_;
  const size_t e0 = c.scope_offset[f];
  const size_t e1 = e0 + 1;
  const size_t e2 = e0 + 2;
  const size_t c0 = c.cardinality[c.scope_var[e0]];
  const size_t c1 = c.cardinality[c.scope_var[e1]];
  const size_t c2 = c.cardinality[c.scope_var[e2]];
  const double* log_potential = log_potential_.data() + c.assignment_offset[f];
  const double* m0 =
      AssumeLaneAligned(msg_v2f_.data() + c.edge_lane_offset[e0]);
  const double* m1 =
      AssumeLaneAligned(msg_v2f_.data() + c.edge_lane_offset[e1]);
  const double* m2 =
      AssumeLaneAligned(msg_v2f_.data() + c.edge_lane_offset[e2]);
  const size_t lane_base = c.edge_lane_offset[e0];
  double* fresh0 = scratch->fresh.data();
  double* fresh1 = fresh0 + (c.edge_lane_offset[e1] - lane_base);
  double* fresh2 = fresh0 + (c.edge_lane_offset[e2] - lane_base);
  const size_t factor_lanes = c.edge_lane_offset[e2 + 1] - lane_base;
  std::fill(fresh0, fresh0 + factor_lanes, kNegInf);

  for (size_t s0 = 0; s0 < c0; ++s0) {
    const double m0v = m0[s0];
    if (m0v == kNegInf) continue;
    double acc0 = kNegInf;  // spans the whole s1 x s2 plane
    const double* lp_plane = log_potential + s0 * c1 * c2;
    for (size_t s1 = 0; s1 < c1; ++s1) {
      const double m1v = m1[s1];
      if (m1v == kNegInf) continue;
      double acc1 = fresh1[s1];  // resumes this cell's chain across s0
      const double* lp_row = lp_plane + s1 * c2;
      for (size_t s2 = 0; s2 < c2; ++s2) {
        const double m2v = m2[s2];
        if (m2v == kNegInf) continue;
        const double total = ((lp_row[s2] + m0v) + m1v) + m2v;
        if (kMaxProduct) {
          acc0 = std::max(acc0, total - m0v);
          acc1 = std::max(acc1, total - m1v);
          fresh2[s2] = std::max(fresh2[s2], total - m2v);
        } else {
          acc0 = LseStep(acc0, total - m0v);
          acc1 = LseStep(acc1, total - m1v);
          fresh2[s2] = LseStep(fresh2[s2], total - m2v);
        }
      }
      fresh1[s1] = acc1;
    }
    fresh0[s0] = acc0;
  }
}

void FlatLbpEngine::FinishFactorUpdate(FactorId f, double* residual,
                                       Scratch* scratch) {
  const CompiledGraph& c = *compiled_;
  const size_t edge_begin = c.scope_offset[f];
  const size_t edge_end = c.scope_offset[f + 1];
  const size_t lane_base = c.edge_lane_offset[edge_begin];
  const double damping = options_.damping;
  double* fresh = scratch->fresh.data();
  for (size_t e = edge_begin; e < edge_end; ++e) {
    const size_t card = c.cardinality[c.scope_var[e]];
    double* fr = fresh + (c.edge_lane_offset[e] - lane_base);
    // Normalize max pass (a pure lane reduction), then a single fused
    // subtract + damp + residual pass — one pass fewer than the old
    // NormalizeLog-then-damp epilogue, with identical operations:
    // `x - 0.0 == x` bit-for-bit when the lane is all -inf (NormalizeLog's
    // early-out case).
    double mx = kNegInf;
    for (size_t x = 0; x < card; ++x) mx = std::max(mx, fr[x]);
    const double shift = (mx == kNegInf) ? 0.0 : mx;
    double* old = AssumeLaneAligned(msg_f2v_.data() + c.edge_lane_offset[e]);
    for (size_t x = 0; x < card; ++x) {
      double updated = fr[x] - shift;
      if (damping > 0.0 && old[x] != kNegInf && updated != kNegInf) {
        updated = (1.0 - damping) * updated + damping * old[x];
      }
      const double delta = std::abs(updated - old[x]);
      if (std::isfinite(delta)) *residual = std::max(*residual, delta);
      old[x] = updated;
    }
  }
}

void FlatLbpEngine::UpdateFactorMessages(FactorId f, double* residual,
                                         Scratch* scratch) {
  const size_t arity = compiled_->scope_offset[f + 1] - compiled_->scope_offset[f];
  const bool max_product = options_.mode == LbpMode::kMaxProduct;
  if (options_.kernel == LbpKernel::kScalarReference || arity > 3) {
    if (max_product) {
      UpdateFactorGeneric<true>(f, scratch);
    } else {
      UpdateFactorGeneric<false>(f, scratch);
    }
  } else if (arity == 1) {
    if (max_product) {
      UpdateFactorUnary<true>(f, scratch);
    } else {
      UpdateFactorUnary<false>(f, scratch);
    }
  } else if (arity == 2) {
    if (max_product) {
      UpdateFactorBinary<true>(f, scratch);
    } else {
      UpdateFactorBinary<false>(f, scratch);
    }
  } else {
    if (max_product) {
      UpdateFactorTernary<true>(f, scratch);
    } else {
      UpdateFactorTernary<false>(f, scratch);
    }
  }
  FinishFactorUpdate(f, residual, scratch);
}

void FlatLbpEngine::MaterializeComponentMarginals(size_t component) {
  const CompiledGraph& c = *compiled_;
  for (size_t i = c.comp_var_offset[component];
       i < c.comp_var_offset[component + 1]; ++i) {
    const uint32_t v = c.comp_vars[i];
    const size_t card = c.cardinality[v];
    const double* log_belief =
        AssumeLaneAligned(belief_.data() + c.var_lane_offset[v]);
    double* out = AssumeLaneAligned(marginal_.data() + c.var_lane_offset[v]);
    double mx = kNegInf;
    for (size_t x = 0; x < card; ++x) mx = std::max(mx, log_belief[x]);
    if (mx == kNegInf) {
      // All states impossible (should not happen); fall back to uniform.
      for (size_t x = 0; x < card; ++x) {
        out[x] = 1.0 / static_cast<double>(card);
      }
      continue;
    }
    double sum = 0.0;
    for (size_t x = 0; x < card; ++x) sum += std::exp(log_belief[x] - mx);
    const double lse = mx + std::log(sum);
    for (size_t x = 0; x < card; ++x) out[x] = std::exp(log_belief[x] - lse);
  }
}

FlatLbpEngine::ComponentStats FlatLbpEngine::RunComponent(size_t component,
                                                          Scratch* scratch) {
  if (options_.schedule == LbpSchedule::kResidual) {
    return RunComponentResidual(component, scratch);
  }
  ComponentStats stats;
  RefreshComponentVariables(component);
  const size_t begin = sched_offset_[component];
  const size_t end = sched_offset_[component + 1];
  if (begin == end) {
    // No factors: beliefs (uniform or clamped delta) are already final.
    stats.converged = true;
    MaterializeComponentMarginals(component);
    return stats;
  }
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    double residual = 0.0;
    // Paper §3.4: factor->variable updates proceed group by group, with
    // variable->factor messages refreshed between groups.
    for (size_t i = begin; i < end;) {
      const uint32_t group = sched_group_[i];
      for (; i < end && sched_group_[i] == group; ++i) {
        UpdateFactorMessages(sched_factor_[i], &residual, scratch);
      }
      RefreshComponentVariables(component);
    }
    stats.message_updates += end - begin;
    stats.iterations = iter + 1;
    stats.final_residual = residual;
    stats.residuals.push_back(residual);
    if (residual < options_.tolerance) {
      stats.converged = true;
      break;
    }
  }
  stats.sweeps_skipped = options_.max_iterations - stats.iterations;
  MaterializeComponentMarginals(component);
  return stats;
}

FlatLbpEngine::ComponentStats FlatLbpEngine::RunComponentResidual(
    size_t component, Scratch* scratch) {
  const CompiledGraph& c = *compiled_;
  ComponentStats stats;
  RefreshComponentVariables(component);
  const size_t begin = sched_offset_[component];
  const size_t end = sched_offset_[component + 1];
  const size_t nf = end - begin;
  if (nf == 0) {
    stats.converged = true;
    MaterializeComponentMarginals(component);
    return stats;
  }

  // Lazily size the factor-indexed queue state, then reset only this
  // component's slots (workers reuse one Scratch across components).
  if (scratch->priority.size() < c.factor_count()) {
    scratch->priority.assign(c.factor_count(), 0.0);
    scratch->bucket_of.assign(c.factor_count(), -1);
    scratch->stamp.assign(c.factor_count(), 0);
  }
  if (scratch->buckets.size() < static_cast<size_t>(kResidualBuckets)) {
    scratch->buckets.resize(kResidualBuckets);
    scratch->bucket_head.resize(kResidualBuckets);
  }
  for (int b = 0; b < kResidualBuckets; ++b) {
    scratch->buckets[b].clear();
    scratch->bucket_head[b] = 0;
  }
  for (size_t i = begin; i < end; ++i) {
    const uint32_t f = sched_factor_[i];
    scratch->priority[f] = 0.0;
    scratch->bucket_of[f] = -1;
  }

  // Seed every factor at +inf priority, in schedule order — the first
  // "sweep's worth" of pops replays the staged schedule before residuals
  // take over.
  for (size_t i = begin; i < end; ++i) {
    BumpFactorPriority(sched_factor_[i],
                       std::numeric_limits<double>::infinity(), scratch);
  }

  const size_t budget = options_.max_iterations * nf;
  int top = kResidualBuckets - 1;
  double unused_residual = 0.0;
  while (stats.message_updates < budget) {
    // Pop the highest-residual factor: scan buckets downward, FIFO within
    // a bucket, skipping stale entries (a factor re-queued at a higher
    // bucket leaves its old entry behind).
    uint32_t f = 0;
    bool found = false;
    while (top >= 0) {
      auto& bucket = scratch->buckets[top];
      size_t& head = scratch->bucket_head[top];
      if (head == bucket.size()) {
        bucket.clear();
        head = 0;
        --top;
        continue;
      }
      const uint64_t entry = bucket[head++];
      ++stats.residual_pops;
      const uint32_t candidate = static_cast<uint32_t>(entry >> 32);
      const uint32_t stamp = static_cast<uint32_t>(entry);
      if (scratch->bucket_of[candidate] != top ||
          scratch->stamp[candidate] != stamp) {
        continue;  // stale
      }
      f = candidate;
      found = true;
      break;
    }
    if (!found) break;  // queue drained: every pending residual < tolerance

    scratch->bucket_of[f] = -1;
    scratch->priority[f] = 0.0;
    UpdateFactorMessages(f, &unused_residual, scratch);
    ++stats.message_updates;
    // Propagate: refresh the scope variables now (asynchronous BP) and
    // raise the priority of every factor whose inputs moved.
    const size_t edge_begin = c.scope_offset[f];
    const size_t edge_end = c.scope_offset[f + 1];
    for (size_t e = edge_begin; e < edge_end; ++e) {
      const uint32_t v = c.scope_var[e];
      bool seen = false;  // scopes may repeat a variable; refresh once
      for (size_t p = edge_begin; p < e; ++p) {
        if (c.scope_var[p] == v) {
          seen = true;
          break;
        }
      }
      if (!seen) RefreshVariableTrackDeltas(v, scratch);
    }
    // A re-raised top pointer: BumpFactorPriority may have pushed above
    // the current scan position.
    for (int b = kResidualBuckets - 1; b > top; --b) {
      if (scratch->bucket_head[b] != scratch->buckets[b].size()) {
        top = b;
        break;
      }
    }
  }

  // Convergence certificate: the largest residual still pending at stop.
  double certificate = 0.0;
  for (size_t i = begin; i < end; ++i) {
    certificate = std::max(certificate, scratch->priority[sched_factor_[i]]);
  }
  stats.final_residual = certificate;
  stats.converged = certificate < options_.tolerance;
  stats.iterations = (stats.message_updates + nf - 1) / nf;
  stats.residuals.push_back(certificate);
  stats.sweeps_skipped = (budget - stats.message_updates) / nf;
  MaterializeComponentMarginals(component);
  return stats;
}

void FlatLbpEngine::WarmStart(
    const std::vector<VariableId>& variables,
    const std::vector<std::vector<double>>& priors) {
  const size_t n = std::min(variables.size(), priors.size());
  warm_.reserve(warm_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    warm_.emplace_back(variables[i], priors[i]);
  }
}

LbpResult FlatLbpEngine::Run() {
  const CompiledGraph& c = *compiled_;
  compiled_->ComputeLogPotentials(*weights_, &log_potential_);
  msg_f2v_.assign(c.total_edge_lane_states(), 0.0);
  msg_v2f_.assign(c.total_edge_lane_states(), 0.0);
  belief_.assign(c.total_var_lane_states(), 0.0);
  marginal_.assign(c.total_var_lane_states(), 0.0);

  // Warm start: spread each prior's log-belief evenly over the variable's
  // incoming edges so the first variable refresh sums back to log(prior).
  // Probabilities are floored to keep -inf (hard zeros) out of messages.
  for (const auto& [v, prior] : warm_) {
    if (v >= c.variable_count() || prior.size() != c.cardinality[v]) continue;
    const size_t deg = c.attach_offset[v + 1] - c.attach_offset[v];
    if (deg == 0) continue;
    const size_t card = c.cardinality[v];
    for (size_t k = c.attach_offset[v]; k < c.attach_offset[v + 1]; ++k) {
      double* message = msg_f2v_.data() + c.edge_lane_offset[c.attach_edge[k]];
      for (size_t x = 0; x < card; ++x) {
        message[x] = std::log(std::max(prior[x], 1e-12)) /
                     static_cast<double>(deg);
      }
      NormalizeLog(message, card);
    }
  }

  const size_t nc = c.component_count;
  std::vector<ComponentStats> stats(nc);
  const size_t threads =
      std::min(std::max<size_t>(1, ResolveThreads(options_.num_threads)), nc);
  auto make_scratch = [&]() {
    Scratch scratch;
    scratch.fresh.resize(c.max_factor_lane_states);
    scratch.states.resize(c.max_arity);
    scratch.pinned.resize(c.max_arity);
    scratch.cards.resize(c.max_arity);
    scratch.strides.resize(c.max_arity);
    scratch.lanes.resize(c.max_arity);
    size_t max_card = 0;
    for (VariableId v = 0; v < c.variable_count(); ++v) {
      max_card = std::max<size_t>(max_card, c.cardinality[v]);
    }
    scratch.lane.resize(RoundUpTo(max_card, kLaneDoubles));
    return scratch;
  };
  if (threads <= 1) {
    Scratch scratch = make_scratch();
    for (size_t k = 0; k < nc; ++k) stats[k] = RunComponent(k, &scratch);
  } else {
    std::atomic<size_t> next(0);
    auto worker = [&]() {
      Scratch scratch = make_scratch();
      for (;;) {
        const size_t k = next.fetch_add(1);
        if (k >= nc) return;
        stats[k] = RunComponent(k, &scratch);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  // Merge the per-component records into the sequential-compatible shape.
  LbpResult result;
  result.converged = true;
  for (const ComponentStats& s : stats) {
    result.iterations = std::max(result.iterations, s.iterations);
    result.converged = result.converged && s.converged;
    result.final_residual = std::max(result.final_residual, s.final_residual);
    result.message_updates += s.message_updates;
    result.residual_pops += s.residual_pops;
    result.sweeps_skipped += s.sweeps_skipped;
  }
  result.residual_history.resize(result.iterations, 0.0);
  for (const ComponentStats& s : stats) {
    for (size_t i = 0; i < s.residuals.size(); ++i) {
      result.residual_history[i] =
          std::max(result.residual_history[i], s.residuals[i]);
    }
  }

  // Materialize nested marginals from the flat arena.
  marginals_.resize(c.variable_count());
  for (VariableId v = 0; v < c.variable_count(); ++v) {
    const double* begin = marginal_.data() + c.var_lane_offset[v];
    marginals_[v].assign(begin, begin + c.cardinality[v]);
  }
  result.marginals = marginals_;
  return result;
}

std::vector<double> FlatLbpEngine::FactorBelief(FactorId f) const {
  const CompiledGraph& c = *compiled_;
  const size_t edge_begin = c.scope_offset[f];
  const size_t arity = c.scope_offset[f + 1] - edge_begin;
  const size_t assignments =
      c.assignment_offset[f + 1] - c.assignment_offset[f];
  const double* log_potential = log_potential_.data() + c.assignment_offset[f];

  std::vector<double> log_belief(assignments);
  std::vector<size_t> states(arity, 0);
  for (size_t a = 0; a < assignments; ++a) {
    double total = log_potential[a];
    for (size_t slot = 0; slot < arity; ++slot) {
      total += msg_v2f_[c.edge_lane_offset[edge_begin + slot] + states[slot]];
    }
    log_belief[a] = total;
    for (size_t slot = arity; slot-- > 0;) {
      if (++states[slot] < c.cardinality[c.scope_var[edge_begin + slot]]) {
        break;
      }
      states[slot] = 0;
    }
  }
  const double lse = LogSumExp(log_belief);
  std::vector<double> belief(assignments, 0.0);
  if (lse == kNegInf) {
    for (double& b : belief) b = 1.0 / static_cast<double>(assignments);
  } else {
    for (size_t a = 0; a < assignments; ++a) {
      belief[a] = std::exp(log_belief[a] - lse);
    }
  }
  return belief;
}

void FlatLbpEngine::AccumulateExpectedFeatures(
    std::vector<double>* expectations) const {
  const CompiledGraph& c = *compiled_;
  assert(expectations->size() == c.source->weight_count());
  for (FactorId f = 0; f < c.factor_count(); ++f) {
    const std::vector<double> belief = FactorBelief(f);
    for (size_t a = 0; a < belief.size(); ++a) {
      if (belief[a] <= 0.0) continue;
      c.ForEachFeature(f, a, [&](WeightId weight, double value) {
        (*expectations)[weight] += belief[a] * value;
      });
    }
  }
}

double FlatLbpEngine::LogPartitionEstimate() const {
  const CompiledGraph& c = *compiled_;
  double log_z = 0.0;
  for (FactorId f = 0; f < c.factor_count(); ++f) {
    const std::vector<double> belief = FactorBelief(f);
    const double* log_potential =
        log_potential_.data() + c.assignment_offset[f];
    for (size_t a = 0; a < belief.size(); ++a) {
      if (belief[a] <= 0.0) continue;
      log_z += belief[a] * (log_potential[a] - std::log(belief[a]));
    }
  }
  for (VariableId v = 0; v < c.variable_count(); ++v) {
    const double degree =
        static_cast<double>(c.attach_offset[v + 1] - c.attach_offset[v]);
    const double* m = marginal_.data() + c.var_lane_offset[v];
    double negative_entropy = 0.0;
    for (size_t x = 0; x < c.cardinality[v]; ++x) {
      if (m[x] > 0.0) negative_entropy += m[x] * std::log(m[x]);
    }
    log_z += (degree - 1.0) * negative_entropy;
  }
  return log_z;
}

std::vector<size_t> FlatLbpEngine::Decode() const {
  const CompiledGraph& c = *compiled_;
  std::vector<size_t> states(c.variable_count(), 0);
  for (VariableId v = 0; v < c.variable_count(); ++v) {
    const double* m = marginal_.data() + c.var_lane_offset[v];
    size_t best = 0;
    for (size_t x = 1; x < c.cardinality[v]; ++x) {
      if (m[x] > m[best]) best = x;
    }
    states[v] = best;
  }
  return states;
}

ParallelLbpResult RunParallelLbp(const FactorGraph& graph,
                                 const std::vector<double>& weights,
                                 const LbpOptions& options,
                                 size_t num_threads) {
  LbpOptions engine_options = options;
  engine_options.num_threads = num_threads;  // 0 = auto-size to hardware
  FlatLbpEngine engine(&graph, &weights, std::move(engine_options));
  LbpResult run = engine.Run();
  ParallelLbpResult result;
  result.marginals = std::move(run.marginals);
  result.components = engine.component_count();
  result.converged = run.converged;
  result.iterations = run.iterations;
  return result;
}

}  // namespace jocl
