#include "graph/flat_lbp.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <thread>

namespace jocl {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Normalizes a log-space message span so its max entry is 0 (avoids drift).
void NormalizeLog(double* message, size_t n) {
  double mx = kNegInf;
  for (size_t i = 0; i < n; ++i) mx = std::max(mx, message[i]);
  if (mx == kNegInf) return;
  for (size_t i = 0; i < n; ++i) message[i] -= mx;
}

size_t ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
}  // namespace

double LogSumExp(const std::vector<double>& values) {
  double mx = kNegInf;
  for (double v : values) mx = std::max(mx, v);
  if (mx == kNegInf) return kNegInf;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - mx);
  return mx + std::log(sum);
}

FlatLbpEngine::FlatLbpEngine(const FactorGraph* graph,
                             const std::vector<double>* weights,
                             LbpOptions options)
    : compiled_(nullptr),
      owned_(CompiledGraph::Compile(*graph)),
      weights_(weights),
      options_(std::move(options)) {
  compiled_ = &owned_;
  BuildSchedule();
  InitArenas();
}

FlatLbpEngine::FlatLbpEngine(const CompiledGraph* compiled,
                             const std::vector<double>* weights,
                             LbpOptions options)
    : compiled_(compiled), weights_(weights), options_(std::move(options)) {
  BuildSchedule();
  InitArenas();
}

void FlatLbpEngine::InitArenas() {
  // Size everything up front so interface queries are defined (if dull)
  // even before Run(), matching the old engine's constructor-allocated
  // storage; Run()'s assign() calls reuse this capacity.
  const CompiledGraph& c = *compiled_;
  log_potential_.assign(c.total_assignments(), 0.0);
  msg_f2v_.assign(c.total_edge_states(), 0.0);
  msg_v2f_.assign(c.total_edge_states(), 0.0);
  belief_.assign(c.total_var_states(), 0.0);
  marginal_.assign(c.total_var_states(), 0.0);
  marginals_.resize(c.variable_count());
  for (VariableId v = 0; v < c.variable_count(); ++v) {
    marginals_[v].assign(c.cardinality[v], 0.0);
  }
}

void FlatLbpEngine::BuildSchedule() {
  const CompiledGraph& c = *compiled_;
  const size_t nf = c.factor_count();
  const size_t groups = options_.factor_schedule.size();

  // Emit (factor, group) in schedule order — caller groups first, then the
  // leftover factors as a final group — and counting-sort by component.
  // The sort is stable, so each component sees its factors in the same
  // group-by-group order the old global engine used.
  std::vector<uint32_t> order_factor;
  std::vector<uint32_t> order_group;
  std::vector<uint8_t> scheduled(nf, 0);
  for (size_t g = 0; g < groups; ++g) {
    for (FactorId f : options_.factor_schedule[g]) {
      if (f >= nf || c.scope_offset[f] == c.scope_offset[f + 1]) continue;
      order_factor.push_back(static_cast<uint32_t>(f));
      order_group.push_back(static_cast<uint32_t>(g));
      scheduled[f] = 1;
    }
  }
  for (FactorId f = 0; f < nf; ++f) {
    if (scheduled[f] || c.scope_offset[f] == c.scope_offset[f + 1]) continue;
    order_factor.push_back(static_cast<uint32_t>(f));
    order_group.push_back(static_cast<uint32_t>(groups));
  }

  const size_t nc = c.component_count;
  sched_offset_.assign(nc + 1, 0);
  auto component_of_factor = [&](uint32_t f) {
    return c.component_of_var[c.scope_var[c.scope_offset[f]]];
  };
  for (uint32_t f : order_factor) ++sched_offset_[component_of_factor(f) + 1];
  for (size_t k = 0; k < nc; ++k) sched_offset_[k + 1] += sched_offset_[k];
  sched_factor_.resize(order_factor.size());
  sched_group_.resize(order_factor.size());
  std::vector<size_t> cursor(sched_offset_.begin(), sched_offset_.end() - 1);
  for (size_t i = 0; i < order_factor.size(); ++i) {
    const size_t pos = cursor[component_of_factor(order_factor[i])]++;
    sched_factor_[pos] = order_factor[i];
    sched_group_[pos] = order_group[i];
  }
}

void FlatLbpEngine::RefreshComponentVariables(size_t component) {
  const CompiledGraph& c = *compiled_;
  const FactorGraph& g = *c.source;
  for (size_t i = c.comp_var_offset[component];
       i < c.comp_var_offset[component + 1]; ++i) {
    const uint32_t v = c.comp_vars[i];
    const size_t card = c.cardinality[v];
    double* sums = belief_.data() + c.var_state_offset[v];
    const bool clamped = g.IsClamped(v);
    const size_t observed =
        clamped ? static_cast<size_t>(g.variable(v).clamped_state) : 0;
    if (clamped) {
      for (size_t x = 0; x < card; ++x) {
        sums[x] = (x == observed) ? 0.0 : kNegInf;
      }
    } else {
      // belief_sums[v][x] = sum over attached edges of msg_f2v.
      std::fill(sums, sums + card, 0.0);
      for (size_t k = c.attach_offset[v]; k < c.attach_offset[v + 1]; ++k) {
        const double* incoming =
            msg_f2v_.data() + c.edge_state_offset[c.attach_edge[k]];
        for (size_t x = 0; x < card; ++x) sums[x] += incoming[x];
      }
      NormalizeLog(sums, card);
    }
    // Variable -> factor messages: cavity sums (subtract own incoming).
    for (size_t k = c.attach_offset[v]; k < c.attach_offset[v + 1]; ++k) {
      const size_t base = c.edge_state_offset[c.attach_edge[k]];
      double* outgoing = msg_v2f_.data() + base;
      if (clamped) {
        for (size_t x = 0; x < card; ++x) {
          outgoing[x] = (x == observed) ? 0.0 : kNegInf;
        }
        continue;
      }
      const double* incoming = msg_f2v_.data() + base;
      for (size_t x = 0; x < card; ++x) outgoing[x] = sums[x] - incoming[x];
      NormalizeLog(outgoing, card);
    }
  }
}

void FlatLbpEngine::UpdateFactorMessages(FactorId f, double* residual,
                                         Scratch* scratch) {
  const CompiledGraph& c = *compiled_;
  const FactorGraph& g = *c.source;
  const size_t edge_begin = c.scope_offset[f];
  const size_t edge_end = c.scope_offset[f + 1];
  const size_t arity = edge_end - edge_begin;
  const double* log_potential = log_potential_.data() + c.assignment_offset[f];

  // Fresh outgoing accumulators for all slots, contiguous per factor:
  // slot's states live at edge_state_offset[e] - state_base.
  const size_t state_base = c.edge_state_offset[edge_begin];
  const size_t factor_states = c.edge_state_offset[edge_end] - state_base;
  double* fresh = scratch->fresh.data();
  std::fill(fresh, fresh + factor_states, kNegInf);
  size_t* states = scratch->states.data();
  uint8_t* pinned = scratch->pinned.data();

  // Clamped scope variables pin their slot: only assignments consistent
  // with the observations are enumerated (the precomputed strides keep
  // the assignment index in sync while the pinned slots are skipped).
  // The skipped assignments were infeasible anyway — clamped variables
  // send -inf for every unobserved state — so the result is unchanged;
  // the learner's clamped pass just stops paying for them.
  size_t a = 0;
  size_t reduced = 1;
  for (size_t slot = 0; slot < arity; ++slot) {
    const uint32_t v = c.scope_var[edge_begin + slot];
    if (g.IsClamped(v)) {
      const size_t observed =
          static_cast<size_t>(g.variable(v).clamped_state);
      states[slot] = observed;
      a += observed * c.slot_stride[edge_begin + slot];
      pinned[slot] = 1;
    } else {
      states[slot] = 0;
      reduced *= c.cardinality[v];
      pinned[slot] = 0;
    }
  }

  const bool max_product = options_.mode == LbpMode::kMaxProduct;
  // Enumerate assignments once; for each, distribute the cavity total to
  // every slot. Row-major decode is done incrementally for speed.
  for (size_t r = 0; r < reduced; ++r) {
    double total = log_potential[a];
    bool feasible = true;
    for (size_t slot = 0; slot < arity; ++slot) {
      const double m =
          msg_v2f_[c.edge_state_offset[edge_begin + slot] + states[slot]];
      if (m == kNegInf) {
        feasible = false;
        break;
      }
      total += m;
    }
    if (feasible) {
      for (size_t slot = 0; slot < arity; ++slot) {
        const size_t local =
            c.edge_state_offset[edge_begin + slot] - state_base;
        const double cavity =
            total -
            msg_v2f_[c.edge_state_offset[edge_begin + slot] + states[slot]];
        double& cell = fresh[local + states[slot]];
        if (max_product) {
          cell = std::max(cell, cavity);
        } else if (cell == kNegInf) {
          cell = cavity;  // LSE accumulate below
        } else if (cavity > cell) {
          cell = cavity + std::log1p(std::exp(cell - cavity));
        } else {
          cell = cell + std::log1p(std::exp(cavity - cell));
        }
      }
    }
    // Increment the mixed-radix counter over free slots (last fastest),
    // keeping the assignment index in sync via the strides.
    for (size_t slot = arity; slot-- > 0;) {
      if (pinned[slot]) continue;
      const size_t stride = c.slot_stride[edge_begin + slot];
      if (++states[slot] < c.cardinality[c.scope_var[edge_begin + slot]]) {
        a += stride;
        break;
      }
      a -= stride * (states[slot] - 1);
      states[slot] = 0;
    }
  }

  for (size_t slot = 0; slot < arity; ++slot) {
    const size_t e = edge_begin + slot;
    const size_t card = c.cardinality[c.scope_var[e]];
    const size_t local = c.edge_state_offset[e] - state_base;
    NormalizeLog(fresh + local, card);
    double* old = msg_f2v_.data() + c.edge_state_offset[e];
    for (size_t x = 0; x < card; ++x) {
      double updated = fresh[local + x];
      if (options_.damping > 0.0 && old[x] != kNegInf && updated != kNegInf) {
        updated =
            (1.0 - options_.damping) * updated + options_.damping * old[x];
      }
      const double delta = std::abs(updated - old[x]);
      if (std::isfinite(delta)) *residual = std::max(*residual, delta);
      old[x] = updated;
    }
  }
}

void FlatLbpEngine::MaterializeComponentMarginals(size_t component) {
  const CompiledGraph& c = *compiled_;
  for (size_t i = c.comp_var_offset[component];
       i < c.comp_var_offset[component + 1]; ++i) {
    const uint32_t v = c.comp_vars[i];
    const size_t card = c.cardinality[v];
    const double* log_belief = belief_.data() + c.var_state_offset[v];
    double* out = marginal_.data() + c.var_state_offset[v];
    double mx = kNegInf;
    for (size_t x = 0; x < card; ++x) mx = std::max(mx, log_belief[x]);
    if (mx == kNegInf) {
      // All states impossible (should not happen); fall back to uniform.
      for (size_t x = 0; x < card; ++x) {
        out[x] = 1.0 / static_cast<double>(card);
      }
      continue;
    }
    double sum = 0.0;
    for (size_t x = 0; x < card; ++x) sum += std::exp(log_belief[x] - mx);
    const double lse = mx + std::log(sum);
    for (size_t x = 0; x < card; ++x) out[x] = std::exp(log_belief[x] - lse);
  }
}

FlatLbpEngine::ComponentStats FlatLbpEngine::RunComponent(size_t component,
                                                          Scratch* scratch) {
  ComponentStats stats;
  RefreshComponentVariables(component);
  const size_t begin = sched_offset_[component];
  const size_t end = sched_offset_[component + 1];
  if (begin == end) {
    // No factors: beliefs (uniform or clamped delta) are already final.
    stats.converged = true;
    MaterializeComponentMarginals(component);
    return stats;
  }
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    double residual = 0.0;
    // Paper §3.4: factor->variable updates proceed group by group, with
    // variable->factor messages refreshed between groups.
    for (size_t i = begin; i < end;) {
      const uint32_t group = sched_group_[i];
      for (; i < end && sched_group_[i] == group; ++i) {
        UpdateFactorMessages(sched_factor_[i], &residual, scratch);
      }
      RefreshComponentVariables(component);
    }
    stats.iterations = iter + 1;
    stats.final_residual = residual;
    stats.residuals.push_back(residual);
    if (residual < options_.tolerance) {
      stats.converged = true;
      break;
    }
  }
  MaterializeComponentMarginals(component);
  return stats;
}

void FlatLbpEngine::WarmStart(
    const std::vector<VariableId>& variables,
    const std::vector<std::vector<double>>& priors) {
  const size_t n = std::min(variables.size(), priors.size());
  warm_.reserve(warm_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    warm_.emplace_back(variables[i], priors[i]);
  }
}

LbpResult FlatLbpEngine::Run() {
  const CompiledGraph& c = *compiled_;
  compiled_->ComputeLogPotentials(*weights_, &log_potential_);
  msg_f2v_.assign(c.total_edge_states(), 0.0);
  msg_v2f_.assign(c.total_edge_states(), 0.0);
  belief_.assign(c.total_var_states(), 0.0);
  marginal_.assign(c.total_var_states(), 0.0);

  // Warm start: spread each prior's log-belief evenly over the variable's
  // incoming edges so the first variable refresh sums back to log(prior).
  // Probabilities are floored to keep -inf (hard zeros) out of messages.
  for (const auto& [v, prior] : warm_) {
    if (v >= c.variable_count() || prior.size() != c.cardinality[v]) continue;
    const size_t deg = c.attach_offset[v + 1] - c.attach_offset[v];
    if (deg == 0) continue;
    const size_t card = c.cardinality[v];
    for (size_t k = c.attach_offset[v]; k < c.attach_offset[v + 1]; ++k) {
      double* message = msg_f2v_.data() + c.edge_state_offset[c.attach_edge[k]];
      for (size_t x = 0; x < card; ++x) {
        message[x] = std::log(std::max(prior[x], 1e-12)) /
                     static_cast<double>(deg);
      }
      NormalizeLog(message, card);
    }
  }

  const size_t nc = c.component_count;
  std::vector<ComponentStats> stats(nc);
  const size_t threads =
      std::min(std::max<size_t>(1, ResolveThreads(options_.num_threads)), nc);
  if (threads <= 1) {
    Scratch scratch;
    scratch.fresh.resize(c.max_factor_states);
    scratch.states.resize(c.max_arity);
    scratch.pinned.resize(c.max_arity);
    for (size_t k = 0; k < nc; ++k) stats[k] = RunComponent(k, &scratch);
  } else {
    std::atomic<size_t> next(0);
    auto worker = [&]() {
      Scratch scratch;
      scratch.fresh.resize(c.max_factor_states);
      scratch.states.resize(c.max_arity);
      scratch.pinned.resize(c.max_arity);
      for (;;) {
        const size_t k = next.fetch_add(1);
        if (k >= nc) return;
        stats[k] = RunComponent(k, &scratch);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  // Merge the per-component records into the sequential-compatible shape.
  LbpResult result;
  result.converged = true;
  for (const ComponentStats& s : stats) {
    result.iterations = std::max(result.iterations, s.iterations);
    result.converged = result.converged && s.converged;
    result.final_residual = std::max(result.final_residual, s.final_residual);
  }
  result.residual_history.resize(result.iterations, 0.0);
  for (const ComponentStats& s : stats) {
    for (size_t i = 0; i < s.residuals.size(); ++i) {
      result.residual_history[i] =
          std::max(result.residual_history[i], s.residuals[i]);
    }
  }

  // Materialize nested marginals from the flat arena.
  marginals_.resize(c.variable_count());
  for (VariableId v = 0; v < c.variable_count(); ++v) {
    const double* begin = marginal_.data() + c.var_state_offset[v];
    marginals_[v].assign(begin, begin + c.cardinality[v]);
  }
  result.marginals = marginals_;
  return result;
}

std::vector<double> FlatLbpEngine::FactorBelief(FactorId f) const {
  const CompiledGraph& c = *compiled_;
  const size_t edge_begin = c.scope_offset[f];
  const size_t arity = c.scope_offset[f + 1] - edge_begin;
  const size_t assignments =
      c.assignment_offset[f + 1] - c.assignment_offset[f];
  const double* log_potential = log_potential_.data() + c.assignment_offset[f];

  std::vector<double> log_belief(assignments);
  std::vector<size_t> states(arity, 0);
  for (size_t a = 0; a < assignments; ++a) {
    double total = log_potential[a];
    for (size_t slot = 0; slot < arity; ++slot) {
      total += msg_v2f_[c.edge_state_offset[edge_begin + slot] + states[slot]];
    }
    log_belief[a] = total;
    for (size_t slot = arity; slot-- > 0;) {
      if (++states[slot] < c.cardinality[c.scope_var[edge_begin + slot]]) {
        break;
      }
      states[slot] = 0;
    }
  }
  const double lse = LogSumExp(log_belief);
  std::vector<double> belief(assignments, 0.0);
  if (lse == kNegInf) {
    for (double& b : belief) b = 1.0 / static_cast<double>(assignments);
  } else {
    for (size_t a = 0; a < assignments; ++a) {
      belief[a] = std::exp(log_belief[a] - lse);
    }
  }
  return belief;
}

void FlatLbpEngine::AccumulateExpectedFeatures(
    std::vector<double>* expectations) const {
  const CompiledGraph& c = *compiled_;
  assert(expectations->size() == c.source->weight_count());
  for (FactorId f = 0; f < c.factor_count(); ++f) {
    const std::vector<double> belief = FactorBelief(f);
    for (size_t a = 0; a < belief.size(); ++a) {
      if (belief[a] <= 0.0) continue;
      c.ForEachFeature(f, a, [&](WeightId weight, double value) {
        (*expectations)[weight] += belief[a] * value;
      });
    }
  }
}

double FlatLbpEngine::LogPartitionEstimate() const {
  const CompiledGraph& c = *compiled_;
  double log_z = 0.0;
  for (FactorId f = 0; f < c.factor_count(); ++f) {
    const std::vector<double> belief = FactorBelief(f);
    const double* log_potential =
        log_potential_.data() + c.assignment_offset[f];
    for (size_t a = 0; a < belief.size(); ++a) {
      if (belief[a] <= 0.0) continue;
      log_z += belief[a] * (log_potential[a] - std::log(belief[a]));
    }
  }
  for (VariableId v = 0; v < c.variable_count(); ++v) {
    const double degree =
        static_cast<double>(c.attach_offset[v + 1] - c.attach_offset[v]);
    const double* m = marginal_.data() + c.var_state_offset[v];
    double negative_entropy = 0.0;
    for (size_t x = 0; x < c.cardinality[v]; ++x) {
      if (m[x] > 0.0) negative_entropy += m[x] * std::log(m[x]);
    }
    log_z += (degree - 1.0) * negative_entropy;
  }
  return log_z;
}

std::vector<size_t> FlatLbpEngine::Decode() const {
  const CompiledGraph& c = *compiled_;
  std::vector<size_t> states(c.variable_count(), 0);
  for (VariableId v = 0; v < c.variable_count(); ++v) {
    const double* m = marginal_.data() + c.var_state_offset[v];
    size_t best = 0;
    for (size_t x = 1; x < c.cardinality[v]; ++x) {
      if (m[x] > m[best]) best = x;
    }
    states[v] = best;
  }
  return states;
}

ParallelLbpResult RunParallelLbp(const FactorGraph& graph,
                                 const std::vector<double>& weights,
                                 const LbpOptions& options,
                                 size_t num_threads) {
  LbpOptions engine_options = options;
  engine_options.num_threads = num_threads;  // 0 = auto-size to hardware
  FlatLbpEngine engine(&graph, &weights, std::move(engine_options));
  LbpResult run = engine.Run();
  ParallelLbpResult result;
  result.marginals = std::move(run.marginals);
  result.components = engine.component_count();
  result.converged = run.converged;
  result.iterations = run.iterations;
  return result;
}

}  // namespace jocl
