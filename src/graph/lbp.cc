#include "graph/lbp.h"

#include <algorithm>
#include <cstddef>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace jocl {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Normalizes a log-space message so its max entry is 0 (avoids drift).
void NormalizeLog(std::vector<double>* message) {
  double mx = kNegInf;
  for (double v : *message) mx = std::max(mx, v);
  if (mx == kNegInf) return;
  for (double& v : *message) v -= mx;
}

}  // namespace

double LogSumExp(const std::vector<double>& values) {
  double mx = kNegInf;
  for (double v : values) mx = std::max(mx, v);
  if (mx == kNegInf) return kNegInf;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - mx);
  return mx + std::log(sum);
}

LbpEngine::LbpEngine(const FactorGraph* graph,
                     const std::vector<double>* weights, LbpOptions options)
    : graph_(graph), weights_(weights), options_(std::move(options)) {
  const size_t nf = graph_->factor_count();
  msg_f2v_.resize(nf);
  msg_v2f_.resize(nf);
  for (FactorId f = 0; f < nf; ++f) {
    const auto& scope = graph_->factor(f).scope;
    msg_f2v_[f].resize(scope.size());
    msg_v2f_[f].resize(scope.size());
    for (size_t slot = 0; slot < scope.size(); ++slot) {
      size_t card = graph_->variable(scope[slot]).cardinality;
      msg_f2v_[f][slot].assign(card, 0.0);
      msg_v2f_[f][slot].assign(card, 0.0);
    }
  }
  belief_sums_.resize(graph_->variable_count());
  marginals_.resize(graph_->variable_count());

  // Build the factor schedule: caller-provided groups, then leftovers.
  std::unordered_set<FactorId> scheduled;
  for (const auto& group : options_.factor_schedule) {
    schedule_.push_back(group);
    scheduled.insert(group.begin(), group.end());
  }
  std::vector<FactorId> rest;
  for (FactorId f = 0; f < nf; ++f) {
    if (scheduled.count(f) == 0) rest.push_back(f);
  }
  if (!rest.empty()) schedule_.push_back(std::move(rest));
}

void LbpEngine::RefreshVariableSums() {
  // belief_sums_[v][x] = sum over attached factors of msg_f2v, with clamped
  // variables forced to a delta.
  for (VariableId v = 0; v < graph_->variable_count(); ++v) {
    size_t card = graph_->variable(v).cardinality;
    auto& sums = belief_sums_[v];
    sums.assign(card, 0.0);
    if (graph_->IsClamped(v)) {
      size_t observed = static_cast<size_t>(graph_->variable(v).clamped_state);
      for (size_t x = 0; x < card; ++x) {
        sums[x] = (x == observed) ? 0.0 : kNegInf;
      }
      continue;
    }
    for (const auto& [f, slot] : graph_->AttachedFactors(v)) {
      const auto& incoming = msg_f2v_[f][slot];
      for (size_t x = 0; x < card; ++x) sums[x] += incoming[x];
    }
    NormalizeLog(&sums);
  }
  // Variable -> factor messages: cavity sums (subtract own incoming).
  for (FactorId f = 0; f < graph_->factor_count(); ++f) {
    const auto& scope = graph_->factor(f).scope;
    for (size_t slot = 0; slot < scope.size(); ++slot) {
      VariableId v = scope[slot];
      size_t card = graph_->variable(v).cardinality;
      auto& outgoing = msg_v2f_[f][slot];
      if (graph_->IsClamped(v)) {
        size_t observed =
            static_cast<size_t>(graph_->variable(v).clamped_state);
        for (size_t x = 0; x < card; ++x) {
          outgoing[x] = (x == observed) ? 0.0 : kNegInf;
        }
        continue;
      }
      const auto& incoming = msg_f2v_[f][slot];
      for (size_t x = 0; x < card; ++x) {
        outgoing[x] = belief_sums_[v][x] - incoming[x];
      }
      NormalizeLog(&outgoing);
    }
  }
}

void LbpEngine::UpdateFactorMessages(FactorId f, double* residual) {
  const FactorNode& node = graph_->factor(f);
  const size_t arity = node.scope.size();
  const size_t assignments = graph_->AssignmentCount(f);

  // Fresh outgoing accumulators, LSE per (slot, state).
  std::vector<std::vector<double>> fresh(arity);
  for (size_t slot = 0; slot < arity; ++slot) {
    fresh[slot].assign(graph_->variable(node.scope[slot]).cardinality,
                       kNegInf);
  }

  std::vector<size_t> states(arity);
  // Enumerate assignments once; for each, distribute the cavity total to
  // every slot. Row-major decode is done incrementally for speed.
  std::fill(states.begin(), states.end(), 0);
  for (size_t a = 0; a < assignments; ++a) {
    double total = node.features.LogPotential(a, *weights_);
    bool feasible = true;
    for (size_t slot = 0; slot < arity; ++slot) {
      double m = msg_v2f_[f][slot][states[slot]];
      if (m == kNegInf) {
        feasible = false;
        break;
      }
      total += m;
    }
    if (feasible) {
      for (size_t slot = 0; slot < arity; ++slot) {
        double cavity = total - msg_v2f_[f][slot][states[slot]];
        double& cell = fresh[slot][states[slot]];
        if (options_.mode == LbpMode::kMaxProduct) {
          cell = std::max(cell, cavity);
        } else if (cell == kNegInf) {
          cell = cavity;  // LSE accumulate below
        } else if (cavity > cell) {
          cell = cavity + std::log1p(std::exp(cell - cavity));
        } else {
          cell = cell + std::log1p(std::exp(cavity - cell));
        }
      }
    }
    // Increment mixed-radix counter (last slot fastest).
    for (size_t slot = arity; slot-- > 0;) {
      if (++states[slot] < graph_->variable(node.scope[slot]).cardinality) {
        break;
      }
      states[slot] = 0;
    }
  }

  for (size_t slot = 0; slot < arity; ++slot) {
    NormalizeLog(&fresh[slot]);
    auto& old = msg_f2v_[f][slot];
    for (size_t x = 0; x < old.size(); ++x) {
      double updated = fresh[slot][x];
      if (options_.damping > 0.0 && old[x] != kNegInf &&
          updated != kNegInf) {
        updated = (1.0 - options_.damping) * updated +
                  options_.damping * old[x];
      }
      double delta = std::abs(updated - old[x]);
      if (std::isfinite(delta)) *residual = std::max(*residual, delta);
      old[x] = updated;
    }
  }
}

LbpResult LbpEngine::Run() {
  LbpResult result;
  RefreshVariableSums();
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    double residual = 0.0;
    // Paper §3.4: factor->variable updates proceed group by group, with
    // variable->factor messages refreshed between groups.
    for (const auto& group : schedule_) {
      for (FactorId f : group) UpdateFactorMessages(f, &residual);
      RefreshVariableSums();
    }
    result.iterations = iter + 1;
    result.final_residual = residual;
    result.residual_history.push_back(residual);
    if (residual < options_.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Final marginals from belief sums.
  for (VariableId v = 0; v < graph_->variable_count(); ++v) {
    size_t card = graph_->variable(v).cardinality;
    std::vector<double> log_belief = belief_sums_[v];
    double lse = LogSumExp(log_belief);
    marginals_[v].assign(card, 0.0);
    if (lse == kNegInf) {
      // All states impossible (should not happen); fall back to uniform.
      for (size_t x = 0; x < card; ++x) {
        marginals_[v][x] = 1.0 / static_cast<double>(card);
      }
    } else {
      for (size_t x = 0; x < card; ++x) {
        marginals_[v][x] = std::exp(log_belief[x] - lse);
      }
    }
  }
  result.marginals = marginals_;
  return result;
}

std::vector<double> LbpEngine::FactorBelief(FactorId f) const {
  const FactorNode& node = graph_->factor(f);
  const size_t arity = node.scope.size();
  const size_t assignments = graph_->AssignmentCount(f);
  std::vector<double> log_belief(assignments);
  std::vector<size_t> states(arity, 0);
  for (size_t a = 0; a < assignments; ++a) {
    double total = node.features.LogPotential(a, *weights_);
    for (size_t slot = 0; slot < arity; ++slot) {
      total += msg_v2f_[f][slot][states[slot]];
    }
    log_belief[a] = total;
    for (size_t slot = arity; slot-- > 0;) {
      if (++states[slot] < graph_->variable(node.scope[slot]).cardinality) {
        break;
      }
      states[slot] = 0;
    }
  }
  double lse = LogSumExp(log_belief);
  std::vector<double> belief(assignments, 0.0);
  if (lse == kNegInf) {
    for (double& b : belief) b = 1.0 / static_cast<double>(assignments);
  } else {
    for (size_t a = 0; a < assignments; ++a) {
      belief[a] = std::exp(log_belief[a] - lse);
    }
  }
  return belief;
}

void LbpEngine::AccumulateExpectedFeatures(
    std::vector<double>* expectations) const {
  assert(expectations->size() == graph_->weight_count());
  for (FactorId f = 0; f < graph_->factor_count(); ++f) {
    std::vector<double> belief = FactorBelief(f);
    const FeatureTable& features = graph_->factor(f).features;
    for (size_t a = 0; a < belief.size(); ++a) {
      if (belief[a] <= 0.0) continue;
      features.ForEachFeature(a, [&](WeightId weight, double value) {
        (*expectations)[weight] += belief[a] * value;
      });
    }
  }
}

std::vector<size_t> LbpEngine::Decode() const {
  std::vector<size_t> states(graph_->variable_count(), 0);
  for (VariableId v = 0; v < graph_->variable_count(); ++v) {
    const auto& m = marginals_[v];
    size_t best = 0;
    for (size_t x = 1; x < m.size(); ++x) {
      if (m[x] > m[best]) best = x;
    }
    states[v] = best;
  }
  return states;
}

std::vector<size_t> ExactMap(const FactorGraph& graph,
                             const std::vector<double>& weights) {
  const size_t nv = graph.variable_count();
  std::vector<size_t> states(nv, 0);
  for (VariableId v = 0; v < nv; ++v) {
    if (graph.IsClamped(v)) {
      states[v] = static_cast<size_t>(graph.variable(v).clamped_state);
    }
  }
  std::vector<size_t> free_vars;
  for (VariableId v = 0; v < nv; ++v) {
    if (!graph.IsClamped(v)) free_vars.push_back(v);
  }
  std::vector<size_t> best = states;
  double best_score = -std::numeric_limits<double>::infinity();
  for (;;) {
    double log_score = 0.0;
    for (FactorId f = 0; f < graph.factor_count(); ++f) {
      const auto& scope = graph.factor(f).scope;
      size_t assignment = 0;
      for (size_t slot = 0; slot < scope.size(); ++slot) {
        assignment = assignment * graph.variable(scope[slot]).cardinality +
                     states[scope[slot]];
      }
      log_score += graph.factor(f).features.LogPotential(assignment, weights);
    }
    if (log_score > best_score) {
      best_score = log_score;
      best = states;
    }
    size_t k = 0;
    for (; k < free_vars.size(); ++k) {
      VariableId v = free_vars[k];
      if (++states[v] < graph.variable(v).cardinality) break;
      states[v] = 0;
    }
    if (k == free_vars.size()) break;
  }
  return best;
}

ExactResult ExactInference(const FactorGraph& graph,
                           const std::vector<double>& weights) {
  ExactResult result;
  const size_t nv = graph.variable_count();
  result.marginals.resize(nv);
  for (VariableId v = 0; v < nv; ++v) {
    result.marginals[v].assign(graph.variable(v).cardinality, 0.0);
  }
  result.expected_features.assign(graph.weight_count(), 0.0);

  // Enumerate the full joint (respecting clamps).
  std::vector<size_t> states(nv, 0);
  for (VariableId v = 0; v < nv; ++v) {
    if (graph.IsClamped(v)) {
      states[v] = static_cast<size_t>(graph.variable(v).clamped_state);
    }
  }
  std::vector<double> log_scores;
  std::vector<std::vector<size_t>> all_states;

  std::vector<size_t> free_vars;
  for (VariableId v = 0; v < nv; ++v) {
    if (!graph.IsClamped(v)) free_vars.push_back(v);
  }

  std::vector<size_t> decode_buffer;
  for (;;) {
    double log_score = 0.0;
    for (FactorId f = 0; f < graph.factor_count(); ++f) {
      const auto& scope = graph.factor(f).scope;
      size_t assignment = 0;
      for (size_t slot = 0; slot < scope.size(); ++slot) {
        assignment =
            assignment * graph.variable(scope[slot]).cardinality +
            states[scope[slot]];
      }
      log_score += graph.factor(f).features.LogPotential(assignment, weights);
    }
    log_scores.push_back(log_score);
    all_states.push_back(states);

    // Advance mixed-radix counter over free variables.
    size_t k = 0;
    for (; k < free_vars.size(); ++k) {
      VariableId v = free_vars[k];
      if (++states[v] < graph.variable(v).cardinality) break;
      states[v] = 0;
    }
    if (k == free_vars.size()) break;
  }

  result.log_partition = LogSumExp(log_scores);
  for (size_t i = 0; i < log_scores.size(); ++i) {
    double p = std::exp(log_scores[i] - result.log_partition);
    for (VariableId v = 0; v < nv; ++v) {
      result.marginals[v][all_states[i][v]] += p;
    }
    for (FactorId f = 0; f < graph.factor_count(); ++f) {
      const auto& scope = graph.factor(f).scope;
      size_t assignment = 0;
      for (size_t slot = 0; slot < scope.size(); ++slot) {
        assignment = assignment * graph.variable(scope[slot]).cardinality +
                     all_states[i][scope[slot]];
      }
      graph.factor(f).features.ForEachFeature(
          assignment, [&](WeightId weight, double value) {
            result.expected_features[weight] += p * value;
          });
    }
  }
  return result;
}

}  // namespace jocl
