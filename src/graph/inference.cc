#include "graph/inference.h"

#include <utility>

#include "graph/exact.h"
#include "graph/flat_lbp.h"

namespace jocl {

namespace {

LbpOptions WithBackendThreads(InferenceBackend backend, LbpOptions options) {
  // kLbp pins sequential execution; kParallelLbp honors num_threads as
  // given (LbpOptions documents 1 = sequential, 0 = auto-size).
  if (backend == InferenceBackend::kLbp) options.num_threads = 1;
  return options;
}

}  // namespace

std::unique_ptr<InferenceEngine> CreateInferenceEngine(
    InferenceBackend backend, const FactorGraph* graph,
    const std::vector<double>* weights, LbpOptions options) {
  if (backend == InferenceBackend::kExact) {
    return std::make_unique<ExactEngine>(graph, weights, std::move(options));
  }
  return std::make_unique<FlatLbpEngine>(
      graph, weights, WithBackendThreads(backend, std::move(options)));
}

std::unique_ptr<InferenceEngine> CreateInferenceEngine(
    InferenceBackend backend, const CompiledGraph* compiled,
    const std::vector<double>* weights, LbpOptions options) {
  if (backend == InferenceBackend::kExact) {
    return std::make_unique<ExactEngine>(compiled->source, weights,
                                         std::move(options));
  }
  return std::make_unique<FlatLbpEngine>(
      compiled, weights, WithBackendThreads(backend, std::move(options)));
}

}  // namespace jocl
