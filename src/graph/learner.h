#ifndef JOCL_GRAPH_LEARNER_H_
#define JOCL_GRAPH_LEARNER_H_

#include <utility>
#include <cstddef>
#include <vector>

#include "graph/inference.h"

namespace jocl {

/// \brief Options for gradient-ascent parameter learning.
struct LearnerOptions {
  /// Step size; the paper uses 0.05 in all experiments (§4.1).
  double learning_rate = 0.05;
  /// Gradient-ascent iterations.
  size_t iterations = 20;
  /// L2 regularization strength (0 = off). Regularizes toward the
  /// *initial* weights, not zero: the uniform initialization encodes the
  /// prior that every signal is somewhat informative, and a small labeled
  /// split should adjust — not erase — that prior.
  double l2 = 0.0;
  /// Stop when the gradient max-norm falls below this.
  double gradient_tolerance = 1e-4;
  /// Inference settings shared by the clamped and free passes.
  LbpOptions lbp;
  /// Which engine approximates the expectations. The graph is compiled
  /// once per Learn() call and shared by every pass — clamping labels is
  /// not a structural change.
  InferenceBackend backend = InferenceBackend::kLbp;
};

/// \brief Progress record for one learning iteration.
struct LearnerTrace {
  size_t iteration = 0;
  /// Estimated objective at this iteration's weights (before the update):
  /// `log p(Y^L) ≈ logZ_clamped − logZ_free` via the backend's
  /// LogPartitionEstimate (Bethe under LBP, exact under kExact), minus the
  /// L2 penalty `l2/2 * |w − anchor|^2`. Ascends toward 0 as the clamped
  /// and free distributions' moments match.
  double objective = 0.0;
  double gradient_max_norm = 0.0;
  /// Wall-clock seconds this iteration took (both passes + update).
  double seconds = 0.0;
};

/// \brief Result of a learning run.
struct LearnerResult {
  std::vector<double> weights;
  std::vector<LearnerTrace> trace;
  bool converged = false;
};

/// \brief One (optionally L2-regularized) gradient-ascent step — the
/// single definition of the update math shared by `FactorGraphLearner`
/// and `ShardedLearner`, which are required to agree to float summation
/// order (tests/learner_runtime_test.cc). \p gradient_base holds
/// `E[h | Y^L] − E[h]` per weight; \p log_likelihood the iteration's
/// `logZ_clamped − logZ_free` estimate. Updates \p weights in place and
/// returns the trace entry (`seconds` is left 0 for the caller to fill;
/// callers check `gradient_max_norm` against their tolerance).
LearnerTrace ApplyAscentStep(const LearnerOptions& options, size_t iteration,
                             const std::vector<double>& gradient_base,
                             double log_likelihood,
                             const std::vector<double>& anchor,
                             std::vector<double>* weights);

/// \brief Maximum-likelihood learning of shared factor weights
/// (paper §3.4, Eq. 5–6).
///
/// The gradient of the partially-observed log-likelihood is
///   dO/dw = E_{p(Y|Y^L)}[h] − E_{p(Y)}[h]
/// Both expectations are approximated with LBP: the first by clamping the
/// labeled variables to their observed states, the second with all
/// variables free. Weights are updated by (optionally L2-regularized)
/// gradient ascent.
class FactorGraphLearner {
 public:
  explicit FactorGraphLearner(LearnerOptions options = {});

  /// Learns weights for \p graph given labels as (variable, state) pairs.
  /// \p graph is mutated transiently (clamps added/removed) but returned to
  /// its fully-unclamped state. Initial weights default to zeros when
  /// \p initial_weights is empty.
  LearnerResult Learn(FactorGraph* graph,
                      const std::vector<std::pair<VariableId, size_t>>& labels,
                      std::vector<double> initial_weights = {}) const;

 private:
  LearnerOptions options_;
};

}  // namespace jocl

#endif  // JOCL_GRAPH_LEARNER_H_
