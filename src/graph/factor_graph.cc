#include "graph/factor_graph.h"

namespace jocl {

VariableId FactorGraph::AddVariable(size_t cardinality, std::string name) {
  VariableId id = variables_.size();
  variables_.push_back(VariableNode{cardinality, -1, std::move(name)});
  attachments_.emplace_back();
  return id;
}

Result<FactorId> FactorGraph::AddFactor(std::vector<VariableId> scope,
                                        FeatureTable features,
                                        std::string name) {
  size_t expected = 1;
  for (VariableId v : scope) {
    if (v >= variables_.size()) {
      return Status::InvalidArgument("factor scope references unknown variable");
    }
    expected *= variables_[v].cardinality;
  }
  if (features.assignment_count() != expected) {
    return Status::InvalidArgument(
        "feature table size does not match scope cardinality product");
  }
  FactorId id = factors_.size();
  for (size_t slot = 0; slot < scope.size(); ++slot) {
    attachments_[scope[slot]].emplace_back(id, slot);
  }
  factors_.push_back(
      FactorNode{std::move(scope), std::move(features), std::move(name)});
  return id;
}

Status FactorGraph::Clamp(VariableId id, size_t state) {
  if (id >= variables_.size()) {
    return Status::InvalidArgument("clamp: unknown variable");
  }
  if (state >= variables_[id].cardinality) {
    return Status::InvalidArgument("clamp: state out of range");
  }
  variables_[id].clamped_state = static_cast<int64_t>(state);
  return Status::OK();
}

void FactorGraph::UnclampAll() {
  for (auto& v : variables_) v.clamped_state = -1;
}

size_t FactorGraph::AssignmentCount(FactorId id) const {
  size_t count = 1;
  for (VariableId v : factors_[id].scope) {
    count *= variables_[v].cardinality;
  }
  return count;
}

void FactorGraph::DecodeAssignment(FactorId id, size_t assignment,
                                   std::vector<size_t>* states) const {
  const auto& scope = factors_[id].scope;
  states->resize(scope.size());
  // Row-major with the last scope variable fastest.
  for (size_t slot = scope.size(); slot-- > 0;) {
    size_t card = variables_[scope[slot]].cardinality;
    (*states)[slot] = assignment % card;
    assignment /= card;
  }
}

}  // namespace jocl
