#include "graph/learner.h"

#include <cmath>
#include <cstddef>
#include <memory>

#include "graph/compiled_graph.h"
#include "util/logging.h"

namespace jocl {

FactorGraphLearner::FactorGraphLearner(LearnerOptions options)
    : options_(std::move(options)) {}

LearnerResult FactorGraphLearner::Learn(
    FactorGraph* graph,
    const std::vector<std::pair<VariableId, size_t>>& labels,
    std::vector<double> initial_weights) const {
  LearnerResult result;
  const size_t w = graph->weight_count();
  result.weights = std::move(initial_weights);
  result.weights.resize(w, 0.0);
  const std::vector<double> anchor = result.weights;  // regularization center

  std::vector<double> clamped_expect(w);
  std::vector<double> free_expect(w);

  // Freeze the graph structure once and bind one engine to it for every
  // pass below: the compiled CSR form, the engine's schedule and its
  // arena capacity are all shared across the 2 * iterations runs. Clamps
  // and weights are read live at Run() time, so the clamp/unclamp cycling
  // and the weight updates need no reconstruction.
  const CompiledGraph compiled = CompiledGraph::Compile(*graph);
  std::unique_ptr<InferenceEngine> engine = CreateInferenceEngine(
      options_.backend, &compiled, &result.weights, options_.lbp);

  for (size_t iter = 0; iter < options_.iterations; ++iter) {
    // E_{p(Y|Y^L)}[h]: clamp labels, run inference.
    graph->UnclampAll();
    for (const auto& [variable, state] : labels) {
      Status st = graph->Clamp(variable, state);
      (void)st;  // labels are validated by the caller
    }
    std::fill(clamped_expect.begin(), clamped_expect.end(), 0.0);
    engine->Run();
    engine->AccumulateExpectedFeatures(&clamped_expect);

    // E_{p(Y)}[h]: free pass.
    graph->UnclampAll();
    std::fill(free_expect.begin(), free_expect.end(), 0.0);
    engine->Run();
    engine->AccumulateExpectedFeatures(&free_expect);

    double max_norm = 0.0;
    for (size_t k = 0; k < w; ++k) {
      double gradient = clamped_expect[k] - free_expect[k] -
                        options_.l2 * (result.weights[k] - anchor[k]);
      result.weights[k] += options_.learning_rate * gradient;
      max_norm = std::max(max_norm, std::abs(gradient));
    }
    result.trace.push_back(LearnerTrace{iter, max_norm});
    JOCL_LOG(kDebug) << "learner iter " << iter << " grad max-norm "
                     << max_norm;
    if (max_norm < options_.gradient_tolerance) {
      result.converged = true;
      break;
    }
  }
  graph->UnclampAll();
  return result;
}

}  // namespace jocl
