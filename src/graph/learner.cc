#include "graph/learner.h"

#include <cmath>
#include <cstddef>
#include <memory>

#include "graph/compiled_graph.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace jocl {

LearnerTrace ApplyAscentStep(const LearnerOptions& options, size_t iteration,
                             const std::vector<double>& gradient_base,
                             double log_likelihood,
                             const std::vector<double>& anchor,
                             std::vector<double>* weights) {
  double max_norm = 0.0;
  double penalty = 0.0;
  for (size_t k = 0; k < weights->size(); ++k) {
    const double deviation = (*weights)[k] - anchor[k];
    penalty += deviation * deviation;
    const double gradient = gradient_base[k] - options.l2 * deviation;
    (*weights)[k] += options.learning_rate * gradient;
    max_norm = std::max(max_norm, std::abs(gradient));
  }
  LearnerTrace trace;
  trace.iteration = iteration;
  trace.objective = log_likelihood - 0.5 * options.l2 * penalty;
  trace.gradient_max_norm = max_norm;
  return trace;
}

FactorGraphLearner::FactorGraphLearner(LearnerOptions options)
    : options_(std::move(options)) {}

LearnerResult FactorGraphLearner::Learn(
    FactorGraph* graph,
    const std::vector<std::pair<VariableId, size_t>>& labels,
    std::vector<double> initial_weights) const {
  LearnerResult result;
  const size_t w = graph->weight_count();
  result.weights = std::move(initial_weights);
  result.weights.resize(w, 0.0);
  const std::vector<double> anchor = result.weights;  // regularization center

  std::vector<double> clamped_expect(w);
  std::vector<double> free_expect(w);
  std::vector<double> gradient_base(w);

  // Freeze the graph structure once and bind one engine to it for every
  // pass below: the compiled CSR form, the engine's schedule and its
  // arena capacity are all shared across the 2 * iterations runs. Clamps
  // and weights are read live at Run() time, so the clamp/unclamp cycling
  // and the weight updates need no reconstruction.
  const CompiledGraph compiled = CompiledGraph::Compile(*graph);
  std::unique_ptr<InferenceEngine> engine = CreateInferenceEngine(
      options_.backend, &compiled, &result.weights, options_.lbp);

  Stopwatch watch;
  for (size_t iter = 0; iter < options_.iterations; ++iter) {
    watch.Reset();
    // E_{p(Y|Y^L)}[h]: clamp labels, run inference.
    graph->UnclampAll();
    for (const auto& [variable, state] : labels) {
      Status st = graph->Clamp(variable, state);
      (void)st;  // labels are validated by the caller
    }
    std::fill(clamped_expect.begin(), clamped_expect.end(), 0.0);
    engine->Run();
    engine->AccumulateExpectedFeatures(&clamped_expect);
    const double clamped_log_z = engine->LogPartitionEstimate();

    // E_{p(Y)}[h]: free pass.
    graph->UnclampAll();
    std::fill(free_expect.begin(), free_expect.end(), 0.0);
    engine->Run();
    engine->AccumulateExpectedFeatures(&free_expect);
    const double free_log_z = engine->LogPartitionEstimate();

    for (size_t k = 0; k < w; ++k) {
      gradient_base[k] = clamped_expect[k] - free_expect[k];
    }
    LearnerTrace trace =
        ApplyAscentStep(options_, iter, gradient_base,
                        clamped_log_z - free_log_z, anchor, &result.weights);
    trace.seconds = watch.ElapsedSeconds();
    result.trace.push_back(trace);
    JOCL_LOG(kDebug) << "learner iter " << iter << " objective "
                     << trace.objective << " grad max-norm "
                     << trace.gradient_max_norm;
    if (trace.gradient_max_norm < options_.gradient_tolerance) {
      result.converged = true;
      break;
    }
  }
  graph->UnclampAll();
  return result;
}

}  // namespace jocl
