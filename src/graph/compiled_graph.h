#ifndef JOCL_GRAPH_COMPILED_GRAPH_H_
#define JOCL_GRAPH_COMPILED_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/factor_graph.h"
#include "util/aligned.h"
#include "util/result.h"

namespace jocl {

/// \brief Frozen CSR form of a FactorGraph, built once before inference.
///
/// The builder-side FactorGraph stores scopes, attachments and feature
/// tables as nested vectors — convenient to grow, hostile to the LBP hot
/// loop (every message update chases three levels of pointers). Compile()
/// flattens everything into contiguous index arrays so engines can walk
/// the graph with nothing but offset arithmetic:
///
///  * **Edges.** Each (factor, slot) pair is one *edge*, numbered by
///    factor in scope order: edges of factor f are
///    `[scope_offset[f], scope_offset[f+1])`. `scope_var[e]` is the
///    variable on edge e, `slot_stride[e]` its row-major stride inside the
///    factor's assignment index (last slot fastest — the FeatureTable
///    convention; engines use the strides to pin clamped slots and skip
///    their inconsistent assignments), and
///    `[edge_state_offset[e], edge_state_offset[e+1])` the edge's span in
///    any message arena.
///  * **Attachments.** The inverse mapping: edges touching variable v are
///    `attach_edge[attach_offset[v] .. attach_offset[v+1])`, replacing
///    FactorGraph's vector-of-pairs per variable.
///  * **States.** Per-variable spans in belief/marginal arenas:
///    `[var_state_offset[v], var_state_offset[v+1])`.
///  * **Assignments.** Factor f's assignments occupy the global index
///    range `[assignment_offset[f], assignment_offset[f+1])` in any
///    per-assignment arena (log-potential caches, feature offsets).
///  * **Features.** All sparse FeatureTable entries live in one shared
///    `entry_pool`; assignment `assignment_offset[f] + a` owns
///    `entry_pool[entry_offset[g] .. entry_offset[g+1])`. Uniform tables
///    keep their compact one-weight form: values sit in `uniform_pool` at
///    `uniform_offset[f]`.
///  * **Components.** Messages never cross connected components, so the
///    compiler labels them once (union-find over factor scopes) and emits
///    CSR lists of each component's variables and factors. Engines use
///    the partition to run components independently — sequentially or on
///    a thread pool — over disjoint arena slices.
///
/// The compiled form borrows the source graph (it must outlive this
/// object) and snapshots only *structure*: clamped states are read live
/// from the source, so the learner can clamp/unclamp labels between runs
/// without recompiling.
struct CompiledGraph {
  /// Sentinel for "no offset" (uniform_offset of sparse factors).
  static constexpr size_t kNoOffset = std::numeric_limits<size_t>::max();

  const FactorGraph* source = nullptr;

  // ---- variables ----
  std::vector<uint32_t> cardinality;      // [nv]
  std::vector<size_t> var_state_offset;   // [nv + 1]

  // ---- factor scopes (CSR over edges) ----
  std::vector<size_t> scope_offset;       // [nf + 1] -> edge id ranges
  std::vector<uint32_t> scope_var;        // [ne]
  std::vector<uint32_t> edge_factor;      // [ne] owning factor of each edge
  std::vector<size_t> slot_stride;        // [ne] row-major assignment stride
  std::vector<size_t> edge_state_offset;  // [ne + 1] -> message arenas

  // ---- padded message/belief lanes (SIMD layout) ----
  // Same spans as edge_state_offset / var_state_offset, but each lane is
  // padded to a multiple of kLaneDoubles so every lane starts on a
  // kLaneAlignment boundary of a kArenaAlignment-aligned arena. The LBP
  // kernels index their arenas through these; the padding tails are never
  // read or written, so the padded layout changes memory placement only —
  // not a single arithmetic result.
  std::vector<size_t> edge_lane_offset;   // [ne + 1]
  std::vector<size_t> var_lane_offset;    // [nv + 1]

  // ---- assignments ----
  std::vector<size_t> assignment_offset;  // [nf + 1] global assignment ids

  // ---- variable attachments (CSR) ----
  std::vector<size_t> attach_offset;      // [nv + 1]
  std::vector<uint32_t> attach_edge;      // [ne], grouped by variable

  // ---- features (one flat pool per graph) ----
  std::vector<uint8_t> factor_uniform;    // [nf] 1 = uniform table
  std::vector<WeightId> uniform_weight;   // [nf] shared weight (uniform only)
  std::vector<size_t> uniform_offset;     // [nf] into uniform_pool, kNoOffset
                                          //      for sparse factors
  std::vector<double> uniform_pool;       // flat uniform values
  std::vector<size_t> entry_offset;       // [total_assignments + 1]
  std::vector<FeatureEntry> entry_pool;   // flat sparse entries

  // ---- connected components ----
  size_t component_count = 0;
  std::vector<size_t> component_of_var;   // [nv]
  std::vector<size_t> comp_var_offset;    // [nc + 1]
  std::vector<uint32_t> comp_vars;        // [nv], grouped by component
  std::vector<size_t> comp_factor_offset; // [nc + 1]
  std::vector<uint32_t> comp_factors;     // non-constant factors by component
  std::vector<uint32_t> constant_factors; // empty-scope factors (no messages)

  // ---- scratch sizing ----
  size_t max_factor_states = 0;  // max over f of sum of scope cardinalities
  size_t max_factor_lane_states = 0;  // same, over padded lanes
  size_t max_arity = 0;

  size_t variable_count() const { return cardinality.size(); }
  size_t factor_count() const { return factor_uniform.size(); }
  size_t edge_count() const { return scope_var.size(); }
  size_t total_var_states() const { return var_state_offset.back(); }
  size_t total_edge_states() const { return edge_state_offset.back(); }
  size_t total_edge_lane_states() const { return edge_lane_offset.back(); }
  size_t total_var_lane_states() const { return var_lane_offset.back(); }
  size_t total_assignments() const { return assignment_offset.back(); }

  /// Log-potential of factor \p f's local assignment \p a under
  /// \p weights: `sum_i w[entry_i.weight] * entry_i.value`.
  double LogPotential(FactorId f, size_t a,
                      const std::vector<double>& weights) const {
    if (factor_uniform[f]) {
      return weights[uniform_weight[f]] * uniform_pool[uniform_offset[f] + a];
    }
    const size_t g = assignment_offset[f] + a;
    double total = 0.0;
    for (size_t i = entry_offset[g]; i < entry_offset[g + 1]; ++i) {
      total += weights[entry_pool[i].weight] * entry_pool[i].value;
    }
    return total;
  }

  /// Fills \p out (resized to total_assignments()) with the log-potential
  /// of every assignment of every factor. Engines call this once per Run —
  /// the weights are fixed within a run, so the table is shared by every
  /// subsequent sweep instead of being recomputed per message update.
  void ComputeLogPotentials(const std::vector<double>& weights,
                            std::vector<double>* out) const;

  /// Invokes `fn(weight, value)` for each feature of factor \p f's local
  /// assignment \p a (flat-pool equivalent of FeatureTable::ForEachFeature).
  template <typename Fn>
  void ForEachFeature(FactorId f, size_t a, Fn&& fn) const {
    if (factor_uniform[f]) {
      fn(uniform_weight[f], uniform_pool[uniform_offset[f] + a]);
      return;
    }
    const size_t g = assignment_offset[f] + a;
    for (size_t i = entry_offset[g]; i < entry_offset[g + 1]; ++i) {
      fn(entry_pool[i].weight, entry_pool[i].value);
    }
  }

  /// Flattens \p graph into the CSR form. O(edges + assignments + feature
  /// entries); the source must outlive the compiled graph. The graph is
  /// assumed structurally valid (the builder API cannot produce an invalid
  /// one); graphs of uncertain provenance go through CompileChecked.
  static CompiledGraph Compile(const FactorGraph& graph);

  /// Validating variant of Compile for graphs of uncertain provenance
  /// (deserialized, hand-assembled): verifies every structural invariant
  /// the engines rely on — scope variables in range, positive
  /// cardinalities, feature tables sized to their scope's assignment
  /// count, weight references below weight_count, clamps within
  /// cardinality — and returns a descriptive InvalidArgument /
  /// FailedPrecondition Status instead of compiling undefined behavior.
  static Result<CompiledGraph> CompileChecked(const FactorGraph& graph);

  /// The validation half of CompileChecked, usable on its own (the
  /// engines' Validate() precondition checks share it).
  static Status ValidateSource(const FactorGraph& graph);
};

/// \brief Connected-component label of every variable (variables sharing a
/// factor are connected). Standalone helper for diagnostics about graph
/// fragmentation; CompiledGraph::Compile computes the same labeling.
std::vector<size_t> FactorGraphComponents(const FactorGraph& graph);

}  // namespace jocl

#endif  // JOCL_GRAPH_COMPILED_GRAPH_H_
