#ifndef JOCL_GRAPH_FACTOR_GRAPH_H_
#define JOCL_GRAPH_FACTOR_GRAPH_H_

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "util/result.h"

namespace jocl {

/// Index of a variable node within a FactorGraph.
using VariableId = size_t;
/// Index of a factor node within a FactorGraph.
using FactorId = size_t;
/// Index into the shared weight vector.
using WeightId = size_t;

/// \brief One (weight, value) entry of a feature vector.
struct FeatureEntry {
  WeightId weight = 0;
  double value = 0.0;
};

/// \brief Per-assignment features of a factor.
///
/// A factor over variables with cardinalities (c_1, .., c_k) has
/// `c_1 * .. * c_k` assignments, indexed row-major with the *last* scope
/// variable fastest. Each assignment carries a feature vector; the
/// factor's log-potential under weights `w` is
/// `log phi(a) = sum_i w[entry_i.weight] * entry_i.value` — the paper's
/// exponential-linear factor function `H_j(C_j) ∝ exp{w^T h_j(C_j)}`
/// (Eq. 1; the local normalizer `Z_j` cancels in message passing and
/// gradient, so it is never materialized).
///
/// Two storage modes:
///  * sparse — arbitrary (weight, value) lists per assignment (the F1–F6
///    signal factors, a handful of features over few assignments);
///  * uniform — one shared weight with a dense value per assignment (the
///    U1–U7 heuristic factors, one weight over many assignments). This is
///    ~5x smaller, which matters with tens of thousands of ternary factors.
class FeatureTable {
 public:
  FeatureTable() = default;

  /// Creates a sparse table for the given number of assignments.
  explicit FeatureTable(size_t assignment_count)
      : sparse_(assignment_count) {}

  /// Creates a uniform table: a single weight whose feature value is
  /// `values[assignment]`.
  static FeatureTable Uniform(WeightId weight, std::vector<double> values) {
    FeatureTable table;
    table.uniform_ = true;
    table.uniform_weight_ = weight;
    table.uniform_values_ = std::move(values);
    return table;
  }

  size_t assignment_count() const {
    return uniform_ ? uniform_values_.size() : sparse_.size();
  }

  /// Appends one feature entry to the given assignment. Sparse mode only:
  /// a uniform table has no per-assignment entry lists, so the call is
  /// rejected (assert in debug builds, ignored in release) instead of
  /// indexing into the empty sparse storage.
  void Add(size_t assignment, WeightId weight, double value) {
    assert(!uniform_ && "FeatureTable::Add is invalid on a uniform table");
    assert(assignment < sparse_.size() && "assignment out of range");
    if (uniform_ || assignment >= sparse_.size()) return;
    sparse_[assignment].push_back(FeatureEntry{weight, value});
  }

  /// True for tables created with Uniform().
  bool is_uniform() const { return uniform_; }

  /// The shared weight of a uniform table (valid only when is_uniform()).
  WeightId uniform_weight() const { return uniform_weight_; }

  /// Per-assignment feature values of a uniform table (valid only when
  /// is_uniform()).
  const std::vector<double>& uniform_values() const { return uniform_values_; }

  /// Sparse entries of one assignment (valid only when !is_uniform()).
  const std::vector<FeatureEntry>& entries(size_t assignment) const {
    assert(!uniform_ && "FeatureTable::entries is invalid on a uniform table");
    assert(assignment < sparse_.size() && "assignment out of range");
    return sparse_[assignment];
  }

  /// Log-potential of the assignment under the weights.
  double LogPotential(size_t assignment,
                      const std::vector<double>& weights) const {
    if (uniform_) {
      return weights[uniform_weight_] * uniform_values_[assignment];
    }
    double total = 0.0;
    for (const auto& entry : sparse_[assignment]) {
      total += weights[entry.weight] * entry.value;
    }
    return total;
  }

  /// Invokes `fn(weight, value)` for each feature of the assignment.
  template <typename Fn>
  void ForEachFeature(size_t assignment, Fn&& fn) const {
    if (uniform_) {
      fn(uniform_weight_, uniform_values_[assignment]);
      return;
    }
    for (const auto& entry : sparse_[assignment]) {
      fn(entry.weight, entry.value);
    }
  }

 private:
  std::vector<std::vector<FeatureEntry>> sparse_;
  bool uniform_ = false;
  WeightId uniform_weight_ = 0;
  std::vector<double> uniform_values_;
};

/// \brief A factor node: a scope of variables plus a feature table.
struct FactorNode {
  std::vector<VariableId> scope;
  FeatureTable features;
  std::string name;
};

/// \brief A variable node: its cardinality and optional clamping state.
struct VariableNode {
  size_t cardinality = 2;
  /// Observed state for clamped inference; < 0 means free.
  int64_t clamped_state = -1;
  std::string name;
};

/// \brief A bipartite factor graph with shared log-linear weights.
///
/// Variables have arbitrary finite cardinality. Factors attach a
/// FeatureTable whose entries reference a *global* weight vector, so many
/// factors share the same parameters (all F1 factors share α1, etc.) —
/// the structure the paper's learning algorithm (§3.4) requires.
///
/// This is the *mutable builder* form, optimized for incremental
/// construction. Inference runs on the frozen CSR form produced by
/// `CompiledGraph::Compile` (graph/compiled_graph.h); recompile after any
/// structural change (AddVariable/AddFactor). Clamps are not structural —
/// engines read them live, so clamp/unclamp freely between runs.
class FactorGraph {
 public:
  FactorGraph() = default;

  /// Adds a variable with the given number of states; returns its id.
  VariableId AddVariable(size_t cardinality, std::string name = "");

  /// Adds a factor over \p scope with per-assignment features.
  /// The feature table must have exactly prod(cardinality of scope vars)
  /// assignments; returns an error otherwise.
  Result<FactorId> AddFactor(std::vector<VariableId> scope,
                             FeatureTable features, std::string name = "");

  /// Declares the size of the shared weight vector. Feature entries must
  /// reference weights below this count.
  void set_weight_count(size_t count) { weight_count_ = count; }
  size_t weight_count() const { return weight_count_; }

  size_t variable_count() const { return variables_.size(); }
  size_t factor_count() const { return factors_.size(); }

  const VariableNode& variable(VariableId id) const { return variables_[id]; }
  const FactorNode& factor(FactorId id) const { return factors_[id]; }

  /// Factors attached to a variable, as (factor, slot-in-scope) pairs.
  const std::vector<std::pair<FactorId, size_t>>& AttachedFactors(
      VariableId id) const {
    return attachments_[id];
  }

  /// Clamps a variable to an observed state (for conditioned inference).
  Status Clamp(VariableId id, size_t state);

  /// Removes the clamp from a variable.
  void Unclamp(VariableId id) { variables_[id].clamped_state = -1; }

  /// Removes all clamps.
  void UnclampAll();

  /// True iff the variable is currently clamped.
  bool IsClamped(VariableId id) const {
    return variables_[id].clamped_state >= 0;
  }

  /// Number of joint assignments of a factor's scope.
  size_t AssignmentCount(FactorId id) const;

  /// Decodes a row-major assignment index into per-slot states.
  void DecodeAssignment(FactorId id, size_t assignment,
                        std::vector<size_t>* states) const;

 private:
  std::vector<VariableNode> variables_;
  std::vector<FactorNode> factors_;
  std::vector<std::vector<std::pair<FactorId, size_t>>> attachments_;
  size_t weight_count_ = 0;
};

}  // namespace jocl

#endif  // JOCL_GRAPH_FACTOR_GRAPH_H_
