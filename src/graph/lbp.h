#ifndef JOCL_GRAPH_LBP_H_
#define JOCL_GRAPH_LBP_H_

#include <vector>
#include <cstddef>

#include "graph/factor_graph.h"

namespace jocl {

/// \brief Message semiring: sum-product computes marginals (the paper's
/// inference, §3.4–3.5); max-product computes max-marginals for MAP
/// decoding.
enum class LbpMode { kSumProduct, kMaxProduct };

/// \brief Options for a Loopy Belief Propagation run.
struct LbpOptions {
  /// Sum-product (marginals) or max-product (MAP decoding).
  LbpMode mode = LbpMode::kSumProduct;
  /// Maximum message-passing sweeps. The paper reports convergence within
  /// twenty iterations (§3.4).
  size_t max_iterations = 20;
  /// Sweeps stop early when the max absolute change of any factor->variable
  /// log-message falls below this.
  double tolerance = 1e-4;
  /// Damping `d`: new = (1-d)*computed + d*old. 0 disables damping.
  double damping = 0.0;
  /// Optional staged factor schedule: groups of factor ids updated in
  /// order within each sweep (the paper's working procedure, §3.4). Factors
  /// missing from every group are appended as a final group. Empty =
  /// single group in insertion order.
  std::vector<std::vector<FactorId>> factor_schedule;
};

/// \brief Marginals and factor beliefs produced by LBP.
struct LbpResult {
  /// Per-variable marginal distribution (clamped variables get a delta).
  std::vector<std::vector<double>> marginals;
  /// Number of sweeps executed.
  size_t iterations = 0;
  /// True when the tolerance was met before max_iterations.
  bool converged = false;
  /// Max message residual after the final sweep.
  double final_residual = 0.0;
  /// Message residual after each sweep (for convergence diagnostics).
  std::vector<double> residual_history;
};

/// \brief Log-space sum-product Loopy Belief Propagation.
///
/// The engine owns the message storage for one factor graph + weight
/// vector. After Run(), variable marginals, factor beliefs and expected
/// feature vectors (for learning) can be queried. Clamped variables send
/// delta messages and keep delta marginals — that is how the learner's
/// conditioned pass `p(Y | Y^L)` is realized.
class LbpEngine {
 public:
  /// \p graph and \p weights must outlive the engine.
  LbpEngine(const FactorGraph* graph, const std::vector<double>* weights,
            LbpOptions options = {});

  /// Executes message passing until convergence or the iteration cap.
  LbpResult Run();

  /// Marginal of one variable (valid after Run()).
  const std::vector<double>& Marginal(VariableId id) const {
    return marginals_[id];
  }

  /// Belief over a factor's assignments (normalized; valid after Run()).
  std::vector<double> FactorBelief(FactorId id) const;

  /// Accumulates `sum_a b_f(a) * h_f(a)` over every factor into
  /// \p expectations (size must be weight_count). Used by the learner for
  /// `E[h]` under the current (clamped or free) distribution.
  void AccumulateExpectedFeatures(std::vector<double>* expectations) const;

  /// Argmax decoding of each variable's marginal.
  std::vector<size_t> Decode() const;

 private:
  void UpdateFactorMessages(FactorId f, double* residual);
  void RefreshVariableSums();

  const FactorGraph* graph_;
  const std::vector<double>* weights_;
  LbpOptions options_;

  // msg_f2v_[f][slot][state], msg_v2f_[f][slot][state] in log space.
  std::vector<std::vector<std::vector<double>>> msg_f2v_;
  std::vector<std::vector<std::vector<double>>> msg_v2f_;
  // Cached per-variable sum of incoming factor messages.
  std::vector<std::vector<double>> belief_sums_;
  std::vector<std::vector<double>> marginals_;
  std::vector<std::vector<FactorId>> schedule_;
};

/// \brief Exact inference by joint enumeration — O(prod cardinalities).
///
/// Only usable on tiny graphs; exists so tests can verify LBP (exact on
/// trees, close on small loopy graphs) and the learner's gradients.
struct ExactResult {
  std::vector<std::vector<double>> marginals;
  double log_partition = 0.0;
  /// Expected features under the exact joint.
  std::vector<double> expected_features;
};

/// Computes exact marginals, log Z and expected features. Respects clamps.
ExactResult ExactInference(const FactorGraph& graph,
                           const std::vector<double>& weights);

/// \brief Exact MAP assignment by joint enumeration (tiny graphs only).
/// Respects clamps; deterministic tie-break on the assignment order.
std::vector<size_t> ExactMap(const FactorGraph& graph,
                             const std::vector<double>& weights);

/// \brief Numerically stable log(sum(exp(values))).
double LogSumExp(const std::vector<double>& values);

}  // namespace jocl

#endif  // JOCL_GRAPH_LBP_H_
