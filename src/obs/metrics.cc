#include "obs/metrics.h"

#include <charconv>
#include <chrono>
#include <cstdio>

namespace jocl {
namespace {

std::atomic<size_t> g_next_slot{0};

/// Locale-independent shortest-round-trip double, the weights_io idiom.
void AppendDouble(std::string* out, double value) {
  char buf[64];
  auto res = std::to_chars(buf, buf + sizeof(buf), value);
  if (res.ec == std::errc()) {
    out->append(buf, res.ptr - buf);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out->append(buf);
  }
}

void AppendUint(std::string* out, uint64_t value) {
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, res.ptr - buf);
}

void AppendInt(std::string* out, int64_t value) {
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, res.ptr - buf);
}

/// `name` or `name{labels}` with an optional suffix spliced onto the
/// family name (histogram series) and an optional extra label.
void AppendSample(std::string* out, std::string_view family,
                  std::string_view suffix, std::string_view labels,
                  std::string_view extra_label) {
  out->append(family);
  out->append(suffix);
  if (!labels.empty() || !extra_label.empty()) {
    out->push_back('{');
    out->append(labels);
    if (!labels.empty() && !extra_label.empty()) out->push_back(',');
    out->append(extra_label);
    out->push_back('}');
  }
  out->push_back(' ');
}

void RenderHistogram(std::string* out, std::string_view family,
                     std::string_view labels, const Histogram::Snapshot& snap) {
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += snap.bucket[i];
    std::string le = "le=\"";
    AppendDouble(&le, static_cast<double>(Histogram::BucketBoundNanos(i)) * 1e-9);
    le.push_back('"');
    std::string bucket_labels(labels);
    if (!bucket_labels.empty()) bucket_labels.push_back(',');
    bucket_labels.append(le);
    AppendSample(out, family, "_bucket", bucket_labels, "");
    AppendUint(out, cumulative);
    out->push_back('\n');
  }
  cumulative += snap.bucket[Histogram::kBuckets];
  std::string inf_labels(labels);
  if (!inf_labels.empty()) inf_labels.push_back(',');
  inf_labels.append("le=\"+Inf\"");
  AppendSample(out, family, "_bucket", inf_labels, "");
  AppendUint(out, cumulative);
  out->push_back('\n');
  AppendSample(out, family, "_sum", labels, "");
  AppendDouble(out, static_cast<double>(snap.sum_ns) * 1e-9);
  out->push_back('\n');
  AppendSample(out, family, "_count", labels, "");
  AppendUint(out, snap.count);
  out->push_back('\n');
}

}  // namespace

size_t MetricCellSlot() {
  thread_local size_t slot =
      g_next_slot.fetch_add(1, std::memory_order_relaxed) % kMetricCells;
  return slot;
}

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Histogram::Snapshot Histogram::Read() const {
  Snapshot snap;
  for (const Cell& cell : cells_) {
    for (size_t i = 0; i <= kBuckets; ++i) {
      snap.bucket[i] += cell.bucket[i].load(std::memory_order_relaxed);
    }
    snap.sum_ns += cell.sum_ns.load(std::memory_order_relaxed);
    snap.count += cell.count.load(std::memory_order_relaxed);
  }
  return snap;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrAdd(Kind kind,
                                                   std::string_view name,
                                                   std::string_view labels,
                                                   std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      return entry.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name.assign(name);
  entry->labels.assign(labels);
  entry->help.assign(help);
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::AddCounter(std::string_view name,
                                     std::string_view labels,
                                     std::string_view help) {
  return FindOrAdd(Kind::kCounter, name, labels, help)->counter.get();
}

Gauge* MetricsRegistry::AddGauge(std::string_view name,
                                 std::string_view labels,
                                 std::string_view help) {
  return FindOrAdd(Kind::kGauge, name, labels, help)->gauge.get();
}

Histogram* MetricsRegistry::AddHistogram(std::string_view name,
                                         std::string_view labels,
                                         std::string_view help) {
  return FindOrAdd(Kind::kHistogram, name, labels, help)->histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(entries_.size() * 128);
  // Families render grouped: all series of a family follow its
  // HELP/TYPE header, in first-registration order.
  std::vector<const Entry*> done;
  for (const auto& head : entries_) {
    bool seen = false;
    for (const Entry* d : done) {
      if (d->name == head->name) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    done.push_back(head.get());
    out.append("# HELP ").append(head->name).push_back(' ');
    out.append(head->help).push_back('\n');
    out.append("# TYPE ").append(head->name).push_back(' ');
    switch (head->kind) {
      case Kind::kCounter: out.append("counter"); break;
      case Kind::kGauge: out.append("gauge"); break;
      case Kind::kHistogram: out.append("histogram"); break;
    }
    out.push_back('\n');
    for (const auto& entry : entries_) {
      if (entry->name != head->name) continue;
      switch (entry->kind) {
        case Kind::kCounter:
          AppendSample(&out, entry->name, "", entry->labels, "");
          AppendUint(&out, entry->counter->Value());
          out.push_back('\n');
          break;
        case Kind::kGauge:
          AppendSample(&out, entry->name, "", entry->labels, "");
          AppendInt(&out, entry->gauge->Value());
          out.push_back('\n');
          break;
        case Kind::kHistogram:
          RenderHistogram(&out, entry->name, entry->labels,
                          entry->histogram->Read());
          break;
      }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

/// The family a sample line belongs to: the metric name with any
/// histogram series suffix stripped.
std::string_view FamilyOfSample(std::string_view line) {
  size_t end = line.find_first_of("{ ");
  std::string_view name = line.substr(0, end == std::string_view::npos
                                             ? line.size()
                                             : end);
  for (std::string_view suffix : {std::string_view("_bucket"),
                                  std::string_view("_sum"),
                                  std::string_view("_count")}) {
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return name.substr(0, name.size() - suffix.size());
    }
  }
  return name;
}

/// Re-emits a sample line with \p extra_label prepended to its labels.
std::string RelabelSample(std::string_view line, std::string_view extra_label) {
  if (extra_label.empty()) return std::string(line);
  std::string out;
  out.reserve(line.size() + extra_label.size() + 2);
  size_t brace = line.find('{');
  size_t space = line.find(' ');
  if (brace != std::string_view::npos &&
      (space == std::string_view::npos || brace < space)) {
    out.append(line.substr(0, brace + 1));
    out.append(extra_label);
    // An empty label set "{}" is not produced by our renderer, but be
    // robust: only add the comma when labels follow.
    if (brace + 1 < line.size() && line[brace + 1] != '}') out.push_back(',');
    out.append(line.substr(brace + 1));
  } else {
    size_t name_end = space == std::string_view::npos ? line.size() : space;
    out.append(line.substr(0, name_end));
    out.push_back('{');
    out.append(extra_label);
    out.push_back('}');
    out.append(line.substr(name_end));
  }
  return out;
}

}  // namespace

PrometheusAggregator::Family* PrometheusAggregator::FindOrAddFamily(
    std::string_view name) {
  for (Family& family : families_) {
    if (family.name == name) return &family;
  }
  families_.push_back(Family{});
  families_.back().name.assign(name);
  return &families_.back();
}

void PrometheusAggregator::AddText(std::string_view text,
                                   std::string_view extra_label) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty()) continue;
    if (line.substr(0, 7) == "# HELP " || line.substr(0, 7) == "# TYPE ") {
      std::string_view rest = line.substr(7);
      size_t name_end = rest.find(' ');
      std::string_view name =
          rest.substr(0, name_end == std::string_view::npos ? rest.size()
                                                            : name_end);
      Family* family = FindOrAddFamily(name);
      if (line[2] == 'H') {
        if (family->help.empty()) family->help.assign(line);
      } else {
        if (family->type.empty()) family->type.assign(line);
      }
      continue;
    }
    if (line[0] == '#') continue;
    Family* family = FindOrAddFamily(FamilyOfSample(line));
    family->samples.push_back(RelabelSample(line, extra_label));
  }
}

std::string PrometheusAggregator::Render() const {
  std::string out;
  for (const Family& family : families_) {
    if (!family.help.empty()) out.append(family.help).push_back('\n');
    if (!family.type.empty()) out.append(family.type).push_back('\n');
    for (const std::string& sample : family.samples) {
      out.append(sample).push_back('\n');
    }
  }
  return out;
}

}  // namespace jocl
