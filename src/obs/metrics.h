#ifndef JOCL_OBS_METRICS_H_
#define JOCL_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jocl {

/// How many sharded cells back each hot-path metric. Every recording
/// thread hashes to one cell (round-robin slot assignment on first use),
/// so concurrent recorders contend at worst kMetricCells-ways on relaxed
/// atomics and the common case — one event thread per cell — is a private
/// cache line. Cells are merged on scrape, never on record.
inline constexpr size_t kMetricCells = 16;

/// The calling thread's cell index. Stable for the thread's lifetime;
/// assignment is one relaxed fetch_add on first use (no allocation, so
/// first-touch on the serve hot path stays inside the zero-alloc budget).
size_t MetricCellSlot();

/// Nanoseconds on the monotonic clock (steady_clock), the time base of
/// every latency histogram and trace span.
uint64_t MonotonicNanos();

/// \brief Monotonic counter: per-thread sharded cells, lock-free
/// relaxed-add recording, merge on read. Register through
/// `MetricsRegistry`; handles stay valid for the registry's lifetime.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[MetricCellSlot()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kMetricCells];
};

/// \brief Last-write-wins gauge (single atomic: gauges are set by one
/// writer — a publisher or the router's forward path — not accumulated).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket log-scale latency histogram over nanoseconds.
///
/// Bucket upper bounds are powers of two: bucket i holds samples with
/// ns <= 1024 << i (1.024us, 2.048us, ... ~8.6s), plus a +Inf bucket.
/// Recording is one bucket-index scan plus three relaxed adds into the
/// caller's cell — lock-free and allocation-free, safe on the serve hot
/// path under the operator-new probe. Cells merge on scrape
/// (`Read`/Prometheus render), so a scrape racing a recorder may see a
/// sample in `count` before `sum` or vice versa — monotonic counters
/// only, never torn values.
class Histogram {
 public:
  static constexpr size_t kBuckets = 24;          ///< finite buckets
  static constexpr uint64_t kFirstBoundNanos = 1024;

  /// Upper bound of finite bucket \p i in nanoseconds.
  static uint64_t BucketBoundNanos(size_t i) { return kFirstBoundNanos << i; }

  /// Index of the bucket counting \p ns (kBuckets = the +Inf bucket).
  static size_t BucketOf(uint64_t ns) {
    size_t i = 0;
    uint64_t bound = kFirstBoundNanos;
    while (i < kBuckets && ns > bound) {
      ++i;
      bound <<= 1;
    }
    return i;
  }

  void Record(uint64_t ns) {
    Cell& cell = cells_[MetricCellSlot()];
    cell.bucket[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
    cell.sum_ns.fetch_add(ns, std::memory_order_relaxed);
    cell.count.fetch_add(1, std::memory_order_relaxed);
  }

  /// Merged snapshot across all cells (non-cumulative bucket counts).
  struct Snapshot {
    uint64_t bucket[kBuckets + 1] = {0};
    uint64_t count = 0;
    uint64_t sum_ns = 0;
  };
  Snapshot Read() const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> bucket[kBuckets + 1] = {};
    std::atomic<uint64_t> sum_ns{0};
    std::atomic<uint64_t> count{0};
  };
  Cell cells_[kMetricCells];
};

/// \brief Registry of named metrics rendered as Prometheus text
/// exposition (`text/plain; version=0.0.4`).
///
/// Registration (Add*) allocates and takes a mutex — it happens at
/// construction/setup time and returns stable handles; recording through
/// the handles is lock-free. Re-registering the same (name, labels) pair
/// returns the existing handle, so call-site `static` handles in library
/// code and repeated setup paths compose. Each `EventHttpServer` owns an
/// instance for server-scoped metrics; the pipeline layers (runtime,
/// session, learner, kernel counters) record into `Global()`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \p name is the metric family (e.g. "jocl_requests_total"); \p labels
  /// is the rendered label list without braces (e.g. `endpoint="/lookup"`,
  /// empty for none); \p help is the one-line HELP text (first
  /// registration of a family wins).
  Counter* AddCounter(std::string_view name, std::string_view labels,
                      std::string_view help);
  Gauge* AddGauge(std::string_view name, std::string_view labels,
                  std::string_view help);
  Histogram* AddHistogram(std::string_view name, std::string_view labels,
                          std::string_view help);

  /// Prometheus text exposition of every registered metric, families
  /// grouped in first-registration order (HELP/TYPE once per family,
  /// histograms as cumulative `_bucket{le=...}` + `_sum` + `_count`).
  /// Deterministic for a fixed registration order and metric state.
  std::string RenderPrometheus() const;

  /// The process-wide registry the pipeline layers record into.
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;    ///< family name
    std::string labels;  ///< label list without braces ("" = none)
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrAdd(Kind kind, std::string_view name, std::string_view labels,
                   std::string_view help);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// The MIME type of `RenderPrometheus` output.
inline constexpr std::string_view kPrometheusContentType =
    "text/plain; version=0.0.4";

/// \brief Merges several Prometheus exposition documents into one,
/// optionally stamping an extra label onto every sample of a document —
/// how `CanonRouter` aggregates its shards' `/metrics` under
/// `shard="k"` labels. Families keep first-appearance order; HELP/TYPE
/// are emitted once per family; samples keep per-document order.
class PrometheusAggregator {
 public:
  /// Folds one exposition document in. \p extra_label (e.g. `shard="0"`,
  /// empty for none) is prepended to every sample's label list,
  /// including histogram `_bucket`/`_sum`/`_count` series.
  void AddText(std::string_view text, std::string_view extra_label);

  std::string Render() const;

 private:
  struct Family {
    std::string name;
    std::string help;  ///< full "# HELP ..." line
    std::string type;  ///< full "# TYPE ..." line
    std::vector<std::string> samples;
  };
  Family* FindOrAddFamily(std::string_view name);
  std::vector<Family> families_;
};

}  // namespace jocl

#endif  // JOCL_OBS_METRICS_H_
