#include "obs/trace.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "obs/metrics.h"

namespace jocl {

std::atomic<TraceRecorder*> TraceRecorder::global_{nullptr};

namespace obs_internal {
namespace {
thread_local std::string t_track = "main";
thread_local int64_t t_parent_seq = -1;
}  // namespace

const std::string& CurrentTrack() { return t_track; }
void SetCurrentTrack(std::string track) { t_track = std::move(track); }
int64_t CurrentParentSeq() { return t_parent_seq; }
void SetCurrentParentSeq(int64_t seq) { t_parent_seq = seq; }
}  // namespace obs_internal

namespace {

/// Tracks sort by (length, lexicographic) so "shard/2" < "shard/10"
/// without parsing — short numeric suffixes order naturally.
bool TrackLess(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendUint(std::string* out, uint64_t value) {
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, res.ptr - buf);
}

void AppendInt(std::string* out, int64_t value) {
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, res.ptr - buf);
}

/// Nanoseconds as fixed-point microseconds ("12.345") — chrome's `ts`
/// unit, locale-independent.
void AppendMicros(std::string* out, uint64_t ns) {
  AppendUint(out, ns / 1000);
  char buf[8];
  std::snprintf(buf, sizeof(buf), ".%03u",
                static_cast<unsigned>(ns % 1000));
  out->append(buf);
}

}  // namespace

uint64_t TraceRecorder::NextSeqLocked(std::string_view track) {
  for (TrackState& state : tracks_) {
    if (state.name == track) return state.next_seq++;
  }
  tracks_.push_back(TrackState{});
  tracks_.back().name.assign(track);
  return tracks_.back().next_seq++;
}

uint64_t TraceRecorder::ReserveSeq(std::string_view track) {
  std::lock_guard<std::mutex> lock(mu_);
  return NextSeqLocked(track);
}

void TraceRecorder::AddSpan(std::string_view name, std::string_view track,
                            uint64_t start_ns, uint64_t dur_ns, uint64_t seq,
                            int64_t parent_seq, std::string_view args) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{});
  Span& span = spans_.back();
  span.name.assign(name);
  span.track.assign(track);
  span.start_ns = start_ns;
  span.dur_ns = dur_ns;
  span.seq = seq;
  span.parent_seq = parent_seq;
  span.args.assign(args);
}

std::vector<TraceRecorder::Span> TraceRecorder::Spans() const {
  std::vector<Span> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.track != b.track) return TrackLess(a.track, b.track);
    return a.seq < b.seq;
  });
  return spans;
}

std::string TraceRecorder::ToChromeJson() const {
  std::vector<Span> spans = Spans();
  // Track index = tid. Sorted (length, lex) so the numbering is stable
  // across runs and thread counts.
  std::vector<std::string> tracks;
  for (const Span& span : spans) {
    if (std::find(tracks.begin(), tracks.end(), span.track) == tracks.end()) {
      tracks.push_back(span.track);
    }
  }
  std::sort(tracks.begin(), tracks.end(), TrackLess);
  auto tid_of = [&tracks](const std::string& track) {
    return static_cast<size_t>(
        std::find(tracks.begin(), tracks.end(), track) - tracks.begin());
  };

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (size_t t = 0; t < tracks.size(); ++t) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    AppendUint(&out, t);
    out.append(",\"args\":{\"name\":");
    AppendJsonString(&out, tracks[t]);
    out.append("}}");
  }
  for (const Span& span : spans) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, span.name);
    out.append(",\"cat\":\"jocl\",\"ph\":\"X\",\"pid\":1,\"tid\":");
    AppendUint(&out, tid_of(span.track));
    out.append(",\"ts\":");
    AppendMicros(&out, span.start_ns);
    out.append(",\"dur\":");
    AppendMicros(&out, span.dur_ns);
    out.append(",\"args\":{\"seq\":");
    AppendUint(&out, span.seq);
    out.append(",\"parent_seq\":");
    AppendInt(&out, span.parent_seq);
    if (!span.args.empty()) {
      out.push_back(',');
      out.append(span.args);
    }
    out.append("}}");
  }
  out.append("\n]}\n");
  return out;
}

bool TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::string json = ToChromeJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

TraceTrackScope::TraceTrackScope(std::string_view track) {
  if (TraceRecorder::Global() == nullptr) return;
  active_ = true;
  saved_ = obs_internal::CurrentTrack();
  saved_parent_ = obs_internal::CurrentParentSeq();
  obs_internal::SetCurrentTrack(std::string(track));
  obs_internal::SetCurrentParentSeq(-1);
}

TraceTrackScope::TraceTrackScope(std::string_view prefix, size_t index) {
  if (TraceRecorder::Global() == nullptr) return;
  active_ = true;
  saved_ = obs_internal::CurrentTrack();
  saved_parent_ = obs_internal::CurrentParentSeq();
  std::string track(prefix);
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf),
                           static_cast<uint64_t>(index));
  track.append(buf, res.ptr - buf);
  obs_internal::SetCurrentTrack(std::move(track));
  obs_internal::SetCurrentParentSeq(-1);
}

TraceTrackScope::~TraceTrackScope() {
  if (!active_) return;
  obs_internal::SetCurrentTrack(std::move(saved_));
  obs_internal::SetCurrentParentSeq(saved_parent_);
}

ScopedSpan::ScopedSpan(std::string_view name)
    : ScopedSpan(name, std::string()) {}

ScopedSpan::ScopedSpan(std::string_view name, std::string args_json) {
  recorder_ = TraceRecorder::Global();
  if (recorder_ == nullptr) return;
  name_.assign(name);
  args_ = std::move(args_json);
  parent_seq_ = obs_internal::CurrentParentSeq();
  seq_ = recorder_->ReserveSeq(obs_internal::CurrentTrack());
  obs_internal::SetCurrentParentSeq(static_cast<int64_t>(seq_));
  start_ns_ = MonotonicNanos();
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  uint64_t end_ns = MonotonicNanos();
  obs_internal::SetCurrentParentSeq(parent_seq_);
  recorder_->AddSpan(name_, obs_internal::CurrentTrack(), start_ns_,
                     end_ns - start_ns_, seq_, parent_seq_, args_);
}

}  // namespace jocl
