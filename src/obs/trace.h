#ifndef JOCL_OBS_TRACE_H_
#define JOCL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jocl {

/// \brief Recorder of nested pipeline spans, dumpable as Chrome
/// `chrome://tracing` JSON (`--trace-out` on the tools).
///
/// Spans land on logical *tracks*, not physical threads: "main" for the
/// orchestration thread, "shard/<plan index>" for per-shard work,
/// "learner/<component>" for learner passes. A track's unit of work is
/// executed sequentially by exactly one thread at a time, and span
/// sequence numbers are assigned under the recorder lock in completion
/// order per track — so the dumped JSON is byte-identical across runs
/// and thread counts modulo the `ts`/`dur` fields. Physical thread ids
/// are never emitted.
///
/// Recording is only active through an installed global recorder
/// (`ScopedTraceSession`); when none is installed every span/track
/// helper is a single relaxed atomic load — cheap enough to leave in
/// bench and serve hot paths.
class TraceRecorder {
 public:
  struct Span {
    std::string name;
    std::string track;
    uint64_t start_ns = 0;   ///< monotonic clock
    uint64_t dur_ns = 0;
    uint64_t seq = 0;        ///< per-track completion order
    int64_t parent_seq = -1; ///< enclosing span's seq on the same track
    std::string args;        ///< pre-rendered JSON object body ("" = none)
  };

  /// Reserves the next sequence number on \p track. Called at span
  /// *start* so children (which complete before their parent) can still
  /// name the parent's seq.
  uint64_t ReserveSeq(std::string_view track);

  /// Completes the span that reserved \p seq on \p track. \p parent_seq
  /// is the seq of the enclosing span on the same track (-1 for a root).
  void AddSpan(std::string_view name, std::string_view track,
               uint64_t start_ns, uint64_t dur_ns, uint64_t seq,
               int64_t parent_seq, std::string_view args);

  /// Snapshot of all completed spans, sorted by (track, seq) — the same
  /// deterministic order the JSON dump uses (test hook).
  std::vector<Span> Spans() const;

  /// Chrome trace-event JSON: one "M" thread_name metadata event per
  /// track plus one "X" complete event per span. Tracks are numbered by
  /// (name length, lexicographic) so "main" < "shard/0" < ... is stable;
  /// events within a track follow seq order. Byte-identical across runs
  /// modulo `ts`/`dur`.
  std::string ToChromeJson() const;

  /// Writes `ToChromeJson()` to \p path. Returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  /// The installed recorder, or nullptr when tracing is off.
  static TraceRecorder* Global() {
    return global_.load(std::memory_order_acquire);
  }
  static void SetGlobal(TraceRecorder* recorder) {
    global_.store(recorder, std::memory_order_release);
  }

 private:
  static std::atomic<TraceRecorder*> global_;

  struct TrackState {
    std::string name;
    uint64_t next_seq = 0;
  };
  uint64_t NextSeqLocked(std::string_view track);

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::vector<TrackState> tracks_;
};

namespace obs_internal {
/// The calling thread's current logical track ("main" by default).
const std::string& CurrentTrack();
void SetCurrentTrack(std::string track);
/// Seq of the innermost open span on this thread (-1 at top level).
int64_t CurrentParentSeq();
void SetCurrentParentSeq(int64_t seq);
}  // namespace obs_internal

/// \brief Reassigns the calling thread to a logical track for the
/// scope's duration (restores the previous track on exit). Pool workers
/// executing shard s wrap the work in `TraceTrackScope("shard/", s)`.
/// When no recorder is installed the constructor is one atomic load —
/// no string is built.
class TraceTrackScope {
 public:
  explicit TraceTrackScope(std::string_view track);
  TraceTrackScope(std::string_view prefix, size_t index);
  ~TraceTrackScope();

  TraceTrackScope(const TraceTrackScope&) = delete;
  TraceTrackScope& operator=(const TraceTrackScope&) = delete;

 private:
  bool active_ = false;
  std::string saved_;
  int64_t saved_parent_ = -1;
};

/// \brief RAII span: records [construction, destruction) on the
/// thread's current track, nested under the innermost open ScopedSpan.
/// One atomic load when tracing is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  /// \p args_json is the body of the span's "args" object, e.g.
  /// `"shard":3,"variables":120` (no outer braces).
  ScopedSpan(std::string_view name, std::string args_json);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  std::string name_;
  std::string args_;
  uint64_t start_ns_ = 0;
  uint64_t seq_ = 0;
  int64_t parent_seq_ = -1;
};

/// \brief Installs \p recorder as the global recorder for the scope's
/// lifetime (tools wrap their pipeline in one of these when
/// `--trace-out` is set).
class ScopedTraceSession {
 public:
  explicit ScopedTraceSession(TraceRecorder* recorder) {
    TraceRecorder::SetGlobal(recorder);
  }
  ~ScopedTraceSession() { TraceRecorder::SetGlobal(nullptr); }

  ScopedTraceSession(const ScopedTraceSession&) = delete;
  ScopedTraceSession& operator=(const ScopedTraceSession&) = delete;
};

}  // namespace jocl

#endif  // JOCL_OBS_TRACE_H_
